// Regenerates Table I (the paper's selected-results summary), deriving every
// headline number from the A5 trace and both cache sweeps.

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Table I — selected results", "Table I");
  const GenerationResult a5 = GenerateA5();
  const TraceAnalysis analysis = AnalyzeTrace(a5.trace);
  const auto fig5 = RunCacheSweep(a5.trace, Fig5Configs());
  const auto fig6 = RunCacheSweep(a5.trace, Fig6Configs());
  std::printf("%s\n", RenderTable1(analysis, fig5, fig6).c_str());
  return 0;
}
