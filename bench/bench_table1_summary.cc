// Regenerates Table I (the paper's selected-results summary), deriving every
// headline number from the A5 trace and both cache sweeps.

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Table I — selected results", "Table I");
  const GenerationResult a5 = GenerateA5();
  AnalyzeOptions analyze_options;
  analyze_options.trace = &a5.trace;
  const TraceAnalysis analysis = Analyze(analyze_options).value();
  // One reconstruction shared by both sweeps (two-phase engine).
  const StandardSweeps sweeps = RunStandardSweeps(a5.trace);
  std::printf("%s\n", RenderTable1(analysis, sweeps.fig5, sweeps.fig6).c_str());
  return 0;
}
