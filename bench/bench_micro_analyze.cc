// Microbench for the segmented parallel analyzer: generates the standard
// trace straight to a v3 file (checksummed blocks + footer index), times the
// serial streaming Analyze against the parallel Analyze engine at 2, 4, and 8
// threads, verifies every parallel result is bit-identical to the serial
// one, and emits one machine-readable JSON line plus a
// BENCH_micro_analyze.json file.  Exits non-zero if parity breaks.
//
// Defaults: the paper's Ucbarpa-class profile (A5) over 6 simulated hours.
// Override with BSDTRACE_HOURS.  The speedup is only meaningful on
// multi-core hardware, so `hw_threads` is part of the JSON record.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/trace/trace_source.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  double hours = 6.0;
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());

  ShardedGeneratorOptions options;
  options.base.duration = Duration::Hours(hours);
  options.base.seed = 19851201;
  options.shard_count = 8;
  options.threads = 0;

  std::printf("bench_micro_analyze: A5, %.2f simulated hours (hw %d threads)\n", hours,
              hw_threads);

  const std::string path =
      (std::filesystem::temp_directory_path() / "bsdtrace-bench-analyze.trc").string();
  auto generated = GenerateTraceShardedToFile(ProfileA5(), options, path);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", generated.status().message().c_str());
    return 1;
  }
  const uint64_t records = generated.value().records_streamed;
  SeekableTraceSource seekable(path);
  const uint64_t blocks = seekable.index().size();

  constexpr int kReps = 3;

  // Serial reference: the streaming single-pass analyzer.
  double serial_s = 1e300;
  TraceAnalysis serial;
  for (int rep = -1; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    TraceFileSource source(path);
    AnalyzeOptions serial_options;
    serial_options.source = &source;
    auto result = Analyze(serial_options);
    if (!result.ok()) {
      std::fprintf(stderr, "serial analysis failed: %s\n", result.status().message().c_str());
      return 1;
    }
    if (rep >= 0) {
      serial_s = std::min(serial_s, SecondsSince(t0));
    }
    serial = std::move(result).value();
  }

  // Parallel at 2 / 4 / 8 threads, each gated on bit-identity to serial.
  const unsigned thread_counts[] = {2, 4, 8};
  double parallel_s[3] = {1e300, 1e300, 1e300};
  bool parity = true;
  for (int i = 0; i < 3; ++i) {
    for (int rep = -1; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      AnalyzeOptions parallel_options;
      parallel_options.path = path;
      parallel_options.threads = thread_counts[i];
      auto result = Analyze(parallel_options);
      if (!result.ok()) {
        std::fprintf(stderr, "parallel analysis (%u threads) failed: %s\n", thread_counts[i],
                     result.status().message().c_str());
        return 1;
      }
      if (rep >= 0) {
        parallel_s[i] = std::min(parallel_s[i], SecondsSince(t0));
      }
      if (!AnalysisBitIdentical(serial, result.value())) {
        parity = false;
      }
    }
  }
  std::remove(path.c_str());

  const double speedup8 = parallel_s[2] > 0 ? serial_s / parallel_s[2] : 0;
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"micro_analyze\",\"hours\":%.2f,\"records\":%llu,"
                "\"blocks\":%llu,\"hw_threads\":%d,"
                "\"serial_s\":%.4f,\"parallel2_s\":%.4f,\"parallel4_s\":%.4f,"
                "\"parallel8_s\":%.4f,\"speedup8\":%.2f,\"parity\":%s}",
                hours, static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(blocks), hw_threads, serial_s, parallel_s[0],
                parallel_s[1], parallel_s[2], speedup8, parity ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_micro_analyze.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!parity) {
    std::fprintf(stderr, "FAIL: parallel analysis differs from the serial reference\n");
    return 1;
  }
  return 0;
}
