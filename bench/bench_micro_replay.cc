// Microbench for the two-phase sweep engine: times the Fig. 5 cache-size
// sweep done the old way (full AccessReconstructor pass per config) against
// the replay-log way (reconstruct once, replay per config), verifies the
// metrics agree, and emits one machine-readable JSON line plus a
// BENCH_micro_replay.json file so the perf trajectory can be tracked.
//
// Both paths run single-threaded so the ratio isolates the engine change.
// Default trace length is 6 simulated hours — a representative multi-hour
// working day, long enough that the sweep dominates setup noise (set
// BSDTRACE_HOURS to change).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/cache/sweep.h"
#include "src/trace/replay_log.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool MetricsEqual(const CacheMetrics& a, const CacheMetrics& b) {
  return a.logical_accesses == b.logical_accesses && a.read_accesses == b.read_accesses &&
         a.write_accesses == b.write_accesses && a.metadata_accesses == b.metadata_accesses &&
         a.disk_reads == b.disk_reads && a.disk_writes == b.disk_writes &&
         a.dirty_discarded == b.dirty_discarded && a.evictions == b.evictions &&
         a.residency_over_20min == b.residency_over_20min &&
         a.residency_samples == b.residency_samples &&
         a.residency_seconds.sum() == b.residency_seconds.sum() &&
         a.residency_seconds.variance() == b.residency_seconds.variance();
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  double hours = 6.0;
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  options.seed = 19851201;
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);
  const std::vector<CacheConfig> configs = Fig5Configs();
  std::printf("bench_micro_replay: %zu records, %zu configs, %.2f simulated hours\n",
              trace.size(), configs.size(), hours);

  // Min-of-N timing with an untimed warmup iteration: both phases run in the
  // single-digit-millisecond range at the default trace length, where cold
  // caches, page faults, and frequency ramp-up otherwise dominate the noise.
  constexpr int kReps = 11;
  double reconstruct_s = 1e300;
  double replay_s = 1e300;
  double build_s = 1e300;
  std::vector<CacheMetrics> direct, replayed;
  for (int rep = -1; rep < kReps; ++rep) {
    // Old path: every config pays a full reconstruction.
    auto t0 = std::chrono::steady_clock::now();
    direct.clear();
    for (const CacheConfig& c : configs) {
      direct.push_back(SimulateCache(trace, c));
    }
    if (rep >= 0) {
      reconstruct_s = std::min(reconstruct_s, SecondsSince(t0));
    }

    // New path: reconstruct once into a ReplayLog, replay per config.
    t0 = std::chrono::steady_clock::now();
    const ReplayLog log = ReplayLog::Build(trace);
    const double this_build_s = SecondsSince(t0);
    replayed.clear();
    for (const CacheConfig& c : configs) {
      replayed.push_back(SimulateCache(log, c));
    }
    if (rep >= 0) {
      build_s = std::min(build_s, this_build_s);
      replay_s = std::min(replay_s, SecondsSince(t0));
    }
  }

  bool identical = direct.size() == replayed.size();
  for (size_t i = 0; identical && i < direct.size(); ++i) {
    identical = MetricsEqual(direct[i], replayed[i]);
  }
  const double speedup = replay_s > 0 ? reconstruct_s / replay_s : 0;

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"micro_replay\",\"records\":%zu,\"hours\":%.2f,"
                "\"trace_duration_s\":%.1f,\"configs\":%zu,"
                "\"reconstruct_per_config_s\":%.4f,\"replay_log_s\":%.4f,"
                "\"log_build_s\":%.4f,\"speedup\":%.2f,\"identical\":%s}",
                trace.size(), hours, trace.duration().seconds(), configs.size(), reconstruct_s,
                replay_s, build_s, speedup, identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_micro_replay.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: replay-log metrics diverge from the direct path\n");
    return 1;
  }
  return 0;
}
