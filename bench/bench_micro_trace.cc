// Micro-benchmarks (google-benchmark) for trace generation, codec, and
// analysis throughput.

#include <sstream>

#include <benchmark/benchmark.h>

#include "src/analysis/analyzer.h"
#include "src/trace/trace_io.h"
#include "src/workload/generator.h"

namespace bsdtrace {
namespace {

const Trace& SharedTrace() {
  static const Trace* trace = [] {
    GeneratorOptions options;
    options.duration = Duration::Hours(1);
    options.seed = 77;
    return new Trace(GenerateTraceOnly(ProfileA5(), options));
  }();
  return *trace;
}

void BM_GenerateTrace(benchmark::State& state) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(static_cast<double>(state.range(0)));
  options.seed = 5;
  uint64_t records = 0;
  for (auto _ : state) {
    const Trace t = GenerateTraceOnly(ProfileA5(), options);
    records = t.size();
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] = static_cast<double>(records);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * records));
}
BENCHMARK(BM_GenerateTrace)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_BinaryEncode(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  for (auto _ : state) {
    std::ostringstream out;
    WriteBinaryTrace(out, trace);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_BinaryEncode)->Unit(benchmark::kMillisecond);

void BM_BinaryDecode(benchmark::State& state) {
  std::ostringstream encoded;
  WriteBinaryTrace(encoded, SharedTrace());
  const std::string data = encoded.str();
  for (auto _ : state) {
    std::istringstream in(data);
    auto t = ReadBinaryTrace(in);
    benchmark::DoNotOptimize(t.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(SharedTrace().size()));
}
BENCHMARK(BM_BinaryDecode)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTrace(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  AnalyzeOptions options;
  options.trace = &trace;
  for (auto _ : state) {
    const TraceAnalysis a = Analyze(options).value();
    benchmark::DoNotOptimize(a.overall.total_records);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_AnalyzeTrace)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bsdtrace

BENCHMARK_MAIN();
