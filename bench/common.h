// Shared setup for the table/figure bench binaries: generate and analyze the
// three standard traces once per run.

#ifndef BSDTRACE_BENCH_COMMON_H_
#define BSDTRACE_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/core/experiments.h"

namespace bsdtrace {

struct BenchTraces {
  GenerationResult a5, e3, c4;
  TraceAnalysis a5_analysis, e3_analysis, c4_analysis;

  std::vector<NamedAnalysis> Named() const {
    return {{"A5", &a5_analysis}, {"E3", &e3_analysis}, {"C4", &c4_analysis}};
  }
};

// Generates and analyzes all three standard traces (duration from
// BSDTRACE_HOURS, default 24 simulated hours) and prints a provenance line.
// When BSDTRACE_TRACE_FILE is set, traces are loaded from that path instead
// ("{name}" is replaced by the trace name, or ".<name>" appended) and are
// generated-and-saved there on first use — the generate-to-file →
// analyze-from-file recipe in EXPERIMENTS.md.
BenchTraces GenerateAllTraces();

// Generates only the A5 trace (the paper reports cache results for A5 only).
// Honors BSDTRACE_TRACE_FILE like GenerateAllTraces().
GenerationResult GenerateA5();

// Prints the standard bench banner.
void PrintBanner(const std::string& what, const std::string& paper_ref);

// If BSDTRACE_CSV_DIR is set, exports figure series / sweep data there.
void MaybeExportFigures(const BenchTraces& traces);
void MaybeExportSweep(const std::string& name, const std::vector<SweepPoint>& points);
void MaybeExportCurves(const std::string& name, const std::vector<SweepCurve>& curves);
void MaybeExportHierarchy(const std::string& name, const std::vector<HierarchyPoint>& points);

// Times the replayed sweep engine (one CacheSimulator replay per config,
// plus the extra delayed-write replays needed to cover every Mattson-curve
// sample) against the planned engine (RunPlannedSweep) on a shared replay
// log, verifies every overlapping cell is bit-identical, and emits one JSON
// line (stdout + BENCH_<name>.json) with `parity` and `speedup` fields.
// Both engines run single-threaded so the ratio isolates the algorithmic
// change.  On success `points_out`/`curves_out` receive the planned results
// for rendering.  Returns 0, or 1 when parity fails or the measured speedup
// falls below `min_speedup` (pass 0 to report speedup without gating).
int RunPlannedEngineBench(const std::string& name, const Trace& trace,
                          const std::vector<CacheConfig>& configs, double min_speedup,
                          std::vector<SweepPoint>* points_out,
                          std::vector<SweepCurve>* curves_out);

}  // namespace bsdtrace

#endif  // BSDTRACE_BENCH_COMMON_H_
