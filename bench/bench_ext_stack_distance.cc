// Extension: one-pass LRU stack-distance analysis (Mattson et al. 1970,
// made exact under invalidations — see DESIGN.md §12).  Regenerates the
// delayed-write *fetch* miss curve of Figure 5 for every cache size from a
// single pass and checks it bit-for-bit against a full simulator replay per
// size: the two engines now agree exactly, on writes and invalidations
// included.  Emits a JSON line with `parity` and `speedup` (one pass vs.
// one replay per curve size).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/cache/stack_distance.h"
#include "src/trace/replay_log.h"
#include "src/util/table.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace bsdtrace;
  PrintBanner("extension — one-pass stack-distance analysis", "Fig. 5 read-miss curve");
  const GenerationResult a5 = GenerateA5();
  const ReplayLog log = ReplayLog::Build(a5.trace);
  const std::vector<uint64_t> sizes = SweepCurveSizes();

  // Min-of-N; the first iteration doubles as the warmup.  Both engines
  // replay the same prebuilt log, single-threaded.
  constexpr int kReps = 3;
  double replay_s = 1e300;
  double pass_s = 1e300;
  StackDistanceProfile profile;
  std::vector<CacheMetrics> simulated;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    simulated.clear();
    for (const uint64_t size : sizes) {
      CacheConfig c;
      c.size_bytes = size;
      c.policy = WritePolicy::kDelayedWrite;
      simulated.push_back(SimulateCache(log, c));
    }
    replay_s = std::min(replay_s, SecondsSince(t0));

    t0 = std::chrono::steady_clock::now();
    StackDistanceAnalyzer analyzer(4096);
    analyzer.SetExtentFeeds(log.transfer_extents().data(), log.execve_extents().data());
    log.ReplayDataEventsInto(analyzer);
    profile = analyzer.Take();
    pass_s = std::min(pass_s, SecondsSince(t0));
  }

  bool parity = true;
  TextTable table({"Cache Size", "One-pass fetch misses", "Fetch miss ratio", "All misses",
                   "Simulator disk reads"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    const uint64_t blocks = std::max<uint64_t>(1, sizes[i] / 4096);
    parity = parity && profile.FetchMissesAt(blocks) == simulated[i].disk_reads;
    table.AddRow({FormatBytes(static_cast<double>(sizes[i])),
                  Cell(static_cast<int64_t>(profile.FetchMissesAt(blocks))),
                  FormatPercent(profile.FetchMissRatioAt(blocks)),
                  Cell(static_cast<int64_t>(profile.MissesAt(blocks))),
                  Cell(static_cast<int64_t>(simulated[i].disk_reads))});
  }
  std::printf("%s\n", table.Render("Fetch misses: one-pass analysis vs. full simulation "
                                   "(4 KB blocks, delayed write, A5 trace).").c_str());
  std::printf(
      "one pass analyzed %lu block accesses (%lu cold) and produced the exact disk-read\n"
      "column at every cache size; the \"all misses\" column additionally counts misses\n"
      "that install without a fetch (whole-block or beyond-extent writes).  Unlinks,\n"
      "truncations, and overwrites are true stack deletions, so the parity is\n"
      "bit-for-bit even on write-heavy traces.\n",
      static_cast<unsigned long>(profile.total_accesses()),
      static_cast<unsigned long>(profile.cold_misses()));

  const double speedup = pass_s > 0 ? replay_s / pass_s : 0;
  char json[384];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"ext_stack_distance\",\"records\":%zu,\"hours\":%.2f,"
                "\"curve_sizes\":%zu,\"replay_per_size_s\":%.4f,\"one_pass_s\":%.4f,"
                "\"speedup\":%.2f,\"parity\":%s}",
                a5.trace.size(), StandardDuration().hours(), sizes.size(), replay_s, pass_s,
                speedup, parity ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_ext_stack_distance.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!parity) {
    std::fprintf(stderr, "FAIL: one-pass fetch misses diverge from the simulator\n");
    return 1;
  }
  return 0;
}
