// Extension: one-pass LRU stack-distance analysis.  Regenerates the delayed-
// write *fetch* miss curve of Figure 5 for every cache size from a single
// pass (Mattson et al. 1970), and cross-checks a few points against the full
// simulator.

#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "src/cache/stack_distance.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("extension — one-pass stack-distance analysis", "Fig. 5 read-miss curve");
  const GenerationResult a5 = GenerateA5();

  const auto t0 = std::chrono::steady_clock::now();
  const StackDistanceProfile profile = ComputeStackDistances(a5.trace, 4096);
  const auto t1 = std::chrono::steady_clock::now();

  TextTable table({"Cache Size", "Stack-distance misses", "Miss ratio", "Simulator disk reads"});
  const uint64_t kMb = 1ull << 20;
  for (uint64_t size : {390ull * 1024, 1ull * kMb, 2ull * kMb, 4ull * kMb, 8ull * kMb, 16ull * kMb}) {
    const uint64_t blocks = size / 4096;
    CacheConfig c;
    c.size_bytes = size;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(a5.trace, c);
    table.AddRow({FormatBytes(static_cast<double>(size)),
                  Cell(static_cast<int64_t>(profile.MissesAt(blocks))),
                  FormatPercent(profile.MissRatioAt(blocks)),
                  Cell(static_cast<int64_t>(m.disk_reads))});
  }
  std::printf("%s\n", table.Render("Fetch misses: one-pass analysis vs. full simulation "
                                   "(4 KB blocks, A5 trace).").c_str());
  std::printf("one pass analyzed %lu block accesses (%lu cold) in %.0f ms; every cache size\n"
              "falls out of the same pass.  The simulator column is lower because write\n"
              "misses that overwrite whole blocks (or write new data) install without a\n"
              "fetch; the one-pass analysis counts every miss.  On read-only streams the\n"
              "two agree exactly (see cache_tests).\n",
              static_cast<unsigned long>(profile.total_accesses()),
              static_cast<unsigned long>(profile.cold_misses()),
              std::chrono::duration<double, std::milli>(t1 - t0).count());
  return 0;
}
