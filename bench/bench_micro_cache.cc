// Micro-benchmarks (google-benchmark) for the cache simulator and its LRU
// store: throughput of the simulation engine itself, independent of any
// paper result.

#include <benchmark/benchmark.h>

#include "src/cache/simulator.h"
#include "src/cache/sweep.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"

namespace bsdtrace {
namespace {

const Trace& SharedTrace() {
  static const Trace* trace = [] {
    GeneratorOptions options;
    options.duration = Duration::Hours(1);
    options.seed = 4242;
    return new Trace(GenerateTraceOnly(ProfileA5(), options));
  }();
  return *trace;
}

void BM_BlockCacheTouchHit(benchmark::State& state) {
  BlockCache cache(static_cast<uint64_t>(state.range(0)));
  for (int64_t i = 0; i < state.range(0); ++i) {
    cache.Insert(BlockKey{.file = 1, .index = static_cast<uint64_t>(i)}, SimTime::Origin(),
                 [](const CacheEntry&) {});
  }
  Rng rng(1);
  uint64_t hits = 0;
  for (auto _ : state) {
    const BlockKey key{.file = 1,
                       .index = static_cast<uint64_t>(rng.UniformInt(0, state.range(0) - 1))};
    hits += cache.Touch(key) != nullptr ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockCacheTouchHit)->Arg(1 << 10)->Arg(1 << 14);

void BM_BlockCacheInsertEvict(benchmark::State& state) {
  BlockCache cache(1024);
  uint64_t index = 0;
  for (auto _ : state) {
    cache.Insert(BlockKey{.file = 2, .index = index++}, SimTime::Origin(),
                 [](const CacheEntry&) {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockCacheInsertEvict);

void BM_CacheSimulatorReplay(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  CacheConfig config;
  config.size_bytes = static_cast<uint64_t>(state.range(0));
  config.policy = WritePolicy::kDelayedWrite;
  for (auto _ : state) {
    const CacheMetrics m = SimulateCache(trace, config);
    benchmark::DoNotOptimize(m.DiskIos());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_CacheSimulatorReplay)->Arg(400 << 10)->Arg(4 << 20)->Unit(benchmark::kMillisecond);

void BM_CacheSimulatorFlushBack(benchmark::State& state) {
  const Trace& trace = SharedTrace();
  CacheConfig config;
  config.size_bytes = 4u << 20;
  config.policy = WritePolicy::kFlushBack;
  config.flush_interval = Duration::Seconds(30);
  for (auto _ : state) {
    const CacheMetrics m = SimulateCache(trace, config);
    benchmark::DoNotOptimize(m.DiskIos());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_CacheSimulatorFlushBack)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bsdtrace

BENCHMARK_MAIN();
