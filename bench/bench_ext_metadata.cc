// Extension (paper §8): I/O for things other than file data.  The paper
// closes by estimating that i-node and directory accesses could account for
// more than half of all disk block references.  This bench injects
// synthetic i-node/directory block accesses (see CacheSimulator docs) and
// measures their share of block accesses and of disk I/O across cache sizes.

#include <cstdio>

#include "bench/common.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("extension — i-node and directory overhead", "§8 closing estimate");
  const GenerationResult a5 = GenerateA5();
  const ReplayLog log = ReplayLog::Build(a5.trace);

  TextTable table({"Cache Size", "File-data I/Os", "With metadata", "Metadata access share",
                   "Extra disk I/O"});
  const uint64_t kMb = 1ull << 20;
  for (uint64_t size : {390ull * 1024, 1ull * kMb, 2ull * kMb, 4ull * kMb, 8ull * kMb, 16ull * kMb}) {
    CacheConfig base;
    base.size_bytes = size;
    base.policy = WritePolicy::kFlushBack;
    base.flush_interval = Duration::Seconds(30);
    CacheConfig with = base;
    with.simulate_metadata = true;
    const CacheMetrics m0 = SimulateCache(log, base);
    const CacheMetrics m1 = SimulateCache(log, with);
    const double meta_share = m1.logical_accesses > 0
                                  ? static_cast<double>(m1.metadata_accesses) /
                                        static_cast<double>(m1.logical_accesses)
                                  : 0;
    const double extra = m0.DiskIos() > 0 ? static_cast<double>(m1.DiskIos()) /
                                                static_cast<double>(m0.DiskIos()) -
                                                1.0
                                          : 0;
    table.AddRow({FormatBytes(static_cast<double>(size)),
                  Cell(static_cast<int64_t>(m0.DiskIos())),
                  Cell(static_cast<int64_t>(m1.DiskIos())), FormatPercent(meta_share, 0),
                  FormatPercent(extra, 0)});
  }
  std::printf("%s\n",
              table.Render("Effect of simulated i-node/directory accesses (30 s flush-back, "
                           "4 KB blocks, A5 trace).").c_str());
  std::printf("Paper §8: \"more than half of all disk block references could come from these\n"
              "other accesses\", but \"there are indications that the other accesses can also\n"
              "be handled efficiently by caching\" — visible here as a metadata access share\n"
              "near 50%% whose extra disk I/O shrinks rapidly with cache size.\n");
  return 0;
}
