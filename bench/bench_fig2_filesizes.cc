// Regenerates Figure 2 (dynamic file size distributions at close).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 2 — dynamic file sizes", "Figure 2 (§5.2)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderFigure2(traces.Named()).c_str());
  std::printf(
      "Paper bands: ~80%% of accesses to files under 10 KB, but those carry only\n"
      "~30%% of the bytes; a few ~1 MB administrative files account for ~20%% of\n"
      "accesses via position-and-read.\n");
  return 0;
}
