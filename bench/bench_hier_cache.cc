// Bench + hard gate for the client/server cache hierarchy (§7 extension).
//
// Two gates, both of which fail the run:
//   1. Parity: a client-size-0 HierarchySimulator must be bit-identical to
//      the single-level CacheSimulator on every server config — the refactor
//      contract (CacheLevel split + hierarchy driver cost the single-level
//      path nothing semantically)...
//   2. Throughput: ...and nearly nothing in time: the degenerate hierarchy
//      replay must stay within 1.2x of the plain single-level replay over
//      the same configs.  RunHierarchySweep's internal fused-vs-hierarchy
//      cross-check must also hold.
//
// The workload is a small fleet (2xA5 + 1xE3) so the hierarchy rows exercise
// real multi-client attribution.  Emits one JSON line (stdout +
// BENCH_hier_cache.json); with BSDTRACE_CSV_DIR set, exports the §7 figure
// grid as hier_sweep.csv.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/cache/sweep.h"
#include "src/trace/replay_log.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  double hours = 6.0;
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  PrintBanner("client/server cache hierarchy sweep", "§7 (extension beyond the paper)");

  auto fleet = ParseFleetSpec("fleet:2xA5+1xE3");
  if (!fleet.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", fleet.status().message().c_str());
    return 1;
  }
  FleetGeneratorOptions gen_options;
  gen_options.base.duration = Duration::Hours(hours);
  gen_options.base.seed = 19851201;
  gen_options.shards_per_machine = 2;
  auto generated = GenerateFleetTrace(fleet.value(), gen_options);
  if (!generated.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", generated.status().message().c_str());
    return 1;
  }
  const Trace& trace = generated.value().trace;
  const ReplayLog log = ReplayLog::Build(trace);
  std::printf("fleet 2xA5+1xE3: %zu records, %zu instance(s), %.2f simulated hours\n",
              trace.size(), log.instance_count(), hours);

  // Gate 1+2 workload: the five server sizes at delayed write — the plain
  // single-level replay (the pre-refactor engine's job) vs. the degenerate
  // hierarchy replay of the exact same configs.
  std::vector<HierarchyConfig> degenerate;
  for (const HierarchyConfig& h : HierarchySweepConfigs()) {
    if (!h.has_clients() && h.server.policy == WritePolicy::kDelayedWrite) {
      degenerate.push_back(h);
    }
  }

  constexpr int kReps = 3;
  double single_s = 1e300;
  double hier0_s = 1e300;
  std::vector<CacheMetrics> single_metrics;
  std::vector<HierarchyMetrics> hier0_metrics;
  for (int rep = -1; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    single_metrics.clear();
    for (const HierarchyConfig& h : degenerate) {
      single_metrics.push_back(SimulateCache(log, h.server));
    }
    if (rep >= 0) {
      single_s = std::min(single_s, SecondsSince(t0));
    }

    t0 = std::chrono::steady_clock::now();
    hier0_metrics.clear();
    for (const HierarchyConfig& h : degenerate) {
      hier0_metrics.push_back(SimulateHierarchy(log, h));
    }
    if (rep >= 0) {
      hier0_s = std::min(hier0_s, SecondsSince(t0));
    }
  }

  bool identical = true;
  for (size_t i = 0; i < degenerate.size(); ++i) {
    identical = identical && CacheMetricsBitIdentical(single_metrics[i], hier0_metrics[i].server);
  }
  const double ratio = single_s > 0 ? hier0_s / single_s : 0.0;
  constexpr double kMaxRatio = 1.2;
  const bool fast_enough = ratio <= kMaxRatio;

  // The full §7 grid, threaded; its internal parity flag re-checks every
  // fused client-0 group against a degenerate hierarchy replay.
  const auto sweep_start = std::chrono::steady_clock::now();
  const HierarchySweepResult sweep = RunHierarchySweep(log, HierarchySweepConfigs());
  const double sweep_s = SecondsSince(sweep_start);
  std::fputs(RenderHierarchySweep(sweep).c_str(), stdout);
  MaybeExportHierarchy("hier_sweep", sweep.points);

  char json[640];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"hier_cache\",\"records\":%zu,\"hours\":%.2f,\"instances\":%zu,"
                "\"degenerate_configs\":%zu,\"single_replay_s\":%.4f,\"hier0_replay_s\":%.4f,"
                "\"ratio\":%.3f,\"max_ratio\":%.2f,\"sweep_points\":%zu,\"sweep_s\":%.4f,"
                "\"fused_replays\":%zu,\"hierarchy_replays\":%zu,"
                "\"identical\":%s,\"sweep_parity\":%s}",
                trace.size(), hours, log.instance_count(), degenerate.size(), single_s, hier0_s,
                ratio, kMaxRatio, sweep.points.size(), sweep_s, sweep.fused_replays,
                sweep.hierarchy_replays, identical ? "true" : "false",
                sweep.parity ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_hier_cache.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }

  if (!identical) {
    std::fprintf(stderr, "FAIL: client-0 hierarchy diverges from the single-level simulator\n");
    return 1;
  }
  if (!sweep.parity) {
    std::fprintf(stderr, "FAIL: fused client-0 lanes diverge from the hierarchy engine\n");
    return 1;
  }
  if (!fast_enough) {
    std::fprintf(stderr, "FAIL: degenerate hierarchy replay is %.2fx the single-level replay "
                 "(gate %.2fx)\n", ratio, kMaxRatio);
    return 1;
  }
  return 0;
}
