// Regenerates Table III (overall trace statistics) and the §3.1 inter-event
// interval measurement for all three traces.

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Table III — overall statistics", "Table III and §3.1");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderTable3(traces.Named()).c_str());
  std::printf("%s\n", RenderEventIntervals(traces.Named()).c_str());
  return 0;
}
