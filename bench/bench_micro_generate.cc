// Microbench for the sharded generation engine: times serial GenerateTrace,
// in-memory GenerateTraceSharded, and the spill-to-disk streaming
// GenerateTraceShardedToFile for the same profile/seed/duration, verifies
// the shards=1 path is byte-identical to the serial one and the streamed
// file is byte-identical to saving the in-memory result, measures the peak
// RSS of the streaming vs. in-memory paths, and emits one machine-readable
// JSON line plus a BENCH_micro_generate.json file.
//
// Defaults: the paper's Ucbarpa-class profile (A5) over 6 simulated hours,
// 8 shards, one worker thread per hardware thread.  Override with
// BSDTRACE_HOURS / BSDTRACE_SHARDS / BSDTRACE_THREADS.  The speedup is only
// meaningful on multi-core hardware, so `threads` and `hw_threads` are part
// of the JSON record.
//
// RSS methodology: the streaming phase runs FIRST (a fresh process, so its
// VmHWM is its own); before the in-memory phase the peak is re-armed by
// malloc_trim(0) + writing "5" to /proc/self/clear_refs, which resets VmHWM
// to the current RSS.  On kernels without clear_refs the in-memory number
// degrades to the lifetime peak — still an upper bound for the comparison
// the bench gates on (streaming <= in-memory).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/trace/trace_io.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string Serialize(const Trace& trace) {
  std::ostringstream out;
  WriteBinaryTrace(out, trace);
  return std::move(out).str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Peak resident set (VmHWM) in kB, or -1 where /proc is unavailable.
long ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  long kb = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Re-arms VmHWM at the current RSS (after returning freed arenas to the OS)
// so per-phase peaks can be read.  Best effort.
void ResetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  double hours = 6.0;
  int shards = 8;
  int threads = 0;  // hardware concurrency
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  if (const char* env = std::getenv("BSDTRACE_SHARDS")) {
    shards = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_THREADS")) {
    threads = std::atoi(env);
  }
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());

  const MachineProfile profile = ProfileA5();
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  options.seed = 19851201;

  ShardedGeneratorOptions sharded_options;
  sharded_options.base = options;
  sharded_options.shard_count = shards;
  sharded_options.threads = threads;

  std::printf("bench_micro_generate: %s, %.2f simulated hours, %d shards, %d threads (hw %d)\n",
              profile.trace_name.c_str(), hours, shards, threads, hw_threads);

  constexpr int kReps = 3;
  const std::string stream_path =
      (std::filesystem::temp_directory_path() / "bsdtrace-bench-stream.trc").string();

  // Phase 1 — streaming, on the fresh process so VmHWM is this phase's own.
  // Min-of-N timing with an untimed warmup iteration, as for the others.
  double stream_s = 1e300;
  uint64_t stream_records = 0;
  uint64_t spill_bytes = 0;
  bool stream_ok = true;
  for (int rep = -1; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto stats = GenerateTraceShardedToFile(profile, sharded_options, stream_path);
    if (!stats.ok()) {
      std::fprintf(stderr, "streaming generation failed: %s\n", stats.status().message().c_str());
      stream_ok = false;
      break;
    }
    if (rep >= 0) {
      stream_s = std::min(stream_s, SecondsSince(t0));
    }
    stream_records = stats.value().records_streamed;
    spill_bytes = stats.value().spill_bytes_written;
  }
  const long peak_rss_stream_kb = ReadPeakRssKb();

  // Phase 2 — in-memory sharded, with the peak counter re-armed.
  ResetPeakRss();
  double sharded_s = 1e300;
  size_t sharded_records = 0;
  std::string sharded_bytes;  // kept for the byte-identity gate below
  for (int rep = -1; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const GenerationResult sharded = GenerateTraceSharded(profile, sharded_options);
    if (rep >= 0) {
      sharded_s = std::min(sharded_s, SecondsSince(t0));
    }
    sharded_records = sharded.trace.size();
    if (rep == kReps - 1) {
      // The streamed file is format v3 (checksummed blocks + footer index);
      // save the in-memory trace with the same options for the identity gate.
      const std::string ref_path =
          (std::filesystem::temp_directory_path() / "bsdtrace-bench-ref.trc").string();
      if (SaveTrace(ref_path, sharded.trace, TraceWriterOptions{.version = 3}).ok()) {
        sharded_bytes = ReadFileBytes(ref_path);
      }
      std::remove(ref_path.c_str());
    }
  }
  const long peak_rss_inmem_kb = ReadPeakRssKb();

  // Phase 3 — serial reference (timing only).
  double serial_s = 1e300;
  size_t serial_records = 0;
  for (int rep = -1; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const GenerationResult serial = GenerateTrace(profile, options);
    if (rep >= 0) {
      serial_s = std::min(serial_s, SecondsSince(t0));
    }
    serial_records = serial.trace.size();
  }

  // Parity gates: shards = 1 must reproduce the serial trace byte for byte,
  // and the streamed v3 file must be byte-identical to saving the in-memory
  // sharded trace with the same v3 options (count-stamped header, checksummed
  // blocks, footer index).
  ShardedGeneratorOptions one_shard = sharded_options;
  one_shard.shard_count = 1;
  const bool shard1_identical =
      Serialize(GenerateTraceSharded(profile, one_shard).trace) ==
      Serialize(GenerateTrace(profile, options).trace);
  const bool stream_identical =
      stream_ok && !sharded_bytes.empty() && ReadFileBytes(stream_path) == sharded_bytes;
  std::remove(stream_path.c_str());

  const double speedup = sharded_s > 0 ? serial_s / sharded_s : 0;
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"micro_generate\",\"hours\":%.2f,\"records\":%zu,"
                "\"sharded_records\":%zu,\"stream_records\":%llu,\"shards\":%d,"
                "\"threads\":%d,\"hw_threads\":%d,"
                "\"serial_s\":%.4f,\"sharded_s\":%.4f,\"stream_s\":%.4f,\"speedup\":%.2f,"
                "\"spill_bytes\":%llu,\"peak_rss_stream_kb\":%ld,\"peak_rss_inmem_kb\":%ld,"
                "\"shard1_identical\":%s,\"stream_identical\":%s}",
                hours, serial_records, sharded_records,
                static_cast<unsigned long long>(stream_records), shards, threads, hw_threads,
                serial_s, sharded_s, stream_s, speedup,
                static_cast<unsigned long long>(spill_bytes), peak_rss_stream_kb,
                peak_rss_inmem_kb, shard1_identical ? "true" : "false",
                stream_identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_micro_generate.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!shard1_identical) {
    std::fprintf(stderr, "FAIL: shards=1 trace differs from the serial reference\n");
    return 1;
  }
  if (!stream_identical) {
    std::fprintf(stderr, "FAIL: streamed trace file differs from the in-memory result\n");
    return 1;
  }
  return 0;
}
