// Microbench for the sharded generation engine: times serial GenerateTrace
// against GenerateTraceSharded for the same profile/seed/duration, verifies
// the shards=1 path is byte-identical to the serial one, and emits one
// machine-readable JSON line plus a BENCH_micro_generate.json file.
//
// Defaults: the paper's Ucbarpa-class profile (A5) over 24 simulated hours,
// 8 shards, one worker thread per hardware thread.  Override with
// BSDTRACE_HOURS / BSDTRACE_SHARDS / BSDTRACE_THREADS.  The speedup is only
// meaningful on multi-core hardware, so `threads` and `hw_threads` are part
// of the JSON record.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "src/trace/trace_io.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string Serialize(const Trace& trace) {
  std::ostringstream out;
  WriteBinaryTrace(out, trace);
  return std::move(out).str();
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  double hours = 24.0;
  int shards = 8;
  int threads = 0;  // hardware concurrency
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  if (const char* env = std::getenv("BSDTRACE_SHARDS")) {
    shards = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_THREADS")) {
    threads = std::atoi(env);
  }
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());

  const MachineProfile profile = ProfileA5();
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  options.seed = 19851201;

  ShardedGeneratorOptions sharded_options;
  sharded_options.base = options;
  sharded_options.shard_count = shards;
  sharded_options.threads = threads;

  std::printf("bench_micro_generate: %s, %.2f simulated hours, %d shards, %d threads (hw %d)\n",
              profile.trace_name.c_str(), hours, shards, threads, hw_threads);

  // Min-of-N timing with an untimed warmup iteration.
  constexpr int kReps = 3;
  double serial_s = 1e300;
  double sharded_s = 1e300;
  size_t serial_records = 0;
  size_t sharded_records = 0;
  for (int rep = -1; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    const GenerationResult serial = GenerateTrace(profile, options);
    if (rep >= 0) {
      serial_s = std::min(serial_s, SecondsSince(t0));
    }
    serial_records = serial.trace.size();

    t0 = std::chrono::steady_clock::now();
    const GenerationResult sharded = GenerateTraceSharded(profile, sharded_options);
    if (rep >= 0) {
      sharded_s = std::min(sharded_s, SecondsSince(t0));
    }
    sharded_records = sharded.trace.size();
  }

  // Parity gate: shards = 1 must reproduce the serial trace byte for byte.
  ShardedGeneratorOptions one_shard = sharded_options;
  one_shard.shard_count = 1;
  const bool shard1_identical =
      Serialize(GenerateTraceSharded(profile, one_shard).trace) ==
      Serialize(GenerateTrace(profile, options).trace);

  const double speedup = sharded_s > 0 ? serial_s / sharded_s : 0;
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"micro_generate\",\"hours\":%.2f,\"records\":%zu,"
                "\"sharded_records\":%zu,\"shards\":%d,\"threads\":%d,\"hw_threads\":%d,"
                "\"serial_s\":%.4f,\"sharded_s\":%.4f,\"speedup\":%.2f,"
                "\"shard1_identical\":%s}",
                hours, serial_records, sharded_records, shards, threads, hw_threads, serial_s,
                sharded_s, speedup, shard1_identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_micro_generate.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!shard1_identical) {
    std::fprintf(stderr, "FAIL: shards=1 trace differs from the serial reference\n");
    return 1;
  }
  return 0;
}
