// Regenerates Table V (sequentiality of access).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Table V — sequentiality", "Table V (§5.2)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderTable5(traces.Named()).c_str());
  std::printf(
      "Paper bands: whole-file reads 63-70%% of read-only accesses, whole-file\n"
      "writes 81-85%%, ~50%% of bytes in whole-file transfers, >90%% of accesses\n"
      "sequential, read-write accesses mostly non-sequential (19-35%%).\n");
  return 0;
}
