// Extension: file popularity.  Quantifies the access concentration implied by
// Fig. 2's note that a few large administrative files draw ~20% of accesses —
// the skew that makes shared-block caching effective.

#include <cstdio>

#include "bench/common.h"
#include "src/analysis/popularity.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("extension — file popularity", "Fig. 2 discussion (§5.2)");
  const BenchTraces traces = GenerateAllTraces();

  TextTable table({"Measure", "A5", "E3", "C4"});
  const PopularityStats stats[3] = {AnalyzePopularity(traces.a5.trace),
                                    AnalyzePopularity(traces.e3.trace),
                                    AnalyzePopularity(traces.c4.trace)};
  auto row = [&](const std::string& label, auto&& fn) {
    table.AddRow({label, fn(stats[0]), fn(stats[1]), fn(stats[2])});
  };
  row("Distinct files accessed",
      [](const PopularityStats& s) { return Cell(static_cast<int64_t>(s.distinct_files)); });
  row("Total accesses (opens + execs)",
      [](const PopularityStats& s) { return Cell(static_cast<int64_t>(s.total_accesses)); });
  row("Top 10 files' share of accesses",
      [](const PopularityStats& s) { return FormatPercent(s.TopAccessShare(10), 0); });
  row("Top 100 files' share of accesses",
      [](const PopularityStats& s) { return FormatPercent(s.TopAccessShare(100), 0); });
  row("Top 10 files' share of bytes",
      [](const PopularityStats& s) { return FormatPercent(s.TopByteShare(10), 0); });
  row("Files covering 50% of accesses",
      [](const PopularityStats& s) { return Cell(static_cast<int64_t>(s.FilesForAccessFraction(0.5))); });
  row("Files covering 90% of accesses",
      [](const PopularityStats& s) { return Cell(static_cast<int64_t>(s.FilesForAccessFraction(0.9))); });
  std::printf("%s\n", table.Render("Access concentration across the three traces.").c_str());
  std::printf("A small core of shared files (status tables, configuration, administrative\n"
              "databases, popular programs) dominates accesses — the locality behind the\n"
              "cache results of §6.\n");
  return 0;
}
