// Ablation: transfer-time billing bound (paper §3.1).  The no-read-write
// tracer only bounds when each run's bytes moved; the paper bills at the
// next close/seek.  Billing at the earlier bound brackets the effect of the
// timing imprecision on cache results — Thompson [13] estimated exact times
// would lower miss ratios by 2-3%.

#include <cstdio>

#include "bench/common.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("ablation — run billing time", "§3.1 timing imprecision / [13]");
  const GenerationResult a5 = GenerateA5();
  // Billing moves the transfer timestamps, so the two bounds need two replay
  // logs — but still only two reconstructions for the whole size sweep.
  const ReplayLog upper_log = ReplayLog::Build(a5.trace, BillingPolicy::kAtNextEvent);
  const ReplayLog lower_log = ReplayLog::Build(a5.trace, BillingPolicy::kAtPreviousEvent);

  TextTable table({"Cache Size", "Billed at next event (paper)", "Billed at previous event",
                   "Delta"});
  const uint64_t kMb = 1ull << 20;
  for (uint64_t size : {390ull * 1024, 1ull * kMb, 4ull * kMb, 16ull * kMb}) {
    CacheConfig c;
    c.size_bytes = size;
    c.policy = WritePolicy::kFlushBack;
    c.flush_interval = Duration::Seconds(30);
    const double upper = SimulateCache(upper_log, c).MissRatio();
    const double lower = SimulateCache(lower_log, c).MissRatio();
    table.AddRow({FormatBytes(static_cast<double>(size)), FormatPercent(upper),
                  FormatPercent(lower), FormatPercent(upper - lower)});
  }
  std::printf("%s\n", table.Render("Miss ratio under the two billing bounds (30 s flush-back, "
                                   "4 KB blocks, A5 trace).").c_str());
  std::printf("The tracer's time bounds barely move cache results (paper: a few percent at\n"
              "most), validating the no-read-write design.\n");
  return 0;
}
