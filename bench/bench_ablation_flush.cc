// Ablation: flush-back interval continuum (§6.2).  Write-through is the
// 0-second limit and delayed-write the infinite limit; the sweep shows how
// quickly intermediate intervals harvest the short write lifetimes of Fig. 4.

#include <cstdio>

#include "bench/common.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("ablation — flush-back interval sweep", "§6.2 write policies");
  const GenerationResult a5 = GenerateA5();
  // Reconstruct once; every interval point replays the shared log.
  const ReplayLog log = ReplayLog::Build(a5.trace);

  CacheConfig c;
  c.size_bytes = 4u << 20;
  TextTable table({"Policy", "Disk writes", "Miss ratio"});
  c.policy = WritePolicy::kWriteThrough;
  CacheMetrics wt = SimulateCache(log, c);
  table.AddRow({"write-through", Cell(static_cast<int64_t>(wt.disk_writes)),
                FormatPercent(wt.MissRatio())});
  for (double seconds : {5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0}) {
    c.policy = WritePolicy::kFlushBack;
    c.flush_interval = Duration::Seconds(seconds);
    const CacheMetrics m = SimulateCache(log, c);
    table.AddRow({"flush-back " + Duration::Seconds(seconds).ToString(),
                  Cell(static_cast<int64_t>(m.disk_writes)), FormatPercent(m.MissRatio())});
  }
  c.policy = WritePolicy::kDelayedWrite;
  const CacheMetrics dw = SimulateCache(log, c);
  table.AddRow({"delayed-write", Cell(static_cast<int64_t>(dw.disk_writes)),
                FormatPercent(dw.MissRatio())});
  std::printf("%s\n", table.Render("Flush interval continuum (4 MB cache, 4 KB blocks, A5 "
                                   "trace).").c_str());
  std::printf("Disk writes fall monotonically with the interval: each extra second lets\n"
              "more newly-written blocks die in the cache (Fig. 4's lifetime CDF).\n");
  return 0;
}
