// Regenerates Figure 5 / Table VI (cache miss ratio vs. cache size and write
// policy, 4 KB blocks, A5 trace) plus the §6.2 write-lifetime sidebar, via
// the planned sweep engine: one Mattson stack-distance pass for the whole
// size axis plus one fused replay per cache size, timed against the replayed
// engine (one simulator run per config and per dense curve size).  The JSON
// line carries `parity` (bit-identity of every overlapping cell — hard gate)
// and `speedup` (gated at 3x, the ISSUE target for the default A5 sweep).

#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 5 / Table VI — cache size and write policy", "Fig. 5, Table VI (§6.2)");
  const GenerationResult a5 = GenerateA5();
  std::vector<SweepPoint> points;
  std::vector<SweepCurve> curves;
  const int rc =
      RunPlannedEngineBench("fig5_table6_cache", a5.trace, Fig5Configs(), 3.0, &points, &curves);
  std::printf("%s\n", RenderFigure5Table6(points).c_str());
  std::printf("%s\n", RenderWriteLifetimeSidebar(points).c_str());
  std::printf("%s\n", RenderMissRatioCurves(curves).c_str());
  MaybeExportSweep("fig5_table6", points);
  MaybeExportCurves("fig5_curves", curves);
  return rc;
}
