// Regenerates Figure 5 / Table VI (cache miss ratio vs. cache size and write
// policy, 4 KB blocks, A5 trace) plus the §6.2 write-lifetime sidebar.

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 5 / Table VI — cache size and write policy", "Fig. 5, Table VI (§6.2)");
  const GenerationResult a5 = GenerateA5();
  const auto points = RunCacheSweep(a5.trace, Fig5Configs());
  std::printf("%s\n", RenderFigure5Table6(points).c_str());
  std::printf("%s\n", RenderWriteLifetimeSidebar(points).c_str());
  MaybeExportSweep("fig5_table6", points);
  return 0;
}
