// Regenerates Figure 1 (sequential run length CDFs, by runs and by bytes).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 1 — sequential run lengths", "Figure 1 (§5.2)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderFigure1(traces.Named()).c_str());
  std::printf(
      "Paper bands: 70-75%% of runs under 4 KB (jumps at 1 KB and 4 KB from\n"
      "user-level I/O buffer sizes); ~30%% of bytes moved in runs of 25 KB+.\n");
  MaybeExportFigures(traces);
  return 0;
}
