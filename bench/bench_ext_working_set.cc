// Extension: working-set sizes (Denning).  How much distinct file data the
// machine touches within a window — the quantity §6.4's "total working set
// of file information" argument turns on, and the natural yardstick for the
// cache sizes of Figure 5.

#include <cstdio>

#include "bench/common.h"
#include "src/analysis/working_set.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("extension — working-set sizes", "§6.4 working-set argument");
  const GenerationResult a5 = GenerateA5();

  const std::vector<Duration> windows = {Duration::Seconds(10), Duration::Minutes(1),
                                         Duration::Minutes(10), Duration::Hours(1),
                                         Duration::Hours(6)};
  const WorkingSetStats stats = AnalyzeWorkingSets(a5.trace, windows, 4096);

  TextTable table({"Window", "Avg working set", "Peak working set"});
  for (const WorkingSetPoint& p : stats.points) {
    table.AddRow({p.window.ToString(), FormatBytes(p.average_blocks * 4096),
                  FormatBytes(static_cast<double>(p.peak_blocks) * 4096)});
  }
  std::printf("%s\n", table.Render("File-data working sets (4 KB blocks, A5 trace).").c_str());
  std::printf("Reading the table against Figure 5: a cache comparable to the 10-minute\n"
              "working set already captures most reuse, which is why miss ratios flatten\n"
              "in the multi-megabyte range.\n");
  return 0;
}
