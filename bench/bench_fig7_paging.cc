// Regenerates Figure 7 (miss ratios with program page-in approximated by a
// whole-file read at each execve, A5 trace) via the planned sweep engine:
// one Mattson pass per page-in setting covers its whole size axis.  The
// JSON line carries `parity` (bit-identity gate) and `speedup` (reported).

#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 7 — simulated program page-in", "Fig. 7 (§6.4)");
  const GenerationResult a5 = GenerateA5();
  std::vector<SweepPoint> points;
  std::vector<SweepCurve> curves;
  const int rc =
      RunPlannedEngineBench("fig7_paging", a5.trace, Fig7Configs(), 0.0, &points, &curves);
  std::printf("%s\n", RenderFigure7(points).c_str());
  std::printf("%s\n", RenderMissRatioCurves(curves).c_str());
  MaybeExportSweep("fig7_paging", points);
  MaybeExportCurves("fig7_curves", curves);
  return rc;
}
