// Regenerates Figure 7 (miss ratios with program page-in approximated by a
// whole-file read at each execve, A5 trace).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 7 — simulated program page-in", "Fig. 7 (§6.4)");
  const GenerationResult a5 = GenerateA5();
  const auto points = RunCacheSweep(a5.trace, Fig7Configs());
  std::printf("%s\n", RenderFigure7(points).c_str());
  MaybeExportSweep("fig7_paging", points);
  return 0;
}
