// Scale bench for the fleet engine: streams a population-scaled fleet trace
// (default: a single 1000-user A5 machine over 6 simulated hours) to a v3
// file, then analyzes it in parallel and gates on the Table I per-user
// activity bands — the end-to-end recipe a multi-machine scale run uses.
// Emits one machine-readable JSON line plus a BENCH_fleet_generate.json
// file, including the peak RSS of the generate and analyze phases (the
// streaming engine's memory must not grow with the population).
//
// Overrides: BSDTRACE_FLEET (spec, e.g. "4xA5+2xE3+2xC4"), BSDTRACE_USERS
// (per-machine population, 0 = calibrated), BSDTRACE_HOURS, BSDTRACE_SHARDS
// (per machine), BSDTRACE_THREADS.
//
// RSS methodology as in bench_micro_generate: the generate phase runs first
// on the fresh process; before the analyze phase VmHWM is re-armed via
// malloc_trim(0) + /proc/self/clear_refs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/analysis/parallel_analyzer.h"
#include "src/analysis/per_user_activity.h"
#include "src/trace/trace_source.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Peak resident set (VmHWM) in kB, or -1 where /proc is unavailable.
long ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  long kb = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void ResetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  std::string spec = "A5";
  int users = 1000;
  double hours = 6.0;
  int shards = 8;
  int threads = 0;  // hardware concurrency
  if (const char* env = std::getenv("BSDTRACE_FLEET")) {
    spec = env;
  }
  if (const char* env = std::getenv("BSDTRACE_USERS")) {
    users = std::max(0, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  if (const char* env = std::getenv("BSDTRACE_SHARDS")) {
    shards = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_THREADS")) {
    threads = std::atoi(env);
  }
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());

  auto fleet = ParseFleetSpec(spec, users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "bad fleet spec: %s\n", fleet.status().message().c_str());
    return 1;
  }
  FleetGeneratorOptions options;
  options.base.duration = Duration::Hours(hours);
  options.base.seed = 19851201;
  options.shards_per_machine = shards;
  options.threads = threads;

  std::printf(
      "bench_fleet_generate: fleet %s, %d users/machine, %.2f simulated hours, "
      "%d shards/machine, %d threads (hw %d)\n",
      fleet.value().spec.c_str(), users, hours, shards, threads, hw_threads);

  const std::string path =
      (std::filesystem::temp_directory_path() / "bsdtrace-bench-fleet.trc").string();

  // Phase 1 — streaming fleet generation, on the fresh process.
  const auto gen_t0 = std::chrono::steady_clock::now();
  auto stats = GenerateFleetToFile(fleet.value(), options, path);
  const double generate_s = SecondsSince(gen_t0);
  if (!stats.ok()) {
    std::fprintf(stderr, "fleet generation failed: %s\n", stats.status().message().c_str());
    return 1;
  }
  const long peak_rss_generate_kb = ReadPeakRssKb();

  // Phase 2 — parallel analysis + Table I band gate, peak counter re-armed.
  ResetPeakRss();
  const auto an_t0 = std::chrono::steady_clock::now();
  auto analysis = ParallelAnalyzeTrace(path, threads > 0 ? static_cast<unsigned>(threads)
                                                         : std::thread::hardware_concurrency());
  const double analyze_s = SecondsSince(an_t0);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.status().message().c_str());
    std::remove(path.c_str());
    return 1;
  }
  const long peak_rss_analyze_kb = ReadPeakRssKb();

  TraceFileSource header_source(path);
  std::vector<ActivityBandCheck> checks;
  if (header_source.status().ok()) {
    checks = CheckActivityBands(header_source.header(), analysis.value().per_user);
  }
  bool bands_ok = !checks.empty();
  double min_rate = 0.0, max_rate = 0.0;
  for (const ActivityBandCheck& c : checks) {
    std::printf("  instance %zu %-3s %5d users  %8.1f records/user/day  %s\n", c.instance,
                c.trace_name.c_str(), c.user_population, c.records_per_user_day,
                c.ok ? "ok" : "FAIL");
    bands_ok = bands_ok && c.ok;
    min_rate = min_rate == 0.0 ? c.records_per_user_day : std::min(min_rate, c.records_per_user_day);
    max_rate = std::max(max_rate, c.records_per_user_day);
  }
  std::remove(path.c_str());

  const ShardedStreamStats& s = stats.value();
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"fleet_generate\",\"fleet\":\"%s\",\"machines\":%zu,"
                "\"users_per_machine\":%d,\"hours\":%.2f,\"shards\":%d,\"threads\":%d,"
                "\"hw_threads\":%d,\"records\":%llu,\"spill_bytes\":%llu,"
                "\"generate_s\":%.3f,\"analyze_s\":%.3f,"
                "\"peak_rss_generate_kb\":%ld,\"peak_rss_analyze_kb\":%ld,"
                "\"min_records_per_user_day\":%.1f,\"max_records_per_user_day\":%.1f,"
                "\"bands_ok\":%s}",
                fleet.value().spec.c_str(), fleet.value().machines.size(), users, hours,
                shards, threads, hw_threads,
                static_cast<unsigned long long>(s.records_streamed),
                static_cast<unsigned long long>(s.spill_bytes_written), generate_s,
                analyze_s, peak_rss_generate_kb, peak_rss_analyze_kb, min_rate, max_rate,
                bands_ok ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_fleet_generate.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  if (!bands_ok) {
    std::fprintf(stderr, "FAIL: Table I per-user activity bands violated\n");
    return 1;
  }
  return 0;
}
