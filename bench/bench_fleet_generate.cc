// Scale bench for the fleet engine: streams a population-scaled fleet trace
// (default: 2x 500-user A5 machines over 6 simulated hours) to a v3 file and
// to a compressed v4 file, re-runs the v4 generation in bounded-memory waves,
// then analyzes the v4 file in parallel and gates on the Table I per-user
// activity bands — the end-to-end recipe a million-user scale run uses.
// Emits one machine-readable JSON line plus a BENCH_fleet_generate.json
// file, including the peak RSS of the generate and analyze phases (the
// streaming engine's memory must not grow with the population).
//
// Hard gates (non-zero exit):
//   * --compress=lz must cut bytes/record by >= 3x vs the v3 bytes;
//   * the waved v4 file must be byte-identical to the single-wave v4 file;
//   * the Table I activity bands must hold for every instance.
//
// Overrides: BSDTRACE_FLEET (spec, e.g. "4xA5+2xE3+2xC4"), BSDTRACE_USERS
// (per-machine population, 0 = calibrated), BSDTRACE_HOURS, BSDTRACE_SHARDS
// (per machine), BSDTRACE_THREADS.
//
// RSS methodology as in bench_micro_generate: the generate phase runs first
// on the fresh process; before the analyze phase VmHWM is re-armed via
// malloc_trim(0) + /proc/self/clear_refs.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/analysis/parallel_analyzer.h"
#include "src/analysis/per_user_activity.h"
#include "src/trace/trace_source.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Peak resident set (VmHWM) in kB, or -1 where /proc is unavailable.
long ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  long kb = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void ResetPeakRss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

bool FilesIdentical(const std::string& a, const std::string& b) {
  std::FILE* fa = std::fopen(a.c_str(), "rb");
  std::FILE* fb = std::fopen(b.c_str(), "rb");
  bool same = fa != nullptr && fb != nullptr;
  while (same) {
    char buf_a[1 << 16], buf_b[1 << 16];
    const size_t na = std::fread(buf_a, 1, sizeof(buf_a), fa);
    const size_t nb = std::fread(buf_b, 1, sizeof(buf_b), fb);
    same = na == nb && std::memcmp(buf_a, buf_b, na) == 0;
    if (na < sizeof(buf_a)) {
      break;
    }
  }
  if (fa != nullptr) std::fclose(fa);
  if (fb != nullptr) std::fclose(fb);
  return same;
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  std::string spec = "2xA5";
  int users = 500;
  double hours = 6.0;
  int shards = 8;
  int threads = 0;  // hardware concurrency
  if (const char* env = std::getenv("BSDTRACE_FLEET")) {
    spec = env;
  }
  if (const char* env = std::getenv("BSDTRACE_USERS")) {
    users = std::max(0, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  if (const char* env = std::getenv("BSDTRACE_SHARDS")) {
    shards = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_THREADS")) {
    threads = std::atoi(env);
  }
  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());

  auto fleet = ParseFleetSpec(spec, users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "bad fleet spec: %s\n", fleet.status().message().c_str());
    return 1;
  }
  FleetGeneratorOptions options;
  options.base.duration = Duration::Hours(hours);
  options.base.seed = 19851201;
  options.shards_per_machine = shards;
  options.threads = threads;

  std::printf(
      "bench_fleet_generate: fleet %s, %d users/machine, %.2f simulated hours, "
      "%d shards/machine, %d threads (hw %d)\n",
      fleet.value().spec.c_str(), users, hours, shards, threads, hw_threads);

  const std::string base =
      (std::filesystem::temp_directory_path() / "bsdtrace-bench-fleet").string();
  const std::string path_v3 = base + "-v3.trc";
  const std::string path = base + "-v4.trc";
  const std::string path_waved = base + "-v4-waved.trc";

  // Phase 1 — streaming fleet generation to v3 bytes, on the fresh process.
  const auto gen_t0 = std::chrono::steady_clock::now();
  auto stats = GenerateFleetToFile(fleet.value(), options, path_v3);
  const double generate_s = SecondsSince(gen_t0);
  if (!stats.ok()) {
    std::fprintf(stderr, "fleet generation failed: %s\n", stats.status().message().c_str());
    return 1;
  }
  const long peak_rss_generate_kb = ReadPeakRssKb();

  // Phase 2 — the same fleet as compressed v4, single wave.
  options.file_options.version = 4;
  const auto gen4_t0 = std::chrono::steady_clock::now();
  auto stats_v4 = GenerateFleetToFile(fleet.value(), options, path);
  const double generate_v4_s = SecondsSince(gen4_t0);
  if (!stats_v4.ok()) {
    std::fprintf(stderr, "v4 generation failed: %s\n", stats_v4.status().message().c_str());
    return 1;
  }

  // Phase 3 — v4 again in bounded-memory waves (one instance per wave),
  // which must reproduce the single-wave file byte for byte.
  options.wave_users = 1;
  auto stats_waved = GenerateFleetToFile(fleet.value(), options, path_waved);
  if (!stats_waved.ok()) {
    std::fprintf(stderr, "waved generation failed: %s\n",
                 stats_waved.status().message().c_str());
    return 1;
  }
  const bool wave_identical = FilesIdentical(path, path_waved);
  std::remove(path_waved.c_str());

  const auto v3_bytes = static_cast<uint64_t>(std::filesystem::file_size(path_v3));
  const auto v4_bytes = static_cast<uint64_t>(std::filesystem::file_size(path));
  std::remove(path_v3.c_str());
  const uint64_t records = stats.value().records_streamed;
  const double bpr_v3 = records > 0 ? static_cast<double>(v3_bytes) / records : 0.0;
  const double bpr_v4 = records > 0 ? static_cast<double>(v4_bytes) / records : 0.0;
  const double ratio = v4_bytes > 0 ? static_cast<double>(v3_bytes) / v4_bytes : 0.0;
  std::printf("  v3 %llu bytes (%.2f B/record), v4+lz %llu bytes (%.2f B/record): %.2fx; "
              "%llu wave(s), wave bytes identical: %s\n",
              static_cast<unsigned long long>(v3_bytes), bpr_v3,
              static_cast<unsigned long long>(v4_bytes), bpr_v4, ratio,
              static_cast<unsigned long long>(stats_waved.value().waves),
              wave_identical ? "yes" : "NO");

  // Phase 4 — parallel analysis of the compressed file + Table I band gate,
  // peak counter re-armed.
  ResetPeakRss();
  const auto an_t0 = std::chrono::steady_clock::now();
  AnalyzeOptions analyze_options;
  analyze_options.path = path;
  analyze_options.threads =
      threads > 0 ? static_cast<unsigned>(threads) : std::thread::hardware_concurrency();
  auto analysis = Analyze(analyze_options);
  const double analyze_s = SecondsSince(an_t0);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", analysis.status().message().c_str());
    std::remove(path.c_str());
    return 1;
  }
  const long peak_rss_analyze_kb = ReadPeakRssKb();

  TraceFileSource header_source(path);
  std::vector<ActivityBandCheck> checks;
  if (header_source.status().ok()) {
    checks = CheckActivityBands(header_source.header(), analysis.value().per_user);
  }
  bool bands_ok = !checks.empty();
  double min_rate = 0.0, max_rate = 0.0;
  for (const ActivityBandCheck& c : checks) {
    std::printf("  instance %zu %-3s %5d users  %8.1f records/user/day  %s\n", c.instance,
                c.trace_name.c_str(), c.user_population, c.records_per_user_day,
                c.ok ? "ok" : "FAIL");
    bands_ok = bands_ok && c.ok;
    min_rate = min_rate == 0.0 ? c.records_per_user_day : std::min(min_rate, c.records_per_user_day);
    max_rate = std::max(max_rate, c.records_per_user_day);
  }
  std::remove(path.c_str());

  const ShardedStreamStats& s = stats.value();
  const bool ratio_ok = ratio >= 3.0;
  char json[1536];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"fleet_generate\",\"fleet\":\"%s\",\"machines\":%zu,"
                "\"users_per_machine\":%d,\"hours\":%.2f,\"shards\":%d,\"threads\":%d,"
                "\"hw_threads\":%d,\"records\":%llu,\"spill_bytes\":%llu,"
                "\"v3_bytes\":%llu,\"v4_bytes\":%llu,"
                "\"bytes_per_record_v3\":%.2f,\"bytes_per_record_v4\":%.2f,"
                "\"compression_ratio\":%.2f,\"waves\":%llu,\"wave_identical\":%s,"
                "\"generate_s\":%.3f,\"generate_v4_s\":%.3f,\"analyze_s\":%.3f,"
                "\"peak_rss_generate_kb\":%ld,\"peak_rss_analyze_kb\":%ld,"
                "\"min_records_per_user_day\":%.1f,\"max_records_per_user_day\":%.1f,"
                "\"bands_ok\":%s}",
                fleet.value().spec.c_str(), fleet.value().machines.size(), users, hours,
                shards, threads, hw_threads,
                static_cast<unsigned long long>(s.records_streamed),
                static_cast<unsigned long long>(s.spill_bytes_written),
                static_cast<unsigned long long>(v3_bytes),
                static_cast<unsigned long long>(v4_bytes), bpr_v3, bpr_v4, ratio,
                static_cast<unsigned long long>(stats_waved.value().waves),
                wave_identical ? "true" : "false", generate_s, generate_v4_s,
                analyze_s, peak_rss_generate_kb, peak_rss_analyze_kb, min_rate, max_rate,
                bands_ok ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_fleet_generate.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  bool failed = false;
  if (!ratio_ok) {
    std::fprintf(stderr, "FAIL: v4 --compress=lz ratio %.2fx below the 3x gate\n", ratio);
    failed = true;
  }
  if (!wave_identical) {
    std::fprintf(stderr, "FAIL: waved v4 output differs from the single-wave bytes\n");
    failed = true;
  }
  if (!bands_ok) {
    std::fprintf(stderr, "FAIL: Table I per-user activity bands violated\n");
    failed = true;
  }
  return failed ? 1 : 0;
}
