#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

namespace bsdtrace {

void PrintBanner(const std::string& what, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("bsdtrace bench: %s\n", what.c_str());
  std::printf("reproduces: %s of Ousterhout et al., SOSP 1985\n", paper_ref.c_str());
  std::printf("synthetic traces, %.1f simulated hours each (set BSDTRACE_HOURS to change)\n",
              StandardDuration().hours());
  std::printf("================================================================\n\n");
}

BenchTraces GenerateAllTraces() {
  BenchTraces t;
  t.a5 = GenerateStandardTrace("A5");
  t.e3 = GenerateStandardTrace("E3");
  t.c4 = GenerateStandardTrace("C4");
  std::printf("generated %zu (A5) / %zu (E3) / %zu (C4) trace records\n\n",
              t.a5.trace.size(), t.e3.trace.size(), t.c4.trace.size());
  t.a5_analysis = AnalyzeTrace(t.a5.trace);
  t.e3_analysis = AnalyzeTrace(t.e3.trace);
  t.c4_analysis = AnalyzeTrace(t.c4.trace);
  return t;
}

void MaybeExportFigures(const BenchTraces& traces) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const Status st = ExportFigureCsvs(dir, traces.Named());
  if (st.ok()) {
    std::printf("exported figure CSVs to %s\n", dir);
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

void MaybeExportSweep(const std::string& name, const std::vector<SweepPoint>& points) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status st = ExportSweepCsv(path, points);
  if (st.ok()) {
    std::printf("exported %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

GenerationResult GenerateA5() {
  GenerationResult r = GenerateStandardTrace("A5");
  std::printf("generated %zu A5 trace records\n\n", r.trace.size());
  return r;
}

}  // namespace bsdtrace
