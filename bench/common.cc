#include "bench/common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/trace/trace_io.h"

namespace bsdtrace {
namespace {

// Resolves the BSDTRACE_TRACE_FILE template for one standard trace: a
// "{name}" placeholder is replaced by the trace name; without one, ".<name>"
// is appended so the three standard traces never collide in one file.
std::string ResolveTracePath(const std::string& tmpl, const std::string& name) {
  static constexpr char kPlaceholder[] = "{name}";
  std::string path = tmpl;
  const size_t pos = path.find(kPlaceholder);
  if (pos != std::string::npos) {
    path.replace(pos, sizeof(kPlaceholder) - 1, name);
  } else {
    path += "." + name;
  }
  return path;
}

// The bench front door for standard traces.  Without BSDTRACE_TRACE_FILE it
// generates in memory as before.  With it, the resolved file is loaded when
// present (skipping generation entirely — the §5/§6 benches only consume the
// records); otherwise the trace is generated once and saved there, so the
// next run loads it.  Note a loaded result carries records only: kernel
// counters / fsck are left zero, which no table or figure bench reads.
GenerationResult LoadOrGenerateStandardTrace(const std::string& name) {
  const char* tmpl = std::getenv("BSDTRACE_TRACE_FILE");
  if (tmpl == nullptr) {
    return GenerateStandardTrace(name);
  }
  const std::string path = ResolveTracePath(tmpl, name);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    StatusOr<Trace> loaded = LoadTrace(path);
    if (loaded.ok()) {
      std::printf("loaded %s trace from %s (%zu records)\n", name.c_str(), path.c_str(),
                  loaded.value().size());
      GenerationResult result;
      result.trace = std::move(loaded).value();
      return result;
    }
    std::fprintf(stderr, "cannot load %s (%s); regenerating\n", path.c_str(),
                 loaded.status().message().c_str());
  }
  GenerationResult result = GenerateStandardTrace(name);
  if (const Status st = SaveTrace(path, result.trace); st.ok()) {
    std::printf("saved %s trace to %s\n", name.c_str(), path.c_str());
  } else {
    std::fprintf(stderr, "cannot save %s: %s\n", path.c_str(), st.message().c_str());
  }
  return result;
}

}  // namespace

void PrintBanner(const std::string& what, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("bsdtrace bench: %s\n", what.c_str());
  std::printf("reproduces: %s of Ousterhout et al., SOSP 1985\n", paper_ref.c_str());
  std::printf("synthetic traces, %.1f simulated hours each (set BSDTRACE_HOURS to change)\n",
              StandardDuration().hours());
  std::printf("================================================================\n\n");
}

BenchTraces GenerateAllTraces() {
  BenchTraces t;
  t.a5 = LoadOrGenerateStandardTrace("A5");
  t.e3 = LoadOrGenerateStandardTrace("E3");
  t.c4 = LoadOrGenerateStandardTrace("C4");
  std::printf("generated %zu (A5) / %zu (E3) / %zu (C4) trace records\n\n",
              t.a5.trace.size(), t.e3.trace.size(), t.c4.trace.size());
  auto analyze = [](const Trace& trace) {
    AnalyzeOptions options;
    options.trace = &trace;
    return Analyze(options).value();
  };
  t.a5_analysis = analyze(t.a5.trace);
  t.e3_analysis = analyze(t.e3.trace);
  t.c4_analysis = analyze(t.c4.trace);
  return t;
}

void MaybeExportFigures(const BenchTraces& traces) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const Status st = ExportFigureCsvs(dir, traces.Named());
  if (st.ok()) {
    std::printf("exported figure CSVs to %s\n", dir);
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

void MaybeExportSweep(const std::string& name, const std::vector<SweepPoint>& points) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status st = ExportSweepCsv(path, points);
  if (st.ok()) {
    std::printf("exported %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

void MaybeExportHierarchy(const std::string& name, const std::vector<HierarchyPoint>& points) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status st = ExportHierarchyCsv(path, points);
  if (st.ok()) {
    std::printf("exported %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

GenerationResult GenerateA5() {
  GenerationResult r = LoadOrGenerateStandardTrace("A5");
  std::printf("generated %zu A5 trace records\n\n", r.trace.size());
  return r;
}

void MaybeExportCurves(const std::string& name, const std::vector<SweepCurve>& curves) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status st = ExportCurveCsv(path, curves);
  if (st.ok()) {
    std::printf("exported %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool MetricsEqual(const CacheMetrics& a, const CacheMetrics& b) {
  return a.logical_accesses == b.logical_accesses && a.read_accesses == b.read_accesses &&
         a.write_accesses == b.write_accesses && a.metadata_accesses == b.metadata_accesses &&
         a.disk_reads == b.disk_reads && a.disk_writes == b.disk_writes &&
         a.dirty_discarded == b.dirty_discarded && a.evictions == b.evictions &&
         a.residency_over_20min == b.residency_over_20min &&
         a.residency_samples == b.residency_samples &&
         a.residency_seconds.sum() == b.residency_seconds.sum() &&
         a.residency_seconds.variance() == b.residency_seconds.variance();
}

// The per-size replays the old engine needs to match the planner's output:
// the planner's Mattson pass yields the fetch-miss column at every curve
// size for free, so the replayed baseline must pay one delayed-write replay
// per (block size, page-in) family per curve size its configs do not cover.
std::vector<CacheConfig> CurveFillConfigs(const std::vector<CacheConfig>& configs) {
  std::map<std::pair<uint32_t, bool>, std::set<uint64_t>> family_sizes;
  for (const CacheConfig& c : configs) {
    if (c.replacement == ReplacementPolicy::kLru && !c.simulate_metadata) {
      family_sizes[{c.block_size, c.simulate_execve_pagein}].insert(c.size_bytes);
    }
  }
  std::vector<CacheConfig> extra;
  for (const auto& [key, sizes] : family_sizes) {
    for (const uint64_t size : SweepCurveSizes()) {
      if (sizes.count(size) > 0) {
        continue;
      }
      CacheConfig c;
      c.size_bytes = size;
      c.block_size = key.first;
      c.policy = WritePolicy::kDelayedWrite;
      c.simulate_execve_pagein = key.second;
      extra.push_back(c);
    }
  }
  return extra;
}

}  // namespace

int RunPlannedEngineBench(const std::string& name, const Trace& trace,
                          const std::vector<CacheConfig>& configs, double min_speedup,
                          std::vector<SweepPoint>* points_out,
                          std::vector<SweepCurve>* curves_out) {
  const ReplayLog log = ReplayLog::Build(trace);
  const std::vector<CacheConfig> extra = CurveFillConfigs(configs);
  std::vector<CacheConfig> replay_configs = configs;
  replay_configs.insert(replay_configs.end(), extra.begin(), extra.end());

  // Min-of-N timing; the first iteration doubles as the warmup (the min
  // discards its cold caches).  Both engines share the prebuilt log and run
  // single-threaded, so the ratio is the algorithmic change alone.
  constexpr int kReps = 3;
  double replayed_s = 1e300;
  double planned_s = 1e300;
  std::vector<SweepPoint> replayed;
  PlannedSweep planned;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    replayed = RunCacheSweep(log, replay_configs, /*threads=*/1);
    replayed_s = std::min(replayed_s, SecondsSince(t0));
    t0 = std::chrono::steady_clock::now();
    planned = RunPlannedSweep(log, configs, {}, /*threads=*/1);
    planned_s = std::min(planned_s, SecondsSince(t0));
  }

  // Bit-level parity: the planner's own cross-check, every per-config point,
  // and every dense curve sample against its covering replay.
  bool parity = planned.parity && planned.points.size() == configs.size() &&
                replayed.size() == replay_configs.size();
  for (size_t i = 0; parity && i < configs.size(); ++i) {
    parity = MetricsEqual(planned.points[i].metrics, replayed[i].metrics);
  }
  for (size_t e = 0; parity && e < extra.size(); ++e) {
    const CacheConfig& c = extra[e];
    const SweepCurve* curve = nullptr;
    for (const SweepCurve& candidate : planned.curves) {
      if (candidate.block_size == c.block_size &&
          candidate.simulate_execve_pagein == c.simulate_execve_pagein) {
        curve = &candidate;
      }
    }
    parity = curve != nullptr;
    if (!parity) {
      break;
    }
    const auto it = std::find(curve->size_bytes.begin(), curve->size_bytes.end(), c.size_bytes);
    parity = it != curve->size_bytes.end() &&
             curve->fetch_misses[static_cast<size_t>(it - curve->size_bytes.begin())] ==
                 replayed[configs.size() + e].metrics.disk_reads;
  }

  const double speedup = planned_s > 0 ? replayed_s / planned_s : 0;
  char json[640];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"%s\",\"records\":%zu,\"hours\":%.2f,\"configs\":%zu,"
                "\"curve_fill_configs\":%zu,\"stack_passes\":%zu,\"fused_replays\":%zu,"
                "\"replay_fallbacks\":%zu,\"replayed_sweep_s\":%.4f,\"planned_sweep_s\":%.4f,"
                "\"speedup\":%.2f,\"min_speedup\":%.2f,\"parity\":%s}",
                name.c_str(), trace.size(), StandardDuration().hours(), configs.size(),
                extra.size(), planned.stack_passes, planned.fused_replays,
                planned.replay_fallbacks, replayed_s, planned_s, speedup, min_speedup,
                parity ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen(("BENCH_" + name + ".json").c_str(), "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }

  if (points_out != nullptr) {
    *points_out = std::move(planned.points);
  }
  if (curves_out != nullptr) {
    *curves_out = std::move(planned.curves);
  }
  if (!parity) {
    std::fprintf(stderr, "FAIL: planned-sweep metrics diverge from the replayed engine\n");
    return 1;
  }
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.2fx gate\n", speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace bsdtrace
