#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "src/trace/trace_io.h"

namespace bsdtrace {
namespace {

// Resolves the BSDTRACE_TRACE_FILE template for one standard trace: a
// "{name}" placeholder is replaced by the trace name; without one, ".<name>"
// is appended so the three standard traces never collide in one file.
std::string ResolveTracePath(const std::string& tmpl, const std::string& name) {
  static constexpr char kPlaceholder[] = "{name}";
  std::string path = tmpl;
  const size_t pos = path.find(kPlaceholder);
  if (pos != std::string::npos) {
    path.replace(pos, sizeof(kPlaceholder) - 1, name);
  } else {
    path += "." + name;
  }
  return path;
}

// The bench front door for standard traces.  Without BSDTRACE_TRACE_FILE it
// generates in memory as before.  With it, the resolved file is loaded when
// present (skipping generation entirely — the §5/§6 benches only consume the
// records); otherwise the trace is generated once and saved there, so the
// next run loads it.  Note a loaded result carries records only: kernel
// counters / fsck are left zero, which no table or figure bench reads.
GenerationResult LoadOrGenerateStandardTrace(const std::string& name) {
  const char* tmpl = std::getenv("BSDTRACE_TRACE_FILE");
  if (tmpl == nullptr) {
    return GenerateStandardTrace(name);
  }
  const std::string path = ResolveTracePath(tmpl, name);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    StatusOr<Trace> loaded = LoadTrace(path);
    if (loaded.ok()) {
      std::printf("loaded %s trace from %s (%zu records)\n", name.c_str(), path.c_str(),
                  loaded.value().size());
      GenerationResult result;
      result.trace = std::move(loaded).value();
      return result;
    }
    std::fprintf(stderr, "cannot load %s (%s); regenerating\n", path.c_str(),
                 loaded.status().message().c_str());
  }
  GenerationResult result = GenerateStandardTrace(name);
  if (const Status st = SaveTrace(path, result.trace); st.ok()) {
    std::printf("saved %s trace to %s\n", name.c_str(), path.c_str());
  } else {
    std::fprintf(stderr, "cannot save %s: %s\n", path.c_str(), st.message().c_str());
  }
  return result;
}

}  // namespace

void PrintBanner(const std::string& what, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("bsdtrace bench: %s\n", what.c_str());
  std::printf("reproduces: %s of Ousterhout et al., SOSP 1985\n", paper_ref.c_str());
  std::printf("synthetic traces, %.1f simulated hours each (set BSDTRACE_HOURS to change)\n",
              StandardDuration().hours());
  std::printf("================================================================\n\n");
}

BenchTraces GenerateAllTraces() {
  BenchTraces t;
  t.a5 = LoadOrGenerateStandardTrace("A5");
  t.e3 = LoadOrGenerateStandardTrace("E3");
  t.c4 = LoadOrGenerateStandardTrace("C4");
  std::printf("generated %zu (A5) / %zu (E3) / %zu (C4) trace records\n\n",
              t.a5.trace.size(), t.e3.trace.size(), t.c4.trace.size());
  t.a5_analysis = AnalyzeTrace(t.a5.trace);
  t.e3_analysis = AnalyzeTrace(t.e3.trace);
  t.c4_analysis = AnalyzeTrace(t.c4.trace);
  return t;
}

void MaybeExportFigures(const BenchTraces& traces) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const Status st = ExportFigureCsvs(dir, traces.Named());
  if (st.ok()) {
    std::printf("exported figure CSVs to %s\n", dir);
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

void MaybeExportSweep(const std::string& name, const std::vector<SweepPoint>& points) {
  const char* dir = std::getenv("BSDTRACE_CSV_DIR");
  if (dir == nullptr) {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  const Status st = ExportSweepCsv(path, points);
  if (st.ok()) {
    std::printf("exported %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV export failed: %s\n", st.message().c_str());
  }
}

GenerationResult GenerateA5() {
  GenerationResult r = LoadOrGenerateStandardTrace("A5");
  std::printf("generated %zu A5 trace records\n\n", r.trace.size());
  return r;
}

}  // namespace bsdtrace
