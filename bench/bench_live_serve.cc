// Live-pipeline bench: the `trace_stream serve` data path — generator
// records pushed through a TraceRing to a RollingAnalyzer publishing hourly
// snapshots — timed end to end, with the correctness gates that make the
// numbers trustworthy.  Emits one machine-readable JSON line plus a
// BENCH_live_serve.json file: streamed records/sec, ring drop counters and
// occupancy high-water mark, and the wall-clock latency of each snapshot
// publish (the pause the consumer thread takes to finalize a prefix).
//
// Hard gates (non-zero exit):
//   * every published snapshot must be bit-identical to a batch Analyze of
//     exactly the records before its boundary, and the final live result
//     bit-identical to the batch analysis of the whole trace;
//   * the default-capacity blocking ring must deliver every record — zero
//     drops of either kind.
//
// Overrides: BSDTRACE_PROFILE (machine profile, default A5), BSDTRACE_USERS
// (0 = calibrated), BSDTRACE_HOURS (simulated, default 6), BSDTRACE_SEED,
// BSDTRACE_CAPACITY (ring slots, default 1<<14).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/parallel_analyzer.h"
#include "src/analysis/rolling_analyzer.h"
#include "src/trace/trace_ring.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Batch analysis of the records strictly before `boundary` — the reference
// each live snapshot is gated against.
TraceAnalysis BatchPrefix(const Trace& trace, SimTime boundary) {
  Trace prefix(trace.header());
  for (const TraceRecord& r : trace.records()) {
    if (r.time < boundary) {
      prefix.Append(r);
    }
  }
  AnalyzeOptions options;
  options.trace = &prefix;
  return Analyze(options).value();
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  std::string profile_name = "A5";
  int users = 0;  // calibrated population
  double hours = 6.0;
  uint64_t seed = 19851201;
  size_t capacity = 1 << 14;
  if (const char* env = std::getenv("BSDTRACE_PROFILE")) {
    profile_name = env;
  }
  if (const char* env = std::getenv("BSDTRACE_USERS")) {
    users = std::max(0, std::atoi(env));
  }
  if (const char* env = std::getenv("BSDTRACE_HOURS")) {
    hours = std::max(0.01, std::atof(env));
  }
  if (const char* env = std::getenv("BSDTRACE_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("BSDTRACE_CAPACITY")) {
    capacity = static_cast<size_t>(std::max(2L, std::atol(env)));
  }

  // Same input shape as `trace_stream serve`: a fleet spec, population-scaled.
  auto fleet = ParseFleetSpec(profile_name, users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "bad fleet spec: %s\n", fleet.status().message().c_str());
    return 1;
  }
  FleetGeneratorOptions gen;
  gen.base.duration = Duration::Hours(hours);
  gen.base.seed = seed;
  std::printf("bench_live_serve: fleet %s, %.2f simulated hours, seed %llu, ring capacity %zu\n",
              fleet.value().spec.c_str(), hours, static_cast<unsigned long long>(seed),
              static_cast<size_t>(capacity));

  // The trace is pre-generated so the timed phase measures the live pipeline
  // (ring transport + rolling analysis), not the generator.
  auto generated = GenerateFleetTrace(fleet.value(), gen);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", generated.status().message().c_str());
    return 1;
  }
  const Trace& trace = generated.value().trace;
  std::printf("  %zu records to stream\n", trace.size());

  TraceRingOptions ring_options;
  ring_options.capacity = capacity;
  TraceRing ring(trace.header(), ring_options);

  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&]() {
    RingTraceSink sink(&ring);
    for (const TraceRecord& r : trace.records()) {
      sink.Append(r);
    }
    ring.Close();
  });

  // The consumer drives the RollingAnalyzer directly (rather than through
  // RollingAnalyze) so each boundary-crossing Process call — the one that
  // finalizes and publishes a snapshot — can be timed individually.
  std::vector<SimTime> boundaries;
  std::vector<TraceAnalysis> snapshots;
  std::vector<double> snapshot_ms;
  RollingAnalyzer rolling(Duration::Hours(1), [&](const TraceAnalysis& snapshot, SimTime boundary) {
    snapshots.push_back(snapshot);
    boundaries.push_back(boundary);
  });
  RingTraceSource source(&ring);
  TraceRecord record;
  uint64_t published = 0;
  while (source.Next(&record)) {
    const auto p0 = std::chrono::steady_clock::now();
    rolling.Process(record);
    if (snapshots.size() != published) {  // this Process crossed >= 1 boundary
      snapshot_ms.push_back(SecondsSince(p0) * 1e3);
      published = snapshots.size();
    }
  }
  const TraceAnalysis live = rolling.Finish();
  producer.join();
  const double stream_s = SecondsSince(t0);

  const TraceRingStats stats = ring.stats();
  const double records_per_sec = stream_s > 0 ? static_cast<double>(trace.size()) / stream_s : 0.0;
  double max_ms = 0.0, sum_ms = 0.0;
  for (double ms : snapshot_ms) {
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  const double mean_ms = snapshot_ms.empty() ? 0.0 : sum_ms / static_cast<double>(snapshot_ms.size());
  std::printf("  streamed in %.3f s (%.0f records/s), %zu snapshot(s): publish mean %.2f ms max %.2f ms\n",
              stream_s, records_per_sec, snapshots.size(), mean_ms, max_ms);
  std::printf("  ring: produced %llu consumed %llu dropped %llu max occupancy %llu/%zu\n",
              static_cast<unsigned long long>(stats.produced),
              static_cast<unsigned long long>(stats.consumed),
              static_cast<unsigned long long>(stats.dropped()),
              static_cast<unsigned long long>(stats.max_occupancy), ring.capacity());

  // Gate 1: rolling-vs-batch bit-identity at every boundary and at the end.
  bool parity_ok = true;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    if (!AnalysisBitIdentical(snapshots[i], BatchPrefix(trace, boundaries[i]))) {
      std::fprintf(stderr, "FAIL: snapshot at +%.2fh diverges from its batch prefix\n",
                   (boundaries[i] - SimTime::Origin()).hours());
      parity_ok = false;
    }
  }
  AnalyzeOptions batch_options;
  batch_options.trace = &trace;
  if (!AnalysisBitIdentical(live, Analyze(batch_options).value())) {
    std::fprintf(stderr, "FAIL: final live analysis diverges from batch\n");
    parity_ok = false;
  }

  // Gate 2: the blocking ring loses nothing.
  const bool lossless = stats.dropped() == 0 && stats.produced == trace.size() &&
                        stats.consumed == trace.size();

  char json[768];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"live_serve\",\"profile\":\"%s\",\"users\":%d,\"hours\":%.2f,"
                "\"capacity\":%zu,\"records\":%zu,\"stream_s\":%.3f,\"records_per_sec\":%.0f,"
                "\"snapshots\":%zu,\"snapshot_publish_mean_ms\":%.3f,"
                "\"snapshot_publish_max_ms\":%.3f,\"dropped_oldest\":%llu,"
                "\"dropped_timeout\":%llu,\"max_occupancy\":%llu,"
                "\"parity_ok\":%s,\"lossless\":%s}",
                profile_name.c_str(), users, hours, ring.capacity(), trace.size(), stream_s,
                records_per_sec, snapshots.size(), mean_ms, max_ms,
                static_cast<unsigned long long>(stats.dropped_oldest),
                static_cast<unsigned long long>(stats.dropped_timeout),
                static_cast<unsigned long long>(stats.max_occupancy),
                parity_ok ? "true" : "false", lossless ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_live_serve.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }

  bool failed = false;
  if (!parity_ok) {
    std::fprintf(stderr, "FAIL: live snapshots are not bit-identical to batch analysis\n");
    failed = true;
  }
  if (!lossless) {
    std::fprintf(stderr, "FAIL: blocking ring dropped records at default capacity\n");
    failed = true;
  }
  return failed ? 1 : 0;
}
