// Regenerates Figure 4 (file lifetime CDFs by files and by bytes, including
// the 180-second network-daemon spike).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 4 — file lifetimes", "Figure 4 (§5.3)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderFigure4(traces.Named()).c_str());
  std::printf(
      "Paper bands: ~80%% of new files dead within ~3 minutes; 30-40%% of new\n"
      "files live exactly ~180 s (network status daemons); 20-30%% of new bytes\n"
      "dead within 30 s and ~50%% within 5 minutes.\n");
  MaybeExportFigures(traces);
  return 0;
}
