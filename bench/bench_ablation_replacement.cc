// Ablation: replacement policy.  The paper (and 4.2 BSD) used LRU; this bench
// quantifies how much LRU buys over FIFO and clock (second chance) on the
// same trace — a design-choice ablation for the cache simulator.

#include <cstdio>

#include "bench/common.h"
#include "src/util/table.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("ablation — cache replacement policy", "§6.1 design choice (LRU)");
  const GenerationResult a5 = GenerateA5();

  const uint64_t kMb = 1ull << 20;
  std::vector<CacheConfig> configs;
  for (uint64_t size : {390ull * 1024, 1ull * kMb, 2ull * kMb, 4ull * kMb, 8ull * kMb, 16ull * kMb}) {
    for (ReplacementPolicy rp :
         {ReplacementPolicy::kLru, ReplacementPolicy::kClock, ReplacementPolicy::kFifo}) {
      CacheConfig c;
      c.size_bytes = size;
      c.policy = WritePolicy::kDelayedWrite;
      c.replacement = rp;
      configs.push_back(c);
    }
  }
  const auto points = RunCacheSweep(a5.trace, configs);

  TextTable table({"Cache Size", "LRU", "Clock", "FIFO"});
  for (size_t i = 0; i < points.size(); i += 3) {
    table.AddRow({FormatBytes(static_cast<double>(points[i].config.size_bytes)),
                  FormatPercent(points[i].metrics.MissRatio()),
                  FormatPercent(points[i + 1].metrics.MissRatio()),
                  FormatPercent(points[i + 2].metrics.MissRatio())});
  }
  std::printf("%s\n", table.Render("Miss ratio by replacement policy (delayed write, 4 KB "
                                   "blocks, A5 trace).").c_str());
  std::printf("Expected: LRU <= clock <= FIFO at every size; the gap shrinks as the cache\n"
              "grows (replacement matters less when little is evicted).\n");
  return 0;
}
