// Regenerates Figure 3 (distribution of times files stay open).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 3 — open durations", "Figure 3 (§5.2)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderFigure3(traces.Named()).c_str());
  return 0;
}
