// Regenerates Table IV (system activity: active users and per-user
// throughput over 10-minute and 10-second intervals).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Table IV — system activity", "Table IV (§5.1)");
  const BenchTraces traces = GenerateAllTraces();
  std::printf("%s\n", RenderTable4(traces.Named()).c_str());
  std::printf(
      "Paper bands: ~300-600 bytes/s per active user over 10-minute intervals;\n"
      "~1.4-1.8 KB/s over 10-second intervals with fewer concurrent users.\n");
  return 0;
}
