// Regenerates Figure 6 / Table VII (disk I/Os vs. block size and cache size,
// delayed write, A5 trace).

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 6 / Table VII — block size", "Fig. 6, Table VII (§6.3)");
  const GenerationResult a5 = GenerateA5();
  const auto points = RunCacheSweep(a5.trace, Fig6Configs());
  std::printf("%s\n", RenderFigure6Table7(points).c_str());
  std::printf(
      "Paper bands: 8 KB blocks optimal for a 400 KB cache; 16 KB for 4 MB;\n"
      "very large blocks turn back up when the cache has too few of them.\n");
  MaybeExportSweep("fig6_table7", points);
  return 0;
}
