// Regenerates Figure 6 / Table VII (disk I/Os vs. block size and cache size,
// delayed write, A5 trace) via the planned sweep engine: one Mattson pass
// per block size yields the dense miss-ratio curve for that whole column.
// The JSON line carries `parity` (bit-identity gate) and `speedup`
// (reported; the replay reduction here comes from the curve sizes, so no
// fixed gate).

#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace bsdtrace;
  PrintBanner("Figure 6 / Table VII — block size", "Fig. 6, Table VII (§6.3)");
  const GenerationResult a5 = GenerateA5();
  std::vector<SweepPoint> points;
  std::vector<SweepCurve> curves;
  const int rc =
      RunPlannedEngineBench("fig6_table7_blocksize", a5.trace, Fig6Configs(), 0.0, &points,
                            &curves);
  std::printf("%s\n", RenderFigure6Table7(points).c_str());
  std::printf(
      "Paper bands: 8 KB blocks optimal for a 400 KB cache; 16 KB for 4 MB;\n"
      "very large blocks turn back up when the cache has too few of them.\n");
  std::printf("%s\n", RenderMissRatioCurves(curves).c_str());
  MaybeExportSweep("fig6_table7", points);
  MaybeExportCurves("fig6_curves", curves);
  return rc;
}
