// Microbench for the block-buffered binary trace I/O: times the legacy
// iostream path (WriteBinaryTrace/ReadBinaryTrace over std::fstream) against
// the buffered file path (SaveTrace/LoadTrace, 64 KB blocks + mmap reads) on
// a synthetic million-record trace, verifies the two paths produce identical
// bytes and identical records, and emits one machine-readable JSON line plus
// a BENCH_micro_traceio.json file.
//
// Record count defaults to 1,000,000 (set BSDTRACE_RECORDS to change).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace bsdtrace {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// A synthetic trace with realistic field mixes: mostly opens/closes with
// small ids and short time deltas (1-3 byte varints), a tail of large sizes
// and positions that stress the multi-byte varint paths.  Records go through
// the per-type factories so they carry exactly the fields the codec encodes
// (the round-trip equality check below depends on that).
Trace SyntheticTrace(size_t records) {
  Trace trace(TraceHeader{.machine = "synthetic",
                          .description = "trace-io microbench, " + std::to_string(records) +
                                         " records"});
  trace.Reserve(records);
  Rng rng(19851201);
  SimTime t = SimTime::Origin();
  for (size_t i = 0; i < records; ++i) {
    t += Duration::Micros(rng.UniformInt(0, 4000));
    const OpenId open_id = static_cast<OpenId>(rng.UniformInt(1, 1 << 20));
    const FileId file_id = static_cast<FileId>(rng.UniformInt(1, 1 << 16));
    const UserId user_id = static_cast<UserId>(rng.UniformInt(0, 90));
    const AccessMode mode = static_cast<AccessMode>(rng.UniformInt(0, 2));
    // 1-in-16 records carry large values (5+ byte varints).
    const bool large = rng.UniformInt(0, 15) == 0;
    const uint64_t size =
        large ? rng.NextU64() >> 16 : static_cast<uint64_t>(rng.UniformInt(0, 100000));
    const uint64_t position =
        large ? size / 2 : static_cast<uint64_t>(rng.UniformInt(0, 65536));
    switch (rng.UniformInt(1, 7)) {
      case 1:
        trace.Append(MakeOpen(t, open_id, file_id, user_id, mode, size, position));
        break;
      case 2:
        trace.Append(MakeCreate(t, open_id, file_id, user_id, mode));
        break;
      case 3:
        trace.Append(MakeClose(t, open_id, file_id, position, size));
        break;
      case 4:
        trace.Append(MakeSeek(t, open_id, file_id, position, size));
        break;
      case 5:
        trace.Append(MakeUnlink(t, file_id, user_id));
        break;
      case 6:
        trace.Append(MakeTruncate(t, file_id, user_id, size));
        break;
      default:
        trace.Append(MakeExecve(t, file_id, user_id, size));
        break;
    }
  }
  return trace;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

}  // namespace
}  // namespace bsdtrace

int main() {
  using namespace bsdtrace;
  size_t records = 1000000;
  if (const char* env = std::getenv("BSDTRACE_RECORDS")) {
    records = static_cast<size_t>(std::max(1L, std::atol(env)));
  }
  const Trace trace = SyntheticTrace(records);
  const std::string legacy_path = "bench_traceio_legacy.trace";
  const std::string buffered_path = "bench_traceio_buffered.trace";
  std::printf("bench_micro_traceio: %zu records\n", trace.size());

  constexpr int kReps = 3;
  double legacy_save_s = 1e300, buffered_save_s = 1e300;
  double legacy_load_s = 1e300, buffered_load_s = 1e300;
  bool loads_ok = true;
  for (int rep = -1; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    {
      std::ofstream out(legacy_path, std::ios::binary);
      WriteBinaryTrace(out, trace);
    }
    if (rep >= 0) {
      legacy_save_s = std::min(legacy_save_s, SecondsSince(t0));
    }

    t0 = std::chrono::steady_clock::now();
    const bool saved = SaveTrace(buffered_path, trace).ok();
    if (rep >= 0) {
      buffered_save_s = std::min(buffered_save_s, SecondsSince(t0));
    }
    loads_ok = loads_ok && saved;

    std::ifstream in(legacy_path, std::ios::binary);
    t0 = std::chrono::steady_clock::now();
    auto via_stream = ReadBinaryTrace(in);
    if (rep >= 0) {
      legacy_load_s = std::min(legacy_load_s, SecondsSince(t0));
    }

    t0 = std::chrono::steady_clock::now();
    auto via_buffered = LoadTrace(buffered_path);
    if (rep >= 0) {
      buffered_load_s = std::min(buffered_load_s, SecondsSince(t0));
    }

    // Verify outside the timed windows: both loads must reproduce the
    // original trace bit for bit.
    loads_ok = loads_ok && via_stream.ok() && via_stream.value() == trace &&
               via_buffered.ok() && via_buffered.value() == trace;
  }

  const std::string legacy_bytes = ReadFileBytes(legacy_path);
  const bool identical_bytes = legacy_bytes == ReadFileBytes(buffered_path) && loads_ok;
  const double save_speedup = buffered_save_s > 0 ? legacy_save_s / buffered_save_s : 0;
  const double load_speedup = buffered_load_s > 0 ? legacy_load_s / buffered_load_s : 0;

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"micro_traceio\",\"records\":%zu,\"file_bytes\":%zu,"
                "\"legacy_save_s\":%.4f,\"buffered_save_s\":%.4f,\"save_speedup\":%.2f,"
                "\"legacy_load_s\":%.4f,\"buffered_load_s\":%.4f,\"load_speedup\":%.2f,"
                "\"identical\":%s}",
                trace.size(), legacy_bytes.size(), legacy_save_s, buffered_save_s, save_speedup,
                legacy_load_s, buffered_load_s, load_speedup, identical_bytes ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_micro_traceio.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  std::remove(legacy_path.c_str());
  std::remove(buffered_path.c_str());
  if (!identical_bytes) {
    std::fprintf(stderr, "FAIL: buffered trace I/O diverges from the iostream path\n");
    return 1;
  }
  return 0;
}
