#!/usr/bin/env bash
# Live-service smoke under ThreadSanitizer: build trace_stream with TSan,
# run a short `serve` window (generator -> rings -> rolling analyzers), and
# assert the service contract:
#   * at least 2 hourly snapshots are published;
#   * the blocking rings drop nothing;
#   * analyzer parity holds across the fan-out;
#   * SIGTERM mid-run shuts down cleanly (exit 0, shutdown line printed).
# Plus, implicitly: TSan reports no races in the ring or the fan-out sink.
# Usage: scripts/live_smoke.sh [tsan-build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
SERVE=("$BUILD_DIR"/tools/trace_stream serve --profile=A5 --hours=3 --analyzers=2 --seed=19851201)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build "$BUILD_DIR" -j --target trace_stream

# TSan turns any reported race into a hard failure.
export TSAN_OPTIONS="halt_on_error=1 exitcode=66"

# -- Run 1: full window, assert the service contract ----------------------
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"${SERVE[@]}" | tee "$OUT"

SNAPSHOTS="$(grep -c '^snapshot ' "$OUT" || true)"
if [ "$SNAPSHOTS" -lt 2 ]; then
  echo "live_smoke: FAIL - expected >= 2 snapshots, saw $SNAPSHOTS" >&2
  exit 1
fi
if grep -E '^ring\[[0-9]+\]' "$OUT" | grep -qv 'dropped 0 '; then
  echo "live_smoke: FAIL - expected zero ring drops" >&2
  exit 1
fi
if ! grep -q 'analyzer parity: ok' "$OUT"; then
  echo "live_smoke: FAIL - analyzer parity not confirmed" >&2
  exit 1
fi
if ! grep -q 'shutdown: end of stream' "$OUT"; then
  echo "live_smoke: FAIL - missing clean end-of-stream shutdown line" >&2
  exit 1
fi

# -- Run 2: SIGTERM mid-run must exit 0 with a signal shutdown line -------
OUT2="$(mktemp)"
trap 'rm -f "$OUT" "$OUT2"' EXIT
"${SERVE[@]}" --hours=24 >"$OUT2" 2>&1 &
PID=$!
sleep 2
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "live_smoke: FAIL - SIGTERM exit status $STATUS (want 0)" >&2
  exit 1
fi
if ! grep -q 'shutdown: signal' "$OUT2"; then
  echo "live_smoke: FAIL - missing signal shutdown line" >&2
  exit 1
fi

echo "live_smoke: ok ($SNAPSHOTS snapshots, zero drops, parity ok, clean SIGTERM, TSan clean)"
