#!/usr/bin/env bash
# Tier-1 check: configure, build, run the full test suite, then re-run the
# bit-identical guarantees explicitly — replay parity (the two-phase sweep
# engine) and sharded-generation determinism (the parallel generator).
# Usage: scripts/check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")
"$BUILD_DIR"/tests/cache_tests --gtest_filter='ReplayParity.*:ReplayLogStats.*'
"$BUILD_DIR"/tests/workload_tests --gtest_filter='ShardedGenerator.*:ShardedStream.*'

echo "check.sh: all tests passed"
