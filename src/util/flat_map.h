// Open-addressing hash map for the cache simulation hot path.
//
// std::unordered_map is node-based: every insert allocates, every find chases
// a pointer, and teardown frees each node.  The §6 sweeps perform tens of
// millions of lookups per config, so the block map, the per-file chain heads,
// and the known-extent table all use this flat linear-probe map instead: one
// contiguous cell array, power-of-two sized, at most 50% loaded, erased with
// backward shifting (no tombstones).  When the maximum entry count is known
// up front (a block cache never exceeds its capacity), Reserve makes the map
// allocation-free for its whole lifetime.
//
// Requirements: Key is trivially copyable and one value (`empty_key`) never
// occurs as a real key; Value is default-constructible.

#ifndef BSDTRACE_SRC_UTIL_FLAT_MAP_H_
#define BSDTRACE_SRC_UTIL_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bsdtrace {

template <typename Key, typename Value, typename Hash>
class FlatMap {
 public:
  explicit FlatMap(Key empty_key, size_t min_cells = 16) : empty_key_(empty_key) {
    size_t cells = 16;
    while (cells < min_cells) {
      cells *= 2;
    }
    cells_.resize(cells, Cell{empty_key_, Value{}});
    mask_ = cells - 1;
  }

  // Grows the table so `entries` fit below the load limit without rehashing.
  void Reserve(size_t entries) {
    size_t cells = cells_.size();
    while (cells < entries * 2) {
      cells *= 2;
    }
    if (cells != cells_.size()) {
      Rehash(cells);
    }
  }

  size_t size() const { return size_; }

  static constexpr size_t npos = ~size_t{0};

  // Cell-index interface: callers that store one entry per key and keep a
  // backreference to its cell (the block cache's eviction path) can erase
  // without re-probing.  Cell indices are invalidated by Rehash, so these are
  // only valid on maps Reserve()d for their maximum entry count up front.

  // Returns the cell index of `key`, or npos.
  size_t FindCell(const Key& key) const {
    size_t i = Hash{}(key) & mask_;
    while (!(cells_[i].key == empty_key_)) {
      if (cells_[i].key == key) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return npos;
  }

  // Inserts `key` (which must be absent) and returns its cell index.  Never
  // rehashes: the map must have been sized for the insertion up front.
  size_t InsertCell(const Key& key, const Value& init) {
    assert(!(key == empty_key_));
    assert((size_ + 1) * 2 <= cells_.size());
    size_t i = Hash{}(key) & mask_;
    while (!(cells_[i].key == empty_key_)) {
      assert(!(cells_[i].key == key));
      i = (i + 1) & mask_;
    }
    cells_[i].key = key;
    cells_[i].value = init;
    ++size_;
    return i;
  }

  Value& CellValue(size_t cell) { return cells_[cell].value; }

  // Erases the entry in `cell` directly.  Backward shifting relocates later
  // cells in the probe chain; `on_move(value, new_cell)` fires for each so
  // the caller can update its backreferences.
  template <typename OnMove>
  void EraseCell(size_t i, OnMove&& on_move) {
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (cells_[j].key == empty_key_) {
        break;
      }
      const size_t ideal = Hash{}(cells_[j].key) & mask_;
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        cells_[i] = cells_[j];
        on_move(cells_[i].value, i);
        i = j;
      }
    }
    cells_[i].key = empty_key_;
    --size_;
  }

  // Returns the value for `key`, or nullptr.  The pointer is invalidated by
  // any insert or erase.
  Value* Find(const Key& key) {
    size_t i = Hash{}(key) & mask_;
    while (!(cells_[i].key == empty_key_)) {
      if (cells_[i].key == key) {
        return &cells_[i].value;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // Returns the value for `key`, inserting `init` if absent.
  Value& FindOrInsert(const Key& key, const Value& init) {
    assert(!(key == empty_key_));
    if ((size_ + 1) * 2 > cells_.size()) {
      Rehash(cells_.size() * 2);
    }
    size_t i = Hash{}(key) & mask_;
    while (!(cells_[i].key == empty_key_)) {
      if (cells_[i].key == key) {
        return cells_[i].value;
      }
      i = (i + 1) & mask_;
    }
    cells_[i].key = key;
    cells_[i].value = init;
    ++size_;
    return cells_[i].value;
  }

  Value& operator[](const Key& key) { return FindOrInsert(key, Value{}); }

  // Removes `key` if present.  Backward-shift deletion: subsequent cells that
  // probed past the hole are moved back, so probe chains never break.
  bool Erase(const Key& key) {
    size_t i = Hash{}(key) & mask_;
    while (!(cells_[i].key == empty_key_)) {
      if (cells_[i].key == key) {
        EraseAt(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

 private:
  struct Cell {
    Key key;
    Value value;
  };

  // Move cells_[j] into the hole iff the hole lies within its probe path,
  // i.e. cyclically between its ideal slot and j; the stale value behind an
  // emptied key is unreachable and is not zeroed.  (Logic lives in
  // EraseCell.)
  void EraseAt(size_t i) {
    EraseCell(i, [](const Value&, size_t) {});
  }

  void Rehash(size_t new_cells) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(new_cells, Cell{empty_key_, Value{}});
    mask_ = new_cells - 1;
    for (const Cell& cell : old) {
      if (cell.key == empty_key_) {
        continue;
      }
      size_t i = Hash{}(cell.key) & mask_;
      while (!(cells_[i].key == empty_key_)) {
        i = (i + 1) & mask_;
      }
      cells_[i] = cell;
    }
  }

  Key empty_key_;
  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

// Fibonacci-style mixer for raw integer ids (std::hash is identity on
// libstdc++, which interacts badly with power-of-two masking).
struct IdHash {
  size_t operator()(uint64_t id) const {
    const uint64_t h = id * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_FLAT_MAP_H_
