// ASCII line plots for reproducing the paper's figures in a terminal.
//
// Each figure bench renders its curves with this plotter in addition to
// printing the underlying series as a table, so the *shape* comparison with
// the paper (crossovers, knees, spikes) is visible directly in bench output.

#ifndef BSDTRACE_SRC_UTIL_PLOT_H_
#define BSDTRACE_SRC_UTIL_PLOT_H_

#include <string>
#include <vector>

namespace bsdtrace {

// A named series of (x, y) points.  Points are connected by nearest-column
// rendering; x values need not be evenly spaced.
struct PlotSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
};

// Renders one or more series on a shared pair of axes.
class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string x_label, std::string y_label);

  void AddSeries(PlotSeries series);

  // Optional fixed axis ranges; otherwise auto-scaled to the data.
  void SetXRange(double lo, double hi);
  void SetYRange(double lo, double hi);
  // Log-scale the x axis (base 2); all x values must be positive.
  void SetXLog2(bool on) { x_log2_ = on; }

  // Renders to a string, `width` x `height` plot area plus axes and legend.
  std::string Render(size_t width = 72, size_t height = 20) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<PlotSeries> series_;
  bool has_x_range_ = false, has_y_range_ = false;
  double x_lo_ = 0, x_hi_ = 1, y_lo_ = 0, y_hi_ = 1;
  bool x_log2_ = false;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_PLOT_H_
