// Lightweight error propagation without exceptions.
//
// I/O-facing APIs (trace codecs, file loading) return Status / StatusOr so
// corrupted inputs surface as diagnosable errors rather than aborts.

#ifndef BSDTRACE_SRC_UTIL_STATUS_H_
#define BSDTRACE_SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bsdtrace {

// Success or an error message.
class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return message_.empty(); }
  const std::string& message() const { return message_; }

 private:
  Status() = default;
  explicit Status(std::string message) : message_(std::move(message)) {
    assert(!message_.empty());
  }
  std::string message_;
};

// A value or an error message.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : v_(std::move(value)) {}                      // NOLINT(runtime/explicit)
  StatusOr(Status status) : v_(std::move(status)) {                // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_STATUS_H_
