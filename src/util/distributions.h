// Composable sampling distributions used by the workload generator.
//
// The paper's measured distributions (file sizes, lifetimes, think times) are
// heavy-tailed mixtures: lots of tiny files plus a few very large
// administrative files; lots of sub-second opens plus long-lived editor
// temporaries.  These classes express such shapes directly.

#ifndef BSDTRACE_SRC_UTIL_DISTRIBUTIONS_H_
#define BSDTRACE_SRC_UTIL_DISTRIBUTIONS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/util/rng.h"

namespace bsdtrace {

// A sampleable non-negative real distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double Sample(Rng& rng) const = 0;
};

// All values equal to `value`.
class ConstantDist : public Distribution {
 public:
  explicit ConstantDist(double value) : value_(value) {}
  double Sample(Rng&) const override { return value_; }

 private:
  double value_;
};

// Uniform on [lo, hi).
class UniformDist : public Distribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const override { return rng.Uniform(lo_, hi_); }

 private:
  double lo_, hi_;
};

// Exponential with the given mean.
class ExponentialDist : public Distribution {
 public:
  explicit ExponentialDist(double mean) : mean_(mean) {}
  double Sample(Rng& rng) const override { return rng.Exponential(mean_); }

 private:
  double mean_;
};

// Lognormal parameterized by the *median* and the sigma of log-space, with an
// optional cap.  Median parameterization is easier to calibrate against the
// paper's CDFs than (mu, sigma).
class LogNormalDist : public Distribution {
 public:
  LogNormalDist(double median, double sigma, double cap = 0.0);
  double Sample(Rng& rng) const override;

 private:
  double mu_;
  double sigma_;
  double cap_;  // 0 = uncapped
};

// Bounded Pareto: heavy tail between [lo, hi] with shape alpha.
class BoundedParetoDist : public Distribution {
 public:
  BoundedParetoDist(double lo, double hi, double alpha);
  double Sample(Rng& rng) const override;

 private:
  double lo_, hi_, alpha_;
};

// A weighted mixture of component distributions.
class MixtureDist : public Distribution {
 public:
  void Add(double weight, std::unique_ptr<Distribution> component);
  double Sample(Rng& rng) const override;
  bool empty() const { return components_.empty(); }

 private:
  std::vector<double> weights_;
  std::vector<std::unique_ptr<Distribution>> components_;
};

// Zipf-like popularity over `n` items: item k (0-based) has weight
// 1 / (k+1)^s.  Used for file-popularity skew (a few files get most opens).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);
  // Returns an index in [0, n).
  size_t Sample(Rng& rng) const;
  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_DISTRIBUTIONS_H_
