#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace bsdtrace {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::Stream(uint64_t seed, uint64_t stream_id) {
  if (stream_id == 0) {
    return Rng(seed);  // the reference stream
  }
  // One SplitMix64 step decorrelates consecutive stream ids; XOR keeps the
  // map (seed, id) -> derived seed collision-free for a fixed id.
  uint64_t ctr = stream_id;
  return Rng(seed ^ SplitMix64(ctr));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  assert(total > 0.0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) {
      continue;
    }
    x -= weights[i];
    if (x < 0.0) {
      return i;
    }
  }
  // Floating-point round-off: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return 0;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace bsdtrace
