#include "src/util/sim_time.h"

#include <cinttypes>
#include <cstdio>

namespace bsdtrace {

std::string Duration::ToString() const {
  char buf[64];
  const int64_t us = us_;
  if (us < 0) {
    return "-" + Duration::Micros(-us).ToString();
  }
  if (us < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", us);
  } else if (us < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3gms", static_cast<double>(us) / 1e3);
  } else if (us < 60ll * 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3gs", static_cast<double>(us) / 1e6);
  } else if (us < 3600ll * 1'000'000) {
    const int64_t whole_min = us / 60'000'000;
    const double rem_s = static_cast<double>(us - whole_min * 60'000'000) / 1e6;
    std::snprintf(buf, sizeof(buf), "%" PRId64 "m%.0fs", whole_min, rem_s);
  } else {
    const int64_t whole_h = us / 3'600'000'000ll;
    const double rem_m = static_cast<double>(us - whole_h * 3'600'000'000ll) / 60e6;
    std::snprintf(buf, sizeof(buf), "%" PRId64 "h%.0fm", whole_h, rem_m);
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", seconds());
  return buf;
}

}  // namespace bsdtrace
