// Strict numeric parsing shared by every untrusted-input surface: the
// trace_stream flag table, the bsdtxt text-trace parser, and the strace
// importer.
//
// The C library parsers these replace are all footguns for validation:
// strtoull accepts leading whitespace, a '+' or '-' sign (negative values
// wrap to huge unsigned ones), and "0x" prefixes; atoi reads "8oops" as 8.
// Everything here is digit-by-digit with an explicit overflow check, so a
// value either parses exactly or is rejected — no silent wrapping, no
// trailing garbage, no locale dependence.

#ifndef BSDTRACE_SRC_UTIL_PARSE_H_
#define BSDTRACE_SRC_UTIL_PARSE_H_

#include <cstdint>
#include <string_view>

namespace bsdtrace {

// Parses a non-negative decimal integer.  The whole string must be digits
// ('0'..'9'); an empty string, any sign, whitespace, hex prefix, or value
// above UINT64_MAX rejects.  Returns true and sets *out on success.
bool ParseUint64(std::string_view s, uint64_t* out);

// ParseUint64 plus an inclusive range check.
bool ParseUint64InRange(std::string_view s, uint64_t min, uint64_t max, uint64_t* out);

// Range-checked int convenience (flag values like --threads).  min may be 0
// or positive; negative minima make no sense for an unsigned surface.
bool ParseInt32InRange(std::string_view s, int min, int max, int* out);

// Parses a non-negative fixed-point seconds value "S" or "S.F" (1 to 6
// fractional digits, e.g. a bsdtxt or strace -ttt timestamp) into
// microseconds.  Scientific notation, hex floats, inf/nan, signs, and more
// than 6 fractional digits (which could not round-trip at microsecond
// resolution) all reject, as does a value that overflows int64 microseconds.
bool ParseSecondsToMicros(std::string_view s, int64_t* out_us);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_PARSE_H_
