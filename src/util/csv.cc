#include "src/util/csv.h"

namespace bsdtrace {

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace bsdtrace
