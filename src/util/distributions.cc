#include "src/util/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bsdtrace {

LogNormalDist::LogNormalDist(double median, double sigma, double cap)
    : mu_(std::log(median)), sigma_(sigma), cap_(cap) {
  assert(median > 0.0 && sigma >= 0.0);
}

double LogNormalDist::Sample(Rng& rng) const {
  double v = rng.LogNormal(mu_, sigma_);
  if (cap_ > 0.0 && v > cap_) {
    v = cap_;
  }
  return v;
}

BoundedParetoDist::BoundedParetoDist(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
}

double BoundedParetoDist::Sample(Rng& rng) const {
  // Inverse-CDF sampling of the bounded Pareto.
  const double u = rng.NextDouble();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return std::clamp(x, lo_, hi_);
}

void MixtureDist::Add(double weight, std::unique_ptr<Distribution> component) {
  assert(weight > 0.0);
  weights_.push_back(weight);
  components_.push_back(std::move(component));
}

double MixtureDist::Sample(Rng& rng) const {
  assert(!components_.empty());
  const size_t i = rng.WeightedIndex(weights_);
  return components_[i]->Sample(rng);
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cumulative_.resize(n);
  double running = 0.0;
  for (size_t k = 0; k < n; ++k) {
    running += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cumulative_[k] = running;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double x = rng.NextDouble() * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  if (it == cumulative_.end()) {
    return cumulative_.size() - 1;
  }
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace bsdtrace
