#include "src/util/plot.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bsdtrace {

AsciiPlot::AsciiPlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void AsciiPlot::AddSeries(PlotSeries series) {
  assert(series.xs.size() == series.ys.size());
  series_.push_back(std::move(series));
}

void AsciiPlot::SetXRange(double lo, double hi) {
  has_x_range_ = true;
  x_lo_ = lo;
  x_hi_ = hi;
}

void AsciiPlot::SetYRange(double lo, double hi) {
  has_y_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiPlot::Render(size_t width, size_t height) const {
  double x_lo = x_lo_, x_hi = x_hi_, y_lo = y_lo_, y_hi = y_hi_;
  if (!has_x_range_ || !has_y_range_) {
    bool first = true;
    for (const auto& s : series_) {
      for (size_t i = 0; i < s.xs.size(); ++i) {
        if (first) {
          if (!has_x_range_) {
            x_lo = x_hi = s.xs[i];
          }
          if (!has_y_range_) {
            y_lo = y_hi = s.ys[i];
          }
          first = false;
        }
        if (!has_x_range_) {
          x_lo = std::min(x_lo, s.xs[i]);
          x_hi = std::max(x_hi, s.xs[i]);
        }
        if (!has_y_range_) {
          y_lo = std::min(y_lo, s.ys[i]);
          y_hi = std::max(y_hi, s.ys[i]);
        }
      }
    }
  }
  if (x_hi <= x_lo) {
    x_hi = x_lo + 1;
  }
  if (y_hi <= y_lo) {
    y_hi = y_lo + 1;
  }

  auto x_transform = [&](double x) { return x_log2_ ? std::log2(std::max(x, 1e-12)) : x; };
  const double tx_lo = x_transform(x_lo);
  const double tx_hi = x_transform(x_hi);

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& s : series_) {
    // Plot each point; linearly interpolate between consecutive points so
    // curves read as lines rather than scatter.
    auto to_col = [&](double x) {
      const double f = (x_transform(x) - tx_lo) / (tx_hi - tx_lo);
      return static_cast<long>(std::lround(f * static_cast<double>(width - 1)));
    };
    auto to_row = [&](double y) {
      const double f = (y - y_lo) / (y_hi - y_lo);
      const long r =
          static_cast<long>(height - 1) - static_cast<long>(std::lround(f * (height - 1)));
      return r;
    };
    for (size_t i = 0; i < s.xs.size(); ++i) {
      const long c0 = to_col(s.xs[i]);
      const long r0 = to_row(s.ys[i]);
      auto put = [&](long r, long c) {
        if (r >= 0 && r < static_cast<long>(height) && c >= 0 && c < static_cast<long>(width)) {
          grid[static_cast<size_t>(r)][static_cast<size_t>(c)] = s.marker;
        }
      };
      put(r0, c0);
      if (i + 1 < s.xs.size()) {
        const long c1 = to_col(s.xs[i + 1]);
        const long r1 = to_row(s.ys[i + 1]);
        const long steps = std::max(std::labs(c1 - c0), std::labs(r1 - r0));
        for (long k = 1; k < steps; ++k) {
          const long c = c0 + (c1 - c0) * k / steps;
          const long r = r0 + (r1 - r0) * k / steps;
          put(r, c);
        }
      }
    }
  }

  std::ostringstream out;
  if (!title_.empty()) {
    out << title_ << "\n";
  }
  char buf[64];
  for (size_t r = 0; r < height; ++r) {
    const double y = y_hi - (y_hi - y_lo) * static_cast<double>(r) / (height - 1);
    if (r == 0 || r == height - 1 || r == height / 2) {
      std::snprintf(buf, sizeof(buf), "%8.3g |", y);
    } else {
      std::snprintf(buf, sizeof(buf), "%8s |", "");
    }
    out << buf << grid[r] << "\n";
  }
  out << std::string(9, ' ') << '+' << std::string(width, '-') << "\n";
  std::snprintf(buf, sizeof(buf), "%10.3g", x_lo);
  std::string x_axis = buf;
  std::snprintf(buf, sizeof(buf), "%.3g", x_hi);
  std::string hi_label = buf;
  const size_t pad =
      width + 10 > x_axis.size() + hi_label.size() ? width + 10 - x_axis.size() - hi_label.size()
                                                   : 1;
  out << x_axis << std::string(pad, ' ') << hi_label << "\n";
  out << std::string(10, ' ') << x_label_ << (x_log2_ ? " (log2 scale)" : "") << "   [y: "
      << y_label_ << "]\n";
  for (const auto& s : series_) {
    out << "    " << s.marker << " = " << s.name << "\n";
  }
  return out.str();
}

}  // namespace bsdtrace
