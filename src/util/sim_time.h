// Simulated time for trace-driven analysis.
//
// The paper's tracer timestamps are accurate to ~10 milliseconds (Table II).
// All simulation components share this representation: a signed 64-bit count
// of microseconds since the start of the trace.  Microsecond resolution keeps
// discrete-event scheduling exact; `QuantizeToTracerResolution` models the
// 10 ms tracer clock when records are emitted.

#ifndef BSDTRACE_SRC_UTIL_SIM_TIME_H_
#define BSDTRACE_SRC_UTIL_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace bsdtrace {

// A duration in simulated time.  Value type; arithmetic is exact.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double minutes() const { return seconds() / 60.0; }
  constexpr double hours() const { return seconds() / 3600.0; }

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(us_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Renders as a compact human string, e.g. "1.5s", "3m0s", "250ms".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

// An instant in simulated time, measured from the start of the simulation.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Origin() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr SimTime operator+(Duration d) const { return SimTime(us_ + d.micros()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(us_ - d.micros()); }
  constexpr Duration operator-(SimTime o) const { return Duration::Micros(us_ - o.us_); }
  SimTime& operator+=(Duration d) {
    us_ += d.micros();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  // Rounds down to the tracer's 10 ms clock tick (the paper's stated
  // timestamp accuracy).
  constexpr SimTime QuantizeToTracerResolution() const {
    constexpr int64_t kTickUs = 10'000;
    return SimTime(us_ - (us_ % kTickUs));
  }

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_SIM_TIME_H_
