// Minimal CSV emission for exporting bench series to files.

#ifndef BSDTRACE_SRC_UTIL_CSV_H_
#define BSDTRACE_SRC_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace bsdtrace {

// Streams rows of cells as RFC-4180-ish CSV (quotes cells containing
// comma/quote/newline).  Does not own the output stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& out_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_CSV_H_
