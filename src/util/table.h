// Plain-text table rendering for the benchmark harness.
//
// Every paper table is reprinted by a bench binary in the same row/column
// layout; this renderer handles alignment and separators.

#ifndef BSDTRACE_SRC_UTIL_TABLE_H_
#define BSDTRACE_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace bsdtrace {

// A simple text table: a header row plus data rows, rendered with column
// auto-sizing.  The first column is left-aligned; the rest right-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a data row.  Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);
  // Appends a horizontal separator line.
  void AddSeparator();

  size_t row_count() const { return rows_.size(); }

  // Renders the table, including a title line if non-empty.
  std::string Render(const std::string& title = "") const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

// Convenience numeric cell formatting.
std::string Cell(int64_t v);
std::string Cell(double v, int decimals = 1);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_TABLE_H_
