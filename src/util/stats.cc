#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bsdtrace {

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void WeightedCdf::Add(double value, double weight) {
  assert(weight >= 0.0);
  if (weight == 0.0) {
    return;
  }
  samples_.emplace_back(value, weight);
  sorted_ = false;
}

void WeightedCdf::Merge(const WeightedCdf& other) {
  if (other.samples_.empty()) {
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void WeightedCdf::EnsureSorted() const {
  if (sorted_) {
    return;
  }
  // Ties on value are broken by weight so the prefix sums — and therefore
  // every query — are a pure function of the sample multiset.
  std::sort(samples_.begin(), samples_.end());
  cumulative_.resize(samples_.size());
  double running = 0.0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    running += samples_[i].second;
    cumulative_[i] = running;
  }
  sorted_ = true;
}

double WeightedCdf::total_weight() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return cumulative_.back();
}

const std::vector<std::pair<double, double>>& WeightedCdf::sorted_samples() const {
  EnsureSorted();
  return samples_;
}

double WeightedCdf::FractionAtOrBelow(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const double total = cumulative_.back();
  if (total <= 0.0) {
    return 0.0;
  }
  // Last index with value <= x.
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x,
                             [](double v, const auto& s) { return v < s.first; });
  if (it == samples_.begin()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(it - samples_.begin()) - 1;
  return cumulative_[idx] / total;
}

double WeightedCdf::Quantile(double q) const {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const double target = q * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) {
    return samples_.back().first;
  }
  return samples_[static_cast<size_t>(it - cumulative_.begin())].first;
}

double WeightedCdf::MinValue() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.front().first;
}

double WeightedCdf::MaxValue() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.back().first;
}

double WeightedCdf::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const double total = cumulative_.back();
  if (total <= 0.0) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    acc += v * w;
  }
  return acc / total;
}

std::vector<double> WeightedCdf::Evaluate(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    out.push_back(FractionAtOrBelow(x));
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i] > bounds_[i - 1]);
  }
  counts_.assign(bounds_.size() + 1, 0.0);
}

Histogram Histogram::Linear(double lo, double hi, size_t buckets) {
  assert(buckets >= 1 && hi > lo);
  std::vector<double> bounds;
  bounds.reserve(buckets + 1);
  for (size_t i = 0; i <= buckets; ++i) {
    bounds.push_back(lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(buckets));
  }
  return Histogram(std::move(bounds));
}

Histogram Histogram::Exponential(double first_bound, double factor, size_t buckets) {
  assert(buckets >= 1 && first_bound > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(buckets + 1);
  double b = first_bound;
  for (size_t i = 0; i <= buckets; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Add(double x, double weight) {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  counts_[idx] += weight;
  total_ += weight;
}

std::string Histogram::BucketLabel(size_t i) const {
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "(-inf, %g)", bounds_.front());
  } else if (i == counts_.size() - 1) {
    std::snprintf(buf, sizeof(buf), "[%g, +inf)", bounds_.back());
  } else {
    std::snprintf(buf, sizeof(buf), "[%g, %g)", bounds_[i - 1], bounds_[i]);
  }
  return buf;
}

double Histogram::CumulativeFraction(double x) const {
  if (total_ <= 0.0) {
    return 0.0;
  }
  double acc = 0.0;
  // Underflow bucket is entirely below bounds_[0].
  if (x < bounds_.front()) {
    // Cannot interpolate an unbounded bucket; report zero below the range.
    return 0.0;
  }
  acc += counts_[0];
  for (size_t i = 1; i < counts_.size(); ++i) {
    const double lo = bounds_[i - 1];
    const double hi = (i < bounds_.size()) ? bounds_[i] : lo;
    if (i == counts_.size() - 1) {
      // Overflow bucket: include fully only if x is at/above its start.
      if (x >= lo) {
        acc += counts_[i];
      }
      break;
    }
    if (x >= hi) {
      acc += counts_[i];
    } else {
      acc += counts_[i] * (x - lo) / (hi - lo);
      break;
    }
  }
  return acc / total_;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  double v = bytes;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace bsdtrace
