#include "src/util/parse.h"

#include <limits>

namespace bsdtrace {

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseUint64InRange(std::string_view s, uint64_t min, uint64_t max, uint64_t* out) {
  uint64_t v = 0;
  if (!ParseUint64(s, &v) || v < min || v > max) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseInt32InRange(std::string_view s, int min, int max, int* out) {
  if (min < 0 || max < min) {
    return false;
  }
  uint64_t v = 0;
  if (!ParseUint64InRange(s, static_cast<uint64_t>(min), static_cast<uint64_t>(max), &v)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseSecondsToMicros(std::string_view s, int64_t* out_us) {
  const size_t dot = s.find('.');
  const std::string_view whole = dot == std::string_view::npos ? s : s.substr(0, dot);
  uint64_t secs = 0;
  if (!ParseUint64(whole, &secs)) {
    return false;
  }
  uint64_t frac_us = 0;
  if (dot != std::string_view::npos) {
    const std::string_view frac = s.substr(dot + 1);
    if (frac.empty() || frac.size() > 6) {
      return false;
    }
    if (!ParseUint64(frac, &frac_us)) {
      return false;
    }
    for (size_t i = frac.size(); i < 6; ++i) {
      frac_us *= 10;  // "1.5" means 500000 us, not 5
    }
  }
  constexpr uint64_t kMaxUs = static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  if (secs > kMaxUs / 1000000 || secs * 1000000 > kMaxUs - frac_us) {
    return false;
  }
  *out_us = static_cast<int64_t>(secs * 1000000 + frac_us);
  return true;
}

}  // namespace bsdtrace
