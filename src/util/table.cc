#include "src/util/table.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace bsdtrace {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{.separator = false, .cells = std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{.separator = true, .cells = {}}); }

std::string TextTable::Render(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        line += "  ";
      }
      const std::string& cell = cells[c];
      const size_t pad = widths[c] - std::min(widths[c], cell.size());
      if (c == 0) {
        line += cell + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + cell;
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line;
  };

  size_t total_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total_width += widths[c] + (c > 0 ? 2 : 0);
  }

  std::ostringstream out;
  if (!title.empty()) {
    out << title << "\n";
  }
  out << render_line(header_) << "\n";
  out << std::string(total_width, '-') << "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      out << std::string(total_width, '-') << "\n";
    } else {
      out << render_line(row.cells) << "\n";
    }
  }
  return out.str();
}

std::string Cell(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string Cell(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bsdtrace
