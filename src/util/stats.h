// Streaming statistics, histograms, and weighted empirical CDFs.
//
// These are the measurement primitives behind every table and figure in the
// paper: Table IV needs means and standard deviations over intervals, and
// Figures 1-4 are cumulative distributions weighted either by count ("percent
// of files") or by a secondary weight ("percent of bytes").

#ifndef BSDTRACE_SRC_UTIL_STATS_H_
#define BSDTRACE_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bsdtrace {

// Single-pass mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  // Inline: the cache simulator calls this once per eviction.
  void Add(double x) {
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = x < min_ ? x : min_;
      max_ = x > max_ ? x : max_;
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// An empirical distribution built from weighted samples.  Supports the two
// query directions the paper uses: "what fraction of weight lies at or below
// x" (reading a CDF curve) and "what x bounds a given fraction" (quantiles).
//
// Samples are buffered and sorted lazily on first query.  Every query —
// including total_weight() and Mean() — is computed over the canonical
// (value, weight)-sorted order, so results depend only on the sample
// multiset, never on insertion order.  That makes Merge() a plain
// concatenation and lets a parallel analysis pass reproduce the serial
// pass bit for bit.
class WeightedCdf {
 public:
  // Adds a sample with weight 1.
  void Add(double value) { Add(value, 1.0); }
  // Adds a sample with the given non-negative weight.
  void Add(double value, double weight);

  // Absorbs all of other's samples (parallel reduction).
  void Merge(const WeightedCdf& other);

  int64_t sample_count() const { return static_cast<int64_t>(samples_.size()); }
  double total_weight() const;
  bool empty() const { return samples_.empty(); }

  // Fraction of total weight with value <= x, in [0, 1].
  double FractionAtOrBelow(double x) const;

  // Smallest sample value v such that FractionAtOrBelow(v) >= q.
  // q must be in [0, 1]; returns the max sample for q = 1.
  double Quantile(double q) const;

  double MinValue() const;
  double MaxValue() const;
  // Weighted mean of the samples.
  double Mean() const;

  // Evaluates the CDF at each of the given x positions (for plotting).
  std::vector<double> Evaluate(const std::vector<double>& xs) const;

  // The samples in canonical sorted order — exact-comparison hook for the
  // parallel/serial parity tests.
  const std::vector<std::pair<double, double>>& sorted_samples() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable std::vector<double> cumulative_;                  // prefix sums of weight
  mutable bool sorted_ = false;
};

// Fixed-boundary histogram.  Bucket i covers [bounds[i-1], bounds[i]); an
// underflow bucket covers (-inf, bounds[0]) and an overflow bucket
// [bounds.back(), +inf).  Used for interval-based measurements and reporting.
class Histogram {
 public:
  // Bounds must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  // Convenience factories.
  static Histogram Linear(double lo, double hi, size_t buckets);
  static Histogram Exponential(double first_bound, double factor, size_t buckets);

  void Add(double x) { Add(x, 1.0); }
  void Add(double x, double weight);

  size_t bucket_count() const { return counts_.size(); }  // includes under/overflow
  double bucket_weight(size_t i) const { return counts_[i]; }
  double total_weight() const { return total_; }
  // Bucket label like "[4096, 8192)"; index as for bucket_weight.
  std::string BucketLabel(size_t i) const;

  // Fraction of weight at or below x (linear interpolation within buckets).
  double CumulativeFraction(double x) const;

 private:
  std::vector<double> bounds_;
  std::vector<double> counts_;  // size bounds_.size() + 1
  double total_ = 0.0;
};

// Formats a byte count with binary units, e.g. "384 KB", "4.0 MB".
std::string FormatBytes(double bytes);

// Formats a fraction as a percentage with the given precision, e.g. "57.6%".
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_STATS_H_
