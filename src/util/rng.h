// Deterministic pseudo-random number generation for workload synthesis.
//
// A thin wrapper over a fixed, documented generator (xoshiro256**) so that
// traces are reproducible across platforms and standard-library versions.
// std::mt19937 distributions are implementation-defined; everything here is
// implemented from first principles on top of raw 64-bit draws.

#ifndef BSDTRACE_SRC_UTIL_RNG_H_
#define BSDTRACE_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bsdtrace {

// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm), seeded via
// splitmix64.  Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Stream-split: derives the generator for stream `stream_id` of the family
  // keyed by `seed`.  Counter-based — the stream index is mixed through
  // SplitMix64 into the seed, so any stream can be constructed directly
  // without generating its predecessors (what a sharded producer needs:
  // shard s seeds Stream(seed, s) with no cross-shard coordination).
  // Stream 0 is bit-identical to Rng(seed), which keeps a single-stream
  // consumer byte-compatible with pre-stream-API output.
  static Rng Stream(uint64_t seed, uint64_t stream_id);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponential with the given mean (mean > 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (spare value cached).
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Pareto with scale xm > 0 and shape alpha > 0: xm / U^{1/alpha}.
  double Pareto(double xm, double alpha);

  // Index in [0, weights.size()) chosen proportionally to weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; used to give each simulated
  // user/application its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_UTIL_RNG_H_
