// The traced kernel: a UNIX-style syscall layer over the simulated file
// system that emits the paper's Table II trace records.
//
// This layer reproduces the behaviour of the instrumented 4.2 BSD kernel the
// paper used (Lukac's logical I/O trace package):
//   * open/create, close, seek, unlink, truncate, and execve are logged;
//   * read and write are NOT logged — they only advance the implicit
//     sequential position, which is captured by the surrounding events;
//   * each open() is assigned a unique open id;
//   * record timestamps are quantized to the tracer's 10 ms resolution.
//
// UNIX semantics that matter to the analyses are honoured: opening with
// O_TRUNC or creating a new file logs a `create` (the paper's definition of
// "new information"), unlinked-but-open files stay readable until the last
// close, and append opens start positioned at end of file.

#ifndef BSDTRACE_SRC_KERNEL_TRACED_KERNEL_H_
#define BSDTRACE_SRC_KERNEL_TRACED_KERNEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>

#include "src/fs/file_system.h"
#include "src/trace/trace.h"

namespace bsdtrace {

// POSIX-flavoured error codes surfaced by the syscall layer.
enum class KernelError : uint8_t {
  kNoEnt,    // no such file or directory
  kExist,    // file exists (exclusive create)
  kBadF,     // bad file descriptor
  kMFile,    // too many open files
  kNoSpc,    // no space on device
  kIsDir,    // is a directory
  kNotDir,   // a path component is not a directory
  kInval,    // invalid argument
};

const char* KernelErrorName(KernelError error);

template <typename T>
class KResult {
 public:
  KResult(T value) : v_(std::move(value)) {}        // NOLINT(runtime/explicit)
  KResult(KernelError error) : v_(error) {}         // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  KernelError error() const { return std::get<KernelError>(v_); }

 private:
  std::variant<T, KernelError> v_;
};

class KStatus {
 public:
  static KStatus Ok() { return KStatus(); }
  KStatus(KernelError error) : error_(error) {}  // NOLINT(runtime/explicit)

  bool ok() const { return !error_.has_value(); }
  KernelError error() const { return *error_; }

 private:
  KStatus() = default;
  std::optional<KernelError> error_;
};

using Fd = int32_t;

struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;    // create if missing
  bool truncate = false;  // zero the file on open
  bool append = false;    // start positioned at end of file
  bool exclusive = false; // with create: fail if the file exists

  static OpenFlags ReadOnly() { return {.read = true}; }
  static OpenFlags WriteCreate() { return {.write = true, .create = true, .truncate = true}; }
  static OpenFlags Append() { return {.write = true, .create = true, .append = true}; }
  static OpenFlags ReadWrite() { return {.read = true, .write = true}; }
};

struct KernelOptions {
  // System-wide open file limit (4.2 BSD's global open-file table was a few
  // hundred entries; generously sized here).
  uint32_t max_open_files = 4096;
  // Quantize trace timestamps to the tracer's 10 ms clock.
  bool quantize_timestamps = true;
};

// Per-syscall counters (useful for sanity checks and Table III context).
struct KernelCounters {
  uint64_t opens = 0;
  uint64_t creates = 0;
  uint64_t closes = 0;
  uint64_t seeks = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t unlinks = 0;
  uint64_t truncates = 0;
  uint64_t execves = 0;
  uint64_t errors = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class TracedKernel {
 public:
  // `fs` and `sink` must outlive the kernel.
  TracedKernel(FileSystem* fs, TraceSink* sink, KernelOptions options = KernelOptions());

  TracedKernel(const TracedKernel&) = delete;
  TracedKernel& operator=(const TracedKernel&) = delete;

  // The simulation clock; callers advance it between syscalls.
  void SetTime(SimTime t) { now_ = t; }
  SimTime now() const { return now_; }

  // -- Traced syscalls -------------------------------------------------------

  KResult<Fd> Open(const std::string& path, OpenFlags flags, UserId user);
  // Sequential read of up to `nbytes` from the current position; returns the
  // number of bytes actually read (0 at EOF).  Not logged.
  KResult<uint64_t> Read(Fd fd, uint64_t nbytes);
  // Sequential write of `nbytes` at the current position, extending the file
  // as needed.  Not logged.
  KResult<uint64_t> Write(Fd fd, uint64_t nbytes);
  // Absolute reposition; logged with the before/after positions.
  KStatus Seek(Fd fd, uint64_t position);
  KStatus Close(Fd fd);
  KStatus Unlink(const std::string& path, UserId user);
  // Path truncate to `new_length` (logged; distinct from O_TRUNC opens).
  KStatus Truncate(const std::string& path, uint64_t new_length, UserId user);
  // Program load: logged with the program file's size (drives Fig. 7).
  KStatus Execve(const std::string& path, UserId user);

  // -- Untraced helpers (not part of the paper's event set) ------------------

  KStatus Mkdir(const std::string& path);
  KStatus MkdirAll(const std::string& path);
  KResult<uint64_t> FileSize(const std::string& path) const;
  bool Exists(const std::string& path) const;

  // Current position of an open descriptor (for tests and app models).
  KResult<uint64_t> Position(Fd fd) const;

  const KernelCounters& counters() const { return counters_; }
  FileSystem* file_system() { return fs_; }
  uint32_t open_file_count() const { return static_cast<uint32_t>(fds_.size()); }

 private:
  struct OpenFile {
    OpenId open_id = kInvalidOpenId;
    InodeNum ino = 0;
    FileId file_id = kInvalidFileId;
    OpenFlags flags;
    uint64_t position = 0;
  };

  SimTime TraceNow() const {
    return options_.quantize_timestamps ? now_.QuantizeToTracerResolution() : now_;
  }
  AccessMode ModeOf(OpenFlags flags) const;
  // Drops one open reference to the inode; releases orphaned storage when the
  // last reference goes away.
  void ReleaseOpenRef(InodeNum ino);

  FileSystem* fs_;
  TraceSink* sink_;
  KernelOptions options_;
  SimTime now_;

  std::unordered_map<Fd, OpenFile> fds_;
  std::unordered_map<InodeNum, uint32_t> open_refs_;
  Fd next_fd_ = 3;  // 0..2 reserved, as tradition demands
  OpenId next_open_id_ = 1;
  KernelCounters counters_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_KERNEL_TRACED_KERNEL_H_
