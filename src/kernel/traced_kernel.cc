#include "src/kernel/traced_kernel.h"

#include <cassert>

#include "src/trace/record.h"

namespace bsdtrace {
namespace {

KernelError MapFsError(FsError error) {
  switch (error) {
    case FsError::kNotFound:
      return KernelError::kNoEnt;
    case FsError::kExists:
      return KernelError::kExist;
    case FsError::kNotDirectory:
      return KernelError::kNotDir;
    case FsError::kIsDirectory:
      return KernelError::kIsDir;
    case FsError::kNoSpace:
      return KernelError::kNoSpc;
    case FsError::kNotEmpty:
      return KernelError::kInval;
    case FsError::kInvalidArgument:
      return KernelError::kInval;
  }
  return KernelError::kInval;
}

}  // namespace

const char* KernelErrorName(KernelError error) {
  switch (error) {
    case KernelError::kNoEnt:
      return "ENOENT";
    case KernelError::kExist:
      return "EEXIST";
    case KernelError::kBadF:
      return "EBADF";
    case KernelError::kMFile:
      return "EMFILE";
    case KernelError::kNoSpc:
      return "ENOSPC";
    case KernelError::kIsDir:
      return "EISDIR";
    case KernelError::kNotDir:
      return "ENOTDIR";
    case KernelError::kInval:
      return "EINVAL";
  }
  return "?";
}

TracedKernel::TracedKernel(FileSystem* fs, TraceSink* sink, KernelOptions options)
    : fs_(fs), sink_(sink), options_(options) {
  assert(fs != nullptr && sink != nullptr);
}

AccessMode TracedKernel::ModeOf(OpenFlags flags) const {
  if (flags.read && flags.write) {
    return AccessMode::kReadWrite;
  }
  if (flags.write) {
    return AccessMode::kWriteOnly;
  }
  return AccessMode::kReadOnly;
}

KResult<Fd> TracedKernel::Open(const std::string& path, OpenFlags flags, UserId user) {
  if (!flags.read && !flags.write) {
    ++counters_.errors;
    return KernelError::kInval;
  }
  if (fds_.size() >= options_.max_open_files) {
    ++counters_.errors;
    return KernelError::kMFile;
  }

  auto lookup = fs_->LookupPath(path);
  bool created = false;
  InodeNum ino = 0;

  if (lookup.ok()) {
    if (flags.create && flags.exclusive) {
      ++counters_.errors;
      return KernelError::kExist;
    }
    ino = lookup.value();
    const Inode* inode = fs_->GetInode(ino);
    if (inode->type == FileType::kDirectory && flags.write) {
      ++counters_.errors;
      return KernelError::kIsDir;
    }
    if (flags.truncate && flags.write && inode->size > 0) {
      // O_TRUNC: discard contents.  The paper counts this as creating new
      // information, so the trace records a `create`.
      const FsStatus st = fs_->SetFileSize(ino, 0, now_);
      if (!st.ok()) {
        ++counters_.errors;
        return MapFsError(st.error());
      }
      created = true;
    } else if (flags.truncate && flags.write) {
      created = true;  // truncating an already-empty file still logs create
    }
  } else if (lookup.error() == FsError::kNotFound && flags.create) {
    auto mk = fs_->CreateFile(path, now_);
    if (!mk.ok()) {
      ++counters_.errors;
      return MapFsError(mk.error());
    }
    ino = mk.value();
    created = true;
  } else {
    ++counters_.errors;
    return MapFsError(lookup.error());
  }

  const Inode* inode = fs_->GetInode(ino);
  OpenFile of;
  of.open_id = next_open_id_++;
  of.ino = ino;
  of.file_id = inode->file_id;
  of.flags = flags;
  of.position = flags.append ? inode->size : 0;

  const Fd fd = next_fd_++;
  fds_.emplace(fd, of);
  open_refs_[ino] += 1;
  fs_->TouchAccess(ino, now_);

  if (created) {
    ++counters_.creates;
    sink_->Append(MakeCreate(TraceNow(), of.open_id, of.file_id, user, ModeOf(flags)));
  } else {
    ++counters_.opens;
    sink_->Append(MakeOpen(TraceNow(), of.open_id, of.file_id, user, ModeOf(flags), inode->size,
                           of.position));
  }
  return fd;
}

KResult<uint64_t> TracedKernel::Read(Fd fd, uint64_t nbytes) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  OpenFile& of = it->second;
  if (!of.flags.read) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  const Inode* inode = fs_->GetInode(of.ino);
  assert(inode != nullptr);
  const uint64_t available = inode->size > of.position ? inode->size - of.position : 0;
  const uint64_t n = std::min(nbytes, available);
  of.position += n;
  ++counters_.reads;
  counters_.bytes_read += n;
  return n;
}

KResult<uint64_t> TracedKernel::Write(Fd fd, uint64_t nbytes) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  OpenFile& of = it->second;
  if (!of.flags.write) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  const Inode* inode = fs_->GetInode(of.ino);
  assert(inode != nullptr);
  const uint64_t end = of.position + nbytes;
  if (end > inode->size) {
    const FsStatus st = fs_->SetFileSize(of.ino, end, now_);
    if (!st.ok()) {
      ++counters_.errors;
      return MapFsError(st.error());
    }
  } else if (nbytes > 0) {
    fs_->SetFileSize(of.ino, inode->size, now_);  // overwrite in place: mtime only
  }
  of.position = end;
  ++counters_.writes;
  counters_.bytes_written += nbytes;
  return nbytes;
}

KStatus TracedKernel::Seek(Fd fd, uint64_t position) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  OpenFile& of = it->second;
  ++counters_.seeks;
  sink_->Append(MakeSeek(TraceNow(), of.open_id, of.file_id, of.position, position));
  of.position = position;
  return KStatus::Ok();
}

void TracedKernel::ReleaseOpenRef(InodeNum ino) {
  auto ref = open_refs_.find(ino);
  assert(ref != open_refs_.end() && ref->second > 0);
  if (--ref->second == 0) {
    open_refs_.erase(ref);
    fs_->ReleaseInode(ino);  // no-op unless orphaned
  }
}

KStatus TracedKernel::Close(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    ++counters_.errors;
    return KernelError::kBadF;
  }
  OpenFile of = it->second;
  fds_.erase(it);
  const Inode* inode = fs_->GetInode(of.ino);
  assert(inode != nullptr);
  ++counters_.closes;
  sink_->Append(MakeClose(TraceNow(), of.open_id, of.file_id, of.position, inode->size));
  ReleaseOpenRef(of.ino);
  return KStatus::Ok();
}

KStatus TracedKernel::Unlink(const std::string& path, UserId user) {
  auto lookup = fs_->LookupPath(path);
  if (!lookup.ok()) {
    ++counters_.errors;
    return MapFsError(lookup.error());
  }
  const InodeNum ino = lookup.value();
  const Inode* inode = fs_->GetInode(ino);
  if (inode->type == FileType::kDirectory) {
    ++counters_.errors;
    return KernelError::kIsDir;
  }
  const FileId file_id = inode->file_id;
  const FsStatus st = fs_->Unlink(path, now_);
  if (!st.ok()) {
    ++counters_.errors;
    return MapFsError(st.error());
  }
  ++counters_.unlinks;
  sink_->Append(MakeUnlink(TraceNow(), file_id, user));
  if (open_refs_.count(ino) == 0) {
    fs_->ReleaseInode(ino);
  }
  return KStatus::Ok();
}

KStatus TracedKernel::Truncate(const std::string& path, uint64_t new_length, UserId user) {
  auto lookup = fs_->LookupPath(path);
  if (!lookup.ok()) {
    ++counters_.errors;
    return MapFsError(lookup.error());
  }
  const Inode* inode = fs_->GetInode(lookup.value());
  if (inode->type == FileType::kDirectory) {
    ++counters_.errors;
    return KernelError::kIsDir;
  }
  const FileId file_id = inode->file_id;
  const FsStatus st = fs_->SetFileSize(lookup.value(), new_length, now_);
  if (!st.ok()) {
    ++counters_.errors;
    return MapFsError(st.error());
  }
  ++counters_.truncates;
  sink_->Append(MakeTruncate(TraceNow(), file_id, user, new_length));
  return KStatus::Ok();
}

KStatus TracedKernel::Execve(const std::string& path, UserId user) {
  auto lookup = fs_->LookupPath(path);
  if (!lookup.ok()) {
    ++counters_.errors;
    return MapFsError(lookup.error());
  }
  const Inode* inode = fs_->GetInode(lookup.value());
  if (inode->type == FileType::kDirectory) {
    ++counters_.errors;
    return KernelError::kIsDir;
  }
  fs_->TouchAccess(lookup.value(), now_);
  ++counters_.execves;
  sink_->Append(MakeExecve(TraceNow(), inode->file_id, user, inode->size));
  return KStatus::Ok();
}

KStatus TracedKernel::Mkdir(const std::string& path) {
  auto r = fs_->Mkdir(path, now_);
  if (!r.ok()) {
    return MapFsError(r.error());
  }
  return KStatus::Ok();
}

KStatus TracedKernel::MkdirAll(const std::string& path) {
  auto r = fs_->MkdirAll(path, now_);
  if (!r.ok()) {
    return MapFsError(r.error());
  }
  return KStatus::Ok();
}

KResult<uint64_t> TracedKernel::FileSize(const std::string& path) const {
  auto lookup = fs_->LookupPath(path);
  if (!lookup.ok()) {
    return MapFsError(lookup.error());
  }
  return fs_->GetInode(lookup.value())->size;
}

bool TracedKernel::Exists(const std::string& path) const {
  return fs_->LookupPath(path).ok();
}

KResult<uint64_t> TracedKernel::Position(Fd fd) const {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return KernelError::kBadF;
  }
  return it->second.position;
}

}  // namespace bsdtrace
