// High-level experiment API: generate the standard traces, analyze them, run
// the cache sweeps, and render every table and figure of the paper in a
// terminal-friendly form.
//
// This is the library's front door: each bench binary under bench/ is a thin
// wrapper over one Render* function, and the examples compose these calls.

#ifndef BSDTRACE_SRC_CORE_EXPERIMENTS_H_
#define BSDTRACE_SRC_CORE_EXPERIMENTS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/cache/sweep.h"
#include "src/workload/generator.h"
#include "src/util/status.h"
#include "src/workload/profile.h"

namespace bsdtrace {

// (label, analysis) pairs: most tables compare the three traces side by side.
using NamedAnalysis = std::pair<std::string, const TraceAnalysis*>;

// Standard generation length for experiments.  Overridable via the
// BSDTRACE_HOURS environment variable (benchmark runtime knob).
Duration StandardDuration();

// Generates the named standard trace ("A5", "E3", "C4") at the standard
// duration.  Deterministic per (name, duration).
GenerationResult GenerateStandardTrace(const std::string& name);
GenerationResult GenerateStandardTrace(const std::string& name, Duration duration,
                                       uint64_t seed);

// Analyzes a binary trace file without loading it into memory.  With more
// than one thread and a v3 file carrying a block index, the segmented
// parallel analyzer runs — bit-identical to the serial pass by construction;
// v1/v2 (or index-less) files fall back to the serial streaming pass.
// threads == 0 means hardware concurrency.
StatusOr<TraceAnalysis> AnalyzeTraceFile(const std::string& path, unsigned threads = 0);

// -- Section 5 renderings -----------------------------------------------------

// Table III: overall statistics for each trace.
std::string RenderTable3(const std::vector<NamedAnalysis>& traces);
// Section 3.1 sidebar: inter-event interval bounds.
std::string RenderEventIntervals(const std::vector<NamedAnalysis>& traces);
// Table IV: system activity.
std::string RenderTable4(const std::vector<NamedAnalysis>& traces);
// Table V: sequentiality.
std::string RenderTable5(const std::vector<NamedAnalysis>& traces);
// Figure 1: sequential run lengths (CDF table + ASCII plot).
std::string RenderFigure1(const std::vector<NamedAnalysis>& traces);
// Figure 2: dynamic file sizes.
std::string RenderFigure2(const std::vector<NamedAnalysis>& traces);
// Figure 3: open durations.
std::string RenderFigure3(const std::vector<NamedAnalysis>& traces);
// Figure 4: file lifetimes.
std::string RenderFigure4(const std::vector<NamedAnalysis>& traces);

// -- Section 6 sweeps ---------------------------------------------------------

// All three §6 sweeps (Figs. 5-7) computed from ONE reconstruction of the
// trace: the replay log is built once and shared by every configuration and
// every figure, and each figure runs through the sweep planner
// (RunPlannedSweep) — fused write-policy replays plus one exact Mattson
// stack-distance pass per (block size, page-in) family, which yields the
// dense miss-ratio curves below as a by-product (see DESIGN.md §12).
struct StandardSweeps {
  std::vector<SweepPoint> fig5;  // Fig. 5 / Table VI points
  std::vector<SweepPoint> fig6;  // Fig. 6 / Table VII points
  std::vector<SweepPoint> fig7;  // Fig. 7 points
  // Single-pass fetch-miss curves: fig5_curves holds the 4 KB family (the
  // collapsed Fig. 5 size axis), fig6_curves one curve per block size,
  // fig7_curves the page-in on/off pair.
  std::vector<SweepCurve> fig5_curves;
  std::vector<SweepCurve> fig6_curves;
  std::vector<SweepCurve> fig7_curves;
  // True iff every Mattson prediction matched its replayed config
  // bit-for-bit (AND of the three planned sweeps' parity flags).
  bool parity = true;
  size_t stack_passes = 0;
  size_t fused_replays = 0;
  size_t replay_fallbacks = 0;
};
StandardSweeps RunStandardSweeps(const Trace& trace, unsigned threads = 0);

// -- Section 6 renderings -----------------------------------------------------

// Figure 5 / Table VI: miss ratio vs. cache size and write policy
// (points from Fig5Configs()).
std::string RenderFigure5Table6(const std::vector<SweepPoint>& points);
// Figure 6 / Table VII: disk I/Os vs. block size and cache size
// (points from Fig6Configs()).
std::string RenderFigure6Table7(const std::vector<SweepPoint>& points);
// Figure 7: effect of simulated program page-in (points from Fig7Configs()).
std::string RenderFigure7(const std::vector<SweepPoint>& points);
// §6.2 sidebar: cache residency and discarded-write statistics.
std::string RenderWriteLifetimeSidebar(const std::vector<SweepPoint>& fig5_points);
// Single-pass Mattson curves: the dense fetch-miss-ratio column of every
// curve, one table row per sampled cache size (the Fig. 5 size axis at 13
// points from one pass instead of one replay per size).
std::string RenderMissRatioCurves(const std::vector<SweepCurve>& curves);

// §7 hierarchy figure: global miss ratio (disk I/Os per logical access at
// the top of the hierarchy) vs. client size x server size x client write
// policy, one table per policy plus a plot over the server-size axis
// (points from HierarchySweepConfigs() via RunHierarchySweep).
std::string RenderHierarchySweep(const HierarchySweepResult& result);

// Table I: the headline summary, derived from an analysis plus both sweeps.
std::string RenderTable1(const TraceAnalysis& analysis,
                         const std::vector<SweepPoint>& fig5_points,
                         const std::vector<SweepPoint>& fig6_points);

// -- Machine-readable export --------------------------------------------------

// Writes every figure's data series as CSV files under `dir`
// (fig1_runs.csv, fig2_filesizes.csv, fig3_opentimes.csv, fig4_lifetimes.csv),
// one row per x value with one column pair per trace.  The directory must
// exist.  Benches call this when BSDTRACE_CSV_DIR is set.
Status ExportFigureCsvs(const std::string& dir, const std::vector<NamedAnalysis>& traces);
// Writes a cache sweep as CSV (config axes + metrics), e.g. fig5.csv.
Status ExportSweepCsv(const std::string& path, const std::vector<SweepPoint>& points);
// Writes the single-pass miss-ratio curves as CSV: one row per
// (curve, cache size) with the exact fetch-miss column.
Status ExportCurveCsv(const std::string& path, const std::vector<SweepCurve>& curves);
// Writes a hierarchy sweep as CSV: one row per (client size, server size,
// policy) point with per-level traffic and the global miss ratio.
Status ExportHierarchyCsv(const std::string& path, const std::vector<HierarchyPoint>& points);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CORE_EXPERIMENTS_H_
