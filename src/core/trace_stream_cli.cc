#include "src/core/trace_stream_cli.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/per_user_activity.h"
#include "src/core/experiments.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/validate.h"
#include "src/workload/fleet.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: trace_stream generate <out.trc> [profile=A5] [hours=6] [shards=8]\n"
      "                             [threads=0] [seed=19851201]\n"
      "                             [--profile=SPEC] [--users=N] [--hours=H]\n"
      "                             [--shards=S] [--threads=T] [--seed=X]\n"
      "                             [--compress=none|lz] [--wave-users=N]\n"
      "       trace_stream analyze  <in.trc> [--threads=N] [--check-bands]\n"
      "                             [--sweep=fig5|fig6|fig7]\n"
      "       trace_stream info     <in.trc>\n"
      "profile: A5 | E3 | C4 | a fleet spec like fleet:4xA5+2xE3+2xC4\n"
      "--users=N population-scales every machine instance to N users\n"
      "--compress=lz writes compressed v4 blocks (default none: v3 bytes)\n"
      "--wave-users=N generates the fleet in bounded-memory waves of at most\n"
      "N (scaled) users each; the record stream is wave-invariant\n"
      "--sweep runs the planned §6 cache sweep (fused replays + one-pass\n"
      "Mattson curves) instead of the §5 analysis tables\n");
  return 2;
}

// Strict numeric parsers: the whole string must parse and land in range.
// (The CLI used to run arguments through bare atof/atoi, which read
// "8oops" as 8 and "oops" as 0 — silently generating the wrong trace.)

bool ParseU64Arg(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseIntArg(const std::string& s, int min, int max, int* out) {
  uint64_t v = 0;
  if (!ParseU64Arg(s, &v) || v > static_cast<uint64_t>(max)) {
    return false;
  }
  if (static_cast<int>(v) < min) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseHoursArg(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v) || v <= 0.0 ||
      v > 24.0 * 365.0) {
    return false;
  }
  *out = v;
  return true;
}

int BadArg(const char* what, const std::string& value) {
  std::fprintf(stderr, "trace_stream: invalid %s \"%s\"\n", what, value.c_str());
  return Usage();
}

// Returns the flag's value if `arg` is --name=value, nullptr otherwise.
const char* FlagValue(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, "--", 2) == 0 && std::strncmp(arg + 2, name, n) == 0 &&
      arg[2 + n] == '=') {
    return arg + 2 + n + 1;
  }
  return nullptr;
}

int Generate(int argc, const char* const* argv) {
  std::string out_path;
  std::string profile_spec = "A5";
  double hours = 6.0;
  int users = 0;
  int shards = 8;
  int threads = 0;
  int wave_users = 0;
  uint64_t seed = 19851201;
  std::string compress = "none";

  // Positionals in the legacy order first, then flags, so flags win.
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags.push_back(argv[i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 6) {
    return Usage();
  }
  out_path = positional[0];
  if (positional.size() > 1) {
    profile_spec = positional[1];
  }
  if (positional.size() > 2 && !ParseHoursArg(positional[2], &hours)) {
    return BadArg("hours", positional[2]);
  }
  if (positional.size() > 3 && !ParseIntArg(positional[3], 1, 4096, &shards)) {
    return BadArg("shards", positional[3]);
  }
  if (positional.size() > 4 && !ParseIntArg(positional[4], 0, 4096, &threads)) {
    return BadArg("threads", positional[4]);
  }
  if (positional.size() > 5 && !ParseU64Arg(positional[5], &seed)) {
    return BadArg("seed", positional[5]);
  }
  for (const char* arg : flags) {
    if (const char* v = FlagValue(arg, "profile")) {
      profile_spec = v;
    } else if (const char* v = FlagValue(arg, "users")) {
      if (!ParseIntArg(v, 0, 1000000, &users)) {
        return BadArg("--users", v);
      }
    } else if (const char* v = FlagValue(arg, "hours")) {
      if (!ParseHoursArg(v, &hours)) {
        return BadArg("--hours", v);
      }
    } else if (const char* v = FlagValue(arg, "shards")) {
      if (!ParseIntArg(v, 1, 4096, &shards)) {
        return BadArg("--shards", v);
      }
    } else if (const char* v = FlagValue(arg, "threads")) {
      if (!ParseIntArg(v, 0, 4096, &threads)) {
        return BadArg("--threads", v);
      }
    } else if (const char* v = FlagValue(arg, "seed")) {
      if (!ParseU64Arg(v, &seed)) {
        return BadArg("--seed", v);
      }
    } else if (const char* v = FlagValue(arg, "compress")) {
      compress = v;
      if (compress != "none" && compress != "lz") {
        return BadArg("--compress", v);
      }
    } else if (const char* v = FlagValue(arg, "wave-users")) {
      if (!ParseIntArg(v, 0, 100000000, &wave_users)) {
        return BadArg("--wave-users", v);
      }
    } else {
      std::fprintf(stderr, "trace_stream: unknown flag \"%s\"\n", arg);
      return Usage();
    }
  }

  StatusOr<FleetProfile> fleet = ParseFleetSpec(profile_spec, users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "trace_stream: %s\n", fleet.status().message().c_str());
    return Usage();
  }

  FleetGeneratorOptions options;
  options.base.seed = seed;
  options.base.duration = Duration::Hours(hours);
  options.shards_per_machine = shards;
  options.threads = threads;
  options.wave_users = wave_users;
  if (compress == "lz") {
    options.file_options.version = 4;  // codec defaults to lz in v4
  }

  auto stats = GenerateFleetToFile(fleet.value(), options, out_path);
  if (!stats.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", stats.status().message().c_str());
    return 1;
  }
  const ShardedStreamStats& s = stats.value();
  std::printf("wrote %s: %llu records (%s)\n", out_path.c_str(),
              static_cast<unsigned long long>(s.records_streamed),
              s.header.description.c_str());
  std::printf("spilled %.1f MB across %zu machine(s) x %d shards in %llu wave(s); fsck %s\n",
              static_cast<double>(s.spill_bytes_written) / 1048576.0,
              fleet.value().machines.size(), shards,
              static_cast<unsigned long long>(s.waves),
              s.fsck.ok() ? "clean" : s.fsck.Summary().c_str());
  return s.fsck.ok() ? 0 : 1;
}

// Prints the per-instance Table I verdicts; returns 0 only if every
// instance's per-user rate sits inside its profile band.
int ReportBands(const TraceHeader& header, const PerUserActivityStats& per_user) {
  const std::vector<ActivityBandCheck> checks = CheckActivityBands(header, per_user);
  if (checks.empty()) {
    std::fprintf(stderr,
                 "check-bands: trace carries no fleet tag (or is too short); "
                 "generate it with this tool to tag it\n");
    return 1;
  }
  std::printf("\nTable I per-user activity bands\n");
  bool all_ok = true;
  for (const ActivityBandCheck& c : checks) {
    std::printf("  instance %zu %-3s %5d users  %8.1f records/user/day  band [%.0f, %.0f]  %s\n",
                c.instance, c.trace_name.c_str(), c.user_population,
                c.records_per_user_day, c.band.min_records_per_user_day,
                c.band.max_records_per_user_day, c.ok ? "ok" : "FAIL");
    all_ok = all_ok && c.ok;
  }
  return all_ok ? 0 : 1;
}

int Analyze(int argc, const char* const* argv) {
  if (argc < 1) {
    return Usage();
  }
  const std::string path = argv[0];
  unsigned threads = 0;  // hardware concurrency
  bool check_bands = false;
  std::string sweep;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "threads")) {
      int t = 0;
      if (!ParseIntArg(v, 0, 4096, &t)) {
        return BadArg("--threads", v);
      }
      threads = static_cast<unsigned>(t);
    } else if (const char* v = FlagValue(argv[i], "sweep")) {
      sweep = v;
      if (sweep != "fig5" && sweep != "fig6" && sweep != "fig7") {
        return BadArg("--sweep", v);
      }
    } else if (std::strcmp(argv[i], "--check-bands") == 0) {
      check_bands = true;
    } else {
      return Usage();
    }
  }
  if (!sweep.empty()) {
    // The cache sweep replays reconstructed transfers, so it needs the
    // records in memory (the §5 tables stream instead).
    StatusOr<Trace> trace = LoadTrace(path);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   trace.status().message().c_str());
      return 1;
    }
    const std::vector<CacheConfig> configs =
        sweep == "fig5" ? Fig5Configs() : sweep == "fig6" ? Fig6Configs() : Fig7Configs();
    const PlannedSweep planned = RunPlannedSweep(trace.value(), configs, {}, threads);
    if (sweep == "fig5") {
      std::fputs(RenderFigure5Table6(planned.points).c_str(), stdout);
    } else if (sweep == "fig6") {
      std::fputs(RenderFigure6Table7(planned.points).c_str(), stdout);
    } else {
      std::fputs(RenderFigure7(planned.points).c_str(), stdout);
    }
    std::fputs(RenderMissRatioCurves(planned.curves).c_str(), stdout);
    std::printf("planned sweep: %zu stack pass(es), %zu fused replay(s), %zu fallback(s); "
                "parity %s\n",
                planned.stack_passes, planned.fused_replays, planned.replay_fallbacks,
                planned.parity ? "ok" : "FAIL");
    return planned.parity ? 0 : 1;
  }
  auto analysis = AnalyzeTraceFile(path, threads);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n", analysis.status().message().c_str());
    return 1;
  }
  TraceFileSource source(path);  // header only, for the table label + fleet tag
  const std::string label = source.status().ok() ? source.header().machine : path;
  const std::vector<NamedAnalysis> named = {{label, &analysis.value()}};
  std::fputs(RenderTable3(named).c_str(), stdout);
  std::fputs(RenderTable4(named).c_str(), stdout);
  std::fputs(RenderTable5(named).c_str(), stdout);
  if (check_bands) {
    if (!source.status().ok()) {
      std::fprintf(stderr, "check-bands: cannot re-read header: %s\n",
                   source.status().message().c_str());
      return 1;
    }
    return ReportBands(source.header(), analysis.value().per_user);
  }
  return 0;
}

int Info(const char* path) {
  TraceFileSource source(path);
  if (!source.status().ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path, source.status().message().c_str());
    return 1;
  }
  std::printf("machine:     %s\n", source.header().machine.c_str());
  std::printf("description: %s\n", source.header().description.c_str());
  if (source.size_hint() >= 0) {
    std::printf("declared:    %lld records\n", static_cast<long long>(source.size_hint()));
  } else {
    std::printf("declared:    unknown (v1 or streamed file)\n");
  }

  // Full integrity pass: decodes every record, verifies v3 block checksums,
  // and cross-checks the footer index against the blocks.
  const TraceFileCheck check = CheckTraceFile(path);
  std::printf("format:      v%d\n", check.version);
  if (check.has_index) {
    std::printf("index:       %llu blocks, %llu records indexed\n",
                static_cast<unsigned long long>(check.index_entries),
                static_cast<unsigned long long>(check.indexed_records));
  } else if (check.version >= 3) {
    std::printf("index:       none (sequential-only v%d file)\n", check.version);
  } else {
    std::printf("index:       n/a (v%d has no block index)\n", check.version);
  }
  if (check.version >= 3) {
    std::printf("checksums:   %llu blocks %s\n",
                static_cast<unsigned long long>(check.blocks_verified),
                check.ok() ? "verified" : "scanned before failure");
  }
  if (check.version >= 4) {
    std::printf("codec:       %s\n", check.codec.c_str());
    std::printf("compressed:  %llu bytes stored / %llu bytes raw (%.2fx)\n",
                static_cast<unsigned long long>(check.payload_stored_bytes),
                static_cast<unsigned long long>(check.payload_raw_bytes),
                check.payload_stored_bytes > 0
                    ? static_cast<double>(check.payload_raw_bytes) /
                          static_cast<double>(check.payload_stored_bytes)
                    : 1.0);
  }
  if (!check.ok()) {
    std::fprintf(stderr, "integrity check failed after %llu records: %s\n",
                 static_cast<unsigned long long>(check.records),
                 check.status.message().c_str());
    return 1;
  }
  std::printf("records:     %llu\n", static_cast<unsigned long long>(check.records));
  std::printf("span:        %.2f simulated hours\n",
              (check.last_time - SimTime::Origin()).hours());
  return 0;
}

}  // namespace

int TraceStreamMain(int argc, const char* const* argv) {
  if (argc < 3) {
    return Usage();
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "generate") == 0) {
    return Generate(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "analyze") == 0) {
    return Analyze(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "info") == 0) {
    return Info(argv[2]);
  }
  return Usage();
}

}  // namespace bsdtrace
