#include "src/core/trace_stream_cli.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/analysis/per_user_activity.h"
#include "src/analysis/rolling_analyzer.h"
#include "src/core/experiments.h"
#include "src/trace/import/strace_import.h"
#include "src/trace/import/text_import.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_ring.h"
#include "src/trace/trace_source.h"
#include "src/trace/validate.h"
#include "src/util/parse.h"
#include "src/workload/fleet.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

// Rendered from the subcommand registry + flag table below: every usage and
// help line is generated, so a new flag shows up everywhere by being added
// to the table once.
int Usage();

// Strict numeric parsers: the whole string must parse and land in range.
// All integer flags route through the one checked parser in src/util/parse.h
// (sign, overflow, and trailing garbage all reject — the CLI used to run
// arguments through bare strtoull/atoi, which wrapped "18446744073709551616"
// and read "8oops" as 8, silently generating the wrong trace).

bool ParseU64Arg(const std::string& s, uint64_t* out) { return ParseUint64(s, out); }

bool ParseIntArg(const std::string& s, int min, int max, int* out) {
  return ParseInt32InRange(s, min, max, out);
}

bool ParseHoursArg(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v) || v <= 0.0 ||
      v > 24.0 * 365.0) {
    return false;
  }
  *out = v;
  return true;
}

int BadArg(const char* what, const std::string& value) {
  std::fprintf(stderr, "trace_stream: invalid %s \"%s\"\n", what, value.c_str());
  return Usage();
}

// -- The one flag table -------------------------------------------------------
//
// Every flag any subcommand accepts is defined exactly once here: name,
// whether it takes a =value, and how it parses into CliOptions.  A
// subcommand declares its surface as a list of names (ParseFlags); there are
// no per-subcommand parser copies, so --seed means the same thing — same
// syntax, same range, same strictness — everywhere it is accepted.

struct CliOptions {
  std::string profile = "A5";
  int users = 0;  // 0: keep each profile's native population
  double hours = 6.0;
  int shards = 8;
  int threads = 0;  // 0: hardware concurrency
  int wave_users = 0;
  uint64_t seed = 19851201;
  std::string compress = "none";
  bool check_bands = false;
  std::string sweep;
  // import/export only
  std::string format = "bsdtxt";
  std::string out;  // export destination; empty: stdout
  bool no_validate = false;
  // serve only
  int analyzers = 1;
  int capacity = 1 << 14;
  std::string policy = "block";
  double snapshot_hours = 1.0;
};

struct FlagSpec {
  const char* name;
  bool takes_value;
  const char* value_hint;  // shown as --name=<hint> in usage; "" when flag-only
  const char* help;        // one-line description for --help
  // Returns false if the value is invalid (the caller reports it).
  std::function<bool(CliOptions*, const std::string&)> parse;
};

const std::vector<FlagSpec>& FlagTable() {
  static const std::vector<FlagSpec>* table = new std::vector<FlagSpec>{
      {"profile", true, "SPEC",
       "machine profile: A5 | E3 | C4 | a fleet spec like fleet:4xA5+2xE3+2xC4",
       [](CliOptions* o, const std::string& v) {
         o->profile = v;
         return !v.empty();
       }},
      {"users", true, "N", "population-scale every machine instance to N users (0: native)",
       [](CliOptions* o, const std::string& v) {
         return ParseIntArg(v, 0, 1000000, &o->users);
       }},
      {"hours", true, "H", "simulated trace duration in hours",
       [](CliOptions* o, const std::string& v) { return ParseHoursArg(v, &o->hours); }},
      {"shards", true, "S", "generator shards per machine instance",
       [](CliOptions* o, const std::string& v) { return ParseIntArg(v, 1, 4096, &o->shards); }},
      {"threads", true, "T", "worker threads (0: hardware concurrency)",
       [](CliOptions* o, const std::string& v) { return ParseIntArg(v, 0, 4096, &o->threads); }},
      {"seed", true, "X", "generation seed (deterministic per seed)",
       [](CliOptions* o, const std::string& v) { return ParseU64Arg(v, &o->seed); }},
      {"compress", true, "none|lz", "lz writes compressed v4 blocks (default none: v3 bytes)",
       [](CliOptions* o, const std::string& v) {
         o->compress = v;
         return v == "none" || v == "lz";
       }},
      {"wave-users", true, "N",
       "generate the fleet in bounded-memory waves of at most N scaled users "
       "(stream is wave-invariant)",
       [](CliOptions* o, const std::string& v) {
         return ParseIntArg(v, 0, 100000000, &o->wave_users);
       }},
      {"check-bands", false, "", "gate on the Table I per-user activity bands",
       [](CliOptions* o, const std::string&) {
         o->check_bands = true;
         return true;
       }},
      {"sweep", true, "fig5|fig6|fig7|hier",
       "run a planned cache sweep instead of the §5 tables: the §6 figures "
       "(fused replays + one-pass Mattson curves) or the §7 client/server "
       "hierarchy grid",
       [](CliOptions* o, const std::string& v) {
         o->sweep = v;
         return v == "fig5" || v == "fig6" || v == "fig7" || v == "hier";
       }},
      {"analyzers", true, "K", "rolling analyzers fed from the ring",
       [](CliOptions* o, const std::string& v) { return ParseIntArg(v, 1, 64, &o->analyzers); }},
      {"capacity", true, "C", "ring capacity in records",
       [](CliOptions* o, const std::string& v) {
         return ParseIntArg(v, 2, 1 << 24, &o->capacity);
       }},
      {"policy", true, "block|drop-oldest", "ring overflow policy",
       [](CliOptions* o, const std::string& v) {
         o->policy = v;
         return v == "block" || v == "drop-oldest";
       }},
      {"snapshot-hours", true, "H", "publish a rolling snapshot every H simulated hours",
       [](CliOptions* o, const std::string& v) {
         return ParseHoursArg(v, &o->snapshot_hours);
       }},
      {"format", true, "bsdtxt|strace",
       "input log format: bsdtxt (this tool's text export) or a raw "
       "`strace -f -ttt` syscall log",
       [](CliOptions* o, const std::string& v) {
         o->format = v;
         return v == "bsdtxt" || v == "strace";
       }},
      {"out", true, "PATH", "write the text export to PATH instead of stdout",
       [](CliOptions* o, const std::string& v) {
         o->out = v;
         return !v.empty();
       }},
      {"no-validate", false, "",
       "skip the structural validator on the imported records (write as-is)",
       [](CliOptions* o, const std::string&) {
         o->no_validate = true;
         return true;
       }},
  };
  return *table;
}

const FlagSpec* FindFlag(const std::string& name) {
  for (const FlagSpec& s : FlagTable()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

// -- The subcommand registry --------------------------------------------------
//
// One entry per subcommand: its positional synopsis and its flag surface
// (names into the flag table).  Usage, --help, and wrong-flag errors are all
// rendered from here, so the listed surface IS the accepted surface.

struct SubcommandSpec {
  const char* name;
  const char* positionals;
  const char* blurb;  // one-line summary for --help
  std::vector<const char*> flags;
};

const std::vector<SubcommandSpec>& Subcommands() {
  static const std::vector<SubcommandSpec>* subs = new std::vector<SubcommandSpec>{
      {"generate", "<out.trc> [profile=A5] [hours=6] [shards=8] [threads=0] [seed=19851201]",
       "generate a trace file (sharded, merged in time order)",
       {"profile", "users", "hours", "shards", "threads", "seed", "compress", "wave-users"}},
      {"analyze", "<in.trc>",
       "render the §5 analysis tables, or a cache sweep with --sweep",
       {"threads", "check-bands", "sweep"}},
      {"serve", "",
       "stream the generator through in-memory rings to rolling analyzers",
       {"profile", "users", "hours", "shards", "threads", "seed", "analyzers", "capacity",
        "policy", "snapshot-hours", "check-bands"}},
      {"import", "<in.log> <out.trc>",
       "convert a foreign text log (bsdtxt or strace) to a binary trace",
       {"format", "compress", "no-validate"}},
      {"export", "<in.trc>", "render a binary trace as bsdtxt text", {"out"}},
      {"info", "<in.trc>", "print header, format, and integrity information", {}},
  };
  return *subs;
}

const SubcommandSpec* FindSubcommand(const std::string& name) {
  for (const SubcommandSpec& s : Subcommands()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

std::string FlagSynopsis(const FlagSpec& f) {
  std::string out = "[--";
  out += f.name;
  if (f.takes_value) {
    out += "=";
    out += f.value_hint;
  }
  out += "]";
  return out;
}

// The wrapped "trace_stream <cmd> <positionals> [flags...]" block, flag list
// generated from the table.
void PrintSubcommandUsage(std::FILE* out, const SubcommandSpec& sub, const char* lead) {
  std::string line = std::string(lead) + "trace_stream " + sub.name;
  if (sub.positionals[0] != '\0') {
    line += " ";
    line += sub.positionals;
  }
  const std::string indent(std::strlen(lead) + std::strlen("trace_stream ") +
                               std::strlen(sub.name) + 1,
                           ' ');
  for (const char* name : sub.flags) {
    const FlagSpec* spec = FindFlag(name);
    const std::string synopsis = FlagSynopsis(*spec);
    if (line.size() + 1 + synopsis.size() > 78) {
      std::fprintf(out, "%s\n", line.c_str());
      line = indent + synopsis;
    } else {
      line += " " + synopsis;
    }
  }
  std::fprintf(out, "%s\n", line.c_str());
}

int Usage() {
  std::fprintf(stderr, "usage:\n");
  for (const SubcommandSpec& sub : Subcommands()) {
    PrintSubcommandUsage(stderr, sub, "  ");
  }
  std::fprintf(stderr, "run \"trace_stream <command> --help\" for per-flag descriptions\n");
  return 2;
}

// Wrong flag / bad value inside a subcommand: name the subcommand and show
// ITS usage line, not the whole wall.
int UsageFor(const SubcommandSpec& sub) {
  std::fprintf(stderr, "usage:\n");
  PrintSubcommandUsage(stderr, sub, "  ");
  return 2;
}

// Full per-subcommand help (stdout, exit 0): the flag list with the table's
// help strings.
int HelpFor(const SubcommandSpec& sub) {
  std::printf("trace_stream %s — %s\n", sub.name, sub.blurb);
  PrintSubcommandUsage(stdout, sub, "usage: ");
  if (!sub.flags.empty()) {
    std::printf("flags:\n");
    for (const char* name : sub.flags) {
      const FlagSpec* spec = FindFlag(name);
      std::string synopsis = "--" + std::string(spec->name);
      if (spec->takes_value) {
        synopsis += "=" + std::string(spec->value_hint);
      }
      std::printf("  %-28s %s\n", synopsis.c_str(), spec->help);
    }
  }
  return 0;
}

int HelpMain() {
  std::printf("usage:\n");
  for (const SubcommandSpec& sub : Subcommands()) {
    PrintSubcommandUsage(stdout, sub, "  ");
  }
  std::printf("commands:\n");
  for (const SubcommandSpec& sub : Subcommands()) {
    std::printf("  %-9s %s\n", sub.name, sub.blurb);
  }
  std::printf("run \"trace_stream <command> --help\" for per-flag descriptions\n");
  return 0;
}

bool WantsHelp(const std::vector<const char*>& flags) {
  for (const char* arg : flags) {
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return true;
    }
  }
  return false;
}

// Parses every --flag argument against the table, restricted to the
// subcommand's registered surface.  Returns 0 on success, a usage exit code
// otherwise; every error names the subcommand it happened in.  Non-flag
// arguments are the caller's positionals.
int ParseFlags(const SubcommandSpec& sub, const std::vector<const char*>& flags,
               CliOptions* out) {
  for (const char* arg : flags) {
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "trace_stream %s: expected a --flag, got \"%s\"\n", sub.name, arg);
      return UsageFor(sub);
    }
    const char* body = arg + 2;
    const char* eq = std::strchr(body, '=');
    const std::string name = eq != nullptr ? std::string(body, eq) : std::string(body);
    const FlagSpec* spec = FindFlag(name);
    bool in_surface = false;
    for (const char* a : sub.flags) {
      if (name == a) {
        in_surface = true;
        break;
      }
    }
    if (spec == nullptr || !in_surface) {
      if (spec != nullptr) {
        // Known flag, wrong subcommand: say which subcommand rejected it.
        std::fprintf(stderr, "trace_stream %s: flag \"%s\" is not accepted by %s\n", sub.name,
                     arg, sub.name);
      } else {
        std::fprintf(stderr, "trace_stream %s: unknown flag \"%s\"\n", sub.name, arg);
      }
      return UsageFor(sub);
    }
    if (spec->takes_value != (eq != nullptr)) {
      std::fprintf(stderr, "trace_stream %s: flag \"--%s\" %s a value\n", sub.name, spec->name,
                   spec->takes_value ? "requires" : "does not take");
      return UsageFor(sub);
    }
    const std::string value = eq != nullptr ? std::string(eq + 1) : std::string();
    if (!spec->parse(out, value)) {
      std::fprintf(stderr, "trace_stream %s: invalid --%s \"%s\"\n", sub.name, name.c_str(),
                   value.c_str());
      return UsageFor(sub);
    }
  }
  return 0;
}

// Splits argv into positionals and flag arguments (anything led by "--").
void SplitArgs(int argc, const char* const* argv, std::vector<std::string>* positional,
               std::vector<const char*>* flags) {
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags->push_back(argv[i]);
    } else {
      positional->push_back(argv[i]);
    }
  }
}

// -- generate -----------------------------------------------------------------

int CmdGenerate(int argc, const char* const* argv) {
  const SubcommandSpec& sub = *FindSubcommand("generate");
  CliOptions opt;
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  SplitArgs(argc, argv, &positional, &flags);
  if (WantsHelp(flags)) {
    return HelpFor(sub);
  }
  if (positional.empty() || positional.size() > 6) {
    return UsageFor(sub);
  }
  // Positionals in the legacy order first, then flags, so flags win.
  const std::string out_path = positional[0];
  if (positional.size() > 1) {
    opt.profile = positional[1];
  }
  if (positional.size() > 2 && !ParseHoursArg(positional[2], &opt.hours)) {
    return BadArg("hours", positional[2]);
  }
  if (positional.size() > 3 && !ParseIntArg(positional[3], 1, 4096, &opt.shards)) {
    return BadArg("shards", positional[3]);
  }
  if (positional.size() > 4 && !ParseIntArg(positional[4], 0, 4096, &opt.threads)) {
    return BadArg("threads", positional[4]);
  }
  if (positional.size() > 5 && !ParseU64Arg(positional[5], &opt.seed)) {
    return BadArg("seed", positional[5]);
  }
  if (const int rc = ParseFlags(sub, flags, &opt); rc != 0) {
    return rc;
  }

  StatusOr<FleetProfile> fleet = ParseFleetSpec(opt.profile, opt.users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "trace_stream: %s\n", fleet.status().message().c_str());
    return Usage();
  }

  FleetGeneratorOptions options;
  options.base.seed = opt.seed;
  options.base.duration = Duration::Hours(opt.hours);
  options.shards_per_machine = opt.shards;
  options.threads = opt.threads;
  options.wave_users = opt.wave_users;
  if (opt.compress == "lz") {
    options.file_options.version = 4;  // codec defaults to lz in v4
  }

  auto stats = GenerateFleetToFile(fleet.value(), options, out_path);
  if (!stats.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", stats.status().message().c_str());
    return 1;
  }
  const ShardedStreamStats& s = stats.value();
  std::printf("wrote %s: %llu records (%s)\n", out_path.c_str(),
              static_cast<unsigned long long>(s.records_streamed),
              s.header.description.c_str());
  std::printf("spilled %.1f MB across %zu machine(s) x %d shards in %llu wave(s); fsck %s\n",
              static_cast<double>(s.spill_bytes_written) / 1048576.0,
              fleet.value().machines.size(), opt.shards,
              static_cast<unsigned long long>(s.waves),
              s.fsck.ok() ? "clean" : s.fsck.Summary().c_str());
  return s.fsck.ok() ? 0 : 1;
}

// -- analyze ------------------------------------------------------------------

// Prints the per-instance Table I verdicts; returns 0 only if every
// instance's per-user rate sits inside its profile band.
int ReportBands(const std::vector<ActivityBandCheck>& checks) {
  if (checks.empty()) {
    std::fprintf(stderr,
                 "check-bands: trace carries no fleet tag (or is too short); "
                 "generate it with this tool to tag it\n");
    return 1;
  }
  std::printf("\nTable I per-user activity bands\n");
  bool all_ok = true;
  for (const ActivityBandCheck& c : checks) {
    std::printf("  instance %zu %-3s %5d users  %8.1f records/user/day  band [%.0f, %.0f]  %s\n",
                c.instance, c.trace_name.c_str(), c.user_population,
                c.records_per_user_day, c.band.min_records_per_user_day,
                c.band.max_records_per_user_day, c.ok ? "ok" : "FAIL");
    all_ok = all_ok && c.ok;
  }
  return all_ok ? 0 : 1;
}

int CmdAnalyze(int argc, const char* const* argv) {
  const SubcommandSpec& sub = *FindSubcommand("analyze");
  CliOptions opt;
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  SplitArgs(argc, argv, &positional, &flags);
  if (WantsHelp(flags)) {
    return HelpFor(sub);
  }
  if (positional.size() != 1) {
    return UsageFor(sub);
  }
  const std::string path = positional[0];
  if (const int rc = ParseFlags(sub, flags, &opt); rc != 0) {
    return rc;
  }
  if (!opt.sweep.empty()) {
    // The cache sweep replays reconstructed transfers, so it needs the
    // records in memory (the §5 tables stream instead).
    StatusOr<Trace> trace = LoadTrace(path);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   trace.status().message().c_str());
      return 1;
    }
    if (opt.sweep == "hier") {
      // §7: client size x server size x client write policy, client-0 rows
      // served by fused single-level replays with a cross-engine parity gate.
      const HierarchySweepResult result = RunHierarchySweep(
          trace.value(), HierarchySweepConfigs(), static_cast<unsigned>(opt.threads));
      std::fputs(RenderHierarchySweep(result).c_str(), stdout);
      return result.parity ? 0 : 1;
    }
    const std::vector<CacheConfig> configs = opt.sweep == "fig5"   ? Fig5Configs()
                                             : opt.sweep == "fig6" ? Fig6Configs()
                                                                   : Fig7Configs();
    const PlannedSweep planned = RunPlannedSweep(trace.value(), configs, {},
                                                 static_cast<unsigned>(opt.threads));
    if (opt.sweep == "fig5") {
      std::fputs(RenderFigure5Table6(planned.points).c_str(), stdout);
    } else if (opt.sweep == "fig6") {
      std::fputs(RenderFigure6Table7(planned.points).c_str(), stdout);
    } else {
      std::fputs(RenderFigure7(planned.points).c_str(), stdout);
    }
    std::fputs(RenderMissRatioCurves(planned.curves).c_str(), stdout);
    std::printf("planned sweep: %zu stack pass(es), %zu fused replay(s), %zu fallback(s); "
                "parity %s\n",
                planned.stack_passes, planned.fused_replays, planned.replay_fallbacks,
                planned.parity ? "ok" : "FAIL");
    return planned.parity ? 0 : 1;
  }

  AnalyzeOptions analyze_options;
  analyze_options.path = path;
  analyze_options.threads = static_cast<unsigned>(opt.threads);
  analyze_options.check_bands = opt.check_bands;
  auto analysis = Analyze(analyze_options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n", analysis.status().message().c_str());
    return 1;
  }
  const TraceAnalysis& a = analysis.value();
  TraceFileSource source(path);  // header only, for the table label
  const std::string label = source.status().ok() ? source.header().machine : path;
  const std::vector<NamedAnalysis> named = {{label, &a}};
  std::fputs(RenderTable3(named).c_str(), stdout);
  std::fputs(RenderTable4(named).c_str(), stdout);
  std::fputs(RenderTable5(named).c_str(), stdout);
  // Which engine actually ran: a serial fallback (no block index, one
  // thread) is a fact worth surfacing, not a silent substitution.
  std::printf("analysis engine: %s (%u thread(s), %zu segment(s))\n", AnalyzeModeName(a.mode),
              a.threads_used, a.segments_used);
  if (opt.check_bands) {
    return ReportBands(a.band_checks);
  }
  return 0;
}

// -- serve --------------------------------------------------------------------

// SIGINT/SIGTERM request a clean shutdown: the fan-out sink starts
// discarding, the rings close, the analyzers finish their prefix.
// Written by the signal handler on whichever thread takes the signal, read
// by the generator thread: must be a lock-free atomic, not sig_atomic_t
// (which is only async-signal-safe within a single thread).
std::atomic<bool> g_stop{false};
void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

// Fans the generator's record stream out to every analyzer's ring.  After a
// stop signal it discards instead (counting what it threw away), so the
// generator drains quickly without blocking on rings nobody empties.
class FanoutRingSink : public TraceSink {
 public:
  explicit FanoutRingSink(std::vector<std::unique_ptr<TraceRing>>* rings) : rings_(rings) {}

  void Append(const TraceRecord& record) override {
    if (g_stop.load(std::memory_order_relaxed)) {
      ++discarded_after_stop_;
      return;
    }
    for (const std::unique_ptr<TraceRing>& ring : *rings_) {
      ring->Push(record);
    }
  }

  uint64_t discarded_after_stop() const { return discarded_after_stop_; }

 private:
  std::vector<std::unique_ptr<TraceRing>>* rings_;
  uint64_t discarded_after_stop_ = 0;
};

int CmdServe(int argc, const char* const* argv) {
  const SubcommandSpec& sub = *FindSubcommand("serve");
  CliOptions opt;
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  SplitArgs(argc, argv, &positional, &flags);
  if (WantsHelp(flags)) {
    return HelpFor(sub);
  }
  if (!positional.empty()) {
    return UsageFor(sub);
  }
  if (const int rc = ParseFlags(sub, flags, &opt); rc != 0) {
    return rc;
  }

  StatusOr<FleetProfile> fleet = ParseFleetSpec(opt.profile, opt.users);
  if (!fleet.ok()) {
    std::fprintf(stderr, "trace_stream: %s\n", fleet.status().message().c_str());
    return Usage();
  }

  FleetGeneratorOptions gen_options;
  gen_options.base.seed = opt.seed;
  gen_options.base.duration = Duration::Hours(opt.hours);
  gen_options.shards_per_machine = opt.shards;
  gen_options.threads = opt.threads;

  TraceRingOptions ring_options;
  ring_options.capacity = static_cast<size_t>(opt.capacity);
  ring_options.policy = opt.policy == "drop-oldest" ? RingOverflowPolicy::kDropOldest
                                                    : RingOverflowPolicy::kBlock;

  // One ring per analyzer; each analyzer sees the full stream, so their
  // results must agree bit-for-bit when nothing was dropped.
  const TraceHeader header = FleetTraceHeader(fleet.value(), gen_options);
  std::vector<std::unique_ptr<TraceRing>> rings;
  for (int i = 0; i < opt.analyzers; ++i) {
    rings.push_back(std::make_unique<TraceRing>(header, ring_options));
  }
  FanoutRingSink sink(&rings);

  g_stop.store(false, std::memory_order_relaxed);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::printf("serving %s: %.1f simulated hours, %d analyzer(s), ring capacity %zu (%s), "
              "snapshot every %.2fh\n",
              fleet.value().spec.c_str(), opt.hours, opt.analyzers, rings[0]->capacity(),
              opt.policy.c_str(), opt.snapshot_hours);
  std::fflush(stdout);

  // Generator thread: the sharded fleet generation streams its time-ordered
  // merge into the fan-out sink — no intermediate file.
  StatusOr<ShardedStreamStats> gen_result = Status::Error("generator did not run");
  std::thread generator([&]() {
    gen_result = GenerateFleetTo(fleet.value(), gen_options, sink);
    for (const std::unique_ptr<TraceRing>& ring : rings) {
      ring->Close();
    }
  });

  // Analyzer threads: each drains its ring through a rolling analyzer.
  // Analyzer 0 narrates its snapshots; the rest run silently and serve as
  // the live parity check.
  std::mutex print_mu;
  std::vector<StatusOr<TraceAnalysis>> results(static_cast<size_t>(opt.analyzers),
                                               Status::Error("analyzer did not run"));
  std::vector<uint64_t> snapshot_counts(static_cast<size_t>(opt.analyzers), 0);
  std::vector<std::thread> analyzers;
  for (int i = 0; i < opt.analyzers; ++i) {
    analyzers.emplace_back([&, i]() {
      RingTraceSource source(rings[static_cast<size_t>(i)].get());
      RollingAnalyzer::SnapshotCallback callback;
      if (i == 0) {
        callback = [&](const TraceAnalysis& snapshot, SimTime boundary) {
          const TraceRingStats ring_stats = rings[0]->stats();
          std::lock_guard<std::mutex> lock(print_mu);
          std::printf("snapshot +%5.2fh  %9llu records  %4zu users  %8.0f bytes/s  "
                      "ring occ %llu/%zu drops %llu\n",
                      (boundary - SimTime::Origin()).hours(),
                      static_cast<unsigned long long>(snapshot.overall.total_records),
                      snapshot.per_user.users.size(), snapshot.activity.average_throughput,
                      static_cast<unsigned long long>(ring_stats.produced -
                                                      ring_stats.consumed -
                                                      ring_stats.dropped_oldest),
                      ring_stats.capacity,
                      static_cast<unsigned long long>(ring_stats.dropped()));
          std::fflush(stdout);
        };
      }
      RollingAnalyzer rolling(Duration::Hours(opt.snapshot_hours), std::move(callback));
      TraceRecord record;
      while (source.Next(&record)) {
        rolling.Process(record);
      }
      snapshot_counts[static_cast<size_t>(i)] = rolling.snapshots_published();
      results[static_cast<size_t>(i)] = rolling.Finish();
    });
  }

  generator.join();
  for (std::thread& t : analyzers) {
    t.join();
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  const bool stopped = g_stop.load(std::memory_order_relaxed);
  if (!stopped && !gen_result.ok()) {
    std::fprintf(stderr, "serve: generation failed: %s\n",
                 gen_result.status().message().c_str());
    return 1;
  }

  uint64_t total_drops = 0;
  for (size_t i = 0; i < rings.size(); ++i) {
    const TraceRingStats s = rings[i]->stats();
    total_drops += s.dropped();
    std::printf("ring[%zu]: produced %llu consumed %llu dropped %llu max occupancy %llu/%zu\n",
                i, static_cast<unsigned long long>(s.produced),
                static_cast<unsigned long long>(s.consumed),
                static_cast<unsigned long long>(s.dropped()),
                static_cast<unsigned long long>(s.max_occupancy), s.capacity);
  }

  const TraceAnalysis& a = results[0].value();
  // With zero drops every analyzer consumed the identical stream; their
  // analyses must agree bit-for-bit — the live end of the parity gate.
  bool parity = true;
  if (total_drops == 0) {
    for (size_t i = 1; i < results.size(); ++i) {
      parity = parity && AnalysisBitIdentical(a, results[i].value());
    }
  }

  const std::vector<NamedAnalysis> named = {{header.machine, &a}};
  std::fputs(RenderTable3(named).c_str(), stdout);
  std::fputs(RenderTable4(named).c_str(), stdout);
  std::printf("analysis engine: %s (%zu segment(s), %llu snapshot(s))\n",
              AnalyzeModeName(a.mode), a.segments_used,
              static_cast<unsigned long long>(snapshot_counts[0]));
  if (results.size() > 1 && total_drops == 0) {
    std::printf("analyzer parity: %s across %zu analyzers\n", parity ? "ok" : "FAIL",
                results.size());
  }
  std::printf("shutdown: %s (%llu record(s) discarded after stop)\n",
              stopped ? "signal" : "end of stream",
              static_cast<unsigned long long>(sink.discarded_after_stop()));

  int rc = parity ? 0 : 1;
  if (opt.check_bands && !stopped) {
    const int band_rc = ReportBands(CheckActivityBands(header, a.per_user));
    rc = rc != 0 ? rc : band_rc;
  }
  return rc;
}

// -- import / export ----------------------------------------------------------

// Converts a foreign text log into a binary v4 trace.  Records are
// materialized (both importers produce line numbers alongside), validated
// against the structural invariants by default, and written compressed.
int CmdImport(int argc, const char* const* argv) {
  const SubcommandSpec& sub = *FindSubcommand("import");
  CliOptions opt;
  opt.compress = "lz";  // imports default to compressed v4 blocks
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  SplitArgs(argc, argv, &positional, &flags);
  if (WantsHelp(flags)) {
    return HelpFor(sub);
  }
  if (positional.size() != 2) {
    return UsageFor(sub);
  }
  if (const int rc = ParseFlags(sub, flags, &opt); rc != 0) {
    return rc;
  }
  const std::string& in_path = positional[0];
  const std::string& out_path = positional[1];

  Trace trace;
  std::vector<uint64_t> lines;
  if (opt.format == "strace") {
    StatusOr<StraceImportResult> imported = ImportStraceLog(in_path);
    if (!imported.ok()) {
      std::fprintf(stderr, "import failed: %s\n", imported.status().message().c_str());
      return 1;
    }
    StraceImportResult& r = imported.value();
    const StraceImportStats& st = r.stats;
    std::printf("strace: %llu line(s) -> %llu record(s) from %llu pid(s), %llu file(s); "
                "%llu synthesized open(s), %llu failed call(s) skipped, %llu resumed "
                "join(s)\n",
                static_cast<unsigned long long>(st.lines),
                static_cast<unsigned long long>(st.records),
                static_cast<unsigned long long>(st.pids),
                static_cast<unsigned long long>(st.files),
                static_cast<unsigned long long>(st.synthesized_opens),
                static_cast<unsigned long long>(st.failed_calls),
                static_cast<unsigned long long>(st.resumed_joined));
    trace = std::move(r.trace);
    lines = std::move(r.record_lines);
  } else {
    TextTraceSource source(in_path);
    trace = Trace(source.header());
    TraceRecord record{};
    while (source.Next(&record)) {
      trace.Append(record);
    }
    if (!source.status().ok()) {
      std::fprintf(stderr, "import failed: %s\n", source.status().message().c_str());
      return 1;
    }
    lines = source.record_lines();
  }

  if (!opt.no_validate) {
    ValidateTraceOptions voptions;
    voptions.line_numbers = &lines;
    voptions.render_records = true;
    const ValidationResult v = ValidateTrace(trace, voptions);
    for (const std::string& w : v.warnings) {
      std::fprintf(stderr, "import warning: %s\n", w.c_str());
    }
    if (!v.ok()) {
      for (const std::string& e : v.errors) {
        std::fprintf(stderr, "import error: %s\n", e.c_str());
      }
      std::fprintf(stderr, "import: %zu structural error(s); fix the log or pass "
                   "--no-validate to write it anyway\n", v.errors.size());
      return 1;
    }
  }

  TraceWriterOptions options;
  options.version = 4;
  options.codec = opt.compress == "lz" ? TraceCodec::kLz : TraceCodec::kNone;
  const Status s = SaveTrace(out_path, trace, options);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(), s.message().c_str());
    return 1;
  }
  std::printf("imported %s: %llu record(s) -> %s (v4, %s)\n", in_path.c_str(),
              static_cast<unsigned long long>(trace.size()), out_path.c_str(),
              opt.compress.c_str());
  return 0;
}

// Streams a binary trace out as bsdtxt text — the exact ToString rendering
// ParseTraceRecord accepts, so export | import is the identity.
int CmdExport(int argc, const char* const* argv) {
  const SubcommandSpec& sub = *FindSubcommand("export");
  CliOptions opt;
  std::vector<std::string> positional;
  std::vector<const char*> flags;
  SplitArgs(argc, argv, &positional, &flags);
  if (WantsHelp(flags)) {
    return HelpFor(sub);
  }
  if (positional.size() != 1) {
    return UsageFor(sub);
  }
  if (const int rc = ParseFlags(sub, flags, &opt); rc != 0) {
    return rc;
  }
  TraceFileSource source(positional[0]);
  if (!source.status().ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", positional[0].c_str(),
                 source.status().message().c_str());
    return 1;
  }
  Status s = Status::Ok();
  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    s = WriteTextTrace(out, source);
  } else {
    s = WriteTextTrace(std::cout, source);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}

// -- info ---------------------------------------------------------------------

int CmdInfo(const char* path) {
  TraceFileSource source(path);
  if (!source.status().ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path, source.status().message().c_str());
    return 1;
  }
  std::printf("machine:     %s\n", source.header().machine.c_str());
  std::printf("description: %s\n", source.header().description.c_str());
  if (source.size_hint() >= 0) {
    std::printf("declared:    %lld records\n", static_cast<long long>(source.size_hint()));
  } else {
    std::printf("declared:    unknown (v1 or streamed file)\n");
  }

  // Full integrity pass: decodes every record, verifies v3 block checksums,
  // and cross-checks the footer index against the blocks.
  const TraceFileCheck check = CheckTraceFile(path);
  std::printf("format:      v%d\n", check.version);
  if (check.has_index) {
    std::printf("index:       %llu blocks, %llu records indexed\n",
                static_cast<unsigned long long>(check.index_entries),
                static_cast<unsigned long long>(check.indexed_records));
  } else if (check.version >= 3) {
    std::printf("index:       none (sequential-only v%d file)\n", check.version);
  } else {
    std::printf("index:       n/a (v%d has no block index)\n", check.version);
  }
  if (check.version >= 3) {
    std::printf("checksums:   %llu blocks %s\n",
                static_cast<unsigned long long>(check.blocks_verified),
                check.ok() ? "verified" : "scanned before failure");
  }
  if (check.version >= 4) {
    std::printf("codec:       %s\n", check.codec.c_str());
    std::printf("compressed:  %llu bytes stored / %llu bytes raw (%.2fx)\n",
                static_cast<unsigned long long>(check.payload_stored_bytes),
                static_cast<unsigned long long>(check.payload_raw_bytes),
                check.payload_stored_bytes > 0
                    ? static_cast<double>(check.payload_raw_bytes) /
                          static_cast<double>(check.payload_stored_bytes)
                    : 1.0);
  }
  if (!check.ok()) {
    std::fprintf(stderr, "integrity check failed after %llu records: %s\n",
                 static_cast<unsigned long long>(check.records),
                 check.status.message().c_str());
    return 1;
  }
  std::printf("records:     %llu\n", static_cast<unsigned long long>(check.records));
  std::printf("span:        %.2f simulated hours\n",
              (check.last_time - SimTime::Origin()).hours());
  return 0;
}

}  // namespace

int TraceStreamMain(int argc, const char* const* argv) {
  if (argc < 2) {
    return Usage();
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "help") == 0 || std::strcmp(cmd, "--help") == 0 ||
      std::strcmp(cmd, "-h") == 0) {
    return argc >= 3 && FindSubcommand(argv[2]) != nullptr ? HelpFor(*FindSubcommand(argv[2]))
                                                           : HelpMain();
  }
  if (std::strcmp(cmd, "serve") == 0) {
    return CmdServe(argc - 2, argv + 2);
  }
  if (argc < 3) {
    const SubcommandSpec* sub = FindSubcommand(cmd);
    return sub != nullptr ? UsageFor(*sub) : Usage();
  }
  if (std::strcmp(cmd, "generate") == 0) {
    return CmdGenerate(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "analyze") == 0) {
    return CmdAnalyze(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "import") == 0) {
    return CmdImport(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "export") == 0) {
    return CmdExport(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "info") == 0) {
    if (std::strcmp(argv[2], "--help") == 0 || std::strcmp(argv[2], "-h") == 0) {
      return HelpFor(*FindSubcommand("info"));
    }
    return CmdInfo(argv[2]);
  }
  return Usage();
}

}  // namespace bsdtrace
