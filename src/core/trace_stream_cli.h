// The trace_stream CLI's implementation, exposed as a library function so
// the CLI tests can drive every command and exit path in-process
// (tools/trace_stream.cc is a two-line wrapper around this).
//
//   trace_stream generate <out.trc> [profile] [hours] [shards] [threads] [seed]
//                         [--profile=SPEC] [--users=N] [--hours=H]
//                         [--shards=S] [--threads=T] [--seed=X]
//                         [--compress=none|lz] [--wave-users=N]
//   trace_stream analyze  <in.trc> [--threads=N] [--check-bands]
//   trace_stream import   <in.log> <out.trc> [--format=bsdtxt|strace]
//                         [--compress=none|lz] [--no-validate]
//   trace_stream export   <in.trc> [--out=PATH]
//   trace_stream info     <in.trc>
//
// `import` converts a foreign text log — this tool's own bsdtxt export or a
// raw `strace -f -ttt` syscall log — into a binary v4 trace, running the
// structural validator by default so a corrupt log fails with per-line
// diagnostics instead of skewing every downstream analysis.  `export`
// renders a binary trace as bsdtxt; export | import is the identity.
//
// `generate` accepts a machine profile name (A5/E3/C4) or a fleet spec
// ("fleet:4xA5+2xE3+2xC4"; workload/fleet.h) and always generates through
// the fleet engine, so every trace it writes carries the fleet tag that
// `analyze --check-bands` validates against the Table I per-user bands.
// --users=N population-scales every machine instance to N users.  Positional
// arguments are kept for compatibility (the CI smoke jobs use them); flags
// override positionals.  Every numeric argument is strictly validated — a
// malformed or out-of-range value prints the usage and exits 2 rather than
// being silently read as 0.

#ifndef BSDTRACE_SRC_CORE_TRACE_STREAM_CLI_H_
#define BSDTRACE_SRC_CORE_TRACE_STREAM_CLI_H_

namespace bsdtrace {

// Exactly main()'s contract: argv[0] is the program name; returns the
// process exit code (0 success, 1 runtime/validation failure, 2 usage).
int TraceStreamMain(int argc, const char* const* argv);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CORE_TRACE_STREAM_CLI_H_
