#include "src/core/experiments.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/csv.h"
#include "src/util/plot.h"
#include "src/util/table.h"

namespace bsdtrace {
namespace {

constexpr double kKb = 1024.0;
constexpr double kMb = 1024.0 * 1024.0;

std::string Mbytes(double bytes, int decimals = 1) {
  return Cell(bytes / kMb, decimals);
}

std::string PlusMinus(const RunningStats& s, int decimals = 1) {
  return Cell(s.mean(), decimals) + " (±" + Cell(s.stddev(), decimals) + ")";
}

// Policy axis of Fig. 5 / Table VI, in the paper's column order.
struct PolicyKey {
  WritePolicy policy;
  int64_t flush_seconds;  // 0 unless flush-back

  bool operator<(const PolicyKey& o) const {
    if (policy != o.policy) {
      return static_cast<int>(policy) < static_cast<int>(o.policy);
    }
    return flush_seconds < o.flush_seconds;
  }
};

PolicyKey KeyOf(const CacheConfig& c) {
  return PolicyKey{c.policy,
                   c.policy == WritePolicy::kFlushBack
                       ? static_cast<int64_t>(c.flush_interval.seconds())
                       : 0};
}

std::string PolicyLabel(const PolicyKey& k) {
  switch (k.policy) {
    case WritePolicy::kWriteThrough:
      return "Write-Through";
    case WritePolicy::kFlushBack:
      return k.flush_seconds >= 300 ? "5 Min Flush" : "30 Sec Flush";
    case WritePolicy::kDelayedWrite:
      return "Delayed Write";
  }
  return "?";
}

}  // namespace

Duration StandardDuration() {
  if (const char* hours = std::getenv("BSDTRACE_HOURS"); hours != nullptr) {
    const double h = std::atof(hours);
    if (h > 0) {
      return Duration::Hours(h);
    }
  }
  return Duration::Hours(24);
}

GenerationResult GenerateStandardTrace(const std::string& name, Duration duration,
                                       uint64_t seed) {
  GeneratorOptions options;
  options.duration = duration;
  options.seed = seed;
  MachineProfile profile = ProfileByName(name);
  // BSDTRACE_INTENSITY scales machine busyness (1.0 default; ~2 approximates
  // the original machines' event rates).
  if (const char* intensity = std::getenv("BSDTRACE_INTENSITY"); intensity != nullptr) {
    const double v = std::atof(intensity);
    if (v > 0) {
      profile.intensity = v;
    }
  }
  return GenerateTrace(profile, options);
}

GenerationResult GenerateStandardTrace(const std::string& name) {
  uint64_t seed = 19851201;
  if (name == "E3") {
    seed = 19851202;
  } else if (name == "C4") {
    seed = 19851203;
  }
  return GenerateStandardTrace(name, StandardDuration(), seed);
}

StatusOr<TraceAnalysis> AnalyzeTraceFile(const std::string& path, unsigned threads) {
  // Analyze() resolves threads == 0 to hardware concurrency and falls back to
  // the serial streaming pass on its own when the file has no usable block
  // index or threads <= 1; the result reports which engine ran (::mode).
  AnalyzeOptions options;
  options.path = path;
  options.threads = threads;
  return Analyze(options);
}

StandardSweeps RunStandardSweeps(const Trace& trace, unsigned threads) {
  const ReplayLog log = ReplayLog::Build(trace);
  StandardSweeps sweeps;
  auto take = [&sweeps](PlannedSweep&& planned, std::vector<SweepPoint>& points,
                        std::vector<SweepCurve>& curves) {
    points = std::move(planned.points);
    curves = std::move(planned.curves);
    sweeps.parity = sweeps.parity && planned.parity;
    sweeps.stack_passes += planned.stack_passes;
    sweeps.fused_replays += planned.fused_replays;
    sweeps.replay_fallbacks += planned.replay_fallbacks;
  };
  take(RunPlannedSweep(log, Fig5Configs(), {}, threads), sweeps.fig5, sweeps.fig5_curves);
  take(RunPlannedSweep(log, Fig6Configs(), {}, threads), sweeps.fig6, sweeps.fig6_curves);
  take(RunPlannedSweep(log, Fig7Configs(), {}, threads), sweeps.fig7, sweeps.fig7_curves);
  return sweeps;
}

std::string RenderTable3(const std::vector<NamedAnalysis>& traces) {
  std::vector<std::string> header = {"Trace"};
  for (const auto& [name, analysis] : traces) {
    header.push_back(name);
  }
  TextTable table(header);

  auto row = [&](const std::string& label, auto&& fn) {
    std::vector<std::string> cells = {label};
    for (const auto& [name, analysis] : traces) {
      cells.push_back(fn(*analysis));
    }
    table.AddRow(std::move(cells));
  };

  row("Duration (hours)",
      [](const TraceAnalysis& a) { return Cell(a.overall.duration.hours(), 1); });
  row("Number of trace records",
      [](const TraceAnalysis& a) { return Cell(static_cast<int64_t>(a.overall.total_records)); });
  row("Total data transferred to/from files (Mbytes)",
      [](const TraceAnalysis& a) { return Mbytes(static_cast<double>(a.overall.bytes_transferred)); });
  table.AddSeparator();
  const EventType kOrder[] = {EventType::kCreate, EventType::kOpen,     EventType::kClose,
                              EventType::kSeek,   EventType::kUnlink,   EventType::kTruncate,
                              EventType::kExecve};
  for (EventType type : kOrder) {
    row(std::string(EventTypeName(type)) + " events", [type](const TraceAnalysis& a) {
      return Cell(static_cast<int64_t>(a.overall.Count(type))) + " (" +
             FormatPercent(a.overall.Fraction(type)) + ")";
    });
  }
  return table.Render("Table III. Overall statistics for the traces.");
}

std::string RenderEventIntervals(const std::vector<NamedAnalysis>& traces) {
  TextTable table({"Trace", "< 0.5 s", "< 10 s", "< 30 s", "samples"});
  for (const auto& [name, analysis] : traces) {
    const WeightedCdf& cdf = analysis->overall.inter_event_interval_seconds;
    table.AddRow({name, FormatPercent(cdf.FractionAtOrBelow(0.5)),
                  FormatPercent(cdf.FractionAtOrBelow(10.0)),
                  FormatPercent(cdf.FractionAtOrBelow(30.0)),
                  Cell(cdf.sample_count())});
  }
  std::string out = table.Render(
      "Intervals between successive trace events for the same open file (paper §3.1).");
  out += "Paper: 75% < 0.5 s, 90% < 10 s, 99% < 30 s.\n";
  return out;
}

std::string RenderTable4(const std::vector<NamedAnalysis>& traces) {
  std::vector<std::string> header = {"Measure"};
  for (const auto& [name, analysis] : traces) {
    header.push_back(name);
  }
  TextTable table(header);
  auto row = [&](const std::string& label, auto&& fn) {
    std::vector<std::string> cells = {label};
    for (const auto& [name, analysis] : traces) {
      cells.push_back(fn(*analysis));
    }
    table.AddRow(std::move(cells));
  };

  row("Average throughput (bytes/sec over life of trace)",
      [](const TraceAnalysis& a) { return Cell(a.activity.average_throughput, 0); });
  row("Total number of different users",
      [](const TraceAnalysis& a) { return Cell(static_cast<int64_t>(a.activity.distinct_users)); });
  row("Greatest number of active users in a 10 minute interval",
      [](const TraceAnalysis& a) { return Cell(a.activity.ten_minute.max_active_users); });
  row("Average number of active users (10 minute intervals)",
      [](const TraceAnalysis& a) { return PlusMinus(a.activity.ten_minute.active_users); });
  row("Average throughput per active user (bytes/sec, 10 min)",
      [](const TraceAnalysis& a) { return PlusMinus(a.activity.ten_minute.throughput_per_user, 0); });
  row("Average number of active users (10 second intervals)",
      [](const TraceAnalysis& a) { return PlusMinus(a.activity.ten_second.active_users); });
  row("Average throughput per active user (bytes/sec, 10 sec)",
      [](const TraceAnalysis& a) { return PlusMinus(a.activity.ten_second.throughput_per_user, 0); });
  return table.Render("Table IV. System activity (a user is active in an interval if any "
                      "trace event for that user falls in it).");
}

std::string RenderTable5(const std::vector<NamedAnalysis>& traces) {
  std::vector<std::string> header = {"Measure"};
  for (const auto& [name, analysis] : traces) {
    header.push_back(name);
  }
  TextTable table(header);
  auto row = [&](const std::string& label, auto&& fn) {
    std::vector<std::string> cells = {label};
    for (const auto& [name, analysis] : traces) {
      cells.push_back(fn(analysis->sequentiality));
    }
    table.AddRow(std::move(cells));
  };

  row("Whole-file read transfers (% of read-only accesses)", [](const SequentialityStats& s) {
    const ModeSequentiality& m = s.Mode(AccessMode::kReadOnly);
    return Cell(static_cast<int64_t>(m.whole_file)) + " (" +
           FormatPercent(m.WholeFileFraction(), 0) + ")";
  });
  row("Whole-file write transfers (% of write-only accesses)", [](const SequentialityStats& s) {
    const ModeSequentiality& m = s.Mode(AccessMode::kWriteOnly);
    return Cell(static_cast<int64_t>(m.whole_file)) + " (" +
           FormatPercent(m.WholeFileFraction(), 0) + ")";
  });
  row("Data transferred in whole-file transfers (Mbytes)", [](const SequentialityStats& s) {
    const ModeSequentiality total = s.Total();
    return Mbytes(static_cast<double>(total.whole_file_bytes)) + " (" +
           FormatPercent(s.WholeFileByteFraction(), 0) + ")";
  });
  table.AddSeparator();
  row("Sequential read-only accesses", [](const SequentialityStats& s) {
    const ModeSequentiality& m = s.Mode(AccessMode::kReadOnly);
    return Cell(static_cast<int64_t>(m.sequential)) + " (" +
           FormatPercent(m.SequentialFraction(), 0) + ")";
  });
  row("Sequential write-only accesses", [](const SequentialityStats& s) {
    const ModeSequentiality& m = s.Mode(AccessMode::kWriteOnly);
    return Cell(static_cast<int64_t>(m.sequential)) + " (" +
           FormatPercent(m.SequentialFraction(), 0) + ")";
  });
  row("Sequential read-write accesses", [](const SequentialityStats& s) {
    const ModeSequentiality& m = s.Mode(AccessMode::kReadWrite);
    return Cell(static_cast<int64_t>(m.sequential)) + " (" +
           FormatPercent(m.SequentialFraction(), 0) + ")";
  });
  row("Data transferred sequentially (Mbytes)", [](const SequentialityStats& s) {
    const ModeSequentiality total = s.Total();
    return Mbytes(static_cast<double>(total.sequential_bytes)) + " (" +
           FormatPercent(s.SequentialByteFraction(), 0) + ")";
  });
  return table.Render("Table V. Sequentiality of access.");
}

namespace {

// Renders a pair of CDF panels (count-weighted and byte-weighted) shared by
// Figures 1, 2, and 4.
// `x_scale` converts display x values into the CDF's sample units (e.g. KB
// labels over byte-valued samples use 1024).
std::string RenderCdfPanels(const std::string& title, const std::string& x_label,
                            const std::vector<double>& xs, double x_scale,
                            const std::vector<NamedAnalysis>& traces,
                            const std::function<const WeightedCdf&(const TraceAnalysis&)>& panel_a,
                            const std::string& a_label,
                            const std::function<const WeightedCdf&(const TraceAnalysis&)>& panel_b,
                            const std::string& b_label, bool log_x) {
  std::ostringstream out;
  out << title << "\n";

  std::vector<std::string> header = {x_label};
  for (const auto& [name, a] : traces) {
    header.push_back(name + " (" + a_label + ")");
  }
  for (const auto& [name, a] : traces) {
    header.push_back(name + " (" + b_label + ")");
  }
  TextTable table(header);
  for (double x : xs) {
    std::vector<std::string> cells = {Cell(x, x < 10 ? 1 : 0)};
    for (const auto& [name, a] : traces) {
      cells.push_back(FormatPercent(panel_a(*a).FractionAtOrBelow(x * x_scale), 0));
    }
    for (const auto& [name, a] : traces) {
      cells.push_back(FormatPercent(panel_b(*a).FractionAtOrBelow(x * x_scale), 0));
    }
    table.AddRow(std::move(cells));
  }
  out << table.Render();

  const char markers[] = {'A', 'E', 'C', 'X', 'Y', 'Z'};
  for (int panel = 0; panel < 2; ++panel) {
    AsciiPlot plot(panel == 0 ? "(a) " + a_label : "(b) " + b_label, x_label,
                   "cumulative %");
    plot.SetYRange(0, 100);
    plot.SetXLog2(log_x);
    int m = 0;
    for (const auto& [name, a] : traces) {
      const WeightedCdf& cdf = panel == 0 ? panel_a(*a) : panel_b(*a);
      PlotSeries series;
      series.name = name;
      series.marker = markers[m++ % 6];
      for (double x : xs) {
        series.xs.push_back(x);
        series.ys.push_back(100.0 * cdf.FractionAtOrBelow(x * x_scale));
      }
      plot.AddSeries(std::move(series));
    }
    out << plot.Render();
  }
  return out.str();
}

}  // namespace

std::string RenderFigure1(const std::vector<NamedAnalysis>& traces) {
  const std::vector<double> xs = {0.25, 0.5, 1, 2, 4, 8, 16, 25, 50, 75, 100};
  std::string out = RenderCdfPanels(
      "Figure 1. Cumulative distributions of sequential run lengths.", "run length (KB)", xs,
      kKb, traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.runs.by_runs; },
      "% of runs",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.runs.by_bytes; },
      "% of bytes", true);
  return out;
}

std::string RenderFigure2(const std::vector<NamedAnalysis>& traces) {
  const std::vector<double> xs = {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1024, 2048};
  return RenderCdfPanels(
      "Figure 2. Dynamic distribution of file sizes at close.", "file size (KB)", xs, kKb,
      traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.file_sizes.by_accesses; },
      "% of files",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.file_sizes.by_bytes; },
      "% of bytes", true);
}

std::string RenderFigure3(const std::vector<NamedAnalysis>& traces) {
  const std::vector<double> xs = {0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600};
  std::ostringstream out;
  out << "Figure 3. Distribution of times that files were open.\n";
  std::vector<std::string> header = {"open time (s)"};
  for (const auto& [name, a] : traces) {
    header.push_back(name);
  }
  TextTable table(header);
  for (double x : xs) {
    std::vector<std::string> cells = {Cell(x, x < 1 ? 1 : 0)};
    for (const auto& [name, a] : traces) {
      cells.push_back(FormatPercent(a->open_times.seconds.FractionAtOrBelow(x), 0));
    }
    table.AddRow(std::move(cells));
  }
  out << table.Render();
  AsciiPlot plot("Open-time CDF", "open time (s)", "cumulative % of files");
  plot.SetYRange(0, 100);
  plot.SetXLog2(true);
  const char markers[] = {'A', 'E', 'C'};
  int m = 0;
  for (const auto& [name, a] : traces) {
    PlotSeries series;
    series.name = name;
    series.marker = markers[m++ % 3];
    for (double x : xs) {
      series.xs.push_back(x);
      series.ys.push_back(100.0 * a->open_times.seconds.FractionAtOrBelow(x));
    }
    plot.AddSeries(std::move(series));
  }
  out << plot.Render();
  out << "Paper: 70-80% of files open < 0.5 s; ~90% < 10 s.\n";
  return out.str();
}

std::string RenderFigure4(const std::vector<NamedAnalysis>& traces) {
  const std::vector<double> xs = {1, 5, 10, 30, 60, 120, 179, 181, 240, 300, 450};
  std::string out = RenderCdfPanels(
      "Figure 4. Cumulative distributions of file lifetimes.", "lifetime (s)", xs, 1.0,
      traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.lifetimes.by_files; },
      "% of files",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.lifetimes.by_bytes; },
      "% of bytes created", false);
  std::ostringstream extra;
  extra << out;
  TextTable spike({"Trace", "new files", "observed deaths", "lifetime in [179s,181s]"});
  for (const auto& [name, a] : traces) {
    spike.AddRow({name, Cell(static_cast<int64_t>(a->lifetimes.new_files)),
                  Cell(static_cast<int64_t>(a->lifetimes.observed_deaths)),
                  FormatPercent(a->lifetimes.FileFractionIn(179.0, 181.0), 0)});
  }
  extra << spike.Render("The 180-second network-daemon spike (paper: 30-40% of new files).");
  return extra.str();
}

std::string RenderFigure5Table6(const std::vector<SweepPoint>& points) {
  // Organize: rows = cache size, columns = policy.
  std::map<uint64_t, std::map<PolicyKey, const SweepPoint*>> grid;
  std::map<PolicyKey, bool> policies;
  for (const SweepPoint& p : points) {
    grid[p.config.size_bytes][KeyOf(p.config)] = &p;
    policies[KeyOf(p.config)] = true;
  }

  std::vector<std::string> header = {"Cache Size"};
  for (const auto& [key, unused] : policies) {
    header.push_back(PolicyLabel(key));
  }
  TextTable table(header);
  for (const auto& [size, row] : grid) {
    std::vector<std::string> cells = {FormatBytes(static_cast<double>(size))};
    for (const auto& [key, unused] : policies) {
      auto it = row.find(key);
      cells.push_back(it != row.end() ? FormatPercent(it->second->metrics.MissRatio()) : "-");
    }
    table.AddRow(std::move(cells));
  }
  std::ostringstream out;
  out << table.Render(
      "Table VI / Figure 5. Miss ratio vs. cache size and write policy (4 KB blocks).");

  AsciiPlot plot("Figure 5. Miss ratio vs. cache size", "cache size (MB)", "miss ratio (%)");
  plot.SetXLog2(true);
  plot.SetYRange(0, 70);
  const char markers[] = {'T', '3', '5', 'D'};
  int m = 0;
  for (const auto& [key, unused] : policies) {
    PlotSeries series;
    series.name = PolicyLabel(key);
    series.marker = markers[m++ % 4];
    for (const auto& [size, row] : grid) {
      auto it = row.find(key);
      if (it != row.end()) {
        series.xs.push_back(static_cast<double>(size) / kMb);
        series.ys.push_back(100.0 * it->second->metrics.MissRatio());
      }
    }
    plot.AddSeries(std::move(series));
  }
  out << plot.Render();
  out << "Paper (A5): 390KB/WT 57.6% ... 16MB/DW 9.6%; ordering DW < FB(5m) < FB(30s) < WT.\n";
  return out.str();
}

std::string RenderFigure6Table7(const std::vector<SweepPoint>& points) {
  // Rows = block size; columns = "no cache" logical accesses, then one disk
  // I/O column per cache size.
  std::map<uint32_t, std::map<uint64_t, const SweepPoint*>> grid;
  std::map<uint64_t, bool> caches;
  for (const SweepPoint& p : points) {
    grid[p.config.block_size][p.config.size_bytes] = &p;
    caches[p.config.size_bytes] = true;
  }

  std::vector<std::string> header = {"Block Size", "Block Accesses"};
  for (const auto& [size, unused] : caches) {
    header.push_back(FormatBytes(static_cast<double>(size)) + " Cache");
  }
  TextTable table(header);
  for (const auto& [block, row] : grid) {
    std::vector<std::string> cells = {FormatBytes(block)};
    cells.push_back(Cell(static_cast<int64_t>(row.begin()->second->metrics.logical_accesses)));
    for (const auto& [size, unused] : caches) {
      auto it = row.find(size);
      cells.push_back(it != row.end()
                          ? Cell(static_cast<int64_t>(it->second->metrics.DiskIos()))
                          : "-");
    }
    table.AddRow(std::move(cells));
  }
  std::ostringstream out;
  out << table.Render(
      "Table VII / Figure 6. Disk I/Os vs. block size and cache size (delayed write).");

  AsciiPlot plot("Figure 6. Disk traffic vs. block size", "block size (KB)", "disk I/Os");
  plot.SetXLog2(true);
  const char markers[] = {'4', '2', 'M', '8'};
  int m = 0;
  for (const auto& [size, unused] : caches) {
    PlotSeries series;
    series.name = FormatBytes(static_cast<double>(size)) + " cache";
    series.marker = markers[m++ % 4];
    for (const auto& [block, row] : grid) {
      auto it = row.find(size);
      if (it != row.end()) {
        series.xs.push_back(static_cast<double>(block) / kKb);
        series.ys.push_back(static_cast<double>(it->second->metrics.DiskIos()));
      }
    }
    plot.AddSeries(std::move(series));
  }
  out << plot.Render();

  // Optimal block size per cache (the paper's 8 KB @ 400 KB / 16 KB @ 4 MB
  // headline).
  TextTable best({"Cache Size", "Best Block Size", "Disk I/Os"});
  for (const auto& [size, unused] : caches) {
    const SweepPoint* best_point = nullptr;
    for (const auto& [block, row] : grid) {
      auto it = row.find(size);
      if (it != row.end() &&
          (best_point == nullptr || it->second->metrics.DiskIos() < best_point->metrics.DiskIos())) {
        best_point = it->second;
      }
    }
    if (best_point != nullptr) {
      best.AddRow({FormatBytes(static_cast<double>(size)),
                   FormatBytes(best_point->config.block_size),
                   Cell(static_cast<int64_t>(best_point->metrics.DiskIos()))});
    }
  }
  out << best.Render("Optimal block size per cache size (paper: 8 KB at 400 KB, 16 KB at 4 MB).");
  return out.str();
}

std::string RenderFigure7(const std::vector<SweepPoint>& points) {
  std::map<uint64_t, const SweepPoint*> without, with;
  for (const SweepPoint& p : points) {
    (p.config.simulate_execve_pagein ? with : without)[p.config.size_bytes] = &p;
  }
  TextTable table({"Cache Size", "Page-in ignored", "Page-in simulated"});
  for (const auto& [size, p] : without) {
    auto it = with.find(size);
    table.AddRow({FormatBytes(static_cast<double>(size)), FormatPercent(p->metrics.MissRatio()),
                  it != with.end() ? FormatPercent(it->second->metrics.MissRatio()) : "-"});
  }
  std::ostringstream out;
  out << table.Render(
      "Figure 7. Miss ratio with program page-in approximated by whole-file reads at execve "
      "(4 KB blocks, delayed write).");

  AsciiPlot plot("Figure 7", "cache size (MB)", "miss ratio (%)");
  plot.SetXLog2(true);
  plot.SetYRange(0, 70);
  for (int which = 0; which < 2; ++which) {
    const auto& series_map = which == 0 ? without : with;
    PlotSeries series;
    series.name = which == 0 ? "page-in ignored" : "page-in simulated";
    series.marker = which == 0 ? 'o' : 'p';
    for (const auto& [size, p] : series_map) {
      series.xs.push_back(static_cast<double>(size) / kMb);
      series.ys.push_back(100.0 * p->metrics.MissRatio());
    }
    plot.AddSeries(std::move(series));
  }
  out << plot.Render();
  out << "Paper: simulated paging degrades small caches but improves large ones (crossover).\n";
  return out.str();
}

std::string RenderWriteLifetimeSidebar(const std::vector<SweepPoint>& fig5_points) {
  std::ostringstream out;
  TextTable table({"Cache", "Policy", "Dirty blocks discarded", "Write-backs",
                   "Discarded fraction", "Resident > 20 min"});
  for (const SweepPoint& p : fig5_points) {
    if (p.config.policy != WritePolicy::kDelayedWrite) {
      continue;
    }
    const CacheMetrics& m = p.metrics;
    const uint64_t write_events = m.dirty_discarded + m.disk_writes;
    const double discarded_fraction =
        write_events > 0 ? static_cast<double>(m.dirty_discarded) /
                               static_cast<double>(write_events)
                         : 0.0;
    const double over20 =
        m.residency_samples > 0 ? static_cast<double>(m.residency_over_20min) /
                                      static_cast<double>(m.residency_samples)
                                : 0.0;
    table.AddRow({FormatBytes(static_cast<double>(p.config.size_bytes)), "delayed-write",
                  Cell(static_cast<int64_t>(m.dirty_discarded)),
                  Cell(static_cast<int64_t>(m.disk_writes)), FormatPercent(discarded_fraction, 0),
                  FormatPercent(over20, 0)});
  }
  out << table.Render(
      "§6.2. Delayed write: dirty blocks that died in the cache and block residency.");
  out << "Paper: ~75% of newly-written blocks never reach disk with large caches; ~20% of\n"
         "blocks stay in a 4 MB cache longer than 20 minutes.\n";
  return out.str();
}

std::string RenderMissRatioCurves(const std::vector<SweepCurve>& curves) {
  if (curves.empty()) {
    return "";
  }
  // Rows = cache size; one fetch-miss-ratio column per curve.  Every column
  // comes from ONE stack-distance pass (no per-size replay).
  std::map<uint64_t, std::map<size_t, size_t>> grid;  // size -> curve -> index
  for (size_t c = 0; c < curves.size(); ++c) {
    for (size_t i = 0; i < curves[c].size_bytes.size(); ++i) {
      grid[curves[c].size_bytes[i]][c] = i;
    }
  }
  std::vector<std::string> header = {"Cache Size"};
  for (const SweepCurve& curve : curves) {
    std::string label = FormatBytes(curve.block_size) + " blocks";
    if (curve.simulate_execve_pagein) {
      label += " +pagein";
    }
    header.push_back(std::move(label));
  }
  TextTable table(header);
  for (const auto& [size, row] : grid) {
    std::vector<std::string> cells = {FormatBytes(static_cast<double>(size))};
    for (size_t c = 0; c < curves.size(); ++c) {
      auto it = row.find(c);
      cells.push_back(it != row.end()
                          ? FormatPercent(curves[c].fetch_miss_ratios[it->second])
                          : "-");
    }
    table.AddRow(std::move(cells));
  }
  std::ostringstream out;
  out << table.Render(
      "Single-pass Mattson curves: exact read-miss (fetch) ratio at every cache size, "
      "one stack-distance pass per column.");
  return out.str();
}

std::string RenderHierarchySweep(const HierarchySweepResult& result) {
  if (result.points.empty()) {
    return "";
  }
  // One table per client write policy: rows = server size, columns = client
  // size, cells = global miss ratio (disk I/Os per logical access at the top
  // of the hierarchy).  Client-0 columns carry the policy on the server — the
  // single-level baseline the client columns are read against.
  std::map<PolicyKey, std::map<uint64_t, std::map<uint64_t, const HierarchyPoint*>>> grids;
  std::map<uint64_t, bool> client_sizes;
  for (const HierarchyPoint& p : result.points) {
    const CacheConfig& policy_holder = p.config.has_clients() ? p.config.client : p.config.server;
    grids[KeyOf(policy_holder)][p.config.server.size_bytes][p.config.client.size_bytes] = &p;
    client_sizes[p.config.client.size_bytes] = true;
  }

  std::ostringstream out;
  for (const auto& [key, grid] : grids) {
    std::vector<std::string> header = {"Server Size"};
    for (const auto& [client, unused] : client_sizes) {
      header.push_back(client == 0 ? "No Client" : FormatBytes(static_cast<double>(client)) +
                                                       " client");
    }
    TextTable table(header);
    for (const auto& [server, row] : grid) {
      std::vector<std::string> cells = {FormatBytes(static_cast<double>(server))};
      for (const auto& [client, unused] : client_sizes) {
        auto it = row.find(client);
        cells.push_back(it != row.end() ? FormatPercent(it->second->metrics.GlobalMissRatio())
                                        : "-");
      }
      table.AddRow(std::move(cells));
    }
    out << table.Render("Hierarchy sweep (§7): global miss ratio, client policy = " +
                        PolicyLabel(key) + " (server delayed-write).");
    out << "\n";
  }

  // Plot the delayed-write grid (the recommended client policy) over the
  // server-size axis, one series per client size.
  auto plotted = grids.find(PolicyKey{WritePolicy::kDelayedWrite, 0});
  if (plotted == grids.end()) {
    plotted = grids.begin();
  }
  AsciiPlot plot("Hierarchy: global miss ratio vs. server size, client policy = " +
                     PolicyLabel(plotted->first),
                 "server size (MB)", "global miss ratio (%)");
  plot.SetXLog2(true);
  const char markers[] = {'0', 'a', 'b', 'c', 'd', 'e'};
  int m = 0;
  for (const auto& [client, unused] : client_sizes) {
    PlotSeries series;
    series.name = client == 0 ? "no client" : FormatBytes(static_cast<double>(client)) + " client";
    series.marker = markers[m++ % 6];
    for (const auto& [server, row] : plotted->second) {
      auto it = row.find(client);
      if (it != row.end()) {
        series.xs.push_back(static_cast<double>(server) / kMb);
        series.ys.push_back(100.0 * it->second->metrics.GlobalMissRatio());
      }
    }
    plot.AddSeries(std::move(series));
  }
  out << plot.Render();
  out << "hierarchy sweep: " << result.fused_replays << " fused replay(s), "
      << result.hierarchy_replays << " hierarchy replay(s); client-0 parity "
      << (result.parity ? "OK" : "FAILED") << "\n";
  return out.str();
}

std::string RenderTable1(const TraceAnalysis& analysis, const std::vector<SweepPoint>& fig5_points,
                         const std::vector<SweepPoint>& fig6_points) {
  std::ostringstream out;
  out << "Table I. Selected results (measured on this reproduction vs. the paper).\n\n";

  const double tpu = analysis.activity.ten_minute.throughput_per_user.mean();
  out << "* Bytes/second per active user (10-min intervals): " << Cell(tpu, 0)
      << "   [paper: ~300-600]\n";

  const ModeSequentiality total = analysis.sequentiality.Total();
  const double whole_frac =
      total.accesses > 0
          ? static_cast<double>(total.whole_file) / static_cast<double>(total.accesses)
          : 0.0;
  out << "* Whole-file transfers: " << FormatPercent(whole_frac, 0) << " of accesses, "
      << FormatPercent(analysis.sequentiality.WholeFileByteFraction(), 0)
      << " of bytes   [paper: ~70% / ~50%]\n";

  out << "* Files open < 0.5 s: "
      << FormatPercent(analysis.open_times.seconds.FractionAtOrBelow(0.5), 0)
      << "; < 10 s: " << FormatPercent(analysis.open_times.seconds.FractionAtOrBelow(10.0), 0)
      << "   [paper: 75% / 90%]\n";

  out << "* New bytes dead within 30 s: "
      << FormatPercent(analysis.lifetimes.by_bytes.FractionAtOrBelow(30.0), 0)
      << "; within 5 min: "
      << FormatPercent(analysis.lifetimes.by_bytes.FractionAtOrBelow(300.0), 0)
      << "   [paper: 20-30% / ~50%]\n";

  // 4 MB cache elimination band across policies.
  double best = 0.0, worst = 1.0;
  for (const SweepPoint& p : fig5_points) {
    if (p.config.size_bytes == (4u << 20)) {
      const double eliminated = 1.0 - p.metrics.MissRatio();
      best = std::max(best, eliminated);
      worst = std::min(worst, eliminated);
    }
  }
  out << "* 4 MB cache eliminates " << FormatPercent(worst, 0) << " to " << FormatPercent(best, 0)
      << " of disk accesses, depending on write policy   [paper: 65-90%]\n";

  // Optimal block sizes.
  auto best_block = [&](uint64_t cache_size) -> uint32_t {
    uint32_t block = 0;
    uint64_t ios = UINT64_MAX;
    for (const SweepPoint& p : fig6_points) {
      if (p.config.size_bytes == cache_size && p.metrics.DiskIos() < ios) {
        ios = p.metrics.DiskIos();
        block = p.config.block_size;
      }
    }
    return block;
  };
  out << "* Best block size: " << FormatBytes(best_block(400u << 10)) << " at 400 KB cache, "
      << FormatBytes(best_block(4u << 20)) << " at 4 MB cache   [paper: 8 KB / 16 KB]\n";
  return out.str();
}

namespace {

// One CSV: column 0 is x; per trace two columns (count-weighted, byte-ish
// weighted fraction) unless `panel_b` is null.
Status WriteCdfCsv(const std::string& path, const std::vector<double>& xs, double x_scale,
                   const std::string& x_name, const std::vector<NamedAnalysis>& traces,
                   const std::function<const WeightedCdf&(const TraceAnalysis&)>& panel_a,
                   const std::string& a_suffix,
                   const std::function<const WeightedCdf&(const TraceAnalysis&)>& panel_b,
                   const std::string& b_suffix) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  CsvWriter csv(out);
  std::vector<std::string> header = {x_name};
  for (const auto& [name, a] : traces) {
    header.push_back(name + a_suffix);
  }
  if (panel_b) {
    for (const auto& [name, a] : traces) {
      header.push_back(name + b_suffix);
    }
  }
  csv.WriteRow(header);
  for (double x : xs) {
    std::vector<std::string> row = {Cell(x, 3)};
    for (const auto& [name, a] : traces) {
      row.push_back(Cell(panel_a(*a).FractionAtOrBelow(x * x_scale), 4));
    }
    if (panel_b) {
      for (const auto& [name, a] : traces) {
        row.push_back(Cell(panel_b(*a).FractionAtOrBelow(x * x_scale), 4));
      }
    }
    csv.WriteRow(row);
  }
  return Status::Ok();
}

}  // namespace

Status ExportFigureCsvs(const std::string& dir, const std::vector<NamedAnalysis>& traces) {
  const std::vector<double> run_xs = {0.25, 0.5, 1, 2, 4, 8, 16, 25, 50, 75, 100};
  Status st = WriteCdfCsv(
      dir + "/fig1_runs.csv", run_xs, kKb, "run_length_kb", traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.runs.by_runs; }, "_runs",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.runs.by_bytes; }, "_bytes");
  if (!st.ok()) {
    return st;
  }
  const std::vector<double> size_xs = {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1024, 2048};
  st = WriteCdfCsv(
      dir + "/fig2_filesizes.csv", size_xs, kKb, "file_size_kb", traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.file_sizes.by_accesses; },
      "_files",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.file_sizes.by_bytes; },
      "_bytes");
  if (!st.ok()) {
    return st;
  }
  const std::vector<double> open_xs = {0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600};
  st = WriteCdfCsv(
      dir + "/fig3_opentimes.csv", open_xs, 1.0, "open_time_s", traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.open_times.seconds; },
      "_files", nullptr, "");
  if (!st.ok()) {
    return st;
  }
  const std::vector<double> life_xs = {1, 5, 10, 30, 60, 120, 179, 181, 240, 300, 450};
  return WriteCdfCsv(
      dir + "/fig4_lifetimes.csv", life_xs, 1.0, "lifetime_s", traces,
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.lifetimes.by_files; },
      "_files",
      [](const TraceAnalysis& a) -> const WeightedCdf& { return a.lifetimes.by_bytes; },
      "_bytes");
}

Status ExportSweepCsv(const std::string& path, const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  CsvWriter csv(out);
  csv.WriteRow({"cache_bytes", "block_bytes", "policy", "flush_s", "pagein", "metadata",
                "logical_accesses", "disk_reads", "disk_writes", "miss_ratio"});
  for (const SweepPoint& p : points) {
    csv.WriteRow({Cell(static_cast<int64_t>(p.config.size_bytes)),
                  Cell(static_cast<int64_t>(p.config.block_size)),
                  WritePolicyName(p.config.policy),
                  Cell(p.config.policy == WritePolicy::kFlushBack
                           ? p.config.flush_interval.seconds()
                           : 0.0,
                       0),
                  p.config.simulate_execve_pagein ? "1" : "0",
                  p.config.simulate_metadata ? "1" : "0",
                  Cell(static_cast<int64_t>(p.metrics.logical_accesses)),
                  Cell(static_cast<int64_t>(p.metrics.disk_reads)),
                  Cell(static_cast<int64_t>(p.metrics.disk_writes)),
                  Cell(p.metrics.MissRatio(), 5)});
  }
  return Status::Ok();
}

Status ExportCurveCsv(const std::string& path, const std::vector<SweepCurve>& curves) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  CsvWriter csv(out);
  csv.WriteRow({"block_bytes", "pagein", "cache_bytes", "fetch_accesses", "fetch_misses",
                "fetch_miss_ratio"});
  for (const SweepCurve& curve : curves) {
    for (size_t i = 0; i < curve.size_bytes.size(); ++i) {
      csv.WriteRow({Cell(static_cast<int64_t>(curve.block_size)),
                    curve.simulate_execve_pagein ? "1" : "0",
                    Cell(static_cast<int64_t>(curve.size_bytes[i])),
                    Cell(static_cast<int64_t>(curve.profile.fetch_accesses())),
                    Cell(static_cast<int64_t>(curve.fetch_misses[i])),
                    Cell(curve.fetch_miss_ratios[i], 5)});
    }
  }
  return Status::Ok();
}

Status ExportHierarchyCsv(const std::string& path, const std::vector<HierarchyPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  CsvWriter csv(out);
  csv.WriteRow({"client_bytes", "server_bytes", "block_bytes", "client_policy", "server_policy",
                "clients", "logical_accesses", "client_disk_reads", "client_disk_writes",
                "server_accesses", "disk_reads", "disk_writes", "client_hit_ratio",
                "global_miss_ratio"});
  for (const HierarchyPoint& p : points) {
    csv.WriteRow({Cell(static_cast<int64_t>(p.config.client.size_bytes)),
                  Cell(static_cast<int64_t>(p.config.server.size_bytes)),
                  Cell(static_cast<int64_t>(p.config.server.block_size)),
                  p.config.has_clients() ? WritePolicyName(p.config.client.policy) : "-",
                  WritePolicyName(p.config.server.policy),
                  Cell(static_cast<int64_t>(p.metrics.client_count)),
                  Cell(static_cast<int64_t>(p.metrics.LogicalAccesses())),
                  Cell(static_cast<int64_t>(p.metrics.client_total.disk_reads)),
                  Cell(static_cast<int64_t>(p.metrics.client_total.disk_writes)),
                  Cell(static_cast<int64_t>(p.metrics.server.logical_accesses)),
                  Cell(static_cast<int64_t>(p.metrics.server.disk_reads)),
                  Cell(static_cast<int64_t>(p.metrics.server.disk_writes)),
                  Cell(p.metrics.ClientHitRatio(), 5),
                  Cell(p.metrics.GlobalMissRatio(), 5)});
  }
  return Status::Ok();
}

}  // namespace bsdtrace
