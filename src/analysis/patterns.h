// Access-pattern distributions: sequential-run lengths (Fig. 1), dynamic
// file sizes at close (Fig. 2), and open durations (Fig. 3).

#ifndef BSDTRACE_SRC_ANALYSIS_PATTERNS_H_
#define BSDTRACE_SRC_ANALYSIS_PATTERNS_H_

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

// Figure 1: cumulative distributions of sequential-run lengths.
struct RunLengthStats {
  // (a) weighted by number of runs.
  WeightedCdf by_runs;
  // (b) weighted by bytes transferred in the run.
  WeightedCdf by_bytes;

  void Merge(const RunLengthStats& other) {
    by_runs.Merge(other.by_runs);
    by_bytes.Merge(other.by_bytes);
  }
};

// Figure 2: dynamic distribution of file sizes, measured at close.
struct FileSizeStats {
  // (a) weighted by number of file accesses.
  WeightedCdf by_accesses;
  // (b) weighted by bytes transferred during the access.
  WeightedCdf by_bytes;

  void Merge(const FileSizeStats& other) {
    by_accesses.Merge(other.by_accesses);
    by_bytes.Merge(other.by_bytes);
  }
};

// Figure 3: distribution of the time files stay open.
struct OpenTimeStats {
  WeightedCdf seconds;

  void Merge(const OpenTimeStats& other) { seconds.Merge(other.seconds); }
};

class PatternsCollector : public ReconstructionSink {
 public:
  void OnTransfer(const Transfer& transfer) override;
  void OnAccess(const AccessSummary& access) override;

  RunLengthStats TakeRuns() { return std::move(runs_); }
  FileSizeStats TakeFileSizes() { return std::move(sizes_); }
  OpenTimeStats TakeOpenTimes() { return std::move(open_times_); }

 private:
  RunLengthStats runs_;
  FileSizeStats sizes_;
  OpenTimeStats open_times_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_PATTERNS_H_
