// Rolling live analysis: consume a (possibly unbounded) record stream and
// publish an immutable Section-5 analysis of the prefix at every simulated
// interval boundary.
//
// Implementation is the segment/stitch machinery shared with the parallel
// analyzer (segment_stitcher.h): the stream is cut into one segment per
// interval, each segment runs the segment-mode collector set, and an
// incremental stitcher absorbs segments as their boundary passes.  A
// snapshot is the stitcher's finalized prefix state, so it is bit-identical
// to a batch Analyze of exactly the records before the boundary — the
// correctness gate of the live pipeline (rolling_analyzer_test,
// bench_live_serve).
//
// Single-threaded: one RollingAnalyzer is driven by one consumer thread
// (typically draining a RingTraceSource).  Concurrency lives in the ring,
// not here.

#ifndef BSDTRACE_SRC_ANALYSIS_ROLLING_ANALYZER_H_
#define BSDTRACE_SRC_ANALYSIS_ROLLING_ANALYZER_H_

#include <functional>
#include <memory>

#include "src/analysis/analyzer.h"
#include "src/analysis/segment_stitcher.h"
#include "src/trace/trace_source.h"
#include "src/util/sim_time.h"

namespace bsdtrace {

class RollingAnalyzer {
 public:
  // Called at each crossed boundary with the prefix analysis (records with
  // time < boundary) and the boundary itself.  An interval with no records
  // still publishes — the snapshot simply equals the previous one — so a
  // dashboard ticks every simulated hour even when the machine idles.
  using SnapshotCallback = std::function<void(const TraceAnalysis&, SimTime)>;

  // interval must be positive.  callback may be empty (snapshots are then
  // only counted, which the tests use to probe boundary bookkeeping).
  explicit RollingAnalyzer(Duration interval, SnapshotCallback callback = nullptr);

  // Feeds one record; records must arrive in non-decreasing time order.
  // Crossing one or more boundaries publishes the due snapshots before the
  // record is applied to the new segment.
  void Process(const TraceRecord& record);

  // Ends the stream and returns the full analysis (mode kLive), bit-identical
  // to a batch Analyze of every record processed.  No snapshot is published
  // for the final partial interval.  The analyzer may not be reused.
  TraceAnalysis Finish();

  uint64_t records_processed() const { return records_; }
  uint64_t snapshots_published() const { return snapshots_; }

 private:
  void CloseSegment();

  Duration interval_;
  SnapshotCallback callback_;
  SimTime next_boundary_;
  std::unique_ptr<SegmentCollector> segment_;
  SegmentStitcher stitcher_;
  uint64_t records_ = 0;
  uint64_t snapshots_ = 0;
};

// Drains `source` through a RollingAnalyzer.  Source errors surface as a
// Status (snapshots already published before the failure stand).
StatusOr<TraceAnalysis> RollingAnalyze(TraceSource& source, Duration interval,
                                       RollingAnalyzer::SnapshotCallback callback = nullptr);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_ROLLING_ANALYZER_H_
