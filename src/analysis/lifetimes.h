// File lifetime measurement (paper Fig. 4 and §5.3).
//
// A "new file" is one created during the trace or truncated to zero length —
// the paper's definition of newly-written information.  The lifetime of that
// information runs from creation until the file is deleted (unlink), emptied
// (truncate to 0), or completely overwritten (re-created).  Only deaths
// observed within the trace are counted; data still live at the end of the
// trace is right-censored and excluded, as in the paper.
//
// Two weightings are reported: by number of files (Fig. 4a) and by bytes
// written to the new file during its life (Fig. 4b).

#ifndef BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_
#define BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_

#include <unordered_map>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct LifetimeStats {
  // Lifetimes in seconds, weighted by file count (Fig. 4a).
  WeightedCdf by_files;
  // Lifetimes in seconds, weighted by bytes written (Fig. 4b).
  WeightedCdf by_bytes;
  uint64_t new_files = 0;       // incarnations born during the trace
  uint64_t observed_deaths = 0; // deaths observed before the trace ended

  // Fraction of new files whose lifetime falls in [lo, hi) seconds — used to
  // spot the 180-second daemon spike.
  double FileFractionIn(double lo_seconds, double hi_seconds) const;
};

class LifetimeCollector : public ReconstructionSink {
 public:
  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  LifetimeStats Take() { return std::move(stats_); }

 private:
  struct Incarnation {
    SimTime birth;
    uint64_t bytes_written = 0;
  };

  void Kill(FileId file, SimTime when);

  std::unordered_map<FileId, Incarnation> live_;
  LifetimeStats stats_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_
