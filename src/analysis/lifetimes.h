// File lifetime measurement (paper Fig. 4 and §5.3).
//
// A "new file" is one created during the trace or truncated to zero length —
// the paper's definition of newly-written information.  The lifetime of that
// information runs from creation until the file is deleted (unlink), emptied
// (truncate to 0), or completely overwritten (re-created).  Only deaths
// observed within the trace are counted; data still live at the end of the
// trace is right-censored and excluded, as in the paper.
//
// Two weightings are reported: by number of files (Fig. 4a) and by bytes
// written to the new file during its life (Fig. 4b).
//
// Segment mode (parallel analysis) handles incarnations that straddle
// segment boundaries.  Per file the worker tracks three zones: bytes written
// before its first birth-or-death event (they belong to an incarnation born
// in an earlier segment), locally born incarnations ("slots"), and the dead
// zone after a kill with nothing live.  Slots whose lifetime completes
// locally emit their sample immediately — unless an orphan record (a close
// or seek whose open straddles the boundary) was tagged against them, in
// which case the sample is deferred until the stitcher has replayed the
// orphan and knows the slot's final byte count.

#ifndef BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_
#define BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_

#include <unordered_map>
#include <vector>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct LifetimeStats {
  // Lifetimes in seconds, weighted by file count (Fig. 4a).
  WeightedCdf by_files;
  // Lifetimes in seconds, weighted by bytes written (Fig. 4b).
  WeightedCdf by_bytes;
  uint64_t new_files = 0;       // incarnations born during the trace
  uint64_t observed_deaths = 0; // deaths observed before the trace ended

  // Fraction of new files whose lifetime falls in [lo, hi) seconds — used to
  // spot the 180-second daemon spike.
  double FileFractionIn(double lo_seconds, double hi_seconds) const;

  // Absorbs another segment's samples and counters (parallel reduction).
  void Merge(const LifetimeStats& other) {
    by_files.Merge(other.by_files);
    by_bytes.Merge(other.by_bytes);
    new_files += other.new_files;
    observed_deaths += other.observed_deaths;
  }
};

// Which incarnation an orphan record's eventual write transfer belongs to,
// decided at the worker's scan position when the orphan is buffered.
struct LifetimeOrphanTag {
  enum class Zone : uint8_t {
    kPre,   // before the file's first local event: the carried incarnation
    kSlot,  // a locally born incarnation (slot index below)
    kDead,  // after a kill with nothing live: the bytes are dropped
  };
  Zone zone = Zone::kDead;
  uint32_t slot = 0;  // valid when zone == kSlot
};

// One segment's lifetime hand-off to the stitcher.
struct LifetimeSegment {
  // A locally born incarnation.  `dead` slots completed locally; a slot that
  // is both dead and marked had its sample deferred (stitch bytes pending).
  // Live slots at segment end are reachable via FileBoundary::exit_slot.
  struct Slot {
    SimTime birth;
    SimTime death;
    uint64_t bytes = 0;
    bool dead = false;
    bool marked = false;  // an orphan tag references this slot
  };

  // Per-file boundary summary, in file-id order.
  struct FileBoundary {
    FileId file = kInvalidFileId;
    // Bytes written before the first local event (carried incarnation).
    uint64_t pre_bytes = 0;
    // First local create/unlink/truncate-to-zero, which kills the carried
    // incarnation if one is live.
    bool has_event = false;
    SimTime first_event_time;
    // Slot still live at segment end, or -1.
    int32_t exit_slot = -1;
  };

  std::vector<Slot> slots;
  std::vector<FileBoundary> files;
  // Samples and counters already final within the segment.
  LifetimeStats local;
};

class LifetimeCollector : public ReconstructionSink {
 public:
  explicit LifetimeCollector(bool segment_mode = false);

  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  LifetimeStats Take() { return std::move(stats_); }

  // Segment mode: the zone a (future) write transfer to `file` lands in at
  // the current scan position.  Marks the slot when it returns kSlot, which
  // defers that slot's sample to the stitcher.
  LifetimeOrphanTag TagOrphanTransfer(FileId file);
  // Segment-mode result (collector may not be reused).
  LifetimeSegment TakeSegment();

 private:
  struct Incarnation {
    SimTime birth;
    uint64_t bytes_written = 0;
  };
  // Segment-mode per-file state (see file comment).
  struct FileSegState {
    uint64_t pre_bytes = 0;
    bool has_event = false;
    SimTime first_event_time;
    int32_t live_slot = -1;
  };

  void Kill(FileId file, SimTime when);
  // Segment mode: a birth-or-death event for `file`; completes the live slot
  // (or records the boundary kill) and opens a new slot when `creates`.
  void SegmentEvent(FileId file, SimTime when, bool creates);

  bool segment_mode_;
  std::unordered_map<FileId, Incarnation> live_;
  LifetimeStats stats_;
  std::unordered_map<FileId, FileSegState> seg_files_;
  std::vector<LifetimeSegment::Slot> slots_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_LIFETIMES_H_
