// Overall trace statistics (paper Table III) and the inter-event interval
// measurement of §3.1 (how tight the no-read-write time bounds are).

#ifndef BSDTRACE_SRC_ANALYSIS_OVERALL_H_
#define BSDTRACE_SRC_ANALYSIS_OVERALL_H_

#include <array>
#include <unordered_map>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct OverallStats {
  Duration duration;
  uint64_t total_records = 0;
  // Counts indexed by EventType's underlying value (1..7).
  std::array<uint64_t, 8> count_by_type{};
  // Total file data read or written (reconstructed transfers).
  uint64_t bytes_transferred = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // Intervals between successive trace events for the same open file —
  // these bound when the intervening data transfers actually occurred.
  // The paper measured 75% < 0.5 s, 90% < 10 s, 99% < 30 s.
  WeightedCdf inter_event_interval_seconds;

  uint64_t Count(EventType type) const {
    return count_by_type[static_cast<size_t>(type)];
  }
  double Fraction(EventType type) const {
    return total_records > 0
               ? static_cast<double>(Count(type)) / static_cast<double>(total_records)
               : 0.0;
  }

  // Absorbs another segment's statistics (parallel reduction): counters sum,
  // duration takes the max, the interval CDF takes the union of samples.
  void Merge(const OverallStats& other);
};

// Streaming collector; feed it through AccessReconstructor.
class OverallStatsCollector : public ReconstructionSink {
 public:
  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  // Finalizes and returns the statistics (collector may not be reused).
  OverallStats Take();

  // Segment handoff: the last event time of each open still pending, so the
  // stitcher can emit the inter-event samples that straddle the boundary.
  // (Seeks and closes whose open lies in an earlier segment are silently
  // skipped here — the map miss — and replayed by the stitcher.)
  std::unordered_map<OpenId, SimTime> TakePendingLastEvents() {
    return std::move(last_event_for_open_);
  }

 private:
  OverallStats stats_;
  SimTime last_time_;
  std::unordered_map<OpenId, SimTime> last_event_for_open_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_OVERALL_H_
