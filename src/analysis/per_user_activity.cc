#include "src/analysis/per_user_activity.h"

#include <algorithm>

namespace bsdtrace {

namespace {

int64_t DayIndex(SimTime t) { return t.micros() / Duration::Hours(24).micros(); }

}  // namespace

// -- PerUserSegment -----------------------------------------------------------

void PerUserSegment::Touch(SimTime t, UserId user, uint64_t records, uint64_t bytes) {
  PerUserTotals& totals = users[user];
  totals.records += records;
  totals.bytes += bytes;
  daily_active[DayIndex(t)].insert(user);
  if (t > last_time) {
    last_time = t;
  }
}

void PerUserSegment::Merge(const PerUserSegment& other) {
  for (const auto& [user, theirs] : other.users) {
    PerUserTotals& ours = users[user];
    ours.records += theirs.records;
    ours.bytes += theirs.bytes;
  }
  for (const auto& [day, active] : other.daily_active) {
    daily_active[day].insert(active.begin(), active.end());
  }
  last_time = std::max(last_time, other.last_time);
}

PerUserActivityStats PerUserSegment::Finalize() const {
  PerUserActivityStats stats;
  stats.duration = last_time - SimTime::Origin();
  stats.days = stats.duration.seconds() / Duration::Hours(24).seconds();
  stats.users = users;
  for (const auto& [user, totals] : users) {
    stats.total_records += totals.records;
    stats.total_bytes += totals.bytes;
    if (stats.days > 0.0) {
      stats.records_per_user_day.Add(static_cast<double>(totals.records) / stats.days);
    }
  }
  // Days between the first and last touched day with no activity at all
  // count as zero-active days, matching the Table IV gap-fill convention.
  int64_t prev = -1;
  bool first = true;
  for (const auto& [day, active] : daily_active) {
    if (!first) {
      for (int64_t i = prev + 1; i < day; ++i) {
        stats.active_users_per_day.Add(0.0);
      }
    }
    stats.active_users_per_day.Add(static_cast<double>(active.size()));
    prev = day;
    first = false;
  }
  return stats;
}

// -- PerUserActivityCollector -------------------------------------------------

PerUserActivityCollector::PerUserActivityCollector(bool segment_mode)
    : segment_mode_(segment_mode) {}

UserId PerUserActivityCollector::UserOf(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      open_user_[r.open_id] = r.user_id;
      return r.user_id;
    case EventType::kSeek: {
      auto it = open_user_.find(r.open_id);
      return it != open_user_.end() ? it->second : r.user_id;
    }
    case EventType::kClose: {
      auto it = open_user_.find(r.open_id);
      if (it == open_user_.end()) {
        return r.user_id;
      }
      const UserId user = it->second;
      open_user_.erase(it);
      return user;
    }
    default:
      return r.user_id;
  }
}

void PerUserActivityCollector::OnRecord(const TraceRecord& r) {
  // Segment mode: a close/seek whose open lies before this segment has no
  // user here; the stitcher replays the record with the carried open's user.
  if (segment_mode_ && (r.type == EventType::kSeek || r.type == EventType::kClose) &&
      open_user_.count(r.open_id) == 0) {
    return;
  }
  segment_.Touch(r.time, UserOf(r), /*records=*/1, /*bytes=*/0);
}

void PerUserActivityCollector::OnTransfer(const Transfer& t) {
  segment_.Touch(t.time, t.user_id, /*records=*/0, t.length);
}

PerUserActivityStats PerUserActivityCollector::Take() { return segment_.Finalize(); }

PerUserSegment PerUserActivityCollector::TakeSegment() { return std::move(segment_); }

// -- Table I band validation --------------------------------------------------

const std::vector<TableIBand>& TableIBands() {
  // Calibrated on the simulator at the paper populations (90/140/40 users):
  // measured per-user rates across 6 h - 72 h durations, 1-8 shards, and
  // 90-1000+ user populations sit at roughly 1600-2950 (A5), 1200-2300 (E3),
  // and 1400-2750 (C4) records/user/day; the bands add ~2x margin on both
  // sides so seed and duration mixes stay inside while an attribution or
  // scaling regression (rates shifting with population) trips them.  Pinned
  // at paper scale and at 1000+ users by the PerUserActivity property tests.
  // Sanity anchor: the paper's Table I reports on the order of half a
  // million records per machine-day, i.e. thousands of records per user-day.
  static const std::vector<TableIBand> kBands = {
      {.trace_name = "A5", .min_records_per_user_day = 700.0,
       .max_records_per_user_day = 4500.0},
      {.trace_name = "E3", .min_records_per_user_day = 500.0,
       .max_records_per_user_day = 3500.0},
      {.trace_name = "C4", .min_records_per_user_day = 600.0,
       .max_records_per_user_day = 5500.0},
  };
  return kBands;
}

std::vector<ActivityBandCheck> CheckActivityBands(const TraceHeader& header,
                                                  const PerUserActivityStats& stats) {
  std::vector<ActivityBandCheck> checks;
  if (stats.days * Duration::Hours(24).seconds() < Duration::Minutes(10).seconds()) {
    return checks;  // too short for a meaningful rate
  }
  const std::vector<FleetInstanceTag> tags = ParseFleetTag(header.description);
  for (size_t i = 0; i < tags.size(); ++i) {
    const FleetInstanceTag& tag = tags[i];
    ActivityBandCheck check;
    check.instance = i;
    check.trace_name = tag.trace_name;
    check.user_population = tag.user_population;
    for (const TableIBand& band : TableIBands()) {
      if (band.trace_name == tag.trace_name) {
        check.band = band;
      }
    }
    // Human users only: the instance's daemon pseudo-users sit below
    // FirstUser() and their activity scales with the machine, not the user.
    uint64_t records = 0;
    const auto begin = stats.users.lower_bound(tag.FirstUser());
    const auto end = stats.users.upper_bound(tag.LastUser());
    for (auto it = begin; it != end; ++it) {
      records += it->second.records;
    }
    check.records_per_user_day =
        tag.user_population > 0
            ? static_cast<double>(records) / tag.user_population / stats.days
            : 0.0;
    check.ok = !check.band.trace_name.empty() &&
               check.records_per_user_day >= check.band.min_records_per_user_day &&
               check.records_per_user_day <= check.band.max_records_per_user_day;
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace bsdtrace
