#include "src/analysis/rolling_analyzer.h"

#include <cassert>
#include <utility>

namespace bsdtrace {

RollingAnalyzer::RollingAnalyzer(Duration interval, SnapshotCallback callback)
    : interval_(interval),
      callback_(std::move(callback)),
      next_boundary_(SimTime::Origin() + interval),
      segment_(new SegmentCollector()) {
  assert(interval.micros() > 0);
}

void RollingAnalyzer::CloseSegment() {
  stitcher_.Add(segment_->Take());
  segment_ = std::make_unique<SegmentCollector>();
}

void RollingAnalyzer::Process(const TraceRecord& record) {
  if (record.time >= next_boundary_) {
    // The records seen so far all precede the boundary; close their segment
    // once, then publish a snapshot per crossed boundary (idle intervals
    // re-publish the same prefix).
    CloseSegment();
    TraceAnalysis snapshot = stitcher_.Snapshot();
    snapshot.mode = AnalyzeMode::kLive;
    snapshot.segments_used = stitcher_.segments();
    while (record.time >= next_boundary_) {
      ++snapshots_;
      if (callback_) {
        callback_(snapshot, next_boundary_);
      }
      next_boundary_ += interval_;
    }
  }
  segment_->Process(record);
  ++records_;
}

TraceAnalysis RollingAnalyzer::Finish() {
  stitcher_.Add(segment_->Take());
  TraceAnalysis result = stitcher_.Finish();
  result.mode = AnalyzeMode::kLive;
  result.segments_used = stitcher_.segments();
  return result;
}

StatusOr<TraceAnalysis> RollingAnalyze(TraceSource& source, Duration interval,
                                       RollingAnalyzer::SnapshotCallback callback) {
  RollingAnalyzer rolling(interval, std::move(callback));
  TraceRecord record;
  while (source.Next(&record)) {
    rolling.Process(record);
  }
  if (!source.status().ok()) {
    return source.status();
  }
  return rolling.Finish();
}

}  // namespace bsdtrace
