#include "src/analysis/analyzer.h"

#include <array>

namespace bsdtrace {
namespace {

// Fans reconstruction callbacks out to every collector.
class MuxSink : public ReconstructionSink {
 public:
  explicit MuxSink(std::array<ReconstructionSink*, 6> sinks) : sinks_(sinks) {}

  void OnTransfer(const Transfer& t) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnTransfer(t);
    }
  }
  void OnAccess(const AccessSummary& a) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnAccess(a);
    }
  }
  void OnRecord(const TraceRecord& r) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnRecord(r);
    }
  }

 private:
  std::array<ReconstructionSink*, 6> sinks_;
};

// Bundles the six collectors plus their fan-out sink; both serial entry
// points drive the same bundle, differing only in how records arrive.
class CollectorSet {
 public:
  CollectorSet()
      : mux_({&overall_, &activity_, &per_user_, &sequentiality_, &patterns_,
              &lifetimes_}) {}

  ReconstructionSink* sink() { return &mux_; }

  TraceAnalysis Take() {
    TraceAnalysis analysis;
    analysis.overall = overall_.Take();
    analysis.activity = activity_.Take();
    analysis.per_user = per_user_.Take();
    analysis.sequentiality = sequentiality_.Take();
    analysis.runs = patterns_.TakeRuns();
    analysis.file_sizes = patterns_.TakeFileSizes();
    analysis.open_times = patterns_.TakeOpenTimes();
    analysis.lifetimes = lifetimes_.Take();
    return analysis;
  }

 private:
  OverallStatsCollector overall_;
  ActivityCollector activity_;
  PerUserActivityCollector per_user_;
  SequentialityCollector sequentiality_;
  PatternsCollector patterns_;
  LifetimeCollector lifetimes_;
  MuxSink mux_;
};

}  // namespace

const char* AnalyzeModeName(AnalyzeMode mode) {
  switch (mode) {
    case AnalyzeMode::kSerial:
      return "serial";
    case AnalyzeMode::kParallel:
      return "parallel";
    case AnalyzeMode::kLive:
      return "live";
  }
  return "?";
}

namespace internal {

TraceAnalysis SerialAnalyze(const Trace& trace) {
  CollectorSet collectors;
  Reconstruct(trace, collectors.sink());
  return collectors.Take();
}

StatusOr<TraceAnalysis> SerialAnalyze(TraceSource& source) {
  CollectorSet collectors;
  const Status status = Reconstruct(source, collectors.sink());
  if (!status.ok()) {
    return status;
  }
  return collectors.Take();
}

}  // namespace internal

}  // namespace bsdtrace
