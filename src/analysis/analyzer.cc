#include "src/analysis/analyzer.h"

#include <array>

namespace bsdtrace {
namespace {

// Fans reconstruction callbacks out to every collector.
class MuxSink : public ReconstructionSink {
 public:
  explicit MuxSink(std::array<ReconstructionSink*, 5> sinks) : sinks_(sinks) {}

  void OnTransfer(const Transfer& t) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnTransfer(t);
    }
  }
  void OnAccess(const AccessSummary& a) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnAccess(a);
    }
  }
  void OnRecord(const TraceRecord& r) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnRecord(r);
    }
  }

 private:
  std::array<ReconstructionSink*, 5> sinks_;
};

}  // namespace

TraceAnalysis AnalyzeTrace(const Trace& trace) {
  OverallStatsCollector overall;
  ActivityCollector activity;
  SequentialityCollector sequentiality;
  PatternsCollector patterns;
  LifetimeCollector lifetimes;

  MuxSink mux({&overall, &activity, &sequentiality, &patterns, &lifetimes});
  Reconstruct(trace, &mux);

  TraceAnalysis analysis;
  analysis.overall = overall.Take();
  analysis.activity = activity.Take();
  analysis.sequentiality = sequentiality.Take();
  analysis.runs = patterns.TakeRuns();
  analysis.file_sizes = patterns.TakeFileSizes();
  analysis.open_times = patterns.TakeOpenTimes();
  analysis.lifetimes = lifetimes.Take();
  return analysis;
}

}  // namespace bsdtrace
