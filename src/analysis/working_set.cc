#include "src/analysis/working_set.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace bsdtrace {

WorkingSetTracker::WorkingSetTracker(Duration window, uint32_t block_size)
    : window_(window), block_size_(block_size) {}

void WorkingSetTracker::Expire(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!queue_.empty() && queue_.front().second < cutoff) {
    const auto& [key, when] = queue_.front();
    auto it = in_window_.find(key);
    // Only expire if this queue entry is the block's latest access.
    if (it != in_window_.end() && it->second == when) {
      in_window_.erase(it);
    }
    queue_.pop_front();
  }
}

void WorkingSetTracker::AccountInterval(SimTime now) {
  if (started_ && now > last_sample_) {
    const double dt = (now - last_sample_).seconds();
    weighted_sum_ += dt * static_cast<double>(in_window_.size());
    total_time_ += dt;
  }
  last_sample_ = now;
  started_ = true;
}

void WorkingSetTracker::OnTransfer(const Transfer& t) {
  if (t.length == 0) {
    return;
  }
  AccountInterval(t.time);
  Expire(t.time);
  const uint64_t first = t.offset / block_size_;
  const uint64_t last = (t.offset + t.length - 1) / block_size_;
  for (uint64_t b = first; b <= last; ++b) {
    const BlockKey key{.file = t.file_id, .index = b};
    in_window_[key] = t.time;
    queue_.emplace_back(key, t.time);
  }
  peak_ = std::max<uint64_t>(peak_, in_window_.size());
}

WorkingSetPoint WorkingSetTracker::Take() {
  WorkingSetPoint point;
  point.window = window_;
  point.average_blocks = total_time_ > 0 ? weighted_sum_ / total_time_ : 0.0;
  point.peak_blocks = peak_;
  return point;
}

WorkingSetStats AnalyzeWorkingSets(const Trace& trace, const std::vector<Duration>& windows,
                                   uint32_t block_size) {
  WorkingSetStats stats;
  stats.block_size = block_size;
  for (Duration window : windows) {
    WorkingSetTracker tracker(window, block_size);
    Reconstruct(trace, &tracker);
    stats.points.push_back(tracker.Take());
  }
  return stats;
}

}  // namespace bsdtrace
