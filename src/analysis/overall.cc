#include "src/analysis/overall.h"

#include <algorithm>

namespace bsdtrace {

void OverallStats::Merge(const OverallStats& other) {
  duration = std::max(duration, other.duration);
  total_records += other.total_records;
  for (size_t i = 0; i < count_by_type.size(); ++i) {
    count_by_type[i] += other.count_by_type[i];
  }
  bytes_transferred += other.bytes_transferred;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  inter_event_interval_seconds.Merge(other.inter_event_interval_seconds);
}

void OverallStatsCollector::OnRecord(const TraceRecord& r) {
  ++stats_.total_records;
  stats_.count_by_type[static_cast<size_t>(r.type)] += 1;
  if (r.time > last_time_) {
    last_time_ = r.time;
  }

  // Track per-open-file event gaps.
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      last_event_for_open_[r.open_id] = r.time;
      break;
    case EventType::kSeek: {
      auto it = last_event_for_open_.find(r.open_id);
      if (it != last_event_for_open_.end()) {
        stats_.inter_event_interval_seconds.Add((r.time - it->second).seconds());
        it->second = r.time;
      }
      break;
    }
    case EventType::kClose: {
      auto it = last_event_for_open_.find(r.open_id);
      if (it != last_event_for_open_.end()) {
        stats_.inter_event_interval_seconds.Add((r.time - it->second).seconds());
        last_event_for_open_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void OverallStatsCollector::OnTransfer(const Transfer& t) {
  stats_.bytes_transferred += t.length;
  if (t.direction == TransferDirection::kRead) {
    stats_.bytes_read += t.length;
  } else {
    stats_.bytes_written += t.length;
  }
}

OverallStats OverallStatsCollector::Take() {
  stats_.duration = last_time_ - SimTime::Origin();
  return std::move(stats_);
}

}  // namespace bsdtrace
