// Parallel Section-5 analysis over an on-disk v3 trace.
//
// The trace is carved at block boundaries (the v3 footer index) into one
// contiguous segment per worker.  Each worker runs the full collector set
// over its segment in isolation (SegmentCollector), and a serial stitch pass
// (SegmentStitcher) walks the segments in time order, replaying boundary
// orphans and merging the partials — see segment_stitcher.h, which both
// this engine and the rolling live analyzer share.
//
// The result is bit-identical to the serial analyzer: every counter is
// exact integer arithmetic, every CDF is canonicalized over its sample
// multiset (WeightedCdf), and the one order-sensitive reduction — Table IV's
// Welford accumulators — is rebuilt by replaying the merged per-interval
// summaries in exactly the serial visit order (ActivitySegment::Finalize).

#ifndef BSDTRACE_SRC_ANALYSIS_PARALLEL_ANALYZER_H_
#define BSDTRACE_SRC_ANALYSIS_PARALLEL_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/trace/trace_source.h"
#include "src/util/status.h"

namespace bsdtrace {

namespace internal {

// Carves the footer index into at most `threads` contiguous (first_block,
// block_count) ranges balanced by record count, coalescing tiny blocks: no
// range is created for fewer than `min_records` records (except when the
// whole trace is smaller), so a trace written with a small block target —
// many near-empty footer entries — yields a few substantial segments instead
// of degenerating to per-block workers.  Segment boundaries affect only load
// balance, never results: the stitcher is carve-agnostic.  Exposed for
// tests; the segmented engine uses it with its default minimum.
std::vector<std::pair<size_t, size_t>> CarveIndex(
    const std::vector<TraceBlockIndexEntry>& index, unsigned threads, uint64_t min_records);

// The segmented engine behind Analyze() for indexed on-disk traces.  Falls
// back to the serial streaming pass — same results by construction — when
// threads <= 1, the file has no block index (v1/v2, or v3/v4 written
// without one), or the index holds too few records to be worth splitting;
// the analysis reports which engine actually ran (TraceAnalysis::mode).
StatusOr<TraceAnalysis> SegmentedAnalyze(const SeekableTraceSource& seekable,
                                         unsigned threads);

}  // namespace internal

// Exact (bitwise) equality of two analyses — the parity check used by tests
// and bench_micro_analyze.  Every scalar, counter, Welford accumulator, and
// CDF sample multiset must match exactly.  Execution metadata (mode, thread
// and segment counts, band verdicts) is deliberately ignored: the guarantee
// is that every engine computes the same statistics.
bool AnalysisBitIdentical(const TraceAnalysis& a, const TraceAnalysis& b);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_PARALLEL_ANALYZER_H_
