#include "src/analysis/segment_stitcher.h"

#include <utility>

#include "src/analysis/analyzer.h"

namespace bsdtrace {

// Fans reconstruction callbacks out to the segment's collectors (the same
// shape as the serial analyzer's mux).
class SegmentCollector::Mux : public ReconstructionSink {
 public:
  Mux(std::initializer_list<ReconstructionSink*> sinks) : sinks_(sinks) {}

  void OnTransfer(const Transfer& t) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnTransfer(t);
    }
  }
  void OnAccess(const AccessSummary& a) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnAccess(a);
    }
  }
  void OnRecord(const TraceRecord& r) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnRecord(r);
    }
  }

 private:
  std::vector<ReconstructionSink*> sinks_;
};

SegmentCollector::SegmentCollector()
    : activity_(/*segment_mode=*/true),
      per_user_(/*segment_mode=*/true),
      lifetimes_(/*segment_mode=*/true),
      mux_(new Mux{&overall_, &activity_, &per_user_, &sequentiality_, &patterns_,
                   &lifetimes_}),
      reconstructor_(new AccessReconstructor(mux_.get())) {}

SegmentCollector::~SegmentCollector() = default;

void SegmentCollector::Process(const TraceRecord& record) {
  reconstructor_->Process(record);
  if (reconstructor_->orphan_events() != orphans_seen_) {
    orphans_seen_ = reconstructor_->orphan_events();
    seg_.orphans.push_back(OrphanRecord{record, lifetimes_.TagOrphanTransfer(record.file_id)});
  }
}

SegmentResult SegmentCollector::Take() {
  seg_.open_states = reconstructor_->TakeOpenStates();
  seg_.overall = overall_.Take();
  seg_.pending_last_events = overall_.TakePendingLastEvents();
  seg_.activity = activity_.TakeSegment();
  seg_.per_user = per_user_.TakeSegment();
  seg_.sequentiality = sequentiality_.Take();
  seg_.runs = patterns_.TakeRuns();
  seg_.file_sizes = patterns_.TakeFileSizes();
  seg_.open_times = patterns_.TakeOpenTimes();
  seg_.lifetimes = lifetimes_.TakeSegment();
  return std::move(seg_);
}

SegmentResult RunSegment(TraceSource& cursor) {
  SegmentCollector collector;
  TraceRecord r;
  while (cursor.Next(&r)) {
    collector.Process(r);
  }
  if (!cursor.status().ok()) {
    SegmentResult seg;
    seg.status = cursor.status();
    return seg;
  }
  return collector.Take();
}

namespace {

// An incarnation alive across a segment boundary.
struct CarriedIncarnation {
  SimTime birth;
  uint64_t bytes = 0;
};

// Receives the carried reconstructor's output while the stitcher replays
// orphan records.  Record-level bookkeeping (event counts, activity touches,
// inter-event samples) is handled by the stitch loop itself — the segments
// already counted the records — so OnRecord is deliberately a no-op.
class StitchSink : public ReconstructionSink {
 public:
  StitchSink(OverallStats* overall_extra, PatternsCollector* patterns,
             SequentialityCollector* sequentiality, ActivitySegment* activity,
             PerUserSegment* per_user,
             std::unordered_map<FileId, CarriedIncarnation>* carried_live)
      : overall_extra_(overall_extra),
        patterns_(patterns),
        sequentiality_(sequentiality),
        activity_(activity),
        per_user_(per_user),
        carried_live_(carried_live) {}

  void set_segment(LifetimeSegment* lifetimes) { lifetimes_ = lifetimes; }
  void set_tag(LifetimeOrphanTag tag) { tag_ = tag; }

  void OnTransfer(const Transfer& t) override {
    overall_extra_->bytes_transferred += t.length;
    if (t.direction == TransferDirection::kRead) {
      overall_extra_->bytes_read += t.length;
    } else {
      overall_extra_->bytes_written += t.length;
    }
    patterns_->OnTransfer(t);
    activity_->users_seen.insert(t.user_id);
    activity_->total_bytes += t.length;
    activity_->Touch(t.time, t.user_id, t.length);
    per_user_->Touch(t.time, t.user_id, /*records=*/0, t.length);
    if (t.direction == TransferDirection::kWrite) {
      switch (tag_.zone) {
        case LifetimeOrphanTag::Zone::kPre: {
          auto it = carried_live_->find(t.file_id);
          if (it != carried_live_->end()) {
            it->second.bytes += t.length;
          }
          break;
        }
        case LifetimeOrphanTag::Zone::kSlot:
          lifetimes_->slots[tag_.slot].bytes += t.length;
          break;
        case LifetimeOrphanTag::Zone::kDead:
          break;  // a kill preceded the transfer; the bytes are dropped
      }
    }
  }

  void OnAccess(const AccessSummary& a) override {
    sequentiality_->OnAccess(a);
    patterns_->OnAccess(a);
  }

 private:
  OverallStats* overall_extra_;
  PatternsCollector* patterns_;
  SequentialityCollector* sequentiality_;
  ActivitySegment* activity_;
  PerUserSegment* per_user_;
  std::unordered_map<FileId, CarriedIncarnation>* carried_live_;
  LifetimeSegment* lifetimes_ = nullptr;
  LifetimeOrphanTag tag_;
};

void EmitLifetimeSample(LifetimeStats* stats, SimTime birth, SimTime death,
                        uint64_t bytes) {
  const double lifetime = (death - birth).seconds();
  stats->by_files.Add(lifetime);
  if (bytes > 0) {
    stats->by_bytes.Add(lifetime, static_cast<double>(bytes));
  }
  stats->observed_deaths += 1;
}

}  // namespace

struct SegmentStitcher::Impl {
  Impl()
      : sink(&overall_extra, &patterns, &sequentiality, &activity, &per_user,
             &carried_live),
        reconstructor(&sink) {}

  // Merged order-free partials of the segments absorbed so far.
  TraceAnalysis partial;
  // Stitch-side extras: bytes + samples recovered from orphan replays, and
  // lifetime samples completed at boundaries.
  OverallStats overall_extra;
  PatternsCollector patterns;
  SequentialityCollector sequentiality;
  ActivitySegment activity;
  PerUserSegment per_user;
  std::unordered_map<FileId, CarriedIncarnation> carried_live;
  std::unordered_map<OpenId, SimTime> carried_last_event;
  LifetimeStats lifetime_extra;
  StitchSink sink;
  AccessReconstructor reconstructor;
  size_t segments = 0;

  void Add(SegmentResult&& seg);
  TraceAnalysis Snapshot() const;
  TraceAnalysis Finish();
};

void SegmentStitcher::Impl::Add(SegmentResult&& seg) {
  sink.set_segment(&seg.lifetimes);
  // 1. Replay the records whose open lies in an earlier segment.  The
  // carried reconstructor emits their transfers and access summaries; the
  // loop itself restores the record-level effects the segment had to skip:
  // the inter-event interval sample and the activity touch (both need the
  // opening user / previous event time, known only here).
  for (const OrphanRecord& orphan : seg.orphans) {
    const TraceRecord& r = orphan.record;
    const AccessReconstructor::OpenState* open = reconstructor.FindOpen(r.open_id);
    const UserId user = open != nullptr ? open->summary.user_id : r.user_id;
    auto last = carried_last_event.find(r.open_id);
    if (last != carried_last_event.end()) {
      overall_extra.inter_event_interval_seconds.Add((r.time - last->second).seconds());
      if (r.type == EventType::kSeek) {
        last->second = r.time;
      } else {
        carried_last_event.erase(last);
      }
    }
    sink.set_tag(orphan.tag);
    reconstructor.Process(r);
    activity.users_seen.insert(user);
    activity.Touch(r.time, user, 0);
    per_user.Touch(r.time, user, /*records=*/1, /*bytes=*/0);
  }

  // 2. Adopt this segment's boundary state: its pending opens become the
  // carried opens for later segments.
  reconstructor.AdoptOpenStates(std::move(seg.open_states));
  for (const auto& [open_id, time] : seg.pending_last_events) {
    carried_last_event.insert_or_assign(open_id, time);
  }

  // 3. Lifetime boundary processing (orphan bytes are already routed).
  // Pre-event bytes feed the carried incarnation; the segment's first
  // birth-or-death event kills it; marked completed slots emit now that
  // their byte counts are final; exit-live slots become carried.
  for (const LifetimeSegment::FileBoundary& fb : seg.lifetimes.files) {
    auto it = carried_live.find(fb.file);
    if (it != carried_live.end()) {
      it->second.bytes += fb.pre_bytes;
      if (fb.has_event) {
        EmitLifetimeSample(&lifetime_extra, it->second.birth, fb.first_event_time,
                           it->second.bytes);
        carried_live.erase(it);
      }
    }
    if (fb.exit_slot >= 0) {
      const LifetimeSegment::Slot& slot =
          seg.lifetimes.slots[static_cast<size_t>(fb.exit_slot)];
      carried_live[fb.file] = CarriedIncarnation{slot.birth, slot.bytes};
    }
  }
  for (const LifetimeSegment::Slot& slot : seg.lifetimes.slots) {
    if (slot.dead && slot.marked) {
      EmitLifetimeSample(&lifetime_extra, slot.birth, slot.death, slot.bytes);
    }
  }

  // 4. Merge the order-free partials.
  partial.overall.Merge(seg.overall);
  activity.Merge(seg.activity);
  per_user.Merge(seg.per_user);
  partial.sequentiality.Merge(seg.sequentiality);
  partial.runs.Merge(seg.runs);
  partial.file_sizes.Merge(seg.file_sizes);
  partial.open_times.Merge(seg.open_times);
  partial.lifetimes.Merge(seg.lifetimes.local);
  ++segments;
}

// Finalization, shared by Snapshot (copies) and Finish (moves).  Incarnations
// still live, opens still pending, and inter-event samples still straddling
// are right-censored and dropped, exactly as the streaming collector treats
// end of trace — which is what makes a boundary snapshot bit-identical to a
// batch analysis of the prefix.
TraceAnalysis SegmentStitcher::Impl::Snapshot() const {
  TraceAnalysis result = partial;
  result.overall.Merge(overall_extra);
  result.sequentiality.Merge(SequentialityCollector(sequentiality).Take());
  PatternsCollector patterns_copy = patterns;
  result.runs.Merge(patterns_copy.TakeRuns());
  result.file_sizes.Merge(patterns_copy.TakeFileSizes());
  result.open_times.Merge(patterns_copy.TakeOpenTimes());
  result.lifetimes.Merge(lifetime_extra);
  result.activity = activity.Finalize();
  result.per_user = per_user.Finalize();
  return result;
}

TraceAnalysis SegmentStitcher::Impl::Finish() {
  TraceAnalysis result = std::move(partial);
  result.overall.Merge(overall_extra);
  result.sequentiality.Merge(sequentiality.Take());
  result.runs.Merge(patterns.TakeRuns());
  result.file_sizes.Merge(patterns.TakeFileSizes());
  result.open_times.Merge(patterns.TakeOpenTimes());
  result.lifetimes.Merge(lifetime_extra);
  result.activity = activity.Finalize();
  result.per_user = per_user.Finalize();
  return result;
}

SegmentStitcher::SegmentStitcher() : impl_(new Impl()) {}
SegmentStitcher::~SegmentStitcher() = default;

void SegmentStitcher::Add(SegmentResult segment) { impl_->Add(std::move(segment)); }
TraceAnalysis SegmentStitcher::Snapshot() const { return impl_->Snapshot(); }
TraceAnalysis SegmentStitcher::Finish() { return impl_->Finish(); }
size_t SegmentStitcher::segments() const { return impl_->segments; }

}  // namespace bsdtrace
