// File popularity analysis (extension): how opens concentrate on few files.
//
// Not a paper table, but implied throughout: shared configuration files,
// status files, and the administrative databases take a disproportionate
// share of accesses (Fig. 2 notes a few large files get ~20% of accesses).
// Popularity skew is what makes caching shared blocks effective.

#ifndef BSDTRACE_SRC_ANALYSIS_POPULARITY_H_
#define BSDTRACE_SRC_ANALYSIS_POPULARITY_H_

#include <unordered_map>
#include <vector>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct PopularityStats {
  uint64_t distinct_files = 0;
  uint64_t total_accesses = 0;
  uint64_t total_bytes = 0;

  // Fraction of all accesses (or bytes) going to the most-accessed N files.
  double TopAccessShare(size_t n) const;
  double TopByteShare(size_t n) const;
  // Smallest number of files covering the given fraction of accesses.
  uint64_t FilesForAccessFraction(double fraction) const;
  // Accesses-per-file distribution.
  WeightedCdf accesses_per_file;

  // Per-file totals, sorted descending (by accesses / by bytes).
  std::vector<uint64_t> access_counts_sorted;
  std::vector<uint64_t> byte_counts_sorted;
};

class PopularityCollector : public ReconstructionSink {
 public:
  void OnAccess(const AccessSummary& access) override;
  void OnTransfer(const Transfer& transfer) override;
  void OnRecord(const TraceRecord& record) override;

  PopularityStats Take();

 private:
  struct FileTotals {
    uint64_t accesses = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<FileId, FileTotals> files_;
};

// Convenience: one pass over a trace.
PopularityStats AnalyzePopularity(const Trace& trace);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_POPULARITY_H_
