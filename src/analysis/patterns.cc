#include "src/analysis/patterns.h"

namespace bsdtrace {

void PatternsCollector::OnTransfer(const Transfer& t) {
  const auto len = static_cast<double>(t.length);
  runs_.by_runs.Add(len);
  runs_.by_bytes.Add(len, len);
}

void PatternsCollector::OnAccess(const AccessSummary& a) {
  const auto size = static_cast<double>(a.size_at_close);
  sizes_.by_accesses.Add(size);
  if (a.bytes_transferred > 0) {
    sizes_.by_bytes.Add(size, static_cast<double>(a.bytes_transferred));
  }
  open_times_.seconds.Add(a.open_duration().seconds());
}

}  // namespace bsdtrace
