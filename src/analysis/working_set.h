// Working-set analysis (Denning): how much distinct file data a machine
// touches within a time window.
//
// The paper's Fig. 7 discussion reasons about "the total working set of file
// information" when program text joins file data in the cache; this module
// makes that quantity measurable.  For a window length T, the working set at
// time t is the set of distinct blocks accessed in (t - T, t]; we report the
// average and peak working-set *size* over the trace for each requested T —
// directly comparable to candidate cache sizes.

#ifndef BSDTRACE_SRC_ANALYSIS_WORKING_SET_H_
#define BSDTRACE_SRC_ANALYSIS_WORKING_SET_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/cache/block_cache.h"
#include "src/trace/reconstruct.h"

namespace bsdtrace {

struct WorkingSetPoint {
  Duration window;
  double average_blocks = 0;   // time-averaged working-set size
  uint64_t peak_blocks = 0;
  double average_bytes() const { return average_blocks * 4096; }
};

struct WorkingSetStats {
  uint32_t block_size = 4096;
  std::vector<WorkingSetPoint> points;
};

// Single-window streaming tracker.  Sampled at every access; the average is
// weighted by inter-access time.
class WorkingSetTracker : public ReconstructionSink {
 public:
  WorkingSetTracker(Duration window, uint32_t block_size);

  void OnTransfer(const Transfer& transfer) override;

  WorkingSetPoint Take();

 private:
  void Expire(SimTime now);
  void AccountInterval(SimTime now);

  Duration window_;
  uint32_t block_size_;
  // Blocks currently inside the window, with their last access time.
  std::unordered_map<BlockKey, SimTime, BlockKeyHash> in_window_;
  // Access order queue for expiry (block, access time); stale entries are
  // skipped when the block was re-accessed later.
  std::deque<std::pair<BlockKey, SimTime>> queue_;
  SimTime last_sample_;
  bool started_ = false;
  double weighted_sum_ = 0;  // integral of |working set| dt
  double total_time_ = 0;
  uint64_t peak_ = 0;
};

// Convenience: evaluates several window lengths over one trace.
WorkingSetStats AnalyzeWorkingSets(const Trace& trace, const std::vector<Duration>& windows,
                                   uint32_t block_size = 4096);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_WORKING_SET_H_
