// Sequentiality classification (paper Table V): whole-file transfers and
// sequential accesses, broken down by access mode.

#ifndef BSDTRACE_SRC_ANALYSIS_SEQUENTIALITY_H_
#define BSDTRACE_SRC_ANALYSIS_SEQUENTIALITY_H_

#include <array>

#include "src/trace/reconstruct.h"

namespace bsdtrace {

struct ModeSequentiality {
  uint64_t accesses = 0;
  uint64_t whole_file = 0;
  uint64_t sequential = 0;
  uint64_t bytes = 0;
  uint64_t whole_file_bytes = 0;
  uint64_t sequential_bytes = 0;

  double WholeFileFraction() const {
    return accesses > 0 ? static_cast<double>(whole_file) / static_cast<double>(accesses) : 0;
  }
  double SequentialFraction() const {
    return accesses > 0 ? static_cast<double>(sequential) / static_cast<double>(accesses) : 0;
  }

  void Merge(const ModeSequentiality& other) {
    accesses += other.accesses;
    whole_file += other.whole_file;
    sequential += other.sequential;
    bytes += other.bytes;
    whole_file_bytes += other.whole_file_bytes;
    sequential_bytes += other.sequential_bytes;
  }
};

struct SequentialityStats {
  // Indexed by AccessMode.
  std::array<ModeSequentiality, 3> by_mode{};

  const ModeSequentiality& Mode(AccessMode mode) const {
    return by_mode[static_cast<size_t>(mode)];
  }
  ModeSequentiality Total() const;

  // Fractions over all bytes transferred (Table V's byte rows).
  double WholeFileByteFraction() const;
  double SequentialByteFraction() const;

  // Absorbs another segment's counters (parallel reduction).
  void Merge(const SequentialityStats& other) {
    for (size_t i = 0; i < by_mode.size(); ++i) {
      by_mode[i].Merge(other.by_mode[i]);
    }
  }
};

class SequentialityCollector : public ReconstructionSink {
 public:
  void OnAccess(const AccessSummary& access) override;
  SequentialityStats Take() { return stats_; }

 private:
  SequentialityStats stats_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_SEQUENTIALITY_H_
