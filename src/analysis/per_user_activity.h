// Per-user activity accounting and the Table I activity-band validator.
//
// The paper's Table I characterizes each traced machine by its user
// population and the trace activity that population produced; dividing the
// two gives a per-user records/day rate that is a property of the *workload
// mix*, not of the machine size.  This collector attributes every trace
// record and reconstructed byte to the user on whose behalf it was logged,
// reports per-user totals plus the distributions Table I implies (records
// per user-day, active users per day), and checks the per-user rate of each
// machine in a fleet trace against the profile's calibrated band — which is
// how population scaling (workload/profile.h) and fleet generation
// (workload/fleet.h) are validated: a 1000-user A5 must keep the same
// per-user activity as the paper's 90-user A5.
//
// Like the Table IV collector (activity.h) this runs in two modes.  The
// serial mode and the segment mode both accumulate the same order-free
// integer summary (PerUserSegment); segments merge by summation/union, so the
// parallel analyzer reproduces the serial results bit for bit.

#ifndef BSDTRACE_SRC_ANALYSIS_PER_USER_ACTIVITY_H_
#define BSDTRACE_SRC_ANALYSIS_PER_USER_ACTIVITY_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/fleet_tag.h"
#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

// Everything attributed to one user over the whole trace.
struct PerUserTotals {
  uint64_t records = 0;  // trace records logged on the user's behalf
  uint64_t bytes = 0;    // reconstructed bytes transferred

  bool operator==(const PerUserTotals&) const = default;
};

struct PerUserActivityStats {
  Duration duration;
  // Fractional simulated days (duration / 24 h); the records/day
  // normalizer.  0 for an empty trace.
  double days = 0.0;
  uint64_t total_records = 0;
  uint64_t total_bytes = 0;
  // Per-user totals, ascending user id.  Daemon pseudo-users (the network
  // daemon and printer) appear here like everyone else; the band checker
  // selects the human range via the fleet tag.
  std::map<UserId, PerUserTotals> users;
  // Distribution across users of per-user records/day.
  RunningStats records_per_user_day;
  // Distribution across simulated days of the daily active-user count
  // (a user is active on a day if any of their records falls in it).
  RunningStats active_users_per_day;
};

// Order-free per-segment summary: pure integer counts and sets, so Merge is
// exact and Finalize is a deterministic function of the merged content.
struct PerUserSegment {
  std::map<UserId, PerUserTotals> users;
  std::map<int64_t, std::set<UserId>> daily_active;  // day index -> users
  SimTime last_time;

  void Touch(SimTime t, UserId user, uint64_t records, uint64_t bytes);
  void Merge(const PerUserSegment& other);
  PerUserActivityStats Finalize() const;
};

class PerUserActivityCollector : public ReconstructionSink {
 public:
  // segment_mode: skip close/seek records whose open lies outside this
  // segment (their user is unknown here; the stitcher replays them with the
  // carried open's user) — the same contract as ActivityCollector.
  explicit PerUserActivityCollector(bool segment_mode = false);

  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  PerUserActivityStats Take();
  // Segment-mode result (collector may not be reused).
  PerUserSegment TakeSegment();

 private:
  UserId UserOf(const TraceRecord& record);

  bool segment_mode_;
  PerUserSegment segment_;
  std::unordered_map<OpenId, UserId> open_user_;
};

// -- Table I band validation --------------------------------------------------

// The accepted per-user records/day range for one machine profile,
// calibrated on the simulator at the paper's populations and pinned by the
// PerUserActivity property tests at 90 and 1000+ users.
struct TableIBand {
  std::string trace_name;  // "A5" / "E3" / "C4"
  double min_records_per_user_day = 0.0;
  double max_records_per_user_day = 0.0;
};

// The calibrated bands for the three paper profiles.
const std::vector<TableIBand>& TableIBands();

// One fleet instance's verdict.
struct ActivityBandCheck {
  size_t instance = 0;          // index within the fleet tag
  std::string trace_name;
  int user_population = 0;
  double records_per_user_day = 0.0;  // human users only, averaged
  TableIBand band;
  bool ok = false;
};

// Checks each machine instance of a fleet-tagged trace against its profile's
// band: (sum of the instance's human users' records) / population / days.
// Returns one entry per instance, empty when the header carries no fleet tag
// (legacy traces — nothing to validate against) or the trace is shorter than
// 10 simulated minutes (too little signal for a rate).
std::vector<ActivityBandCheck> CheckActivityBands(const TraceHeader& header,
                                                  const PerUserActivityStats& stats);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_PER_USER_ACTIVITY_H_
