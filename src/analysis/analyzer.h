// The analysis front door: every Section-5 analysis — batch over an
// in-memory trace, streaming over any TraceSource (files, merges, live
// rings), segment-parallel over an indexed on-disk trace, and rolling live
// analysis with periodic snapshots — goes through one entry point,
// Analyze(AnalyzeOptions).  The historical per-shape entry points remain as
// one-line shims for out-of-tree callers.

#ifndef BSDTRACE_SRC_ANALYSIS_ANALYZER_H_
#define BSDTRACE_SRC_ANALYSIS_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/activity.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/overall.h"
#include "src/analysis/patterns.h"
#include "src/analysis/per_user_activity.h"
#include "src/analysis/sequentiality.h"
#include "src/trace/trace.h"
#include "src/trace/trace_source.h"
#include "src/util/status.h"

namespace bsdtrace {

// How an analysis was actually executed.  Execution metadata, not a result:
// every mode produces bit-identical statistics for the same records, and
// AnalysisBitIdentical ignores it.  Callers asked for a mode they did not
// get (e.g. threads=8 over an index-less v1 file) can now see the fallback
// instead of silently timing the wrong engine.
enum class AnalyzeMode : uint8_t {
  kSerial,    // one streaming pass
  kParallel,  // segment-parallel workers + stitch
  kLive,      // rolling segments with periodic snapshots
};

const char* AnalyzeModeName(AnalyzeMode mode);

// Everything Section 5 of the paper reports about a trace.
struct TraceAnalysis {
  OverallStats overall;            // Table III + §3.1 intervals
  ActivityStats activity;          // Table IV
  PerUserActivityStats per_user;   // Table I per-user activity
  SequentialityStats sequentiality;  // Table V
  RunLengthStats runs;             // Figure 1
  FileSizeStats file_sizes;        // Figure 2
  OpenTimeStats open_times;        // Figure 3
  LifetimeStats lifetimes;         // Figure 4

  // -- Execution metadata (set by Analyze; ignored by AnalysisBitIdentical) --
  AnalyzeMode mode = AnalyzeMode::kSerial;  // the mode that actually ran
  unsigned threads_used = 1;   // concurrent workers that actually ran
  size_t segments_used = 1;    // segments analyzed (1 for a serial pass)
  // Table I band verdicts, one per fleet instance; filled only when
  // AnalyzeOptions::check_bands was set and the header carried a fleet tag.
  std::vector<ActivityBandCheck> band_checks;

  bool bands_ok() const {
    for (const ActivityBandCheck& c : band_checks) {
      if (!c.ok) {
        return false;
      }
    }
    return true;
  }
};

// Options for Analyze().  Exactly ONE of {trace, source, seekable, path}
// must be set; everything else tunes how that record stream is analyzed.
struct AnalyzeOptions {
  // -- The record stream (pick one) -------------------------------------
  const Trace* trace = nullptr;          // in-memory records
  TraceSource* source = nullptr;         // any pull stream (file, merge, ring)
  const SeekableTraceSource* seekable = nullptr;  // opened indexed file
  std::string path;                      // trace file on disk

  // -- Execution --------------------------------------------------------
  // Worker threads; 0 means hardware concurrency.  More than one engages
  // the segment-parallel engine when the input is an indexed on-disk trace
  // with enough records; the effective choice is reported in
  // TraceAnalysis::mode.  Streaming-only inputs (trace/source) and rolling
  // runs always analyze serially.
  unsigned threads = 1;

  // -- Rolling snapshots (live mode) ------------------------------------
  // When positive, the analyzer closes a segment at every multiple of this
  // interval of SIMULATED time and invokes on_snapshot with an immutable
  // prefix analysis that is bit-identical to a batch Analyze of the records
  // before that boundary.  Works over any input shape; a ring-backed source
  // makes it the live-daemon path (trace_stream serve).
  Duration snapshot_interval = Duration::Zero();
  // Called once per crossed boundary, in boundary order, from the analyzing
  // thread.  The SimTime argument is the boundary the snapshot covers up to
  // (records with time >= boundary are not included).
  std::function<void(const TraceAnalysis&, SimTime)> on_snapshot;

  // -- Validation -------------------------------------------------------
  // Check each fleet instance's per-user rate against its profile's Table I
  // band and report the verdicts in TraceAnalysis::band_checks.
  bool check_bands = false;
};

// Runs the Section-5 collector set over the configured stream.  Errors —
// no/ambiguous input, or an I/O failure from the underlying source —
// surface as a Status.  Results are bit-identical across every execution
// mode for the same records.
//
// This is the one analysis entry point (the legacy AnalyzeTrace /
// ParallelAnalyzeTrace wrappers are gone); the historical call shapes map
// onto options directly:
//   in-memory trace     Analyze({.trace = &trace})
//   streaming source    Analyze({.source = &source})
//   seekable + threads  Analyze({.seekable = &seekable, .threads = N})
//   file path + threads Analyze({.path = path, .threads = N})
StatusOr<TraceAnalysis> Analyze(const AnalyzeOptions& options);

namespace internal {

// Serial engine internals, used by Analyze() and the parallel fallback.
TraceAnalysis SerialAnalyze(const Trace& trace);
StatusOr<TraceAnalysis> SerialAnalyze(TraceSource& source);

}  // namespace internal

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_ANALYZER_H_
