// One-pass trace analysis facade: runs every Section-5 collector over a
// trace via the access reconstructor.

#ifndef BSDTRACE_SRC_ANALYSIS_ANALYZER_H_
#define BSDTRACE_SRC_ANALYSIS_ANALYZER_H_

#include "src/analysis/activity.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/overall.h"
#include "src/analysis/patterns.h"
#include "src/analysis/per_user_activity.h"
#include "src/analysis/sequentiality.h"
#include "src/trace/trace.h"
#include "src/trace/trace_source.h"
#include "src/util/status.h"

namespace bsdtrace {

// Everything Section 5 of the paper reports about a trace.
struct TraceAnalysis {
  OverallStats overall;            // Table III + §3.1 intervals
  ActivityStats activity;          // Table IV
  PerUserActivityStats per_user;   // Table I per-user activity
  SequentialityStats sequentiality;  // Table V
  RunLengthStats runs;             // Figure 1
  FileSizeStats file_sizes;        // Figure 2
  OpenTimeStats open_times;        // Figure 3
  LifetimeStats lifetimes;         // Figure 4
};

// Runs all collectors in a single pass over the trace.
TraceAnalysis AnalyzeTrace(const Trace& trace);

// Streaming variant: one pass over any TraceSource with one record in
// flight, so an on-disk trace of any length analyzes in memory bounded by
// the collectors' own state (histograms + per-open tables), not the trace.
// Identical results to AnalyzeTrace(CollectTrace(source)); source errors
// (truncated or corrupt files) surface as a Status.
StatusOr<TraceAnalysis> AnalyzeTrace(TraceSource& source);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_ANALYZER_H_
