#include "src/analysis/parallel_analyzer.h"

#include <atomic>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/analysis/activity.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/overall.h"
#include "src/analysis/patterns.h"
#include "src/analysis/per_user_activity.h"
#include "src/analysis/sequentiality.h"
#include "src/trace/reconstruct.h"

namespace bsdtrace {
namespace {

// Fans reconstruction callbacks out to the worker's collectors (the same
// shape as the serial analyzer's mux, local to this translation unit).
class WorkerMux : public ReconstructionSink {
 public:
  WorkerMux(std::initializer_list<ReconstructionSink*> sinks) : sinks_(sinks) {}

  void OnTransfer(const Transfer& t) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnTransfer(t);
    }
  }
  void OnAccess(const AccessSummary& a) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnAccess(a);
    }
  }
  void OnRecord(const TraceRecord& r) override {
    for (ReconstructionSink* s : sinks_) {
      s->OnRecord(r);
    }
  }

 private:
  std::vector<ReconstructionSink*> sinks_;
};

// A record the worker could not interpret (its open lies in an earlier
// segment), plus the lifetime zone its eventual write transfer lands in.
struct OrphanRecord {
  TraceRecord record;
  LifetimeOrphanTag tag;
};

// Everything one worker hands to the stitcher.
struct SegmentResult {
  Status status = Status::Ok();
  std::vector<OrphanRecord> orphans;
  std::unordered_map<OpenId, AccessReconstructor::OpenState> open_states;
  OverallStats overall;
  std::unordered_map<OpenId, SimTime> pending_last_events;
  ActivitySegment activity;
  PerUserSegment per_user;
  SequentialityStats sequentiality;
  RunLengthStats runs;
  FileSizeStats file_sizes;
  OpenTimeStats open_times;
  LifetimeSegment lifetimes;
};

// One full collector pass over a single segment.
SegmentResult RunSegment(TraceSource& cursor) {
  SegmentResult seg;
  OverallStatsCollector overall;
  ActivityCollector activity(/*segment_mode=*/true);
  PerUserActivityCollector per_user(/*segment_mode=*/true);
  SequentialityCollector sequentiality;
  PatternsCollector patterns;
  LifetimeCollector lifetimes(/*segment_mode=*/true);
  WorkerMux mux{&overall, &activity, &per_user, &sequentiality, &patterns, &lifetimes};
  AccessReconstructor reconstructor(&mux);

  TraceRecord r;
  uint64_t orphans_seen = 0;
  while (cursor.Next(&r)) {
    reconstructor.Process(r);
    if (reconstructor.orphan_events() != orphans_seen) {
      orphans_seen = reconstructor.orphan_events();
      seg.orphans.push_back(OrphanRecord{r, lifetimes.TagOrphanTransfer(r.file_id)});
    }
  }
  if (!cursor.status().ok()) {
    seg.status = cursor.status();
    return seg;
  }
  seg.open_states = reconstructor.TakeOpenStates();
  seg.overall = overall.Take();
  seg.pending_last_events = overall.TakePendingLastEvents();
  seg.activity = activity.TakeSegment();
  seg.per_user = per_user.TakeSegment();
  seg.sequentiality = sequentiality.Take();
  seg.runs = patterns.TakeRuns();
  seg.file_sizes = patterns.TakeFileSizes();
  seg.open_times = patterns.TakeOpenTimes();
  seg.lifetimes = lifetimes.TakeSegment();
  return seg;
}

// An incarnation alive across a segment boundary.
struct CarriedIncarnation {
  SimTime birth;
  uint64_t bytes = 0;
};

// Receives the carried reconstructor's output while the stitcher replays
// orphan records.  Record-level bookkeeping (event counts, activity touches,
// inter-event samples) is handled by the stitch loop itself — the workers
// already counted the records — so OnRecord is deliberately a no-op.
class StitchSink : public ReconstructionSink {
 public:
  StitchSink(OverallStats* overall_extra, PatternsCollector* patterns,
             SequentialityCollector* sequentiality, ActivitySegment* activity,
             PerUserSegment* per_user,
             std::unordered_map<FileId, CarriedIncarnation>* carried_live)
      : overall_extra_(overall_extra),
        patterns_(patterns),
        sequentiality_(sequentiality),
        activity_(activity),
        per_user_(per_user),
        carried_live_(carried_live) {}

  void set_segment(LifetimeSegment* lifetimes) { lifetimes_ = lifetimes; }
  void set_tag(LifetimeOrphanTag tag) { tag_ = tag; }

  void OnTransfer(const Transfer& t) override {
    overall_extra_->bytes_transferred += t.length;
    if (t.direction == TransferDirection::kRead) {
      overall_extra_->bytes_read += t.length;
    } else {
      overall_extra_->bytes_written += t.length;
    }
    patterns_->OnTransfer(t);
    activity_->users_seen.insert(t.user_id);
    activity_->total_bytes += t.length;
    activity_->Touch(t.time, t.user_id, t.length);
    per_user_->Touch(t.time, t.user_id, /*records=*/0, t.length);
    if (t.direction == TransferDirection::kWrite) {
      switch (tag_.zone) {
        case LifetimeOrphanTag::Zone::kPre: {
          auto it = carried_live_->find(t.file_id);
          if (it != carried_live_->end()) {
            it->second.bytes += t.length;
          }
          break;
        }
        case LifetimeOrphanTag::Zone::kSlot:
          lifetimes_->slots[tag_.slot].bytes += t.length;
          break;
        case LifetimeOrphanTag::Zone::kDead:
          break;  // a kill preceded the transfer; the bytes are dropped
      }
    }
  }

  void OnAccess(const AccessSummary& a) override {
    sequentiality_->OnAccess(a);
    patterns_->OnAccess(a);
  }

 private:
  OverallStats* overall_extra_;
  PatternsCollector* patterns_;
  SequentialityCollector* sequentiality_;
  ActivitySegment* activity_;
  PerUserSegment* per_user_;
  std::unordered_map<FileId, CarriedIncarnation>* carried_live_;
  LifetimeSegment* lifetimes_ = nullptr;
  LifetimeOrphanTag tag_;
};

void EmitLifetimeSample(LifetimeStats* stats, SimTime birth, SimTime death,
                        uint64_t bytes) {
  const double lifetime = (death - birth).seconds();
  stats->by_files.Add(lifetime);
  if (bytes > 0) {
    stats->by_bytes.Add(lifetime, static_cast<double>(bytes));
  }
  stats->observed_deaths += 1;
}

TraceAnalysis Stitch(std::vector<SegmentResult>& segments) {
  TraceAnalysis result;
  OverallStats overall_extra;  // stitch-side bytes + inter-event samples
  PatternsCollector patterns;
  SequentialityCollector sequentiality;
  ActivitySegment activity;
  PerUserSegment per_user;
  std::unordered_map<FileId, CarriedIncarnation> carried_live;
  std::unordered_map<OpenId, SimTime> carried_last_event;
  LifetimeStats lifetime_extra;

  StitchSink sink(&overall_extra, &patterns, &sequentiality, &activity, &per_user,
                  &carried_live);
  AccessReconstructor reconstructor(&sink);

  for (SegmentResult& seg : segments) {
    sink.set_segment(&seg.lifetimes);
    // 1. Replay the records whose open lies in an earlier segment.  The
    // carried reconstructor emits their transfers and access summaries; the
    // loop itself restores the record-level effects the worker had to skip:
    // the inter-event interval sample and the activity touch (both need the
    // opening user / previous event time, known only here).
    for (const OrphanRecord& orphan : seg.orphans) {
      const TraceRecord& r = orphan.record;
      const AccessReconstructor::OpenState* open = reconstructor.FindOpen(r.open_id);
      const UserId user = open != nullptr ? open->summary.user_id : r.user_id;
      auto last = carried_last_event.find(r.open_id);
      if (last != carried_last_event.end()) {
        overall_extra.inter_event_interval_seconds.Add((r.time - last->second).seconds());
        if (r.type == EventType::kSeek) {
          last->second = r.time;
        } else {
          carried_last_event.erase(last);
        }
      }
      sink.set_tag(orphan.tag);
      reconstructor.Process(r);
      activity.users_seen.insert(user);
      activity.Touch(r.time, user, 0);
      per_user.Touch(r.time, user, /*records=*/1, /*bytes=*/0);
    }

    // 2. Adopt this segment's boundary state: its pending opens become the
    // carried opens for later segments.
    reconstructor.AdoptOpenStates(std::move(seg.open_states));
    for (const auto& [open_id, time] : seg.pending_last_events) {
      carried_last_event.insert_or_assign(open_id, time);
    }

    // 3. Lifetime boundary processing (orphan bytes are already routed).
    // Pre-event bytes feed the carried incarnation; the segment's first
    // birth-or-death event kills it; marked completed slots emit now that
    // their byte counts are final; exit-live slots become carried.
    for (const LifetimeSegment::FileBoundary& fb : seg.lifetimes.files) {
      auto it = carried_live.find(fb.file);
      if (it != carried_live.end()) {
        it->second.bytes += fb.pre_bytes;
        if (fb.has_event) {
          EmitLifetimeSample(&lifetime_extra, it->second.birth, fb.first_event_time,
                             it->second.bytes);
          carried_live.erase(it);
        }
      }
      if (fb.exit_slot >= 0) {
        const LifetimeSegment::Slot& slot =
            seg.lifetimes.slots[static_cast<size_t>(fb.exit_slot)];
        carried_live[fb.file] = CarriedIncarnation{slot.birth, slot.bytes};
      }
    }
    for (const LifetimeSegment::Slot& slot : seg.lifetimes.slots) {
      if (slot.dead && slot.marked) {
        EmitLifetimeSample(&lifetime_extra, slot.birth, slot.death, slot.bytes);
      }
    }

    // 4. Merge the order-free partials.
    result.overall.Merge(seg.overall);
    activity.Merge(seg.activity);
    per_user.Merge(seg.per_user);
    result.sequentiality.Merge(seg.sequentiality);
    result.runs.Merge(seg.runs);
    result.file_sizes.Merge(seg.file_sizes);
    result.open_times.Merge(seg.open_times);
    result.lifetimes.Merge(seg.lifetimes.local);
  }

  // Incarnations still alive at the end of the trace are right-censored and
  // dropped, exactly as the streaming collector drops its live_ map.
  result.overall.Merge(overall_extra);
  result.sequentiality.Merge(sequentiality.Take());
  result.runs.Merge(patterns.TakeRuns());
  result.file_sizes.Merge(patterns.TakeFileSizes());
  result.open_times.Merge(patterns.TakeOpenTimes());
  result.lifetimes.Merge(lifetime_extra);
  result.activity = activity.Finalize();
  result.per_user = per_user.Finalize();
  return result;
}

// Segments below this record count are not worth a worker: the stitch pass
// and collector setup cost more than the records.  CarveIndex coalesces the
// footer's blocks until each segment clears it.
constexpr uint64_t kMinSegmentRecords = 8192;

}  // namespace

namespace internal {

std::vector<std::pair<size_t, size_t>> CarveIndex(
    const std::vector<TraceBlockIndexEntry>& index, unsigned threads, uint64_t min_records) {
  std::vector<std::pair<size_t, size_t>> ranges;  // (first_block, block_count)
  if (index.empty()) {
    return ranges;
  }
  uint64_t total = 0;
  for (const TraceBlockIndexEntry& entry : index) {
    total += entry.record_count;
  }
  // The segment coalescer: cap the segment count so every segment (except
  // possibly the last) clears min_records, then balance by record count.
  uint64_t segments = threads;
  if (min_records > 0) {
    segments = std::min<uint64_t>(segments, std::max<uint64_t>(total / min_records, 1));
  }
  size_t first = 0;
  uint64_t remaining = total;
  for (uint64_t s = 0; s < segments && first < index.size(); ++s) {
    const uint64_t want = (remaining + (segments - s) - 1) / (segments - s);
    size_t last = first;
    uint64_t got = 0;
    while (last < index.size() && (got < want || last == first)) {
      got += index[last].record_count;
      ++last;
    }
    ranges.emplace_back(first, last - first);
    first = last;
    remaining -= got < remaining ? got : remaining;
  }
  if (first < index.size()) {
    ranges.back().second += index.size() - first;
  }
  return ranges;
}

}  // namespace internal

StatusOr<TraceAnalysis> ParallelAnalyzeTrace(const SeekableTraceSource& seekable,
                                             unsigned threads) {
  if (!seekable.status().ok()) {
    return seekable.status();
  }
  const std::vector<TraceBlockIndexEntry>& index = seekable.index();
  std::vector<std::pair<size_t, size_t>> ranges =
      threads <= 1 ? std::vector<std::pair<size_t, size_t>>{}
                   : internal::CarveIndex(index, threads, kMinSegmentRecords);
  if (ranges.size() < 2) {
    TraceFileSource source(seekable.path());
    return AnalyzeTrace(source);
  }

  std::vector<SegmentResult> segments(ranges.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < ranges.size(); i = next.fetch_add(1)) {
      auto cursor = seekable.OpenCursor(ranges[i].first, ranges[i].second);
      segments[i] = RunSegment(*cursor);
    }
  };
  const size_t pool = std::min<size_t>(threads, ranges.size());
  std::vector<std::thread> workers;
  workers.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    workers.emplace_back(worker);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  for (const SegmentResult& seg : segments) {
    if (!seg.status.ok()) {
      return seg.status;
    }
  }
  return Stitch(segments);
}

StatusOr<TraceAnalysis> ParallelAnalyzeTrace(const std::string& path, unsigned threads) {
  SeekableTraceSource seekable(path);
  return ParallelAnalyzeTrace(seekable, threads);
}

namespace {

bool CdfIdentical(const WeightedCdf& a, const WeightedCdf& b) {
  return a.sorted_samples() == b.sorted_samples();
}

bool StatsIdentical(const RunningStats& a, const RunningStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() && a.max() == b.max() &&
         a.sum() == b.sum();
}

bool IntervalIdentical(const IntervalActivity& a, const IntervalActivity& b) {
  return a.interval_length.micros() == b.interval_length.micros() &&
         StatsIdentical(a.active_users, b.active_users) &&
         StatsIdentical(a.throughput_per_user, b.throughput_per_user) &&
         a.max_active_users == b.max_active_users && a.intervals == b.intervals;
}

bool ModeIdentical(const ModeSequentiality& a, const ModeSequentiality& b) {
  return a.accesses == b.accesses && a.whole_file == b.whole_file &&
         a.sequential == b.sequential && a.bytes == b.bytes &&
         a.whole_file_bytes == b.whole_file_bytes &&
         a.sequential_bytes == b.sequential_bytes;
}

}  // namespace

bool AnalysisBitIdentical(const TraceAnalysis& a, const TraceAnalysis& b) {
  if (a.overall.duration.micros() != b.overall.duration.micros() ||
      a.overall.total_records != b.overall.total_records ||
      a.overall.count_by_type != b.overall.count_by_type ||
      a.overall.bytes_transferred != b.overall.bytes_transferred ||
      a.overall.bytes_read != b.overall.bytes_read ||
      a.overall.bytes_written != b.overall.bytes_written ||
      !CdfIdentical(a.overall.inter_event_interval_seconds,
                    b.overall.inter_event_interval_seconds)) {
    return false;
  }
  if (a.activity.duration.micros() != b.activity.duration.micros() ||
      a.activity.total_bytes != b.activity.total_bytes ||
      a.activity.average_throughput != b.activity.average_throughput ||
      a.activity.distinct_users != b.activity.distinct_users ||
      !IntervalIdentical(a.activity.ten_minute, b.activity.ten_minute) ||
      !IntervalIdentical(a.activity.ten_second, b.activity.ten_second)) {
    return false;
  }
  if (a.per_user.duration.micros() != b.per_user.duration.micros() ||
      a.per_user.days != b.per_user.days ||
      a.per_user.total_records != b.per_user.total_records ||
      a.per_user.total_bytes != b.per_user.total_bytes ||
      a.per_user.users != b.per_user.users ||
      !StatsIdentical(a.per_user.records_per_user_day, b.per_user.records_per_user_day) ||
      !StatsIdentical(a.per_user.active_users_per_day, b.per_user.active_users_per_day)) {
    return false;
  }
  for (size_t i = 0; i < a.sequentiality.by_mode.size(); ++i) {
    if (!ModeIdentical(a.sequentiality.by_mode[i], b.sequentiality.by_mode[i])) {
      return false;
    }
  }
  return CdfIdentical(a.runs.by_runs, b.runs.by_runs) &&
         CdfIdentical(a.runs.by_bytes, b.runs.by_bytes) &&
         CdfIdentical(a.file_sizes.by_accesses, b.file_sizes.by_accesses) &&
         CdfIdentical(a.file_sizes.by_bytes, b.file_sizes.by_bytes) &&
         CdfIdentical(a.open_times.seconds, b.open_times.seconds) &&
         CdfIdentical(a.lifetimes.by_files, b.lifetimes.by_files) &&
         CdfIdentical(a.lifetimes.by_bytes, b.lifetimes.by_bytes) &&
         a.lifetimes.new_files == b.lifetimes.new_files &&
         a.lifetimes.observed_deaths == b.lifetimes.observed_deaths;
}

}  // namespace bsdtrace
