#include "src/analysis/parallel_analyzer.h"

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "src/analysis/segment_stitcher.h"

namespace bsdtrace {
namespace {

// Segments below this record count are not worth a worker: the stitch pass
// and collector setup cost more than the records.  CarveIndex coalesces the
// footer's blocks until each segment clears it.
constexpr uint64_t kMinSegmentRecords = 8192;

}  // namespace

namespace internal {

std::vector<std::pair<size_t, size_t>> CarveIndex(
    const std::vector<TraceBlockIndexEntry>& index, unsigned threads, uint64_t min_records) {
  std::vector<std::pair<size_t, size_t>> ranges;  // (first_block, block_count)
  if (index.empty()) {
    return ranges;
  }
  uint64_t total = 0;
  for (const TraceBlockIndexEntry& entry : index) {
    total += entry.record_count;
  }
  // The segment coalescer: cap the segment count so every segment (except
  // possibly the last) clears min_records, then balance by record count.
  uint64_t segments = threads;
  if (min_records > 0) {
    segments = std::min<uint64_t>(segments, std::max<uint64_t>(total / min_records, 1));
  }
  size_t first = 0;
  uint64_t remaining = total;
  for (uint64_t s = 0; s < segments && first < index.size(); ++s) {
    const uint64_t want = (remaining + (segments - s) - 1) / (segments - s);
    size_t last = first;
    uint64_t got = 0;
    while (last < index.size() && (got < want || last == first)) {
      got += index[last].record_count;
      ++last;
    }
    ranges.emplace_back(first, last - first);
    first = last;
    remaining -= got < remaining ? got : remaining;
  }
  if (first < index.size()) {
    ranges.back().second += index.size() - first;
  }
  return ranges;
}

StatusOr<TraceAnalysis> SegmentedAnalyze(const SeekableTraceSource& seekable,
                                         unsigned threads) {
  if (!seekable.status().ok()) {
    return seekable.status();
  }
  const std::vector<TraceBlockIndexEntry>& index = seekable.index();
  std::vector<std::pair<size_t, size_t>> ranges =
      threads <= 1 ? std::vector<std::pair<size_t, size_t>>{}
                   : CarveIndex(index, threads, kMinSegmentRecords);
  if (ranges.size() < 2) {
    // Not worth segmenting: run — and report — the serial streaming pass.
    TraceFileSource source(seekable.path());
    return SerialAnalyze(source);
  }

  std::vector<SegmentResult> segments(ranges.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < ranges.size(); i = next.fetch_add(1)) {
      auto cursor = seekable.OpenCursor(ranges[i].first, ranges[i].second);
      segments[i] = RunSegment(*cursor);
    }
  };
  const size_t pool = std::min<size_t>(threads, ranges.size());
  std::vector<std::thread> workers;
  workers.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    workers.emplace_back(worker);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  for (const SegmentResult& seg : segments) {
    if (!seg.status.ok()) {
      return seg.status;
    }
  }

  SegmentStitcher stitcher;
  for (SegmentResult& seg : segments) {
    stitcher.Add(std::move(seg));
  }
  TraceAnalysis result = stitcher.Finish();
  result.mode = AnalyzeMode::kParallel;
  result.threads_used = static_cast<unsigned>(pool);
  result.segments_used = ranges.size();
  return result;
}

}  // namespace internal

namespace {

bool CdfIdentical(const WeightedCdf& a, const WeightedCdf& b) {
  return a.sorted_samples() == b.sorted_samples();
}

bool StatsIdentical(const RunningStats& a, const RunningStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() && a.max() == b.max() &&
         a.sum() == b.sum();
}

bool IntervalIdentical(const IntervalActivity& a, const IntervalActivity& b) {
  return a.interval_length.micros() == b.interval_length.micros() &&
         StatsIdentical(a.active_users, b.active_users) &&
         StatsIdentical(a.throughput_per_user, b.throughput_per_user) &&
         a.max_active_users == b.max_active_users && a.intervals == b.intervals;
}

bool ModeIdentical(const ModeSequentiality& a, const ModeSequentiality& b) {
  return a.accesses == b.accesses && a.whole_file == b.whole_file &&
         a.sequential == b.sequential && a.bytes == b.bytes &&
         a.whole_file_bytes == b.whole_file_bytes &&
         a.sequential_bytes == b.sequential_bytes;
}

}  // namespace

bool AnalysisBitIdentical(const TraceAnalysis& a, const TraceAnalysis& b) {
  if (a.overall.duration.micros() != b.overall.duration.micros() ||
      a.overall.total_records != b.overall.total_records ||
      a.overall.count_by_type != b.overall.count_by_type ||
      a.overall.bytes_transferred != b.overall.bytes_transferred ||
      a.overall.bytes_read != b.overall.bytes_read ||
      a.overall.bytes_written != b.overall.bytes_written ||
      !CdfIdentical(a.overall.inter_event_interval_seconds,
                    b.overall.inter_event_interval_seconds)) {
    return false;
  }
  if (a.activity.duration.micros() != b.activity.duration.micros() ||
      a.activity.total_bytes != b.activity.total_bytes ||
      a.activity.average_throughput != b.activity.average_throughput ||
      a.activity.distinct_users != b.activity.distinct_users ||
      !IntervalIdentical(a.activity.ten_minute, b.activity.ten_minute) ||
      !IntervalIdentical(a.activity.ten_second, b.activity.ten_second)) {
    return false;
  }
  if (a.per_user.duration.micros() != b.per_user.duration.micros() ||
      a.per_user.days != b.per_user.days ||
      a.per_user.total_records != b.per_user.total_records ||
      a.per_user.total_bytes != b.per_user.total_bytes ||
      a.per_user.users != b.per_user.users ||
      !StatsIdentical(a.per_user.records_per_user_day, b.per_user.records_per_user_day) ||
      !StatsIdentical(a.per_user.active_users_per_day, b.per_user.active_users_per_day)) {
    return false;
  }
  for (size_t i = 0; i < a.sequentiality.by_mode.size(); ++i) {
    if (!ModeIdentical(a.sequentiality.by_mode[i], b.sequentiality.by_mode[i])) {
      return false;
    }
  }
  return CdfIdentical(a.runs.by_runs, b.runs.by_runs) &&
         CdfIdentical(a.runs.by_bytes, b.runs.by_bytes) &&
         CdfIdentical(a.file_sizes.by_accesses, b.file_sizes.by_accesses) &&
         CdfIdentical(a.file_sizes.by_bytes, b.file_sizes.by_bytes) &&
         CdfIdentical(a.open_times.seconds, b.open_times.seconds) &&
         CdfIdentical(a.lifetimes.by_files, b.lifetimes.by_files) &&
         CdfIdentical(a.lifetimes.by_bytes, b.lifetimes.by_bytes) &&
         a.lifetimes.new_files == b.lifetimes.new_files &&
         a.lifetimes.observed_deaths == b.lifetimes.observed_deaths;
}

}  // namespace bsdtrace
