#include "src/analysis/lifetimes.h"

namespace bsdtrace {

double LifetimeStats::FileFractionIn(double lo_seconds, double hi_seconds) const {
  if (by_files.total_weight() <= 0) {
    return 0.0;
  }
  return by_files.FractionAtOrBelow(hi_seconds) - by_files.FractionAtOrBelow(lo_seconds);
}

void LifetimeCollector::Kill(FileId file, SimTime when) {
  auto it = live_.find(file);
  if (it == live_.end()) {
    return;
  }
  const double lifetime = (when - it->second.birth).seconds();
  stats_.by_files.Add(lifetime);
  if (it->second.bytes_written > 0) {
    stats_.by_bytes.Add(lifetime, static_cast<double>(it->second.bytes_written));
  }
  stats_.observed_deaths += 1;
  live_.erase(it);
}

void LifetimeCollector::OnRecord(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
      // Re-creation completely overwrites the previous incarnation.
      Kill(r.file_id, r.time);
      live_[r.file_id] = Incarnation{.birth = r.time, .bytes_written = 0};
      stats_.new_files += 1;
      break;
    case EventType::kUnlink:
      Kill(r.file_id, r.time);
      break;
    case EventType::kTruncate:
      if (r.size == 0) {
        Kill(r.file_id, r.time);
      }
      break;
    default:
      break;
  }
}

void LifetimeCollector::OnTransfer(const Transfer& t) {
  if (t.direction != TransferDirection::kWrite) {
    return;
  }
  auto it = live_.find(t.file_id);
  if (it != live_.end()) {
    it->second.bytes_written += t.length;
  }
}

}  // namespace bsdtrace
