#include "src/analysis/lifetimes.h"

#include <algorithm>

namespace bsdtrace {

double LifetimeStats::FileFractionIn(double lo_seconds, double hi_seconds) const {
  if (by_files.total_weight() <= 0) {
    return 0.0;
  }
  return by_files.FractionAtOrBelow(hi_seconds) - by_files.FractionAtOrBelow(lo_seconds);
}

LifetimeCollector::LifetimeCollector(bool segment_mode) : segment_mode_(segment_mode) {}

void LifetimeCollector::Kill(FileId file, SimTime when) {
  auto it = live_.find(file);
  if (it == live_.end()) {
    return;
  }
  const double lifetime = (when - it->second.birth).seconds();
  stats_.by_files.Add(lifetime);
  if (it->second.bytes_written > 0) {
    stats_.by_bytes.Add(lifetime, static_cast<double>(it->second.bytes_written));
  }
  stats_.observed_deaths += 1;
  live_.erase(it);
}

void LifetimeCollector::SegmentEvent(FileId file, SimTime when, bool creates) {
  FileSegState& st = seg_files_[file];
  if (!st.has_event) {
    // First local event: kills the carried incarnation, if the stitcher
    // finds one live at this boundary.
    st.has_event = true;
    st.first_event_time = when;
  } else if (st.live_slot >= 0) {
    LifetimeSegment::Slot& slot = slots_[static_cast<size_t>(st.live_slot)];
    slot.death = when;
    slot.dead = true;
    if (!slot.marked) {
      // Complete within the segment with no stitch bytes pending: emit now.
      const double lifetime = (when - slot.birth).seconds();
      stats_.by_files.Add(lifetime);
      if (slot.bytes > 0) {
        stats_.by_bytes.Add(lifetime, static_cast<double>(slot.bytes));
      }
      stats_.observed_deaths += 1;
    }
  }
  st.live_slot = -1;
  if (creates) {
    st.live_slot = static_cast<int32_t>(slots_.size());
    slots_.push_back(LifetimeSegment::Slot{.birth = when});
    stats_.new_files += 1;
  }
}

void LifetimeCollector::OnRecord(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
      // Re-creation completely overwrites the previous incarnation.
      if (segment_mode_) {
        SegmentEvent(r.file_id, r.time, /*creates=*/true);
      } else {
        Kill(r.file_id, r.time);
        live_[r.file_id] = Incarnation{.birth = r.time, .bytes_written = 0};
        stats_.new_files += 1;
      }
      break;
    case EventType::kUnlink:
      if (segment_mode_) {
        SegmentEvent(r.file_id, r.time, /*creates=*/false);
      } else {
        Kill(r.file_id, r.time);
      }
      break;
    case EventType::kTruncate:
      if (r.size == 0) {
        if (segment_mode_) {
          SegmentEvent(r.file_id, r.time, /*creates=*/false);
        } else {
          Kill(r.file_id, r.time);
        }
      }
      break;
    default:
      break;
  }
}

void LifetimeCollector::OnTransfer(const Transfer& t) {
  if (t.direction != TransferDirection::kWrite) {
    return;
  }
  if (!segment_mode_) {
    auto it = live_.find(t.file_id);
    if (it != live_.end()) {
      it->second.bytes_written += t.length;
    }
    return;
  }
  auto it = seg_files_.find(t.file_id);
  if (it == seg_files_.end()) {
    // Nothing local yet: the bytes belong to a possible carried incarnation.
    seg_files_[t.file_id].pre_bytes += t.length;
    return;
  }
  if (it->second.live_slot >= 0) {
    slots_[static_cast<size_t>(it->second.live_slot)].bytes += t.length;
  } else if (!it->second.has_event) {
    it->second.pre_bytes += t.length;
  }
  // else: dead zone — a kill already happened and nothing is live; dropped,
  // exactly as the streaming collector drops bytes to a non-live file.
}

LifetimeOrphanTag LifetimeCollector::TagOrphanTransfer(FileId file) {
  LifetimeOrphanTag tag;
  FileSegState& st = seg_files_[file];
  if (st.live_slot >= 0) {
    tag.zone = LifetimeOrphanTag::Zone::kSlot;
    tag.slot = static_cast<uint32_t>(st.live_slot);
    slots_[static_cast<size_t>(st.live_slot)].marked = true;
  } else if (!st.has_event) {
    tag.zone = LifetimeOrphanTag::Zone::kPre;
  } else {
    tag.zone = LifetimeOrphanTag::Zone::kDead;
  }
  return tag;
}

LifetimeSegment LifetimeCollector::TakeSegment() {
  LifetimeSegment segment;
  segment.slots = std::move(slots_);
  segment.files.reserve(seg_files_.size());
  for (const auto& [file, st] : seg_files_) {
    // Files with no boundary-relevant state need no hand-off.
    if (st.pre_bytes == 0 && !st.has_event && st.live_slot < 0) {
      continue;
    }
    segment.files.push_back(LifetimeSegment::FileBoundary{
        .file = file,
        .pre_bytes = st.pre_bytes,
        .has_event = st.has_event,
        .first_event_time = st.first_event_time,
        .exit_slot = st.live_slot,
    });
  }
  std::sort(segment.files.begin(), segment.files.end(),
            [](const LifetimeSegment::FileBoundary& a,
               const LifetimeSegment::FileBoundary& b) { return a.file < b.file; });
  segment.local = std::move(stats_);
  return segment;
}

}  // namespace bsdtrace
