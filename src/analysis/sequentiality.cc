#include "src/analysis/sequentiality.h"

namespace bsdtrace {

ModeSequentiality SequentialityStats::Total() const {
  ModeSequentiality total;
  for (const ModeSequentiality& m : by_mode) {
    total.accesses += m.accesses;
    total.whole_file += m.whole_file;
    total.sequential += m.sequential;
    total.bytes += m.bytes;
    total.whole_file_bytes += m.whole_file_bytes;
    total.sequential_bytes += m.sequential_bytes;
  }
  return total;
}

double SequentialityStats::WholeFileByteFraction() const {
  const ModeSequentiality total = Total();
  return total.bytes > 0
             ? static_cast<double>(total.whole_file_bytes) / static_cast<double>(total.bytes)
             : 0.0;
}

double SequentialityStats::SequentialByteFraction() const {
  const ModeSequentiality total = Total();
  return total.bytes > 0
             ? static_cast<double>(total.sequential_bytes) / static_cast<double>(total.bytes)
             : 0.0;
}

void SequentialityCollector::OnAccess(const AccessSummary& a) {
  ModeSequentiality& m = stats_.by_mode[static_cast<size_t>(a.mode)];
  m.accesses += 1;
  m.bytes += a.bytes_transferred;
  if (a.whole_file) {
    m.whole_file += 1;
    m.whole_file_bytes += a.bytes_transferred;
  }
  if (a.sequential) {
    m.sequential += 1;
    m.sequential_bytes += a.bytes_transferred;
  }
}

}  // namespace bsdtrace
