// The segment/stitch machinery behind every non-serial Section-5 analysis.
//
// A trace can be split at ANY record boundary into contiguous, time-ordered
// segments; the split is an execution detail, never a semantic one.  Each
// segment runs the full collector set in isolation (SegmentCollector),
// exporting order-free partial statistics plus boundary state — opens still
// pending at its end, and the records it could not interpret because their
// open lies in an earlier segment ("orphans").  SegmentStitcher then absorbs
// the segments in time order, replaying each segment's orphans against the
// open state carried from earlier segments and merging the partials.
//
// Two consumers drive it:
//   * Analyze's parallel engine carves an on-disk trace into per-worker segments
//     and stitches them after the workers join (parallel_analyzer.cc).
//   * RollingAnalyzer closes one segment per simulated hour of a LIVE stream
//     and stitches incrementally; Snapshot() publishes the prefix analysis
//     at each boundary without disturbing the stitch (rolling_analyzer.h).
//
// Invariant, inherited from the parallel analyzer's parity gate: after
// stitching segments 1..k the finalized result is bit-identical to the
// serial streaming analyzer run over exactly those segments' records.

#ifndef BSDTRACE_SRC_ANALYSIS_SEGMENT_STITCHER_H_
#define BSDTRACE_SRC_ANALYSIS_SEGMENT_STITCHER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/analysis/activity.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/overall.h"
#include "src/analysis/patterns.h"
#include "src/analysis/per_user_activity.h"
#include "src/analysis/sequentiality.h"
#include "src/trace/reconstruct.h"
#include "src/trace/trace_source.h"
#include "src/util/status.h"

namespace bsdtrace {

struct TraceAnalysis;  // analyzer.h

// A record a segment could not interpret (its open lies in an earlier
// segment), plus the lifetime zone its eventual write transfer lands in.
struct OrphanRecord {
  TraceRecord record;
  LifetimeOrphanTag tag;
};

// Everything one segment hands to the stitcher.
struct SegmentResult {
  Status status = Status::Ok();
  std::vector<OrphanRecord> orphans;
  std::unordered_map<OpenId, AccessReconstructor::OpenState> open_states;
  OverallStats overall;
  std::unordered_map<OpenId, SimTime> pending_last_events;
  ActivitySegment activity;
  PerUserSegment per_user;
  SequentialityStats sequentiality;
  RunLengthStats runs;
  FileSizeStats file_sizes;
  OpenTimeStats open_times;
  LifetimeSegment lifetimes;
};

// Push-side collector for one segment: the segment-mode collector set, the
// fan-out mux, and the orphan detector, fed one record at a time.  The
// parallel workers drain a cursor through it; the rolling analyzer pushes
// live records into it.
class SegmentCollector {
 public:
  SegmentCollector();
  ~SegmentCollector();

  // Records must arrive in non-decreasing time order.
  void Process(const TraceRecord& record);

  // Finalizes the segment (the collector may not be reused).
  SegmentResult Take();

 private:
  class Mux;

  OverallStatsCollector overall_;
  ActivityCollector activity_;
  PerUserActivityCollector per_user_;
  SequentialityCollector sequentiality_;
  PatternsCollector patterns_;
  LifetimeCollector lifetimes_;
  std::unique_ptr<Mux> mux_;
  std::unique_ptr<AccessReconstructor> reconstructor_;
  SegmentResult seg_;
  uint64_t orphans_seen_ = 0;
};

// Runs a whole TraceSource (e.g. one parallel worker's block-range cursor)
// through a SegmentCollector.  Source errors surface in SegmentResult::status.
SegmentResult RunSegment(TraceSource& cursor);

// Order-dependent serial reduction over segments.  Add() absorbs segments in
// time order; Snapshot() finalizes a copy of the current prefix state
// (pending opens, live incarnations, and straddling inter-event samples are
// right-censored exactly as the serial analyzer censors them at end of
// trace); Finish() finalizes destructively.  Not copyable: the stitch owns a
// reconstructor wired to internal sinks.
class SegmentStitcher {
 public:
  SegmentStitcher();
  ~SegmentStitcher();
  SegmentStitcher(const SegmentStitcher&) = delete;
  SegmentStitcher& operator=(const SegmentStitcher&) = delete;

  void Add(SegmentResult segment);
  TraceAnalysis Snapshot() const;
  TraceAnalysis Finish();

  // Segments absorbed so far.
  size_t segments() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_SEGMENT_STITCHER_H_
