#include "src/analysis/popularity.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace bsdtrace {
namespace {

double TopShare(const std::vector<uint64_t>& sorted, uint64_t total, size_t n) {
  if (total == 0) {
    return 0.0;
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < n && i < sorted.size(); ++i) {
    sum += sorted[i];
  }
  return static_cast<double>(sum) / static_cast<double>(total);
}

}  // namespace

double PopularityStats::TopAccessShare(size_t n) const {
  return TopShare(access_counts_sorted, total_accesses, n);
}

double PopularityStats::TopByteShare(size_t n) const {
  return TopShare(byte_counts_sorted, total_bytes, n);
}

uint64_t PopularityStats::FilesForAccessFraction(double fraction) const {
  const auto target = static_cast<uint64_t>(fraction * static_cast<double>(total_accesses));
  uint64_t sum = 0;
  for (size_t i = 0; i < access_counts_sorted.size(); ++i) {
    sum += access_counts_sorted[i];
    if (sum >= target) {
      return i + 1;
    }
  }
  return access_counts_sorted.size();
}

void PopularityCollector::OnAccess(const AccessSummary& a) {
  FileTotals& totals = files_[a.file_id];
  totals.accesses += 1;
  totals.bytes += a.bytes_transferred;
}

void PopularityCollector::OnTransfer(const Transfer&) {}

void PopularityCollector::OnRecord(const TraceRecord& r) {
  // Executions count as accesses to the program file.
  if (r.type == EventType::kExecve) {
    files_[r.file_id].accesses += 1;
  }
}

PopularityStats PopularityCollector::Take() {
  PopularityStats stats;
  stats.distinct_files = files_.size();
  for (const auto& [file, totals] : files_) {
    stats.total_accesses += totals.accesses;
    stats.total_bytes += totals.bytes;
    stats.access_counts_sorted.push_back(totals.accesses);
    stats.byte_counts_sorted.push_back(totals.bytes);
    stats.accesses_per_file.Add(static_cast<double>(totals.accesses));
  }
  std::sort(stats.access_counts_sorted.rbegin(), stats.access_counts_sorted.rend());
  std::sort(stats.byte_counts_sorted.rbegin(), stats.byte_counts_sorted.rend());
  return stats;
}

PopularityStats AnalyzePopularity(const Trace& trace) {
  PopularityCollector collector;
  Reconstruct(trace, &collector);
  return collector.Take();
}

}  // namespace bsdtrace
