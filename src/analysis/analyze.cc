// Analyze(): the one entry point dispatching to the serial, segmented-
// parallel, and rolling-live engines (see analyzer.h for the options).

#include <memory>
#include <thread>
#include <utility>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/analysis/rolling_analyzer.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

unsigned ResolveThreads(unsigned threads) {
  if (threads != 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

int InputsSet(const AnalyzeOptions& o) {
  return (o.trace != nullptr) + (o.source != nullptr) + (o.seekable != nullptr) +
         (!o.path.empty());
}

// The header of the configured input, for the Table I band check.  For
// file-backed inputs the caller passes the already-open source's header.
const TraceHeader* InputHeader(const AnalyzeOptions& o, const TraceSource* open_source) {
  if (o.trace != nullptr) {
    return &o.trace->header();
  }
  if (o.source != nullptr) {
    return &o.source->header();
  }
  if (o.seekable != nullptr) {
    return &o.seekable->header();
  }
  return open_source != nullptr ? &open_source->header() : nullptr;
}

}  // namespace

StatusOr<TraceAnalysis> Analyze(const AnalyzeOptions& options) {
  const int inputs = InputsSet(options);
  if (inputs == 0) {
    return Status::Error("Analyze: no input (set one of trace/source/seekable/path)");
  }
  if (inputs > 1) {
    return Status::Error("Analyze: ambiguous input (set exactly one of "
                         "trace/source/seekable/path)");
  }

  StatusOr<TraceAnalysis> result = Status::Error("unreachable");
  const TraceHeader* header = nullptr;
  // File-backed streaming source, opened on demand and kept alive until the
  // band check has read its header.
  std::unique_ptr<TraceFileSource> file;
  auto open_file = [&](const std::string& path) -> TraceSource* {
    file = std::make_unique<TraceFileSource>(path);
    return file.get();
  };

  if (options.snapshot_interval.micros() > 0) {
    // Rolling live analysis over any input shape, serial by construction.
    std::unique_ptr<TraceVectorSource> vector_source;
    TraceSource* source = options.source;
    if (options.trace != nullptr) {
      vector_source = std::make_unique<TraceVectorSource>(*options.trace);
      source = vector_source.get();
    } else if (options.seekable != nullptr) {
      source = open_file(options.seekable->path());
    } else if (!options.path.empty()) {
      source = open_file(options.path);
    }
    result = RollingAnalyze(*source, options.snapshot_interval, options.on_snapshot);
  } else if (options.trace != nullptr) {
    result = internal::SerialAnalyze(*options.trace);
  } else if (options.source != nullptr) {
    result = internal::SerialAnalyze(*options.source);
  } else {
    const unsigned threads = ResolveThreads(options.threads);
    if (options.seekable != nullptr) {
      result = internal::SegmentedAnalyze(*options.seekable, threads);
    } else if (threads > 1) {
      SeekableTraceSource seekable(options.path);
      result = internal::SegmentedAnalyze(seekable, threads);
    } else {
      result = internal::SerialAnalyze(*open_file(options.path));
    }
  }

  if (!result.ok()) {
    return result;
  }
  if (options.check_bands) {
    if (file == nullptr && options.trace == nullptr && options.source == nullptr &&
        options.seekable == nullptr) {
      // Parallel path-based run: no streaming source was opened; read the
      // header now.
      open_file(options.path);
    }
    header = InputHeader(options, file.get());
    if (header != nullptr) {
      result.value().band_checks = CheckActivityBands(*header, result.value().per_user);
    }
  }
  return result;
}

}  // namespace bsdtrace
