// System-activity measurements (paper Table IV).
//
// A user is "active" in an interval if any trace event for that user falls
// in the interval.  Throughput per active user is the user's reconstructed
// bytes in the interval divided by the interval length, averaged across all
// (interval, active user) pairs — exactly the paper's definition, including
// the property that 10-second intervals show fewer, burstier users than
// 10-minute intervals.
//
// Two operating modes.  The streaming mode keeps one open window per
// interval length and folds each interval into Welford accumulators as it
// completes.  The segment mode (parallel analysis) instead records an
// order-free summary per touched interval — the active-user set and per-user
// byte totals, both exact integers — which ActivitySegment::Merge can
// combine across segments and Finalize replays in ascending interval order,
// reproducing the streaming mode's accumulator updates bit for bit.

#ifndef BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_
#define BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_

#include <map>
#include <set>
#include <unordered_map>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct IntervalActivity {
  Duration interval_length;
  // Distribution of the number of active users per interval.
  RunningStats active_users;
  // Distribution of per-active-user throughput (bytes/second).
  RunningStats throughput_per_user;
  int64_t max_active_users = 0;
  uint64_t intervals = 0;
};

struct ActivityStats {
  Duration duration;
  uint64_t total_bytes = 0;
  // Bytes/second over the life of the trace.
  double average_throughput = 0.0;
  uint64_t distinct_users = 0;
  IntervalActivity ten_minute;
  IntervalActivity ten_second;
};

// Order-free per-interval summary of one window length: which users were
// active and how many reconstructed bytes each moved.  Ordered maps keep the
// replay order deterministic without re-sorting.
struct ActivityWindowSegment {
  struct Interval {
    std::set<UserId> active;
    std::map<UserId, uint64_t> bytes;  // only users with bytes > 0
  };

  explicit ActivityWindowSegment(Duration length) : length(length) {}

  Duration length;
  std::map<int64_t, Interval> intervals;  // interval index -> summary

  void Touch(SimTime t, UserId user, uint64_t bytes);
  void Merge(const ActivityWindowSegment& other);
  // Replays the intervals in ascending index order — gaps count as intervals
  // with zero active users, matching the streaming window — into Welford
  // accumulators, per-interval users in ascending id order.
  IntervalActivity Finalize() const;
};

// Everything one segment contributes to Table IV, mergeable across segments.
struct ActivitySegment {
  ActivityWindowSegment ten_minute{Duration::Minutes(10)};
  ActivityWindowSegment ten_second{Duration::Seconds(10)};
  std::set<UserId> users_seen;
  uint64_t total_bytes = 0;
  SimTime last_time;
  // Boundary state, not merged: the opening user of each open still pending
  // at the segment's end (close/seek records do not carry a user id).
  std::unordered_map<OpenId, UserId> open_user;

  void Touch(SimTime t, UserId user, uint64_t bytes);
  // Absorbs other's interval summaries, users, bytes, and last-event time.
  // open_user is boundary state and is deliberately left alone.
  void Merge(const ActivitySegment& other);
  ActivityStats Finalize() const;
};

class ActivityCollector : public ReconstructionSink {
 public:
  // segment_mode: collect an ActivitySegment instead of streaming windows,
  // and skip close/seek records whose open lies outside this segment (their
  // user is unknown here; the stitcher replays them with the carried user).
  explicit ActivityCollector(bool segment_mode = false);

  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  ActivityStats Take();
  // Segment-mode result (collector may not be reused).
  ActivitySegment TakeSegment();

 private:
  struct Window {
    explicit Window(Duration length) : length(length) {}
    Duration length;
    int64_t current_index = -1;
    std::set<UserId> active;
    std::map<UserId, uint64_t> bytes;
    IntervalActivity result;
  };

  void Touch(Window& w, SimTime t, UserId user, uint64_t bytes);
  void FlushWindow(Window& w);
  // The user on whose behalf a record was logged (close/seek records carry
  // no user id; we remember it from the open).
  UserId UserOf(const TraceRecord& record);

  bool segment_mode_;
  Window ten_minute_;
  Window ten_second_;
  ActivitySegment segment_;
  std::unordered_map<OpenId, UserId> open_user_;
  std::set<UserId> users_seen_;
  uint64_t total_bytes_ = 0;
  SimTime last_time_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_
