// System-activity measurements (paper Table IV).
//
// A user is "active" in an interval if any trace event for that user falls
// in the interval.  Throughput per active user is the user's reconstructed
// bytes in the interval divided by the interval length, averaged across all
// (interval, active user) pairs — exactly the paper's definition, including
// the property that 10-second intervals show fewer, burstier users than
// 10-minute intervals.

#ifndef BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_
#define BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

struct IntervalActivity {
  Duration interval_length;
  // Distribution of the number of active users per interval.
  RunningStats active_users;
  // Distribution of per-active-user throughput (bytes/second).
  RunningStats throughput_per_user;
  int64_t max_active_users = 0;
  uint64_t intervals = 0;
};

struct ActivityStats {
  Duration duration;
  uint64_t total_bytes = 0;
  // Bytes/second over the life of the trace.
  double average_throughput = 0.0;
  uint64_t distinct_users = 0;
  IntervalActivity ten_minute;
  IntervalActivity ten_second;
};

class ActivityCollector : public ReconstructionSink {
 public:
  ActivityCollector();

  void OnRecord(const TraceRecord& record) override;
  void OnTransfer(const Transfer& transfer) override;

  ActivityStats Take();

 private:
  struct Window {
    explicit Window(Duration length) : length(length) {}
    Duration length;
    int64_t current_index = -1;
    std::unordered_set<UserId> active;
    std::unordered_map<UserId, uint64_t> bytes;
    IntervalActivity result;
  };

  void Touch(Window& w, SimTime t, UserId user, uint64_t bytes);
  void FlushWindow(Window& w);
  // The user on whose behalf a record was logged (close/seek records carry
  // no user id; we remember it from the open).
  UserId UserOf(const TraceRecord& record);

  Window ten_minute_;
  Window ten_second_;
  std::unordered_map<OpenId, UserId> open_user_;
  std::set<UserId> users_seen_;
  uint64_t total_bytes_ = 0;
  SimTime last_time_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_ANALYSIS_ACTIVITY_H_
