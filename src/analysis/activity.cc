#include "src/analysis/activity.h"

namespace bsdtrace {

ActivityCollector::ActivityCollector()
    : ten_minute_(Duration::Minutes(10)), ten_second_(Duration::Seconds(10)) {}

UserId ActivityCollector::UserOf(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      open_user_[r.open_id] = r.user_id;
      return r.user_id;
    case EventType::kSeek: {
      auto it = open_user_.find(r.open_id);
      return it != open_user_.end() ? it->second : r.user_id;
    }
    case EventType::kClose: {
      auto it = open_user_.find(r.open_id);
      if (it == open_user_.end()) {
        return r.user_id;
      }
      const UserId user = it->second;
      open_user_.erase(it);
      return user;
    }
    default:
      return r.user_id;
  }
}

void ActivityCollector::FlushWindow(Window& w) {
  if (w.current_index < 0) {
    return;
  }
  w.result.active_users.Add(static_cast<double>(w.active.size()));
  w.result.max_active_users =
      std::max(w.result.max_active_users, static_cast<int64_t>(w.active.size()));
  for (const auto& [user, bytes] : w.bytes) {
    w.result.throughput_per_user.Add(static_cast<double>(bytes) / w.length.seconds());
  }
  // Users active with zero reconstructed bytes (e.g. only an unlink) still
  // count as active users with zero throughput.
  for (UserId user : w.active) {
    if (w.bytes.count(user) == 0) {
      w.result.throughput_per_user.Add(0.0);
    }
  }
  w.result.intervals += 1;
  w.active.clear();
  w.bytes.clear();
}

void ActivityCollector::Touch(Window& w, SimTime t, UserId user, uint64_t bytes) {
  const int64_t index = t.micros() / w.length.micros();
  if (index != w.current_index) {
    // Flush completed interval(s); empty intervals between events count as
    // intervals with zero active users.
    FlushWindow(w);
    for (int64_t i = w.current_index + 1; i < index; ++i) {
      w.result.active_users.Add(0.0);
      w.result.intervals += 1;
    }
    w.current_index = index;
  }
  w.active.insert(user);
  if (bytes > 0) {
    w.bytes[user] += bytes;
  }
}

void ActivityCollector::OnRecord(const TraceRecord& r) {
  const UserId user = UserOf(r);
  users_seen_.insert(user);
  Touch(ten_minute_, r.time, user, 0);
  Touch(ten_second_, r.time, user, 0);
  if (r.time > last_time_) {
    last_time_ = r.time;
  }
}

void ActivityCollector::OnTransfer(const Transfer& t) {
  total_bytes_ += t.length;
  users_seen_.insert(t.user_id);
  Touch(ten_minute_, t.time, t.user_id, t.length);
  Touch(ten_second_, t.time, t.user_id, t.length);
}

ActivityStats ActivityCollector::Take() {
  FlushWindow(ten_minute_);
  FlushWindow(ten_second_);
  ActivityStats stats;
  stats.duration = last_time_ - SimTime::Origin();
  stats.total_bytes = total_bytes_;
  stats.average_throughput =
      stats.duration > Duration::Zero()
          ? static_cast<double>(total_bytes_) / stats.duration.seconds()
          : 0.0;
  stats.distinct_users = users_seen_.size();
  ten_minute_.result.interval_length = ten_minute_.length;
  ten_second_.result.interval_length = ten_second_.length;
  stats.ten_minute = ten_minute_.result;
  stats.ten_second = ten_second_.result;
  return stats;
}

}  // namespace bsdtrace
