#include "src/analysis/activity.h"

#include <algorithm>

namespace bsdtrace {

// -- ActivityWindowSegment ----------------------------------------------------

void ActivityWindowSegment::Touch(SimTime t, UserId user, uint64_t bytes) {
  Interval& interval = intervals[t.micros() / length.micros()];
  interval.active.insert(user);
  if (bytes > 0) {
    interval.bytes[user] += bytes;
  }
}

void ActivityWindowSegment::Merge(const ActivityWindowSegment& other) {
  for (const auto& [index, theirs] : other.intervals) {
    Interval& ours = intervals[index];
    ours.active.insert(theirs.active.begin(), theirs.active.end());
    for (const auto& [user, bytes] : theirs.bytes) {
      ours.bytes[user] += bytes;
    }
  }
}

IntervalActivity ActivityWindowSegment::Finalize() const {
  IntervalActivity out;
  out.interval_length = length;
  int64_t prev = -1;
  for (const auto& [index, interval] : intervals) {
    // Empty intervals between touched ones count as zero active users, just
    // like the streaming window's gap fill.
    for (int64_t i = prev + 1; i < index; ++i) {
      out.active_users.Add(0.0);
      out.intervals += 1;
    }
    out.active_users.Add(static_cast<double>(interval.active.size()));
    out.max_active_users = std::max(out.max_active_users,
                                    static_cast<int64_t>(interval.active.size()));
    for (const auto& [user, bytes] : interval.bytes) {
      out.throughput_per_user.Add(static_cast<double>(bytes) / length.seconds());
    }
    for (UserId user : interval.active) {
      if (interval.bytes.count(user) == 0) {
        out.throughput_per_user.Add(0.0);
      }
    }
    out.intervals += 1;
    prev = index;
  }
  return out;
}

// -- ActivitySegment ----------------------------------------------------------

void ActivitySegment::Touch(SimTime t, UserId user, uint64_t bytes) {
  ten_minute.Touch(t, user, bytes);
  ten_second.Touch(t, user, bytes);
}

void ActivitySegment::Merge(const ActivitySegment& other) {
  ten_minute.Merge(other.ten_minute);
  ten_second.Merge(other.ten_second);
  users_seen.insert(other.users_seen.begin(), other.users_seen.end());
  total_bytes += other.total_bytes;
  last_time = std::max(last_time, other.last_time);
}

ActivityStats ActivitySegment::Finalize() const {
  ActivityStats stats;
  stats.duration = last_time - SimTime::Origin();
  stats.total_bytes = total_bytes;
  stats.average_throughput =
      stats.duration > Duration::Zero()
          ? static_cast<double>(total_bytes) / stats.duration.seconds()
          : 0.0;
  stats.distinct_users = users_seen.size();
  stats.ten_minute = ten_minute.Finalize();
  stats.ten_second = ten_second.Finalize();
  return stats;
}

// -- ActivityCollector --------------------------------------------------------

ActivityCollector::ActivityCollector(bool segment_mode)
    : segment_mode_(segment_mode),
      ten_minute_(Duration::Minutes(10)),
      ten_second_(Duration::Seconds(10)) {}

UserId ActivityCollector::UserOf(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      open_user_[r.open_id] = r.user_id;
      return r.user_id;
    case EventType::kSeek: {
      auto it = open_user_.find(r.open_id);
      return it != open_user_.end() ? it->second : r.user_id;
    }
    case EventType::kClose: {
      auto it = open_user_.find(r.open_id);
      if (it == open_user_.end()) {
        return r.user_id;
      }
      const UserId user = it->second;
      open_user_.erase(it);
      return user;
    }
    default:
      return r.user_id;
  }
}

void ActivityCollector::FlushWindow(Window& w) {
  if (w.current_index < 0) {
    return;
  }
  w.result.active_users.Add(static_cast<double>(w.active.size()));
  w.result.max_active_users =
      std::max(w.result.max_active_users, static_cast<int64_t>(w.active.size()));
  // Ordered containers, so the Welford accumulator sees users in ascending id
  // order — the same order the segmented replay (Finalize above) uses.
  for (const auto& [user, bytes] : w.bytes) {
    w.result.throughput_per_user.Add(static_cast<double>(bytes) / w.length.seconds());
  }
  // Users active with zero reconstructed bytes (e.g. only an unlink) still
  // count as active users with zero throughput.
  for (UserId user : w.active) {
    if (w.bytes.count(user) == 0) {
      w.result.throughput_per_user.Add(0.0);
    }
  }
  w.result.intervals += 1;
  w.active.clear();
  w.bytes.clear();
}

void ActivityCollector::Touch(Window& w, SimTime t, UserId user, uint64_t bytes) {
  const int64_t index = t.micros() / w.length.micros();
  if (index != w.current_index) {
    // Flush completed interval(s); empty intervals between events count as
    // intervals with zero active users.
    FlushWindow(w);
    for (int64_t i = w.current_index + 1; i < index; ++i) {
      w.result.active_users.Add(0.0);
      w.result.intervals += 1;
    }
    w.current_index = index;
  }
  w.active.insert(user);
  if (bytes > 0) {
    w.bytes[user] += bytes;
  }
}

void ActivityCollector::OnRecord(const TraceRecord& r) {
  if (r.time > last_time_) {
    last_time_ = r.time;
  }
  // In segment mode a close/seek whose open lies before this segment has no
  // user here; the stitcher replays the record with the carried open's user.
  if (segment_mode_ && (r.type == EventType::kSeek || r.type == EventType::kClose) &&
      open_user_.count(r.open_id) == 0) {
    return;
  }
  const UserId user = UserOf(r);
  users_seen_.insert(user);
  if (segment_mode_) {
    segment_.Touch(r.time, user, 0);
  } else {
    Touch(ten_minute_, r.time, user, 0);
    Touch(ten_second_, r.time, user, 0);
  }
}

void ActivityCollector::OnTransfer(const Transfer& t) {
  total_bytes_ += t.length;
  users_seen_.insert(t.user_id);
  if (segment_mode_) {
    segment_.Touch(t.time, t.user_id, t.length);
  } else {
    Touch(ten_minute_, t.time, t.user_id, t.length);
    Touch(ten_second_, t.time, t.user_id, t.length);
  }
}

ActivityStats ActivityCollector::Take() {
  FlushWindow(ten_minute_);
  FlushWindow(ten_second_);
  ActivityStats stats;
  stats.duration = last_time_ - SimTime::Origin();
  stats.total_bytes = total_bytes_;
  stats.average_throughput =
      stats.duration > Duration::Zero()
          ? static_cast<double>(total_bytes_) / stats.duration.seconds()
          : 0.0;
  stats.distinct_users = users_seen_.size();
  ten_minute_.result.interval_length = ten_minute_.length;
  ten_second_.result.interval_length = ten_second_.length;
  stats.ten_minute = ten_minute_.result;
  stats.ten_second = ten_second_.result;
  return stats;
}

ActivitySegment ActivityCollector::TakeSegment() {
  segment_.users_seen = std::move(users_seen_);
  segment_.total_bytes = total_bytes_;
  segment_.last_time = last_time_;
  segment_.open_user = std::move(open_user_);
  return std::move(segment_);
}

}  // namespace bsdtrace
