// Background system activity: cron-style periodic jobs, syslog appends, and
// mail delivery.  These run around the clock and account for a large share
// of the trace's small events — plus the night-time baseline activity the
// traced machines showed.

#include "src/workload/apps.h"

namespace bsdtrace {

namespace {
constexpr UserId kSystemUser = 0;
}  // namespace

void RunSystemTick(WorkloadContext& ctx, const SystemImage& image) {
  Rng& rng = ctx.rng();
  const double r = rng.NextDouble();
  if (r < 0.40) {
    // syslog/accounting: reposition to end of a log and append a record.
    if (!image.admin_files.empty()) {
      const std::string& log = image.admin_files[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(image.admin_files.size()) - 1))];
      ctx.AppendFile(log, kSystemUser, 60 + static_cast<uint64_t>(rng.UniformInt(0, 340)));
    }
  } else if (r < 0.62) {
    // Status checks: the logged-in table plus a config file or two.
    if (rng.Bernoulli(0.5)) {
      ctx.ReadWholeFile(image.utmp_path, kSystemUser);
    }
    const int files = 1 + static_cast<int>(rng.UniformInt(0, 1));
    for (int i = 0; i < files && !image.config_files.empty(); ++i) {
      const std::string& cfg = image.config_files[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(image.config_files.size()) - 1))];
      if (cfg == "/etc/termcap") {
        ctx.PeekFile(cfg, kSystemUser, 2048);
      } else {
        ctx.ReadWholeFile(cfg, kSystemUser);
      }
    }
  } else if (r < 0.78) {
    // Accounting lookup: probe records scattered through a big admin file.
    if (!image.admin_files.empty()) {
      const std::string& db = image.admin_files[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(image.admin_files.size()) - 1))];
      ctx.RandomReads(db, kSystemUser, 2 + static_cast<int>(rng.UniformInt(0, 1)), 1024);
    }
  } else if (r < 0.88) {
    // cron job: run a script that pipes through a short-lived temp file.
    ctx.Exec(image.SampleProgram(rng), kSystemUser);
    const std::string tmp = "/tmp/cron" + std::to_string(rng.UniformInt(0, 999));
    ctx.WriteNewFile(tmp, kSystemUser, 200 + static_cast<uint64_t>(rng.UniformInt(0, 4000)));
    ctx.AdvanceExp(Duration::Seconds(2));
    ctx.ReadWholeFile(tmp, kSystemUser);
    ctx.Unlink(tmp, kSystemUser);
  } else if (r < 0.96) {
    // getty respawn: terminal configuration lookups.
    ctx.ReadWholeFile("/etc/ttys", kSystemUser);
    ctx.PeekFile("/etc/termcap", kSystemUser, 1024);
  } else {
    // Spool directory sweep: read it like a file (old-UNIX readdir).
    ctx.ReadWholeFile(image.spool_dir, kSystemUser);
    ctx.ReadWholeFile("/tmp", kSystemUser);
  }
}

void DeliverMail(WorkloadContext& ctx, const SystemImage& image, size_t recipient) {
  Rng& rng = ctx.rng();
  ctx.Exec(image.SampleProgram(rng), kSystemUser);  // sendmail-ish
  const std::string mbox = image.mail_dir + "/user" + std::to_string(recipient);
  const std::string lock = mbox + ".lock";
  ctx.WriteNewFile(lock, kSystemUser, 0);
  ctx.AppendFile(mbox, kSystemUser, 250 + static_cast<uint64_t>(rng.UniformInt(0, 3750)));
  ctx.Unlink(lock, kSystemUser);
}

}  // namespace bsdtrace
