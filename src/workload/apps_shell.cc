// Shell task model: bursts of small command executions.
//
// This supplies the bulk of the trace's short events: program loads
// (execve), whole reads of short files and directories, first-block peeks,
// and small temporary files piped between commands.

#include "src/workload/apps.h"

namespace bsdtrace {

void RunShellTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  const int commands = 3 + static_cast<int>(rng.UniformInt(0, 8));

  for (int c = 0; c < commands; ++c) {
    ctx.AdvanceExp(Duration::Seconds(6));  // typing the next command
    if (rng.Bernoulli(0.35)) {
      // Glob expansion: the shell reads the working directory first.
      ctx.ReadWholeFile(rng.Bernoulli(0.75) ? user.home : std::string("/tmp"), user.id);
    }
    if (rng.Bernoulli(0.55)) {
      // Shell builtins (cd, echo, ...) load no program.
      ctx.Exec(image.SampleProgram(rng), user.id);
    }

    const double r = rng.NextDouble();
    if (r < 0.24) {
      // cat/grep/awk-style: read one or two small files whole.  Script
      // interpreters consume their input slowly (VAX-era processing).
      const double rate = rng.Bernoulli(0.35) ? 5e3 : 0;
      const Duration hold = rng.Bernoulli(0.35)
                                ? Duration::Seconds(rng.Exponential(1.3))
                                : Duration::Zero();
      const int files = 1 + static_cast<int>(rng.UniformInt(0, 1));
      for (int i = 0; i < files; ++i) {
        if (rng.Bernoulli(0.35) && !image.config_files.empty()) {
          const std::string& cfg = image.config_files[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(image.config_files.size()) - 1))];
          if (cfg == "/etc/termcap") {
            // tset-style: scan the prefix until the entry is found.
            ctx.PeekFile(cfg, user.id,
                         1024 * static_cast<uint64_t>(1 + rng.UniformInt(0, 15)));
          } else {
            ctx.ReadWholeFile(cfg, user.id, 0, hold);
          }
        } else {
          ctx.ReadWholeFile(user.Pick(user.sources), user.id, rate, hold);
        }
      }
    } else if (r < 0.32) {
      // more(1): page through a file at human speed; often quit early.
      const std::string target = rng.Bernoulli(0.5) && !user.docs.empty()
                                     ? user.Pick(user.docs)
                                     : user.Pick(user.sources);
      const Fd fd = ctx.OpenRaw(target, OpenFlags::ReadOnly(), user.id);
      if (fd >= 0) {
        const int pages = 1 + static_cast<int>(rng.UniformInt(0, 4));
        for (int pg = 0; pg < pages; ++pg) {
          if (ctx.RawRead(fd, 2048) == 0) {
            break;
          }
          ctx.AdvanceExp(Duration::Seconds(9));  // reading the page
        }
        ctx.CloseRaw(fd);
      }
    } else if (r < 0.44) {
      // file/head-style: look at the first block only.
      const uint64_t peek = rng.Bernoulli(0.55) ? 1024 : 4096;
      ctx.PeekFile(user.Pick(user.sources), user.id, peek);
    } else if (r < 0.47) {
      // ar/ranlib-style: pull several members out of an archive at offsets —
      // substantial bytes moved non-sequentially (Table V's byte rows).
      ctx.RandomReads(image.libc_path, user.id, 3 + static_cast<int>(rng.UniformInt(0, 3)),
                      4096 * static_cast<uint64_t>(1 + rng.UniformInt(0, 3)));
    } else if (r < 0.485) {
      // nm/size/strip-style: scan a binary whole (the 4-25 KB run band).
      const std::string target = rng.Bernoulli(0.4) && ctx.kernel().Exists(user.home + "/a.out")
                                     ? user.home + "/a.out"
                                     : image.SampleProgram(rng);
      ctx.ReadWholeFile(target, user.id, 60e3);
    } else if (r < 0.60) {
      // ls-style: read a directory as a file (old-UNIX directories).
      const char* dirs[] = {"", "/tmp", "/bin", "/etc"};
      const size_t pick = static_cast<size_t>(rng.UniformInt(0, 3));
      const std::string dir = pick == 0 ? user.home : dirs[pick];
      ctx.ReadWholeFile(dir, user.id);
    } else if (r < 0.72) {
      // Redirect output to a small new file in the home directory.
      const std::string out = user.home + "/note" + std::to_string(user.tmp_seq++ % 8);
      ctx.WriteNewFile(out, user.id, 200 + static_cast<uint64_t>(rng.UniformInt(0, 2800)));
    } else if (r < 0.86) {
      // Pipeline via a temporary: write, read back, delete (seconds-long
      // lifetime, Fig. 4's left edge).
      const std::string tmp = user.TempPath();
      ctx.WriteNewFile(tmp, user.id, 512 + static_cast<uint64_t>(rng.UniformInt(0, 6656)));
      ctx.AdvanceExp(Duration::Seconds(3));
      ctx.ReadWholeFile(tmp, user.id);
      ctx.Unlink(tmp, user.id);
    } else if (r < 0.93) {
      // tail-style: reposition near the end of a log and read the tail.
      if (!image.admin_files.empty()) {
        const std::string& log = image.admin_files[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(image.admin_files.size()) - 1))];
        auto size = ctx.kernel().FileSize(log);
        const uint64_t end = size.ok() ? size.value() : 0;
        ctx.SeekRead(log, user.id, end > 2048 ? end - 2048 : 0, 4096);
      }
    } else if (r < 0.97) {
      // rwho/ruptime: scan a few of the daemon's host status files.
      const int hosts = 2 + static_cast<int>(rng.UniformInt(0, 4));
      for (int h = 0; h < hosts; ++h) {
        const int idx = static_cast<int>(
            rng.UniformInt(0, ctx.profile().daemon_host_count - 1));
        ctx.ReadWholeFile(image.DaemonFile(idx), user.id);
      }
    }
    // else: a command with no file I/O beyond its own load (e.g. echo).
  }

  // csh history is appended when the burst ends.
  ctx.AppendFile(user.home + "/.history", user.id,
                 20 + static_cast<uint64_t>(rng.UniformInt(0, 20)) * commands);
}

}  // namespace bsdtrace
