// The 4.2 BSD network status daemon (rwhod-style).
//
// Each of ~20 host status files is rewritten every three minutes, so the
// previous contents live almost exactly 180 seconds — the paper's striking
// lifetime spike ("3-4% [30-40%] of all new files have lifetimes between 179
// and 181 seconds", Fig. 4), which it calls out as peculiar to 4.2 BSD.

#include "src/workload/apps.h"

namespace bsdtrace {

void RunDaemonTick(WorkloadContext& ctx, const SystemImage& image, int host) {
  constexpr UserId kDaemonUser = 0;
  const double median = ctx.profile().daemon_file_median;
  // Status packets vary a little with the remote host's load.
  const uint64_t size =
      static_cast<uint64_t>(median * ctx.rng().Uniform(0.8, 1.25));
  ctx.WriteNewFile(image.DaemonFile(host), kDaemonUser, size);
}

}  // namespace bsdtrace
