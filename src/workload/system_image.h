// Initial file-system population for a traced machine.
//
// Before tracing starts, the machine already has a full file tree: system
// binaries under /bin and /usr/bin, configuration files under /etc, the
// administrative databases the paper describes (~1 MB network tables and
// login logs), spool directories, and user home directories seeded with
// source files, documents, and CAD decks.  The image is built directly
// against the FileSystem — creating pre-existing state is not traced.

#ifndef BSDTRACE_SRC_WORKLOAD_SYSTEM_IMAGE_H_
#define BSDTRACE_SRC_WORKLOAD_SYSTEM_IMAGE_H_

#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct SystemImage {
  // Executable programs, ordered by popularity (index 0 most popular), and
  // the Zipf sampler over them.  Mix of small scripts and larger binaries.
  std::vector<std::string> programs;
  // Small configuration files read during logins and shell startup.
  std::vector<std::string> config_files;
  // C header files under /usr/include, read by compiles (small, shared, and
  // popular — good cache locality).
  std::vector<std::string> headers;
  // The large administrative databases (network tables, login log, ...).
  std::vector<std::string> admin_files;

  std::string rwho_dir = "/usr/spool/rwho";  // network status daemon files
  std::string tmp_dir = "/tmp";
  std::string spool_dir = "/usr/spool/lpd";
  std::string mail_dir = "/usr/spool/mail";

  // Home directory of each user (index = user id - 1).  Always one entry per
  // user in the profile; when the image was built for a shard, homes of
  // non-owned users are paths only (no file-system state behind them).
  std::vector<std::string> home_dirs;

  // Highest FileId allocated by the shared system tree (programs, config,
  // headers, admin databases, daemon files) — everything before the per-user
  // homes.  The shared tree consumes the RNG identically regardless of which
  // homes are materialized, so ids at or below the watermark are identical
  // in every shard replica built from the same (profile, seed); ids above it
  // are shard-local and must be remapped before shard traces are merged.
  FileId shared_tree_watermark = 0;

  // Well-known programs used by specific task models.
  std::string cc_path;     // compiler driver
  std::string as_path;     // assembler
  std::string ld_path;     // linker
  std::string vi_path;     // editor
  std::string mail_path;   // mail reader
  std::string troff_path;  // document formatter
  std::string cad_path;    // circuit simulator (large binary)
  std::string libc_path;   // /lib/libc.a — repositioned within by the linker
  std::string macros_path; // formatter macro package
  std::string utmp_path;   // logged-in user table

  // Status file for host `h` of the network daemon.
  std::string DaemonFile(int host) const {
    return rwho_dir + "/whod.host" + std::to_string(host);
  }

  // Samples a program to execute (Zipf-popular).
  const std::string& SampleProgram(Rng& rng) const;

 private:
  friend SystemImage BuildSystemImage(FileSystem& fs, const MachineProfile& profile, Rng& rng,
                                      const std::vector<bool>* owned_users);
  std::vector<double> program_popularity_;
};

// Builds the initial tree for `profile.user_population` users and returns the
// catalog of interesting paths.
//
// `owned_users` (optional, indexed by user) selects which users' home
// directories and mailboxes are materialized; null means all.  Skipped homes
// consume no RNG draws, so passing null or an all-true vector is bit-
// identical to the historical builder — the property the sharded generator's
// shards=1 parity rests on.
SystemImage BuildSystemImage(FileSystem& fs, const MachineProfile& profile, Rng& rng,
                             const std::vector<bool>* owned_users = nullptr);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_SYSTEM_IMAGE_H_
