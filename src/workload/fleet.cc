#include "src/workload/fleet.h"

namespace bsdtrace {
namespace {

// Splits "4xA5" into (4, "A5"); a bare "A5" is (1, "A5").  The count must be
// all digits followed by a literal 'x'; profile names never start with a
// digit, so the split is unambiguous.
Status ParseGroup(const std::string& group, int* count, std::string* name) {
  *count = 1;
  *name = group;
  size_t digits = 0;
  while (digits < group.size() && group[digits] >= '0' && group[digits] <= '9') {
    ++digits;
  }
  if (digits > 0 && digits < group.size() &&
      (group[digits] == 'x' || group[digits] == 'X')) {
    if (digits > 4) {
      return Status::Error("fleet group \"" + group + "\": instance count too large");
    }
    *count = std::stoi(group.substr(0, digits));
    *name = group.substr(digits + 1);
    if (*count < 1) {
      return Status::Error("fleet group \"" + group + "\": instance count must be >= 1");
    }
  }
  if (name->empty()) {
    return Status::Error("fleet group \"" + group + "\": missing profile name");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<FleetProfile> ParseFleetSpec(const std::string& spec, int users) {
  std::string body = spec;
  if (body.rfind("fleet:", 0) == 0) {
    body = body.substr(6);
  }
  if (body.empty()) {
    return Status::Error("empty fleet spec");
  }

  FleetProfile fleet;
  size_t pos = 0;
  while (pos <= body.size()) {
    size_t end = body.find('+', pos);
    if (end == std::string::npos) {
      end = body.size();
    }
    const std::string group = body.substr(pos, end - pos);
    int count = 0;
    std::string name;
    if (Status st = ParseGroup(group, &count, &name); !st.ok()) {
      return st;
    }
    StatusOr<MachineProfile> profile = ProfileByNameOrError(name);
    if (!profile.ok()) {
      return profile.status();
    }
    if (users > 0) {
      profile.value().scale.users = users;
    }
    if (!fleet.spec.empty()) {
      fleet.spec += '+';
    }
    fleet.spec += count > 1 ? std::to_string(count) + "x" + profile.value().trace_name
                            : profile.value().trace_name;
    for (int i = 0; i < count; ++i) {
      fleet.machines.push_back(profile.value());
    }
    if (end == body.size()) {
      break;
    }
    pos = end + 1;
  }
  if (fleet.machines.size() > 64) {
    return Status::Error("fleet spec \"" + spec + "\": more than 64 machine instances");
  }
  return fleet;
}

std::vector<FleetInstanceTag> FleetLayout(const FleetProfile& fleet) {
  std::vector<FleetInstanceTag> tags;
  tags.reserve(fleet.machines.size());
  UserId base = 0;
  for (const MachineProfile& machine : fleet.machines) {
    const MachineProfile resolved = ApplyPopulationScale(machine);
    FleetInstanceTag tag;
    tag.trace_name = resolved.trace_name;
    tag.user_base = base;
    tag.user_population = resolved.user_population;
    base += static_cast<UserId>(resolved.user_population) + 2;
    tags.push_back(std::move(tag));
  }
  return tags;
}

}  // namespace bsdtrace
