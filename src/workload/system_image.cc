#include "src/workload/system_image.h"

#include <cassert>
#include <cmath>

namespace bsdtrace {
namespace {

// Creates a regular file of the given size; the image must fit, so failures
// are asserted rather than tolerated.
void MakeFile(FileSystem& fs, const std::string& path, uint64_t size) {
  auto ino = fs.CreateFile(path);
  assert(ino.ok());
  const FsStatus st = fs.SetFileSize(ino.value(), size, SimTime::Origin());
  assert(st.ok());
  (void)st;
}

}  // namespace

const std::string& SystemImage::SampleProgram(Rng& rng) const {
  assert(!programs.empty());
  const size_t i = rng.WeightedIndex(program_popularity_);
  return programs[i];
}

SystemImage BuildSystemImage(FileSystem& fs, const MachineProfile& profile, Rng& rng,
                             const std::vector<bool>* owned_users) {
  SystemImage image;
  assert(owned_users == nullptr ||
         owned_users->size() == static_cast<size_t>(profile.user_population));

  for (const char* dir :
       {"/bin", "/usr/bin", "/usr/ucb", "/etc", "/lib", "/tmp", "/usr/tmp", "/usr/adm",
        "/usr/spool/mail", "/usr/spool/lpd", "/usr/spool/rwho", "/usr/lib", "/u"}) {
    auto st = fs.MkdirAll(dir);
    assert(st.ok());
    (void)st;
  }

  // -- Programs ---------------------------------------------------------------
  // Popularity follows a Zipf-ish law; the most-executed programs on a
  // 4.2 BSD system were small utilities and shell scripts (which keeps total
  // execve bytes within the paper's 1.2-2x of logical file I/O).
  struct ProgSpec {
    const char* dir;
    int count;
    double median;  // size median (bytes)
    double sigma;
  };
  const ProgSpec specs[] = {
      {"/bin", 28, 9000, 0.9},       // core utilities: ls, cat, cp, sed, ...
      {"/usr/bin", 26, 16000, 1.0},  // larger tools: cc pieces, troff, ...
      {"/usr/ucb", 16, 22000, 1.0},  // BSD additions: vi, more, mail, ...
      {"/lib", 8, 60000, 0.8},       // compiler passes: ccom, c2, ld, as
  };
  int prog_index = 0;
  for (const ProgSpec& spec : specs) {
    for (int i = 0; i < spec.count; ++i) {
      LogNormalDist size_dist(spec.median, spec.sigma, 1.5e6);
      const auto size = static_cast<uint64_t>(size_dist.Sample(rng)) + 512;
      const std::string path = std::string(spec.dir) + "/prog" + std::to_string(prog_index++);
      MakeFile(fs, path, size);
      image.programs.push_back(path);
    }
  }
  // Shell scripts: small, very frequently executed.
  for (int i = 0; i < 18; ++i) {
    LogNormalDist size_dist(1200, 0.8, 20000);
    const std::string path = "/usr/bin/script" + std::to_string(i);
    MakeFile(fs, path, static_cast<uint64_t>(size_dist.Sample(rng)) + 64);
    image.programs.push_back(path);
  }
  // Zipf popularity over the combined list: /bin utilities and scripts are
  // the most frequently executed; /lib compiler passes are reached via the
  // compile model rather than via this sampler.
  image.program_popularity_.resize(image.programs.size());
  for (size_t k = 0; k < image.programs.size(); ++k) {
    image.program_popularity_[k] = 1.0 / std::pow(static_cast<double>(k + 1), 0.85);
  }

  // Well-known programs for the task models.
  image.cc_path = "/bin/cc";
  MakeFile(fs, image.cc_path, 21504);
  image.as_path = "/bin/as";
  MakeFile(fs, image.as_path, 46080);
  image.ld_path = "/bin/ld";
  MakeFile(fs, image.ld_path, 38912);
  image.vi_path = "/usr/ucb/vi";
  MakeFile(fs, image.vi_path, 141312);
  image.mail_path = "/usr/ucb/Mail";
  MakeFile(fs, image.mail_path, 92160);
  image.troff_path = "/usr/bin/troff";
  MakeFile(fs, image.troff_path, 108544);
  image.cad_path = "/usr/bin/cadsim";
  MakeFile(fs, image.cad_path, 487424);
  image.libc_path = "/lib/libc.a";
  MakeFile(fs, image.libc_path, 330000);
  image.macros_path = "/usr/lib/tmac.s";
  MakeFile(fs, image.macros_path, 28000);

  // -- Configuration files ------------------------------------------------------
  const char* config_names[] = {"/etc/passwd", "/etc/group",   "/etc/hosts",
                                "/etc/ttys",   "/etc/termcap", "/etc/motd",
                                "/etc/fstab",  "/etc/gettytab"};
  for (const char* name : config_names) {
    const uint64_t size = 150 + static_cast<uint64_t>(rng.UniformInt(0, 2350));
    MakeFile(fs, name, name == std::string("/etc/termcap") ? 110000 : size);
    image.config_files.push_back(name);
  }

  // utmp: the logged-in-users table, read by who/finger-style tools all day.
  image.utmp_path = "/etc/utmp";
  MakeFile(fs, image.utmp_path, 2048);

  // -- Header files (read by every compile) -------------------------------------
  {
    auto st = fs.MkdirAll("/usr/include");
    assert(st.ok());
    (void)st;
    for (int i = 0; i < 40; ++i) {
      LogNormalDist size_dist(2200, 0.9, 30000);
      const std::string path = "/usr/include/hdr" + std::to_string(i) + ".h";
      MakeFile(fs, path, static_cast<uint64_t>(size_dist.Sample(rng)) + 128);
      image.headers.push_back(path);
    }
  }

  // -- Administrative databases (the ~1 MB files of Fig. 2's tail) -------------
  const char* admin_names[] = {"/usr/adm/wtmp", "/usr/adm/acct", "/usr/lib/nettable",
                               "/usr/adm/messages", "/usr/lib/hostdb", "/usr/adm/lpacct"};
  for (int i = 0; i < profile.admin_file_count && i < 6; ++i) {
    const auto size = static_cast<uint64_t>(profile.admin_file_size * (0.7 + 0.08 * i));
    MakeFile(fs, admin_names[i], size);
    image.admin_files.push_back(admin_names[i]);
  }

  // -- Network daemon status files ---------------------------------------------
  // Created before tracing begins so the first traced rewrite overwrites an
  // existing file, as on the real machines.
  for (int h = 0; h < profile.daemon_host_count; ++h) {
    const std::string path = image.rwho_dir + "/whod.host" + std::to_string(h);
    MakeFile(fs, path, static_cast<uint64_t>(profile.daemon_file_median));
  }

  // Everything above is the shared system tree — identical (same RNG draws,
  // same file ids) for every replica built from the same (profile, seed).
  image.shared_tree_watermark = fs.LastAssignedFileId();

  // -- User homes ----------------------------------------------------------------
  image.home_dirs.reserve(profile.user_population);
  for (int u = 0; u < profile.user_population; ++u) {
    const std::string home = "/u/user" + std::to_string(u);
    image.home_dirs.push_back(home);
    if (owned_users != nullptr && !(*owned_users)[static_cast<size_t>(u)]) {
      continue;  // non-owned home: path catalogued, nothing materialized
    }
    auto st = fs.MkdirAll(home);
    assert(st.ok());
    (void)st;
    // Dotfiles read at login.
    MakeFile(fs, home + "/.cshrc", 300 + static_cast<uint64_t>(rng.UniformInt(0, 1200)));
    MakeFile(fs, home + "/.login", 150 + static_cast<uint64_t>(rng.UniformInt(0, 700)));
    // Seed work files; the task models grow these sets over time.
    LogNormalDist src_dist(profile.source_median, profile.source_sigma, 120000);
    for (int i = 0; i < 6; ++i) {
      MakeFile(fs, home + "/src" + std::to_string(i) + ".c",
               static_cast<uint64_t>(src_dist.Sample(rng)) + 32);
    }
    LogNormalDist doc_dist(profile.doc_median, profile.doc_sigma, 250000);
    for (int i = 0; i < 3; ++i) {
      MakeFile(fs, home + "/doc" + std::to_string(i),
               static_cast<uint64_t>(doc_dist.Sample(rng)) + 32);
    }
    if (profile.mix.cad > 0) {
      LogNormalDist deck_dist(profile.cad_deck_median, profile.cad_deck_sigma, 2.5e6);
      for (int i = 0; i < 3; ++i) {
        MakeFile(fs, home + "/deck" + std::to_string(i),
                 static_cast<uint64_t>(deck_dist.Sample(rng)) + 128);
      }
    }
    // Mailbox (may start non-empty).
    MakeFile(fs, "/usr/spool/mail/user" + std::to_string(u),
             static_cast<uint64_t>(rng.UniformInt(0, 20000)));
  }

  return image;
}

}  // namespace bsdtrace
