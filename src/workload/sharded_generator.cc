#include "src/workload/sharded_generator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <filesystem>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/trace/trace_io.h"
#include "src/trace/trace_merge.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

namespace fs = std::filesystem;

using internal::RunShard;
using internal::ShardPlan;
using internal::TraceDescription;

// Round-robin partition: shard s owns users {u : u % S == s} and daemon
// hosts {h : h % S == s}.  Machine-wide background activity (cron/syslog)
// runs on shard 0 only; mail runs on every shard against its own users with
// the inter-arrival mean stretched so the per-user delivery rate matches the
// serial path.
std::vector<ShardPlan> MakePlans(const MachineProfile& profile, int shard_count) {
  std::vector<ShardPlan> plans(static_cast<size_t>(shard_count));
  if (shard_count == 1) {
    // Exactly the serial plan, so the streaming engine at one shard spills
    // the same records GenerateTrace() returns.
    plans[0] = internal::FullPlan(profile);
    return plans;
  }
  for (int s = 0; s < shard_count; ++s) {
    ShardPlan& plan = plans[static_cast<size_t>(s)];
    plan.shard_index = s;
    plan.shard_count = shard_count;
    for (int u = s; u < profile.user_population; u += shard_count) {
      plan.users.push_back(u);
    }
    // Keep ascending order: the stride loop above yields s, s+S, s+2S, ...
    std::sort(plan.users.begin(), plan.users.end());
    for (int h = s; h < profile.daemon_host_count; h += shard_count) {
      plan.daemon_hosts.push_back(h);
    }
    std::sort(plan.daemon_hosts.begin(), plan.daemon_hosts.end());
    plan.run_system_tick = (s == 0);
    plan.run_mail = !plan.users.empty();
    plan.mail_scale = plan.users.empty()
                          ? 1.0
                          : static_cast<double>(profile.user_population) /
                                static_cast<double>(plan.users.size());
  }
  return plans;
}

// Runs every shard plan on a small worker pool.  Workers claim shard indices
// from an atomic counter, so which thread runs which shard is scheduling-
// dependent — but `consume(s, result)` receives the shard index, and callers
// write into per-shard slots (or files), so the overall output is not.
// `consume` runs on the worker thread, concurrently for distinct shards.
void RunShardsOnPool(const MachineProfile& profile, const GeneratorOptions& options,
                     const std::vector<ShardPlan>& plans, int threads,
                     const std::function<void(size_t, GenerationResult&&)>& consume) {
  const int shard_count = static_cast<int>(plans.size());
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, shard_count);

  std::atomic<int> next_shard{0};
  const auto worker = [&]() {
    for (int s = next_shard.fetch_add(1, std::memory_order_relaxed); s < shard_count;
         s = next_shard.fetch_add(1, std::memory_order_relaxed)) {
      consume(static_cast<size_t>(s),
              RunShard(profile, options, plans[static_cast<size_t>(s)]));
    }
  };
  if (threads == 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

// Rewrites one record's shard-local ids into globally unique interleaved
// ranges.  FileIds at or below the shared-image watermark name the shared
// system tree and agree across replicas, so they pass through; ids above it
// map to watermark + (id - watermark - 1) * S + s + 1, and OpenIds (always
// shard-local, starting at 1) map to (id - 1) * S + s + 1.  Both maps are
// the identity when S == 1.
inline void RemapRecordIds(TraceRecord& r, FileId watermark, uint64_t shard,
                           uint64_t stride) {
  if (r.file_id > watermark) {
    r.file_id = watermark + (r.file_id - watermark - 1) * stride + shard + 1;
  }
  if (r.open_id != kInvalidOpenId) {
    r.open_id = (r.open_id - 1) * stride + shard + 1;
  }
}

void RemapShardIds(std::vector<TraceRecord>& records, FileId watermark, int shard_index,
                   int shard_count) {
  const uint64_t s = static_cast<uint64_t>(shard_index);
  const uint64_t stride = static_cast<uint64_t>(shard_count);
  for (TraceRecord& r : records) {
    RemapRecordIds(r, watermark, s, stride);
  }
}

// K-way merge of per-shard record streams, each already sorted by time.
// Ties break by shard index, then by within-shard order — a stable merge, so
// the output is independent of thread scheduling.
std::vector<TraceRecord> MergeShardRecords(std::vector<GenerationResult>& shards) {
  size_t total = 0;
  for (const GenerationResult& shard : shards) {
    total += shard.trace.size();
  }
  std::vector<TraceRecord> merged;
  merged.reserve(total);

  struct Cursor {
    SimTime time;
    size_t shard;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    if (a.time != b.time) {
      return b.time < a.time;
    }
    return a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::vector<size_t> next(shards.size(), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].trace.empty()) {
      heap.push(Cursor{shards[s].trace.records()[0].time, s});
    }
  }
  while (!heap.empty()) {
    const size_t s = heap.top().shard;
    heap.pop();
    const std::vector<TraceRecord>& records = shards[s].trace.records();
    merged.push_back(records[next[s]]);
    if (++next[s] < records.size()) {
      heap.push(Cursor{records[next[s]].time, s});
    }
  }
  return merged;
}

void FoldInto(GenerationResult& total, GenerationResult& shard, size_t shard_index) {
  KernelCounters& t = total.kernel_counters;
  const KernelCounters& k = shard.kernel_counters;
  t.opens += k.opens;
  t.creates += k.creates;
  t.closes += k.closes;
  t.seeks += k.seeks;
  t.reads += k.reads;
  t.writes += k.writes;
  t.unlinks += k.unlinks;
  t.truncates += k.truncates;
  t.execves += k.execves;
  t.errors += k.errors;
  t.bytes_read += k.bytes_read;
  t.bytes_written += k.bytes_written;

  // Statistics are summed over the replicas; note that each replica carries
  // its own copy of the shared system tree, so `files`/`live_bytes` count it
  // shard_count times (the merged trace's *activity* has no such double
  // counting — only ids at or below the watermark are shared).
  FsStatistics& fst = total.fs_stats;
  const FsStatistics& fss = shard.fs_stats;
  fst.files += fss.files;
  fst.directories += fss.directories;
  fst.live_bytes += fss.live_bytes;
  fst.allocated_bytes += fss.allocated_bytes;
  fst.free_bytes += fss.free_bytes;

  for (const std::string& error : shard.fsck.errors) {
    total.fsck.errors.push_back("shard " + std::to_string(shard_index) + ": " + error);
  }
  total.fsck.inodes_checked += shard.fsck.inodes_checked;
  total.fsck.reachable_inodes += shard.fsck.reachable_inodes;
  total.fsck.orphan_inodes += shard.fsck.orphan_inodes;

  total.tasks_executed += shard.tasks_executed;
}

void FinishFragmentation(GenerationResult& result) {
  const FsStatistics& fs_stats = result.fs_stats;
  result.fs_stats.internal_fragmentation =
      fs_stats.allocated_bytes > 0
          ? 1.0 - static_cast<double>(fs_stats.live_bytes) /
                      static_cast<double>(fs_stats.allocated_bytes)
          : 0.0;
}

// The streamed trace's header: the serial description for one shard (so the
// shards=1 contract against GenerateTrace holds byte-for-byte), the sharded
// suffix otherwise — matching GenerateTraceSharded exactly.
TraceHeader MergedHeader(const MachineProfile& profile, const GeneratorOptions& options,
                         int shard_count) {
  TraceHeader header{.machine = profile.machine,
                     .description = TraceDescription(profile, options)};
  if (shard_count > 1) {
    header.description += ", " + std::to_string(shard_count) + " shards";
  }
  return header;
}

// Owns the private spill-file subdirectory; removes it (and anything left
// inside) on destruction, so early error returns never leak spill files.
class ScopedSpillDir {
 public:
  ScopedSpillDir() = default;
  ~ScopedSpillDir() { Remove(); }

  ScopedSpillDir(ScopedSpillDir&& o) noexcept : dir_(std::move(o.dir_)) { o.dir_.clear(); }
  ScopedSpillDir& operator=(ScopedSpillDir&& o) noexcept {
    if (this != &o) {
      Remove();
      dir_ = std::move(o.dir_);
      o.dir_.clear();
    }
    return *this;
  }

  Status Create(const std::string& base) {
    std::error_code ec;
    fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
    if (ec) {
      return Status::Error("spill: no temp directory: " + ec.message());
    }
    static std::atomic<uint64_t> counter{0};
    const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    fs::path dir = root / ("bsdtrace-spill-" + std::to_string(n) + "-" +
                           std::to_string(reinterpret_cast<uintptr_t>(this)));
    if (!fs::create_directories(dir, ec) || ec) {
      return Status::Error("spill: cannot create " + dir.string() +
                           (ec ? ": " + ec.message() : " (already exists)"));
    }
    dir_ = dir.string();
    return Status::Ok();
  }

  std::string ShardPath(size_t shard) const {
    return dir_ + "/shard-" + std::to_string(shard) + ".trc";
  }

 private:
  void Remove() {
    if (!dir_.empty()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);  // best effort; temp dirs age out regardless
    }
  }
  std::string dir_;
};

// Phase-1 output: per-shard spill files plus the folded non-trace stats.
struct SpilledShards {
  ScopedSpillDir dir;
  std::vector<uint64_t> shard_records;
  uint64_t total_records = 0;
  uint64_t spill_bytes = 0;
  GenerationResult stats;  // trace empty; counters/fsck/watermark folded
  TraceHeader header;
  int shard_count = 1;
};

// Phase 1 of the streaming engine: simulate all shards on the pool, spilling
// each shard's sorted records to its own file from inside the worker and
// freeing them immediately — peak record memory is bounded by the `threads`
// largest shards, not the whole trace.
StatusOr<SpilledShards> SpillShards(const MachineProfile& profile,
                                    const ShardedGeneratorOptions& options) {
  const int population = std::max(profile.user_population, 1);
  const int shard_count = std::clamp(options.shard_count, 1, population);
  const std::vector<ShardPlan> plans = MakePlans(profile, shard_count);

  SpilledShards spilled;
  spilled.shard_count = shard_count;
  spilled.header = MergedHeader(profile, options.base, shard_count);
  if (Status st = spilled.dir.Create(options.spill_dir); !st.ok()) {
    return st;
  }

  const size_t n = static_cast<size_t>(shard_count);
  std::vector<GenerationResult> slim(n);          // per-shard stats, records freed
  std::vector<Status> shard_status(n, Status::Ok());
  std::vector<uint64_t> shard_bytes(n, 0);
  spilled.shard_records.assign(n, 0);

  RunShardsOnPool(profile, options.base, plans, options.threads,
                  [&](size_t s, GenerationResult&& result) {
                    TraceFileWriter writer(spilled.dir.ShardPath(s),
                                           result.trace.header(),
                                           static_cast<int64_t>(result.trace.size()));
                    for (const TraceRecord& r : result.trace.records()) {
                      writer.Append(r);
                    }
                    shard_status[s] = writer.Finish();
                    shard_bytes[s] = writer.bytes_written();
                    spilled.shard_records[s] = writer.records_written();
                    result.trace = Trace(result.trace.header());  // free the records now
                    slim[s] = std::move(result);
                  });

  for (size_t s = 0; s < n; ++s) {
    if (!shard_status[s].ok()) {
      return Status::Error("spill shard " + std::to_string(s) + ": " +
                           shard_status[s].message());
    }
  }

  // Every replica builds the shared tree from the same (profile, seed), so
  // the watermarks must agree; disagreement is a simulator bug, not an I/O
  // condition, but the streaming path diagnoses rather than asserts.
  const FileId watermark = slim[0].shared_image_watermark;
  for (const GenerationResult& shard : slim) {
    if (shard.shared_image_watermark != watermark) {
      return Status::Error("spill: shard watermarks disagree (simulator bug)");
    }
  }
  spilled.stats.shared_image_watermark = watermark;
  for (size_t s = 0; s < n; ++s) {
    FoldInto(spilled.stats, slim[s], s);
    spilled.total_records += spilled.shard_records[s];
    spilled.spill_bytes += shard_bytes[s];
  }
  FinishFragmentation(spilled.stats);
  return spilled;
}

// Phase 2: loser-tree merge over the spill-file cursors, remapping ids
// record-by-record as they are pulled.  One record per shard in memory.
StatusOr<ShardedStreamStats> MergeSpills(SpilledShards& spilled, TraceSink& sink) {
  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.reserve(spilled.shard_records.size());
  for (size_t s = 0; s < spilled.shard_records.size(); ++s) {
    inputs.push_back(std::make_unique<TraceFileSource>(spilled.dir.ShardPath(s)));
  }
  const FileId watermark = spilled.stats.shared_image_watermark;
  const uint64_t stride = static_cast<uint64_t>(spilled.shard_count);
  MergingTraceSource merge(
      std::move(inputs), spilled.header,
      [watermark, stride](size_t shard, TraceRecord& r) {
        RemapRecordIds(r, watermark, static_cast<uint64_t>(shard), stride);
      });

  uint64_t streamed = 0;
  TraceRecord r;
  while (merge.Next(&r)) {
    sink.Append(r);
    ++streamed;
  }
  if (!merge.status().ok()) {
    return merge.status();
  }
  if (streamed != spilled.total_records) {
    return Status::Error("spill merge produced " + std::to_string(streamed) + " of " +
                         std::to_string(spilled.total_records) + " expected records");
  }

  ShardedStreamStats stats;
  stats.header = spilled.header;
  stats.kernel_counters = spilled.stats.kernel_counters;
  stats.fs_stats = spilled.stats.fs_stats;
  stats.fsck = std::move(spilled.stats.fsck);
  stats.tasks_executed = spilled.stats.tasks_executed;
  stats.shared_image_watermark = watermark;
  stats.records_streamed = streamed;
  stats.spill_bytes_written = spilled.spill_bytes;
  return stats;
}

}  // namespace

GenerationResult GenerateTraceSharded(const MachineProfile& profile,
                                      const ShardedGeneratorOptions& options) {
  const int population = std::max(profile.user_population, 1);
  const int shard_count = std::clamp(options.shard_count, 1, population);
  if (shard_count == 1) {
    // The serial reference path, bit-identical to GenerateTrace().
    return GenerateTrace(profile, options.base);
  }

  const std::vector<ShardPlan> plans = MakePlans(profile, shard_count);
  std::vector<GenerationResult> shards(static_cast<size_t>(shard_count));
  RunShardsOnPool(profile, options.base, plans, options.threads,
                  [&shards](size_t s, GenerationResult&& result) {
                    shards[s] = std::move(result);
                  });

  // Every replica builds the shared tree from the same (profile, seed), so
  // the watermarks must agree.
  const FileId watermark = shards[0].shared_image_watermark;
  for (const GenerationResult& shard : shards) {
    assert(shard.shared_image_watermark == watermark);
    (void)shard;
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    RemapShardIds(shards[s].trace.records(), watermark, static_cast<int>(s), shard_count);
  }

  GenerationResult result;
  result.shared_image_watermark = watermark;
  Trace merged(MergedHeader(profile, options.base, shard_count));
  merged.records() = MergeShardRecords(shards);
  result.trace = std::move(merged);
  for (size_t s = 0; s < shards.size(); ++s) {
    FoldInto(result, shards[s], s);
  }
  FinishFragmentation(result);
  return result;
}

StatusOr<ShardedStreamStats> GenerateTraceShardedTo(const MachineProfile& profile,
                                                    const ShardedGeneratorOptions& options,
                                                    TraceSink& sink) {
  StatusOr<SpilledShards> spilled = SpillShards(profile, options);
  if (!spilled.ok()) {
    return spilled.status();
  }
  return MergeSpills(spilled.value(), sink);
}

StatusOr<ShardedStreamStats> GenerateTraceShardedToFile(const MachineProfile& profile,
                                                        const ShardedGeneratorOptions& options,
                                                        const std::string& path) {
  StatusOr<SpilledShards> spilled = SpillShards(profile, options);
  if (!spilled.ok()) {
    return spilled.status();
  }
  // The exact record count is known once the shards have spilled, so the
  // final file's header declares it.  The file is written as format v3 —
  // checksummed blocks plus the footer index — so the result is directly
  // consumable by ParallelAnalyzeTrace; the bytes match SaveTrace of the
  // in-memory path's trace with the same v3 options.  (The per-shard spill
  // files above stay v2: they are private intermediates, merged and deleted
  // before anyone seeks into them.)
  TraceFileWriter writer(path, spilled.value().header,
                         static_cast<int64_t>(spilled.value().total_records),
                         TraceWriterOptions{.version = 3});
  if (!writer.status().ok()) {
    return writer.status();
  }
  StatusOr<ShardedStreamStats> stats = MergeSpills(spilled.value(), writer);
  const Status finish = writer.Finish();
  if (!stats.ok()) {
    return stats.status();
  }
  if (!finish.ok()) {
    return finish;
  }
  return stats;
}

}  // namespace bsdtrace
