#include "src/workload/sharded_generator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <filesystem>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/trace/fleet_tag.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_merge.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {

namespace internal {

// Partition invariants are documented on the declaration (sharded_generator.h)
// and pinned by the ShardPlan test.  In short: users AND daemon hosts are
// round-robin partitions of their index spaces — the daemon fleet is spread
// across shards, not pinned to shard 0 — while the machine-wide cron/syslog
// tick runs on shard 0 only (it is a single process on the real machine; see
// ROADMAP's cross-shard approximation note) and mail is delivered per shard
// to the shard's own users at a compensated rate.
std::vector<ShardPlan> MakeShardPlans(const MachineProfile& profile, int shard_count) {
  std::vector<ShardPlan> plans(static_cast<size_t>(shard_count));
  if (shard_count == 1) {
    // Exactly the serial plan, so the streaming engine at one shard spills
    // the same records GenerateTrace() returns.
    plans[0] = internal::FullPlan(profile);
    return plans;
  }
  for (int s = 0; s < shard_count; ++s) {
    ShardPlan& plan = plans[static_cast<size_t>(s)];
    plan.shard_index = s;
    plan.shard_count = shard_count;
    for (int u = s; u < profile.user_population; u += shard_count) {
      plan.users.push_back(u);
    }
    // Keep ascending order: the stride loop above yields s, s+S, s+2S, ...
    std::sort(plan.users.begin(), plan.users.end());
    for (int h = s; h < profile.daemon_host_count; h += shard_count) {
      plan.daemon_hosts.push_back(h);
    }
    std::sort(plan.daemon_hosts.begin(), plan.daemon_hosts.end());
    plan.run_system_tick = (s == 0);
    plan.run_mail = !plan.users.empty();
    plan.mail_scale = plan.users.empty()
                          ? 1.0
                          : static_cast<double>(profile.user_population) /
                                static_cast<double>(plan.users.size());
  }
  return plans;
}

uint64_t FleetInstanceSeed(uint64_t seed, size_t instance) {
  if (instance == 0) {
    return seed;  // the one-machine fleet reproduces the single-machine stream
  }
  // SplitMix64 over (seed, instance): well-mixed, platform-independent, and
  // constructible for any instance without deriving its predecessors.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(instance);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<std::pair<size_t, size_t>> PlanWaves(const std::vector<int>& populations,
                                                 int wave_users) {
  std::vector<std::pair<size_t, size_t>> waves;
  const size_t n = populations.size();
  if (n == 0) {
    return waves;
  }
  if (wave_users <= 0) {
    waves.emplace_back(0, n);
    return waves;
  }
  size_t begin = 0;
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t pop = std::max(populations[i], 1);
    if (i > begin && sum + pop > wave_users) {
      waves.emplace_back(begin, i);
      begin = i;
      sum = 0;
    }
    sum += pop;
  }
  waves.emplace_back(begin, n);
  return waves;
}

}  // namespace internal

namespace {

namespace fs = std::filesystem;

using internal::FleetInstanceSeed;
using internal::MakeShardPlans;
using internal::RunShard;
using internal::ShardPlan;
using internal::TraceDescription;

// One simulation the spill engine runs: a shard of some machine instance.
// The single-machine path has one unit per shard of the one profile; the
// fleet path concatenates every instance's shards in instance-major order
// (which is also the merge tie-break order).
struct SpillUnit {
  const MachineProfile* profile = nullptr;
  GeneratorOptions options;  // per-instance seed for fleets
  ShardPlan plan;
  size_t machine = 0;  // instance index within the fleet (0 for single runs)
};

// Runs every unit on a small worker pool.  Workers claim unit indices from an
// atomic counter, so which thread runs which unit is scheduling-dependent —
// but `consume(k, result)` receives the unit index, and callers write into
// per-unit slots (or files), so the overall output is not.  `consume` runs on
// the worker thread, concurrently for distinct units.
void RunUnitsOnPool(const std::vector<SpillUnit>& units, int threads,
                    const std::function<void(size_t, GenerationResult&&)>& consume) {
  const size_t unit_count = units.size();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, static_cast<int>(std::max<size_t>(unit_count, 1)));

  std::atomic<size_t> next_unit{0};
  const auto worker = [&]() {
    for (size_t k = next_unit.fetch_add(1, std::memory_order_relaxed); k < unit_count;
         k = next_unit.fetch_add(1, std::memory_order_relaxed)) {
      consume(k, RunShard(*units[k].profile, units[k].options, units[k].plan));
    }
  };
  if (threads == 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

// Rewrites one record's shard-local ids into globally unique interleaved
// ranges.  FileIds at or below the shared-image watermark name the shared
// system tree and agree in every replica of the SAME machine instance, so
// they pass through; ids above it map to watermark + (id - watermark - 1) * S
// + s + 1, and OpenIds (always shard-local, starting at 1) map to
// (id - 1) * S + s + 1.  Both maps are the identity when S == 1.
inline void RemapRecordIds(TraceRecord& r, FileId watermark, uint64_t shard,
                           uint64_t stride) {
  if (r.file_id > watermark) {
    r.file_id = watermark + (r.file_id - watermark - 1) * stride + shard + 1;
  }
  if (r.open_id != kInvalidOpenId) {
    r.open_id = (r.open_id - 1) * stride + shard + 1;
  }
}

// The full per-unit rewrite: the intra-instance interleave above, then —
// for multi-machine fleets — the cross-instance interleave (machines share
// no files, so EVERY id including the shared tree's is instance-local) and
// the instance's user-id base.  Close/seek records carry no user id (the
// opener's id is recovered from the open), so only user-bearing records are
// offset; daemon activity (user ids 0 and 1) moves with the base too.
struct UnitRemap {
  FileId watermark = 0;
  uint64_t shard = 0;
  uint64_t stride = 1;
  uint64_t machine = 0;
  uint64_t machines = 1;
  UserId user_base = 0;
};

inline void RemapUnitRecord(TraceRecord& r, const UnitRemap& u) {
  RemapRecordIds(r, u.watermark, u.shard, u.stride);
  if (u.machines > 1) {
    if (r.file_id != kInvalidFileId) {
      r.file_id = (r.file_id - 1) * u.machines + u.machine + 1;
    }
    if (r.open_id != kInvalidOpenId) {
      r.open_id = (r.open_id - 1) * u.machines + u.machine + 1;
    }
  }
  if (u.user_base != 0 && r.type != EventType::kClose && r.type != EventType::kSeek) {
    r.user_id += u.user_base;
  }
}

void RemapShardIds(std::vector<TraceRecord>& records, FileId watermark, int shard_index,
                   int shard_count) {
  const uint64_t s = static_cast<uint64_t>(shard_index);
  const uint64_t stride = static_cast<uint64_t>(shard_count);
  for (TraceRecord& r : records) {
    RemapRecordIds(r, watermark, s, stride);
  }
}

// K-way merge of per-shard record streams, each already sorted by time.
// Ties break by shard index, then by within-shard order — a stable merge, so
// the output is independent of thread scheduling.
std::vector<TraceRecord> MergeShardRecords(std::vector<GenerationResult>& shards) {
  size_t total = 0;
  for (const GenerationResult& shard : shards) {
    total += shard.trace.size();
  }
  std::vector<TraceRecord> merged;
  merged.reserve(total);

  struct Cursor {
    SimTime time;
    size_t shard;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    if (a.time != b.time) {
      return b.time < a.time;
    }
    return a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::vector<size_t> next(shards.size(), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].trace.empty()) {
      heap.push(Cursor{shards[s].trace.records()[0].time, s});
    }
  }
  while (!heap.empty()) {
    const size_t s = heap.top().shard;
    heap.pop();
    const std::vector<TraceRecord>& records = shards[s].trace.records();
    merged.push_back(records[next[s]]);
    if (++next[s] < records.size()) {
      heap.push(Cursor{shards[s].trace.records()[next[s]].time, s});
    }
  }
  return merged;
}

void FoldInto(GenerationResult& total, GenerationResult& shard, size_t shard_index) {
  KernelCounters& t = total.kernel_counters;
  const KernelCounters& k = shard.kernel_counters;
  t.opens += k.opens;
  t.creates += k.creates;
  t.closes += k.closes;
  t.seeks += k.seeks;
  t.reads += k.reads;
  t.writes += k.writes;
  t.unlinks += k.unlinks;
  t.truncates += k.truncates;
  t.execves += k.execves;
  t.errors += k.errors;
  t.bytes_read += k.bytes_read;
  t.bytes_written += k.bytes_written;

  // Statistics are summed over the replicas; note that each replica carries
  // its own copy of the shared system tree, so `files`/`live_bytes` count it
  // shard_count times (the merged trace's *activity* has no such double
  // counting — only ids at or below the watermark are shared).
  FsStatistics& fst = total.fs_stats;
  const FsStatistics& fss = shard.fs_stats;
  fst.files += fss.files;
  fst.directories += fss.directories;
  fst.live_bytes += fss.live_bytes;
  fst.allocated_bytes += fss.allocated_bytes;
  fst.free_bytes += fss.free_bytes;

  for (const std::string& error : shard.fsck.errors) {
    total.fsck.errors.push_back("shard " + std::to_string(shard_index) + ": " + error);
  }
  total.fsck.inodes_checked += shard.fsck.inodes_checked;
  total.fsck.reachable_inodes += shard.fsck.reachable_inodes;
  total.fsck.orphan_inodes += shard.fsck.orphan_inodes;

  total.tasks_executed += shard.tasks_executed;
}

void FinishFragmentation(GenerationResult& result) {
  const FsStatistics& fs_stats = result.fs_stats;
  result.fs_stats.internal_fragmentation =
      fs_stats.allocated_bytes > 0
          ? 1.0 - static_cast<double>(fs_stats.live_bytes) /
                      static_cast<double>(fs_stats.allocated_bytes)
          : 0.0;
}

// The streamed trace's header: the serial description for one shard (so the
// shards=1 contract against GenerateTrace holds byte-for-byte), the sharded
// suffix otherwise — matching GenerateTraceSharded exactly.
TraceHeader MergedHeader(const MachineProfile& profile, const GeneratorOptions& options,
                         int shard_count) {
  TraceHeader header{.machine = profile.machine,
                     .description = TraceDescription(profile, options)};
  if (shard_count > 1) {
    header.description += ", " + std::to_string(shard_count) + " shards";
  }
  return header;
}

// Owns the private spill-file subdirectory; removes it (and anything left
// inside) on destruction, so early error returns never leak spill files.
class ScopedSpillDir {
 public:
  ScopedSpillDir() = default;
  ~ScopedSpillDir() { Remove(); }

  ScopedSpillDir(ScopedSpillDir&& o) noexcept : dir_(std::move(o.dir_)) { o.dir_.clear(); }
  ScopedSpillDir& operator=(ScopedSpillDir&& o) noexcept {
    if (this != &o) {
      Remove();
      dir_ = std::move(o.dir_);
      o.dir_.clear();
    }
    return *this;
  }

  Status Create(const std::string& base) {
    std::error_code ec;
    fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
    if (ec) {
      return Status::Error("spill: no temp directory: " + ec.message());
    }
    static std::atomic<uint64_t> counter{0};
    const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    fs::path dir = root / ("bsdtrace-spill-" + std::to_string(n) + "-" +
                           std::to_string(reinterpret_cast<uintptr_t>(this)));
    if (!fs::create_directories(dir, ec) || ec) {
      return Status::Error("spill: cannot create " + dir.string() +
                           (ec ? ": " + ec.message() : " (already exists)"));
    }
    dir_ = dir.string();
    return Status::Ok();
  }

  std::string UnitPath(size_t unit) const {
    return dir_ + "/shard-" + std::to_string(unit) + ".trc";
  }

 private:
  void Remove() {
    if (!dir_.empty()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);  // best effort; temp dirs age out regardless
    }
  }
  std::string dir_;
};

// Phase-1 output: per-unit spill files plus the folded non-trace stats.
struct SpilledUnits {
  ScopedSpillDir dir;
  std::vector<uint64_t> unit_records;
  std::vector<UnitRemap> remaps;  // filled in once watermarks are known
  uint64_t total_records = 0;
  uint64_t spill_bytes = 0;
  GenerationResult stats;  // trace empty; counters/fsck/watermark folded
  TraceHeader header;
};

// Phase 1 of the streaming engine: simulate all units on the pool, spilling
// each unit's sorted records to its own file from inside the worker and
// freeing them immediately — peak record memory is bounded by the `threads`
// largest units, not the whole trace.  `remaps` carries every unit's rewrite
// parameters except the watermark, which is only known after simulation and
// is filled in here (with an every-replica-agrees consistency check per
// machine instance).
StatusOr<SpilledUnits> SpillAllUnits(const std::vector<SpillUnit>& units,
                                     std::vector<UnitRemap> remaps, TraceHeader header,
                                     int threads, const std::string& spill_dir) {
  assert(units.size() == remaps.size());
  SpilledUnits spilled;
  spilled.header = std::move(header);
  if (Status st = spilled.dir.Create(spill_dir); !st.ok()) {
    return st;
  }

  const size_t n = units.size();
  std::vector<GenerationResult> slim(n);          // per-unit stats, records freed
  std::vector<Status> unit_status(n, Status::Ok());
  std::vector<uint64_t> unit_bytes(n, 0);
  spilled.unit_records.assign(n, 0);

  RunUnitsOnPool(units, threads, [&](size_t k, GenerationResult&& result) {
    TraceFileWriter writer(spilled.dir.UnitPath(k), result.trace.header(),
                           static_cast<int64_t>(result.trace.size()));
    for (const TraceRecord& r : result.trace.records()) {
      writer.Append(r);
    }
    unit_status[k] = writer.Finish();
    unit_bytes[k] = writer.bytes_written();
    spilled.unit_records[k] = writer.records_written();
    result.trace = Trace(result.trace.header());  // free the records now
    slim[k] = std::move(result);
  });

  for (size_t k = 0; k < n; ++k) {
    if (!unit_status[k].ok()) {
      return Status::Error("spill shard " + std::to_string(k) + ": " +
                           unit_status[k].message());
    }
  }

  // Every replica of one machine instance builds the shared tree from the
  // same (profile, seed), so its units' watermarks must agree; disagreement
  // is a simulator bug, not an I/O condition, but the streaming path
  // diagnoses rather than asserts.  Different instances legitimately differ.
  for (size_t k = 0; k < n; ++k) {
    remaps[k].watermark = slim[k].shared_image_watermark;
    for (size_t j = 0; j < k; ++j) {
      if (units[j].machine == units[k].machine &&
          slim[j].shared_image_watermark != slim[k].shared_image_watermark) {
        return Status::Error("spill: shard watermarks disagree (simulator bug)");
      }
    }
  }
  spilled.remaps = std::move(remaps);
  // A single machine's watermark is meaningful fleet-wide only when there is
  // a single machine.
  const bool one_machine =
      std::all_of(units.begin(), units.end(),
                  [](const SpillUnit& u) { return u.machine == 0; });
  spilled.stats.shared_image_watermark = one_machine ? slim[0].shared_image_watermark : 0;
  for (size_t k = 0; k < n; ++k) {
    FoldInto(spilled.stats, slim[k], k);
    spilled.total_records += spilled.unit_records[k];
    spilled.spill_bytes += unit_bytes[k];
  }
  FinishFragmentation(spilled.stats);
  return spilled;
}

// Builds the single-machine unit list: one unit per shard of `profile`.
std::vector<SpillUnit> SingleMachineUnits(const MachineProfile& profile,
                                          const GeneratorOptions& options, int shard_count,
                                          std::vector<UnitRemap>* remaps) {
  const std::vector<ShardPlan> plans = MakeShardPlans(profile, shard_count);
  std::vector<SpillUnit> units(plans.size());
  remaps->assign(plans.size(), UnitRemap{});
  for (size_t s = 0; s < plans.size(); ++s) {
    units[s].profile = &profile;
    units[s].options = options;
    units[s].plan = plans[s];
    units[s].machine = 0;
    (*remaps)[s] = UnitRemap{.watermark = 0,  // filled in after simulation
                             .shard = s,
                             .stride = static_cast<uint64_t>(shard_count),
                             .machine = 0,
                             .machines = 1,
                             .user_base = 0};
  }
  return units;
}

// Phase 2: loser-tree merge over the spill-file cursors, remapping ids
// record-by-record as they are pulled.  One record per unit in memory.
StatusOr<ShardedStreamStats> MergeSpills(SpilledUnits& spilled, TraceSink& sink) {
  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.reserve(spilled.unit_records.size());
  for (size_t k = 0; k < spilled.unit_records.size(); ++k) {
    inputs.push_back(std::make_unique<TraceFileSource>(spilled.dir.UnitPath(k)));
  }
  const std::vector<UnitRemap>& remaps = spilled.remaps;
  MergingTraceSource merge(std::move(inputs), spilled.header,
                           [&remaps](size_t unit, TraceRecord& r) {
                             RemapUnitRecord(r, remaps[unit]);
                           });

  uint64_t streamed = 0;
  TraceRecord r;
  while (merge.Next(&r)) {
    sink.Append(r);
    ++streamed;
  }
  if (!merge.status().ok()) {
    return merge.status();
  }
  if (streamed != spilled.total_records) {
    return Status::Error("spill merge produced " + std::to_string(streamed) + " of " +
                         std::to_string(spilled.total_records) + " expected records");
  }

  ShardedStreamStats stats;
  stats.header = spilled.header;
  stats.kernel_counters = spilled.stats.kernel_counters;
  stats.fs_stats = spilled.stats.fs_stats;
  stats.fsck = std::move(spilled.stats.fsck);
  stats.tasks_executed = spilled.stats.tasks_executed;
  stats.shared_image_watermark = spilled.stats.shared_image_watermark;
  stats.records_streamed = streamed;
  stats.spill_bytes_written = spilled.spill_bytes;
  return stats;
}

StatusOr<SpilledUnits> SpillShards(const MachineProfile& raw_profile,
                                   const ShardedGeneratorOptions& options) {
  const MachineProfile profile = ApplyPopulationScale(raw_profile);
  const int population = std::max(profile.user_population, 1);
  const int shard_count = std::clamp(options.shard_count, 1, population);
  std::vector<UnitRemap> remaps;
  const std::vector<SpillUnit> units =
      SingleMachineUnits(profile, options.base, shard_count, &remaps);
  return SpillAllUnits(units, std::move(remaps),
                       MergedHeader(profile, options.base, shard_count), options.threads,
                       options.spill_dir);
}

// Fleet phase 0: resolve scaling, build every instance's shard units in
// instance-major order (the merge tie-break order), derive per-instance
// seeds, and stamp the fleet tag into the header.
struct FleetPlan {
  std::vector<MachineProfile> machines;  // resolved (scale applied)
  std::vector<SpillUnit> units;
  std::vector<UnitRemap> remaps;
  TraceHeader header;
};

StatusOr<FleetPlan> PlanFleet(const FleetProfile& fleet, const FleetGeneratorOptions& options) {
  if (fleet.machines.empty()) {
    return Status::Error("fleet: no machine instances");
  }
  FleetPlan fp;
  // units keep pointers into fp.machines; the reserve below plus vector move
  // semantics (heap storage travels with the vector) keep them valid through
  // the StatusOr return.
  fp.machines.reserve(fleet.machines.size());
  for (const MachineProfile& machine : fleet.machines) {
    fp.machines.push_back(ApplyPopulationScale(machine));
  }

  const std::vector<FleetInstanceTag> tags = FleetLayout(fleet);
  const uint64_t machines = static_cast<uint64_t>(fp.machines.size());
  for (size_t i = 0; i < fp.machines.size(); ++i) {
    const MachineProfile& machine = fp.machines[i];
    const int population = std::max(machine.user_population, 1);
    const int shard_count = std::clamp(options.shards_per_machine, 1, population);
    GeneratorOptions instance_options = options.base;
    instance_options.seed = FleetInstanceSeed(options.base.seed, i);
    for (ShardPlan& shard : MakeShardPlans(machine, shard_count)) {
      SpillUnit unit;
      unit.profile = &fp.machines[i];
      unit.options = instance_options;
      unit.plan = std::move(shard);
      unit.machine = i;
      fp.remaps.push_back(UnitRemap{.watermark = 0,  // filled in after simulation
                                    .shard = static_cast<uint64_t>(unit.plan.shard_index),
                                    .stride = static_cast<uint64_t>(shard_count),
                                    .machine = i,
                                    .machines = machines,
                                    .user_base = tags[i].user_base});
      fp.units.push_back(std::move(unit));
    }
  }

  fp.header = FleetTraceHeader(fleet, options);
  return fp;
}

}  // namespace

TraceHeader FleetTraceHeader(const FleetProfile& fleet, const FleetGeneratorOptions& options) {
  TraceHeader header;
  header.machine = "fleet:" + fleet.spec;
  header.description = "synthetic fleet " + fleet.spec + " trace, " +
                       options.base.duration.ToString() + ", seed " +
                       std::to_string(options.base.seed) + ", " +
                       std::to_string(options.shards_per_machine) + " shards/machine";
  header.description = AppendFleetTag(std::move(header.description), FleetLayout(fleet));
  return header;
}

GenerationResult GenerateTraceSharded(const MachineProfile& raw_profile,
                                      const ShardedGeneratorOptions& options) {
  const MachineProfile profile = ApplyPopulationScale(raw_profile);
  const int population = std::max(profile.user_population, 1);
  const int shard_count = std::clamp(options.shard_count, 1, population);
  if (shard_count == 1) {
    // The serial reference path, bit-identical to GenerateTrace().
    return GenerateTrace(profile, options.base);
  }

  const std::vector<ShardPlan> plans = MakeShardPlans(profile, shard_count);
  std::vector<SpillUnit> units(plans.size());
  for (size_t s = 0; s < plans.size(); ++s) {
    units[s].profile = &profile;
    units[s].options = options.base;
    units[s].plan = plans[s];
  }
  std::vector<GenerationResult> shards(static_cast<size_t>(shard_count));
  RunUnitsOnPool(units, options.threads, [&shards](size_t s, GenerationResult&& result) {
    shards[s] = std::move(result);
  });

  // Every replica builds the shared tree from the same (profile, seed), so
  // the watermarks must agree.
  const FileId watermark = shards[0].shared_image_watermark;
  for (const GenerationResult& shard : shards) {
    assert(shard.shared_image_watermark == watermark);
    (void)shard;
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    RemapShardIds(shards[s].trace.records(), watermark, static_cast<int>(s), shard_count);
  }

  GenerationResult result;
  result.shared_image_watermark = watermark;
  Trace merged(MergedHeader(profile, options.base, shard_count));
  merged.records() = MergeShardRecords(shards);
  result.trace = std::move(merged);
  for (size_t s = 0; s < shards.size(); ++s) {
    FoldInto(result, shards[s], s);
  }
  FinishFragmentation(result);
  return result;
}

StatusOr<ShardedStreamStats> GenerateTraceShardedTo(const MachineProfile& profile,
                                                    const ShardedGeneratorOptions& options,
                                                    TraceSink& sink) {
  StatusOr<SpilledUnits> spilled = SpillShards(profile, options);
  if (!spilled.ok()) {
    return spilled.status();
  }
  return MergeSpills(spilled.value(), sink);
}

namespace {

// Shared tail of the ToFile variants: stream the merged spills into a trace
// file with the exact record count stamped in the header.  The default
// options write format v3 — checksummed blocks plus the footer index — so
// the result is directly consumable by the parallel Analyze engine; the bytes match
// SaveTrace of the in-memory path's trace with the same options.  (The
// per-unit spill files stay v2: they are private intermediates, merged and
// deleted before anyone seeks into them.)
StatusOr<ShardedStreamStats> MergeSpillsToFile(SpilledUnits& spilled, const std::string& path,
                                               const TraceWriterOptions& file_options) {
  TraceFileWriter writer(path, spilled.header,
                         static_cast<int64_t>(spilled.total_records), file_options);
  if (!writer.status().ok()) {
    return writer.status();
  }
  StatusOr<ShardedStreamStats> stats = MergeSpills(spilled, writer);
  const Status finish = writer.Finish();
  if (!stats.ok()) {
    return stats.status();
  }
  if (!finish.ok()) {
    return finish;
  }
  return stats;
}

// Fold one wave's generation stats into the running fleet totals.
void FoldWaveStats(ShardedStreamStats& total, GenerationResult& folded,
                   const SpilledUnits& wave, size_t wave_index) {
  GenerationResult wave_stats = wave.stats;
  FoldInto(folded, wave_stats, wave_index);
  total.spill_bytes_written += wave.spill_bytes;
}

// Fleet-of-fleets wave engine: each wave spills and merges its contiguous
// instance range — with the GLOBAL remap parameters, so wave output is
// exactly the corresponding slice of the single-wave stream — into a
// compressed v4 wave shard file; the shards then k-way merge into the final
// sink/file.  The wave shard merge needs no rewrite (ids are already
// global), and its (time, wave index) tie-break equals the single-wave
// (time, instance-major unit index) tie-break because waves are contiguous
// instance ranges.  Per-unit spill files are deleted after each wave, so
// peak disk is one wave's raw spills plus the compressed shards.
StatusOr<ShardedStreamStats> RunFleetWaves(FleetPlan& fp,
                                           const std::vector<std::pair<size_t, size_t>>& waves,
                                           const FleetGeneratorOptions& options, TraceSink* sink,
                                           const std::string* path) {
  ScopedSpillDir wave_dir;
  if (Status st = wave_dir.Create(options.spill_dir); !st.ok()) {
    return st;
  }

  ShardedStreamStats total;
  total.header = fp.header;
  total.waves = waves.size();
  GenerationResult folded;
  uint64_t total_records = 0;
  const TraceWriterOptions wave_options{.version = 4};

  for (size_t w = 0; w < waves.size(); ++w) {
    const auto [first, last] = waves[w];
    std::vector<SpillUnit> wave_units;
    std::vector<UnitRemap> wave_remaps;
    for (size_t k = 0; k < fp.units.size(); ++k) {
      if (fp.units[k].machine >= first && fp.units[k].machine < last) {
        wave_units.push_back(fp.units[k]);
        wave_remaps.push_back(fp.remaps[k]);
      }
    }
    StatusOr<SpilledUnits> spilled = SpillAllUnits(wave_units, std::move(wave_remaps),
                                                   fp.header, options.threads,
                                                   options.spill_dir);
    if (!spilled.ok()) {
      return spilled.status();
    }
    TraceFileWriter writer(wave_dir.UnitPath(w), fp.header,
                           static_cast<int64_t>(spilled.value().total_records), wave_options);
    if (!writer.status().ok()) {
      return writer.status();
    }
    StatusOr<ShardedStreamStats> merged = MergeSpills(spilled.value(), writer);
    const Status finish = writer.Finish();
    if (!merged.ok()) {
      return merged.status();
    }
    if (!finish.ok()) {
      return finish;
    }
    FoldWaveStats(total, folded, spilled.value(), w);
    total.wave_bytes_written += writer.bytes_written();
    total_records += spilled.value().total_records;
    // spilled's ScopedSpillDir dies here: the wave's raw spill files go away
    // before the next wave simulates.
  }

  FinishFragmentation(folded);
  total.kernel_counters = folded.kernel_counters;
  total.fs_stats = folded.fs_stats;
  total.fsck = std::move(folded.fsck);
  total.tasks_executed = folded.tasks_executed;
  total.shared_image_watermark = 0;  // multi-wave implies multiple machines

  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.reserve(waves.size());
  for (size_t w = 0; w < waves.size(); ++w) {
    inputs.push_back(std::make_unique<TraceFileSource>(wave_dir.UnitPath(w)));
  }
  MergingTraceSource merge(std::move(inputs), fp.header);

  uint64_t streamed = 0;
  Status write_status = Status::Ok();
  if (path != nullptr) {
    TraceFileWriter writer(*path, fp.header, static_cast<int64_t>(total_records),
                           options.file_options);
    if (!writer.status().ok()) {
      return writer.status();
    }
    TraceRecord r;
    while (merge.Next(&r)) {
      writer.Append(r);
      ++streamed;
    }
    write_status = writer.Finish();
  } else {
    TraceRecord r;
    while (merge.Next(&r)) {
      sink->Append(r);
      ++streamed;
    }
  }
  if (!merge.status().ok()) {
    return merge.status();
  }
  if (!write_status.ok()) {
    return write_status;
  }
  if (streamed != total_records) {
    return Status::Error("wave merge produced " + std::to_string(streamed) + " of " +
                         std::to_string(total_records) + " expected records");
  }
  total.records_streamed = streamed;
  return total;
}

// Common fleet driver: plan once, pick single-wave (the historical path,
// byte-for-byte) or the wave engine.
StatusOr<ShardedStreamStats> GenerateFleetCommon(const FleetProfile& fleet,
                                                 const FleetGeneratorOptions& options,
                                                 TraceSink* sink, const std::string* path) {
  StatusOr<FleetPlan> plan = PlanFleet(fleet, options);
  if (!plan.ok()) {
    return plan.status();
  }
  FleetPlan& fp = plan.value();
  std::vector<int> populations;
  populations.reserve(fp.machines.size());
  for (const MachineProfile& machine : fp.machines) {
    populations.push_back(machine.user_population);
  }
  const std::vector<std::pair<size_t, size_t>> waves =
      internal::PlanWaves(populations, options.wave_users);
  if (waves.size() > 1) {
    return RunFleetWaves(fp, waves, options, sink, path);
  }
  StatusOr<SpilledUnits> spilled =
      SpillAllUnits(fp.units, std::move(fp.remaps), std::move(fp.header), options.threads,
                    options.spill_dir);
  if (!spilled.ok()) {
    return spilled.status();
  }
  return path != nullptr ? MergeSpillsToFile(spilled.value(), *path, options.file_options)
                         : MergeSpills(spilled.value(), *sink);
}

}  // namespace

StatusOr<ShardedStreamStats> GenerateTraceShardedToFile(const MachineProfile& profile,
                                                        const ShardedGeneratorOptions& options,
                                                        const std::string& path) {
  StatusOr<SpilledUnits> spilled = SpillShards(profile, options);
  if (!spilled.ok()) {
    return spilled.status();
  }
  return MergeSpillsToFile(spilled.value(), path, options.file_options);
}

StatusOr<ShardedStreamStats> GenerateFleetTo(const FleetProfile& fleet,
                                             const FleetGeneratorOptions& options,
                                             TraceSink& sink) {
  return GenerateFleetCommon(fleet, options, &sink, nullptr);
}

StatusOr<ShardedStreamStats> GenerateFleetToFile(const FleetProfile& fleet,
                                                 const FleetGeneratorOptions& options,
                                                 const std::string& path) {
  return GenerateFleetCommon(fleet, options, nullptr, &path);
}

StatusOr<FleetGenerationResult> GenerateFleetTrace(const FleetProfile& fleet,
                                                   const FleetGeneratorOptions& options) {
  FleetGenerationResult result;
  StatusOr<ShardedStreamStats> stats = GenerateFleetCommon(fleet, options, &result.trace, nullptr);
  if (!stats.ok()) {
    return stats.status();
  }
  result.stats = std::move(stats).value();
  result.trace.header() = result.stats.header;
  return result;
}

}  // namespace bsdtrace
