#include "src/workload/sharded_generator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace bsdtrace {
namespace {

using internal::RunShard;
using internal::ShardPlan;

// Round-robin partition: shard s owns users {u : u % S == s} and daemon
// hosts {h : h % S == s}.  Machine-wide background activity (cron/syslog)
// runs on shard 0 only; mail runs on every shard against its own users with
// the inter-arrival mean stretched so the per-user delivery rate matches the
// serial path.
std::vector<ShardPlan> MakePlans(const MachineProfile& profile, int shard_count) {
  std::vector<ShardPlan> plans(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    ShardPlan& plan = plans[static_cast<size_t>(s)];
    plan.shard_index = s;
    plan.shard_count = shard_count;
    for (int u = s; u < profile.user_population; u += shard_count) {
      plan.users.push_back(u);
    }
    // Keep ascending order: the stride loop above yields s, s+S, s+2S, ...
    std::sort(plan.users.begin(), plan.users.end());
    for (int h = s; h < profile.daemon_host_count; h += shard_count) {
      plan.daemon_hosts.push_back(h);
    }
    std::sort(plan.daemon_hosts.begin(), plan.daemon_hosts.end());
    plan.run_system_tick = (s == 0);
    plan.run_mail = !plan.users.empty();
    plan.mail_scale = plan.users.empty()
                          ? 1.0
                          : static_cast<double>(profile.user_population) /
                                static_cast<double>(plan.users.size());
  }
  return plans;
}

// Rewrites shard-local ids into globally unique interleaved ranges.  FileIds
// at or below the shared-image watermark name the shared system tree and
// agree across replicas, so they pass through; ids above it map to
// watermark + (id - watermark - 1) * S + s + 1, and OpenIds (always
// shard-local, starting at 1) map to (id - 1) * S + s + 1.  Both maps are
// the identity when S == 1.
void RemapShardIds(std::vector<TraceRecord>& records, FileId watermark, int shard_index,
                   int shard_count) {
  const uint64_t s = static_cast<uint64_t>(shard_index);
  const uint64_t stride = static_cast<uint64_t>(shard_count);
  for (TraceRecord& r : records) {
    if (r.file_id > watermark) {
      r.file_id = watermark + (r.file_id - watermark - 1) * stride + s + 1;
    }
    if (r.open_id != kInvalidOpenId) {
      r.open_id = (r.open_id - 1) * stride + s + 1;
    }
  }
}

// K-way merge of per-shard record streams, each already sorted by time.
// Ties break by shard index, then by within-shard order — a stable merge, so
// the output is independent of thread scheduling.
std::vector<TraceRecord> MergeShardRecords(std::vector<GenerationResult>& shards) {
  size_t total = 0;
  for (const GenerationResult& shard : shards) {
    total += shard.trace.size();
  }
  std::vector<TraceRecord> merged;
  merged.reserve(total);

  struct Cursor {
    SimTime time;
    size_t shard;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    if (a.time != b.time) {
      return b.time < a.time;
    }
    return a.shard > b.shard;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::vector<size_t> next(shards.size(), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].trace.empty()) {
      heap.push(Cursor{shards[s].trace.records()[0].time, s});
    }
  }
  while (!heap.empty()) {
    const size_t s = heap.top().shard;
    heap.pop();
    const std::vector<TraceRecord>& records = shards[s].trace.records();
    merged.push_back(records[next[s]]);
    if (++next[s] < records.size()) {
      heap.push(Cursor{records[next[s]].time, s});
    }
  }
  return merged;
}

void FoldInto(GenerationResult& total, GenerationResult& shard, size_t shard_index) {
  KernelCounters& t = total.kernel_counters;
  const KernelCounters& k = shard.kernel_counters;
  t.opens += k.opens;
  t.creates += k.creates;
  t.closes += k.closes;
  t.seeks += k.seeks;
  t.reads += k.reads;
  t.writes += k.writes;
  t.unlinks += k.unlinks;
  t.truncates += k.truncates;
  t.execves += k.execves;
  t.errors += k.errors;
  t.bytes_read += k.bytes_read;
  t.bytes_written += k.bytes_written;

  // Statistics are summed over the replicas; note that each replica carries
  // its own copy of the shared system tree, so `files`/`live_bytes` count it
  // shard_count times (the merged trace's *activity* has no such double
  // counting — only ids at or below the watermark are shared).
  FsStatistics& fst = total.fs_stats;
  const FsStatistics& fss = shard.fs_stats;
  fst.files += fss.files;
  fst.directories += fss.directories;
  fst.live_bytes += fss.live_bytes;
  fst.allocated_bytes += fss.allocated_bytes;
  fst.free_bytes += fss.free_bytes;

  for (const std::string& error : shard.fsck.errors) {
    total.fsck.errors.push_back("shard " + std::to_string(shard_index) + ": " + error);
  }
  total.fsck.inodes_checked += shard.fsck.inodes_checked;
  total.fsck.reachable_inodes += shard.fsck.reachable_inodes;
  total.fsck.orphan_inodes += shard.fsck.orphan_inodes;

  total.tasks_executed += shard.tasks_executed;
}

}  // namespace

GenerationResult GenerateTraceSharded(const MachineProfile& profile,
                                      const ShardedGeneratorOptions& options) {
  const int population = std::max(profile.user_population, 1);
  const int shard_count = std::clamp(options.shard_count, 1, population);
  if (shard_count == 1) {
    // The serial reference path, bit-identical to GenerateTrace().
    return GenerateTrace(profile, options.base);
  }

  const std::vector<ShardPlan> plans = MakePlans(profile, shard_count);

  // Run the shards.  Workers claim shard indices from an atomic counter and
  // write into indexed slots, so the results — and therefore the merge — are
  // independent of thread scheduling.
  std::vector<GenerationResult> shards(static_cast<size_t>(shard_count));
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, shard_count);

  std::atomic<int> next_shard{0};
  const auto worker = [&]() {
    for (int s = next_shard.fetch_add(1, std::memory_order_relaxed); s < shard_count;
         s = next_shard.fetch_add(1, std::memory_order_relaxed)) {
      shards[static_cast<size_t>(s)] =
          RunShard(profile, options.base, plans[static_cast<size_t>(s)]);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Every replica builds the shared tree from the same (profile, seed), so
  // the watermarks must agree.
  const FileId watermark = shards[0].shared_image_watermark;
  for (const GenerationResult& shard : shards) {
    assert(shard.shared_image_watermark == watermark);
    (void)shard;
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    RemapShardIds(shards[s].trace.records(), watermark, static_cast<int>(s), shard_count);
  }

  GenerationResult result;
  result.shared_image_watermark = watermark;
  Trace merged(TraceHeader{
      .machine = profile.machine,
      .description = "synthetic " + profile.trace_name + " trace, " +
                     options.base.duration.ToString() + ", seed " +
                     std::to_string(options.base.seed) + ", " +
                     std::to_string(shard_count) + " shards"});
  merged.records() = MergeShardRecords(shards);
  result.trace = std::move(merged);
  for (size_t s = 0; s < shards.size(); ++s) {
    FoldInto(result, shards[s], s);
  }
  const FsStatistics& fs = result.fs_stats;
  result.fs_stats.internal_fragmentation =
      fs.allocated_bytes > 0 ? 1.0 - static_cast<double>(fs.live_bytes) /
                                         static_cast<double>(fs.allocated_bytes)
                             : 0.0;
  return result;
}

}  // namespace bsdtrace
