// Top-level synthetic trace generation.
//
// Wires together the substrates: builds a file-system image, runs a
// population of simulated users (plus the network status daemon) against the
// traced kernel under a discrete-event scheduler, and returns the merged,
// time-sorted trace.

#ifndef BSDTRACE_SRC_WORKLOAD_GENERATOR_H_
#define BSDTRACE_SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "src/fs/file_system.h"
#include "src/fs/fsck.h"
#include "src/kernel/traced_kernel.h"
#include "src/trace/trace.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct GeneratorOptions {
  // Simulated trace length.  The paper's traces cover 2-3 busy days; the
  // simulation clock starts at 08:00 on day one so a multi-day run spans
  // full diurnal cycles.
  Duration duration = Duration::Hours(24);
  uint64_t seed = 19850101;
  // Disk geometry for the simulated machine.
  FsOptions fs_options = FsOptions{.block_size = 4096, .frag_size = 1024,
                                   .total_blocks = 524288};  // 2 GB
};

struct GenerationResult {
  Trace trace;
  KernelCounters kernel_counters;
  FsStatistics fs_stats;
  // Consistency check of the substrate file system after generation; a
  // non-clean report indicates a simulator bug.
  FsckReport fsck;
  uint64_t tasks_executed = 0;
};

// Generates a trace for the given machine profile.  Deterministic for a
// given (profile, options) pair.
GenerationResult GenerateTrace(const MachineProfile& profile,
                               const GeneratorOptions& options = GeneratorOptions());

// Convenience: the trace alone.
Trace GenerateTraceOnly(const MachineProfile& profile,
                        const GeneratorOptions& options = GeneratorOptions());

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_GENERATOR_H_
