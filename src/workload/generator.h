// Top-level synthetic trace generation.
//
// Wires together the substrates: builds a file-system image, runs a
// population of simulated users (plus the network status daemon) against the
// traced kernel under a discrete-event scheduler, and returns the merged,
// time-sorted trace.

#ifndef BSDTRACE_SRC_WORKLOAD_GENERATOR_H_
#define BSDTRACE_SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/fs/fsck.h"
#include "src/kernel/traced_kernel.h"
#include "src/trace/trace.h"
#include "src/trace/types.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct GeneratorOptions {
  // Simulated trace length.  The paper's traces cover 2-3 busy days; the
  // simulation clock starts at 08:00 on day one so a multi-day run spans
  // full diurnal cycles.
  Duration duration = Duration::Hours(24);
  uint64_t seed = 19850101;
  // Disk geometry for the simulated machine.
  FsOptions fs_options = FsOptions{.block_size = 4096, .frag_size = 1024,
                                   .total_blocks = 524288};  // 2 GB
};

struct GenerationResult {
  Trace trace;
  KernelCounters kernel_counters;
  FsStatistics fs_stats;
  // Consistency check of the substrate file system after generation; a
  // non-clean report indicates a simulator bug.  For sharded runs the
  // reports of all shard images are folded together.
  FsckReport fsck;
  uint64_t tasks_executed = 0;
  // File-id watermark of the image's shared system tree (see
  // SystemImage::shared_tree_watermark); the sharded merge remaps ids above
  // it into disjoint per-shard ranges.
  FileId shared_image_watermark = 0;
};

// Generates a trace for the given machine profile.  Deterministic for a
// given (profile, options) pair.  This is the serial reference path: the
// sharded engine (sharded_generator.h) must produce bit-identical output at
// shards = 1.
GenerationResult GenerateTrace(const MachineProfile& profile,
                               const GeneratorOptions& options = GeneratorOptions());

// Convenience: the trace alone.
Trace GenerateTraceOnly(const MachineProfile& profile,
                        const GeneratorOptions& options = GeneratorOptions());

namespace internal {

// The serial trace header description for a (profile, options) pair; the
// sharded paths append their shard count to it.  One definition, so the
// in-memory and spill-to-disk engines cannot drift apart on header bytes.
std::string TraceDescription(const MachineProfile& profile, const GeneratorOptions& options);

// One shard's slice of the simulated population.  GenerateTrace runs the
// full plan; GenerateTraceSharded runs one plan per shard and merges.
struct ShardPlan {
  int shard_index = 0;
  int shard_count = 1;
  // Owned user indices, ascending.  Only these users log in, and only their
  // home directories are materialized in the shard's file-system replica.
  std::vector<int> users;
  // Owned network-daemon host indices, ascending.
  std::vector<int> daemon_hosts;
  // Machine-wide background activity runs on exactly one shard.
  bool run_system_tick = true;
  // Incoming mail: each shard delivers to its own users only, with the
  // inter-arrival mean scaled by population/owned so the per-user rate
  // matches the serial path.
  bool run_mail = true;
  double mail_scale = 1.0;
};

// The plan that reproduces the serial path: everything on one shard.
ShardPlan FullPlan(const MachineProfile& profile);

// Runs one shard's simulation against a private file-system replica.
// Record ids are shard-local (see ShardPlan / sharded_generator.cc).
GenerationResult RunShard(const MachineProfile& profile, const GeneratorOptions& options,
                          const ShardPlan& plan);

}  // namespace internal

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_GENERATOR_H_
