// Application workload models.
//
// Each task reproduces one of the usage patterns the paper names as the
// cause of a measured distribution feature:
//
//   * RunCompileTask — the edit/compile/link cycle: compiler temporaries are
//     "deleted as soon as [they have] been translated" (short lifetimes,
//     Fig. 4), sources are small whole-file reads (Figs. 1-2), the linker
//     repositions within libraries (seeks).
//   * RunEditTask — editor sessions keep a temporary file open for the whole
//     session (the long tail of open durations, Fig. 3).
//   * RunMailTask — appending "new messages onto existing mailbox files" is
//     the paper's canonical single-reposition sequential access (Table V).
//   * RunShellTask — bursts of small program executions reading small files
//     and directories whole (the short-file mass of Fig. 2a) and peeking
//     first blocks (the 1 KB / 4 KB jumps of Fig. 1a).
//   * RunFormatTask — document formatting with print-spool files that are
//     printed and deleted (short lifetimes by bytes).
//   * RunAdminTask — the ~1 MB administrative files "accessed by positioning
//     within the file and then reading or writing a small amount of data"
//     (the file-size tail of Fig. 2, a large share of seeks).
//   * RunCadTask — circuit simulation: big decks read whole, big listing
//     files written, examined, and deleted before the next run (C4's larger
//     transfers and extra repositioning).
//   * RunLoginActivity — dotfiles/motd reads and the wtmp login log append.
//   * RunDaemonTick — the 4.2 BSD network status daemon rewriting ~20 host
//     files every three minutes (the 180-second lifetime spike, Fig. 4).

#ifndef BSDTRACE_SRC_WORKLOAD_APPS_H_
#define BSDTRACE_SRC_WORKLOAD_APPS_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/workload/context.h"
#include "src/workload/system_image.h"

namespace bsdtrace {

// Mutable per-user state threaded through tasks.
struct UserState {
  UserId id = 0;
  std::string home;
  std::string mailbox;
  Rng rng{0};

  std::vector<std::string> sources;  // .c files in the home directory
  std::vector<std::string> docs;
  std::vector<std::string> decks;    // CAD input decks
  int tmp_seq = 0;                   // unique temp-file suffix counter

  // Picks a random element; the vector must be non-empty.
  const std::string& Pick(const std::vector<std::string>& v);
  // Fresh unique temp path under /tmp.
  std::string TempPath();
};

void RunCompileTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunEditTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunMailTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunShellTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunFormatTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunAdminTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunCadTask(WorkloadContext& ctx, UserState& user, const SystemImage& image);
void RunLoginActivity(WorkloadContext& ctx, UserState& user, const SystemImage& image);

// One rewrite of one host status file.  `host` indexes the daemon's files.
void RunDaemonTick(WorkloadContext& ctx, const SystemImage& image, int host);

// Background system activity (cron, syslog, getty, ...): runs around the
// clock and supplies the steady drizzle of small accesses real machines
// show even at night.
void RunSystemTick(WorkloadContext& ctx, const SystemImage& image);

// Incoming mail delivery (sendmail): lock, append to a mailbox, unlock.
void DeliverMail(WorkloadContext& ctx, const SystemImage& image, size_t recipient);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_APPS_H_
