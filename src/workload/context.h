// Per-task workload context: traced-syscall helpers with realistic timing.
//
// Every helper advances the task-local clock (open latency, transfer time at
// a configurable processing rate, close latency) and drives the traced
// kernel, so the emitted records carry plausible VAX-era timings.  Helpers
// tolerate kernel errors — workload models race with each other exactly like
// real programs did (a file may vanish between tasks) — and simply return
// failure, which the models treat as "nothing to do".

#ifndef BSDTRACE_SRC_WORKLOAD_CONTEXT_H_
#define BSDTRACE_SRC_WORKLOAD_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/kernel/traced_kernel.h"
#include "src/util/rng.h"
#include "src/workload/profile.h"
#include "src/workload/scheduler.h"

namespace bsdtrace {

class WorkloadContext {
 public:
  // All pointers must outlive the context.  `start` is the task start time.
  // `scheduler` may be null, in which case Defer() runs its work inline.
  WorkloadContext(TracedKernel* kernel, const MachineProfile* profile, Rng* rng, SimTime start,
                  EventScheduler* scheduler = nullptr);

  // Schedules `fn` to run as an independent task after `delay` (e.g. the
  // line printer daemon consuming a spool file).  The deferred task gets its
  // own forked RNG and a fresh context.
  void Defer(Duration delay, std::function<void(WorkloadContext&)> fn);

  SimTime now() const { return now_; }
  TracedKernel& kernel() { return *kernel_; }
  const MachineProfile& profile() const { return *profile_; }
  Rng& rng() { return *rng_; }

  // Advances the task clock (think time, CPU time, ...).
  void Advance(Duration d);
  // Advances by an exponentially-distributed duration with the given mean.
  void AdvanceExp(Duration mean);

  // -- Whole-file operations --------------------------------------------------

  // Opens for reading, reads sequentially to EOF, closes.  `rate` is the
  // consumption rate in bytes/second (0 = profile fast_rate); `hold` is an
  // extra delay before the close (program startup / interactive pauses).
  // Returns bytes read, or 0 if the file could not be opened.
  uint64_t ReadWholeFile(const std::string& path, UserId user, double rate = 0,
                         Duration hold = Duration::Zero());

  // Opens with create+truncate, writes `size` bytes sequentially, closes.
  bool WriteNewFile(const std::string& path, UserId user, uint64_t size, double rate = 0);

  // Reads only the first min(nbytes, file size) bytes, then closes — the
  // "look at the first block" pattern behind Figure 1's 1 KB / 4 KB jumps.
  uint64_t PeekFile(const std::string& path, UserId user, uint64_t nbytes);

  // -- Partial / repositioned operations ---------------------------------------

  // Opens for writing in append mode and writes `nbytes` at end of file
  // (mailbox-style; sequential but not whole-file).
  bool AppendFile(const std::string& path, UserId user, uint64_t nbytes);

  // Opens read-only, seeks to `offset` (clamped to EOF), reads `nbytes`,
  // closes.  The paper's "position then read a small amount" administrative
  // pattern.  Returns bytes read.
  uint64_t SeekRead(const std::string& path, UserId user, uint64_t offset, uint64_t nbytes);

  // Opens read-write, seeks to `offset` (clamped to EOF), writes `nbytes`,
  // closes.  Produces the read-write access class of Table V.
  bool SeekWrite(const std::string& path, UserId user, uint64_t offset, uint64_t nbytes);

  // Opens read-only and performs `count` random seek+read(nbytes) probes
  // (non-sequential read access).  Returns the number of successful probes.
  int RandomReads(const std::string& path, UserId user, int count, uint64_t nbytes);

  // Opens read-write and performs `count` random seek + read/write probes
  // (non-sequential read-write access, e.g. dbm-style files).
  int RandomUpdate(const std::string& path, UserId user, int count, uint64_t nbytes);

  // -- Other traced operations -------------------------------------------------

  bool Exec(const std::string& path, UserId user);
  bool Unlink(const std::string& path, UserId user);
  bool Truncate(const std::string& path, UserId user, uint64_t new_length);

  // -- Raw descriptor access (for long-lived opens, e.g. editor temp files) ----

  // Opens and returns the fd, or -1.  The caller must CloseRaw() it.
  Fd OpenRaw(const std::string& path, OpenFlags flags, UserId user);
  void CloseRaw(Fd fd);
  // Clock-synced wrappers for operations on a raw fd.
  uint64_t RawRead(Fd fd, uint64_t nbytes);
  uint64_t RawWrite(Fd fd, uint64_t nbytes);
  void RawSeek(Fd fd, uint64_t position);

 private:
  // Syncs the kernel clock, applies a small per-syscall latency.
  void PreSyscall();
  Duration TransferTime(uint64_t bytes, double rate) const;

  TracedKernel* kernel_;
  const MachineProfile* profile_;
  Rng* rng_;
  SimTime now_;
  EventScheduler* scheduler_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_CONTEXT_H_
