#include "src/workload/context.h"

#include <algorithm>

namespace bsdtrace {
namespace {

// Per-syscall base latency: VAX syscall + name lookup, a handful of ms.
constexpr double kSyscallLatencyMeanSec = 0.004;

}  // namespace

WorkloadContext::WorkloadContext(TracedKernel* kernel, const MachineProfile* profile, Rng* rng,
                                 SimTime start, EventScheduler* scheduler)
    : kernel_(kernel), profile_(profile), rng_(rng), now_(start), scheduler_(scheduler) {}

void WorkloadContext::Defer(Duration delay, std::function<void(WorkloadContext&)> fn) {
  if (scheduler_ == nullptr) {
    // No scheduler (unit tests): run inline on a copy of the clock.
    WorkloadContext child(kernel_, profile_, rng_, now_ + delay, nullptr);
    fn(child);
    return;
  }
  TracedKernel* kernel = kernel_;
  const MachineProfile* profile = profile_;
  EventScheduler* scheduler = scheduler_;
  Rng child_rng = rng_->Fork();
  scheduler_->At(now_ + delay,
                 [kernel, profile, scheduler, child_rng, fn = std::move(fn)](SimTime start) {
                   Rng local = child_rng;
                   WorkloadContext child(kernel, profile, &local, start, scheduler);
                   fn(child);
                 });
}

void WorkloadContext::Advance(Duration d) {
  if (d > Duration::Zero()) {
    now_ += d;
  }
}

void WorkloadContext::AdvanceExp(Duration mean) {
  Advance(Duration::Seconds(rng_->Exponential(mean.seconds())));
}

void WorkloadContext::PreSyscall() {
  Advance(Duration::Seconds(rng_->Exponential(kSyscallLatencyMeanSec)));
  kernel_->SetTime(now_);
}

Duration WorkloadContext::TransferTime(uint64_t bytes, double rate) const {
  const double r = rate > 0 ? rate : profile_->fast_rate;
  return Duration::Seconds(static_cast<double>(bytes) / r);
}

uint64_t WorkloadContext::ReadWholeFile(const std::string& path, UserId user, double rate,
                                        Duration hold) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadOnly(), user);
  if (!fd.ok()) {
    return 0;
  }
  uint64_t total = 0;
  // Read to EOF; chunking does not affect the trace (reads are unlogged),
  // so a single large read is used for speed.
  auto n = kernel_->Read(fd.value(), UINT64_MAX / 2);
  if (n.ok()) {
    total = n.value();
  }
  Advance(TransferTime(total, rate));
  Advance(hold);
  PreSyscall();
  kernel_->Close(fd.value());
  return total;
}

bool WorkloadContext::WriteNewFile(const std::string& path, UserId user, uint64_t size,
                                   double rate) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::WriteCreate(), user);
  if (!fd.ok()) {
    return false;
  }
  const bool ok = kernel_->Write(fd.value(), size).ok();
  Advance(TransferTime(size, rate));
  PreSyscall();
  kernel_->Close(fd.value());
  return ok;
}

uint64_t WorkloadContext::PeekFile(const std::string& path, UserId user, uint64_t nbytes) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadOnly(), user);
  if (!fd.ok()) {
    return 0;
  }
  uint64_t total = 0;
  auto n = kernel_->Read(fd.value(), nbytes);
  if (n.ok()) {
    total = n.value();
  }
  Advance(TransferTime(total, 0));
  PreSyscall();
  kernel_->Close(fd.value());
  return total;
}

bool WorkloadContext::AppendFile(const std::string& path, UserId user, uint64_t nbytes) {
  // Pre-O_APPEND style: open for writing, reposition explicitly to end of
  // file, then write — the paper's mailbox-append pattern (one seek before
  // any transfer, hence "sequential" but not "whole-file" in Table V).
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags{.write = true, .create = true}, user);
  if (!fd.ok()) {
    return false;
  }
  auto size = kernel_->FileSize(path);
  const uint64_t end = size.ok() ? size.value() : 0;
  if (end > 0) {
    PreSyscall();
    kernel_->Seek(fd.value(), end);
  }
  const bool ok = kernel_->Write(fd.value(), nbytes).ok();
  Advance(TransferTime(nbytes, 0));
  PreSyscall();
  kernel_->Close(fd.value());
  return ok;
}

uint64_t WorkloadContext::SeekRead(const std::string& path, UserId user, uint64_t offset,
                                   uint64_t nbytes) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadOnly(), user);
  if (!fd.ok()) {
    return 0;
  }
  auto size = kernel_->FileSize(path);
  const uint64_t limit = size.ok() ? size.value() : 0;
  kernel_->Seek(fd.value(), std::min(offset, limit));
  uint64_t total = 0;
  auto n = kernel_->Read(fd.value(), nbytes);
  if (n.ok()) {
    total = n.value();
  }
  Advance(TransferTime(total, 0));
  PreSyscall();
  kernel_->Close(fd.value());
  return total;
}

bool WorkloadContext::SeekWrite(const std::string& path, UserId user, uint64_t offset,
                                uint64_t nbytes) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadWrite(), user);
  if (!fd.ok()) {
    return false;
  }
  auto size = kernel_->FileSize(path);
  const uint64_t limit = size.ok() ? size.value() : 0;
  kernel_->Seek(fd.value(), std::min(offset, limit));
  const bool ok = kernel_->Write(fd.value(), nbytes).ok();
  Advance(TransferTime(nbytes, 0));
  PreSyscall();
  kernel_->Close(fd.value());
  return ok;
}

int WorkloadContext::RandomReads(const std::string& path, UserId user, int count,
                                 uint64_t nbytes) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadOnly(), user);
  if (!fd.ok()) {
    return 0;
  }
  auto size = kernel_->FileSize(path);
  const uint64_t limit = size.ok() ? size.value() : 0;
  int done = 0;
  for (int i = 0; i < count; ++i) {
    const uint64_t offset =
        limit > nbytes ? static_cast<uint64_t>(rng_->UniformInt(0, static_cast<int64_t>(limit - nbytes)))
                       : 0;
    PreSyscall();
    kernel_->Seek(fd.value(), offset);
    auto n = kernel_->Read(fd.value(), nbytes);
    if (n.ok() && n.value() > 0) {
      ++done;
      Advance(TransferTime(n.value(), 0));
    }
  }
  PreSyscall();
  kernel_->Close(fd.value());
  return done;
}

int WorkloadContext::RandomUpdate(const std::string& path, UserId user, int count,
                                  uint64_t nbytes) {
  PreSyscall();
  auto fd = kernel_->Open(path, OpenFlags::ReadWrite(), user);
  if (!fd.ok()) {
    return 0;
  }
  auto size = kernel_->FileSize(path);
  const uint64_t limit = size.ok() ? size.value() : 0;
  int done = 0;
  for (int i = 0; i < count; ++i) {
    const uint64_t offset =
        limit > nbytes ? static_cast<uint64_t>(rng_->UniformInt(0, static_cast<int64_t>(limit - nbytes)))
                       : 0;
    PreSyscall();
    kernel_->Seek(fd.value(), offset);
    // Half the probes read, half rewrite in place.
    const bool write = rng_->Bernoulli(0.5);
    bool ok;
    if (write) {
      ok = kernel_->Write(fd.value(), nbytes).ok();
    } else {
      auto n = kernel_->Read(fd.value(), nbytes);
      ok = n.ok() && n.value() > 0;
    }
    if (ok) {
      ++done;
      Advance(TransferTime(nbytes, 0));
    }
  }
  PreSyscall();
  kernel_->Close(fd.value());
  return done;
}

bool WorkloadContext::Exec(const std::string& path, UserId user) {
  PreSyscall();
  return kernel_->Execve(path, user).ok();
}

bool WorkloadContext::Unlink(const std::string& path, UserId user) {
  PreSyscall();
  return kernel_->Unlink(path, user).ok();
}

bool WorkloadContext::Truncate(const std::string& path, UserId user, uint64_t new_length) {
  PreSyscall();
  return kernel_->Truncate(path, new_length, user).ok();
}

Fd WorkloadContext::OpenRaw(const std::string& path, OpenFlags flags, UserId user) {
  PreSyscall();
  auto fd = kernel_->Open(path, flags, user);
  return fd.ok() ? fd.value() : -1;
}

void WorkloadContext::CloseRaw(Fd fd) {
  if (fd < 0) {
    return;
  }
  PreSyscall();
  kernel_->Close(fd);
}

uint64_t WorkloadContext::RawRead(Fd fd, uint64_t nbytes) {
  PreSyscall();
  auto n = kernel_->Read(fd, nbytes);
  if (!n.ok()) {
    return 0;
  }
  Advance(TransferTime(n.value(), 0));
  return n.value();
}

uint64_t WorkloadContext::RawWrite(Fd fd, uint64_t nbytes) {
  PreSyscall();
  auto n = kernel_->Write(fd, nbytes);
  if (!n.ok()) {
    return 0;
  }
  Advance(TransferTime(n.value(), 0));
  return n.value();
}

void WorkloadContext::RawSeek(Fd fd, uint64_t position) {
  PreSyscall();
  kernel_->Seek(fd, position);
}

}  // namespace bsdtrace
