// Fleet profiles: several simulated machines generated as one trace.
//
// The paper traced three ~90-user VAX machines.  A FleetProfile scales that
// out in both directions at once: each constituent MachineProfile can carry a
// PopulationScale knob (thousands of users per machine), and the fleet runs
// N machine instances — e.g. 4xA5 + 2xE3 + 2xC4 — in a single sharded
// generation whose merged v3 trace keeps every instance's FileId/OpenId/
// UserId ranges disjoint and records the instance -> user-range mapping as a
// fleet tag in the header (trace/fleet_tag.h).
//
// Spec grammar (the CLI's --profile= argument):
//     spec     := [ "fleet:" ] group ( "+" group )*
//     group    := [ count "x" ] profile_name
//     profile  := A5 | E3 | C4 (or machine names; see ProfileByNameOrError)
// Examples: "A5", "fleet:4xA5+2xE3+2xC4", "2xE3+C4".

#ifndef BSDTRACE_SRC_WORKLOAD_FLEET_H_
#define BSDTRACE_SRC_WORKLOAD_FLEET_H_

#include <string>
#include <vector>

#include "src/trace/fleet_tag.h"
#include "src/util/status.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct FleetProfile {
  // Canonical spec, e.g. "4xA5+2xE3+2xC4" (no "fleet:" prefix).
  std::string spec;
  // One entry per machine instance, in spec order, scale knob still attached
  // (the generator resolves it via ApplyPopulationScale).
  std::vector<MachineProfile> machines;
};

// Parses a fleet spec (grammar above).  `users` > 0 sets every instance's
// PopulationScale target.  Unknown profile names, zero counts, and malformed
// groups are errors naming the offending group.
StatusOr<FleetProfile> ParseFleetSpec(const std::string& spec, int users = 0);

// The per-instance identity tags of a fleet: instance i owns user ids
// [base_i, base_i + population_i + 2) where base_0 = 0 and bases accumulate
// in spec order.  Population scaling is resolved first, so the tags describe
// the users that actually appear in the trace.
std::vector<FleetInstanceTag> FleetLayout(const FleetProfile& fleet);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_FLEET_H_
