// CAD task model (the ucbcad/C4 machine): circuit simulation runs.
//
// A run reads a large input deck, probes a technology library
// non-sequentially, writes a large output listing, examines it, and deletes
// it before the next run — big transfers, extra repositioning (C4 shows 26%
// seek events in Table III), and large short-lived files (Fig. 4b).

#include "src/workload/apps.h"

#include "src/util/distributions.h"

namespace bsdtrace {

void RunCadTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  if (user.decks.empty()) {
    return;
  }
  const MachineProfile& prof = ctx.profile();

  ctx.Exec(image.cad_path, user.id);
  const std::string deck = user.Pick(user.decks);
  const uint64_t n = ctx.ReadWholeFile(deck, user.id, prof.compile_rate);
  if (n == 0) {
    return;
  }
  // Technology parameters: scattered lookups in a shared library file.
  ctx.RandomReads(image.macros_path, user.id, 2 + static_cast<int>(rng.UniformInt(0, 4)),
                  2048);

  // Simulation output listing.
  LogNormalDist listing_dist(prof.cad_listing_median, prof.cad_listing_sigma, 3e6);
  const auto listing_size = static_cast<uint64_t>(listing_dist.Sample(rng)) + 1024;
  const std::string listing = user.home + "/sim" + std::to_string(user.tmp_seq++ % 4) + ".out";
  ctx.AdvanceExp(Duration::Seconds(30));  // the simulation itself (CPU)
  ctx.WriteNewFile(listing, user.id, listing_size);

  // Examine the listing...
  ctx.AdvanceExp(Duration::Seconds(45));
  if (rng.Bernoulli(0.35)) {
    ctx.ReadWholeFile(listing, user.id);
  } else {
    // ...or page around in it looking at the interesting signals.
    ctx.RandomReads(listing, user.id, 3 + static_cast<int>(rng.UniformInt(0, 5)), 16384);
  }

  // ...and delete it before the next run.
  ctx.AdvanceExp(Duration::Seconds(40));
  ctx.Unlink(listing, user.id);

  if (rng.Bernoulli(0.35)) {
    // Tweak the deck for the next run.
    const double factor = rng.Uniform(0.9, 1.15);
    ctx.WriteNewFile(deck, user.id,
                     static_cast<uint64_t>(static_cast<double>(n) * factor) + 128);
  }
}

}  // namespace bsdtrace
