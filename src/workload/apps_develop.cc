// Program-development task models: the compile/link/run cycle and editor
// sessions.

#include <algorithm>

#include "src/workload/apps.h"

namespace bsdtrace {
namespace {

// Perturbs a file size the way an edit does: mostly small growth.
uint64_t MutateSize(Rng& rng, uint64_t size) {
  const double factor = 1.0 + rng.Normal(0.02, 0.08);
  const auto out = static_cast<uint64_t>(static_cast<double>(std::max<uint64_t>(size, 64)) *
                                         std::clamp(factor, 0.5, 1.8));
  return std::max<uint64_t>(out, 64);
}

// "<path>.c" -> "<path>.o"; anything else gets ".o" appended.
std::string ObjectPathFor(const std::string& source) {
  if (source.size() > 2 && source.compare(source.size() - 2, 2, ".c") == 0) {
    return source.substr(0, source.size() - 2) + ".o";
  }
  return source + ".o";
}

}  // namespace

void RunCompileTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  const MachineProfile& prof = ctx.profile();
  const std::string src = user.Pick(user.sources);

  // Optionally touch up the source first (a quick ed-style edit).
  if (rng.Bernoulli(0.45)) {
    const uint64_t n = ctx.ReadWholeFile(src, user.id);
    ctx.AdvanceExp(Duration::Seconds(40));  // typing
    ctx.WriteNewFile(src, user.id, MutateSize(rng, n));
  }

  // cc: read the source at compiler speed, pulling in a handful of shared
  // headers, and emit assembler into /tmp.
  ctx.Exec(image.cc_path, user.id);
  uint64_t n = ctx.ReadWholeFile(src, user.id, prof.compile_rate);
  if (n == 0) {
    return;  // source vanished (raced with another task); give up
  }
  const int headers = 2 + static_cast<int>(rng.UniformInt(0, 4));
  for (int i = 0; i < headers && !image.headers.empty(); ++i) {
    const std::string& hdr = image.headers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(image.headers.size()) - 1))];
    ctx.ReadWholeFile(hdr, user.id, prof.compile_rate * 2);
  }
  const std::string asm_path = user.TempPath();
  ctx.WriteNewFile(asm_path, user.id, static_cast<uint64_t>(static_cast<double>(n) * 2.1),
                   prof.compile_rate * 3);

  // as: translate and delete the temporary — the paper's canonical
  // short-lifetime file ("deleted as soon as it has been translated").
  ctx.Exec(image.as_path, user.id);
  ctx.ReadWholeFile(asm_path, user.id, prof.compile_rate * 2);
  const std::string obj_path = ObjectPathFor(src);
  ctx.WriteNewFile(obj_path, user.id,
                   static_cast<uint64_t>(static_cast<double>(n) * 0.85) + 512);
  ctx.Unlink(asm_path, user.id);

  if (!rng.Bernoulli(0.45)) {
    return;
  }

  // ld: read the objects whole and reposition within libc (archives are
  // accessed non-sequentially), then write the executable.
  ctx.Exec(image.ld_path, user.id);
  uint64_t total = ctx.ReadWholeFile(obj_path, user.id);
  const int extra_objs = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < extra_objs; ++i) {
    const std::string other = ObjectPathFor(user.Pick(user.sources));
    total += ctx.ReadWholeFile(other, user.id);
  }
  ctx.RandomReads(image.libc_path, user.id, 2 + static_cast<int>(rng.UniformInt(0, 2)), 2048);
  const std::string aout = user.home + "/a.out";
  const uint64_t exe_size = static_cast<uint64_t>(static_cast<double>(total) * 0.9) + 6144;
  ctx.WriteNewFile(aout, user.id, exe_size);

  if (!rng.Bernoulli(0.6)) {
    return;
  }

  // Run the program: it reads an input and produces an output listing that
  // is examined and then deleted a little later.
  ctx.AdvanceExp(Duration::Seconds(8));
  ctx.Exec(aout, user.id);
  ctx.ReadWholeFile(user.Pick(user.sources), user.id);
  const std::string out_path = user.home + "/test.out";
  ctx.WriteNewFile(out_path, user.id, 200 + static_cast<uint64_t>(rng.UniformInt(0, 8000)));
  const UserId uid = user.id;
  ctx.Defer(Duration::Seconds(rng.Exponential(45.0)), [out_path, uid](WorkloadContext& c) {
    c.ReadWholeFile(out_path, uid);
    c.Unlink(out_path, uid);
  });
}

void RunEditTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  ctx.Exec(image.vi_path, user.id);
  const bool edit_doc = !user.docs.empty() && rng.Bernoulli(0.4);
  const std::string target = edit_doc ? user.Pick(user.docs) : user.Pick(user.sources);

  const uint64_t n = ctx.ReadWholeFile(target, user.id);

  // vi keeps its recovery/temp file open for the whole session — the long
  // tail of Figure 3's open-time distribution.
  const std::string tmp = "/tmp/Ex" + std::to_string(user.id) + "_" +
                          std::to_string(user.tmp_seq++);
  const Fd tmp_fd = ctx.OpenRaw(tmp, OpenFlags::WriteCreate(), user.id);

  const int rounds = 2 + static_cast<int>(rng.UniformInt(0, 8));
  uint64_t tmp_size = 0;
  for (int i = 0; i < rounds; ++i) {
    ctx.AdvanceExp(Duration::Seconds(40));  // typing/thinking
    if (tmp_fd < 0) {
      continue;
    }
    if (tmp_size > 4096 && rng.Bernoulli(0.5)) {
      // vi rewrites an earlier block of its temp file in place.
      const uint64_t offset =
          static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(tmp_size - 1024)));
      ctx.RawSeek(tmp_fd, offset);
      ctx.RawWrite(tmp_fd, 1024);
      ctx.RawSeek(tmp_fd, tmp_size);  // back to the end
    } else {
      tmp_size += ctx.RawWrite(tmp_fd, 512 + static_cast<uint64_t>(rng.UniformInt(0, 4096)));
    }
  }

  // Save: rewrite the target, close and remove the temp.
  ctx.WriteNewFile(target, user.id, MutateSize(rng, n));
  ctx.CloseRaw(tmp_fd);
  ctx.Unlink(tmp, user.id);
}

}  // namespace bsdtrace
