#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/workload/apps.h"
#include "src/workload/scheduler.h"
#include "src/workload/system_image.h"

namespace bsdtrace {
namespace {

// The clock starts at 08:00 of day one, so traces begin in the morning ramp.
constexpr double kStartHourOfDay = 8.0;

// Diurnal activity multiplier in [night_activity, 1]: a smooth bump peaking
// mid-afternoon (the traces were gathered during the busiest weekdays).
double DiurnalIntensity(SimTime t, double night_activity) {
  const double hour = std::fmod(kStartHourOfDay + t.seconds() / 3600.0, 24.0);
  // Raised-cosine bump over the 08:00-22:00 working window, peak ~14:30.
  double bump = 0.0;
  if (hour > 8.0 && hour < 22.0) {
    bump = 0.5 * (1.0 - std::cos(2.0 * M_PI * (hour - 8.0) / 14.0));
  }
  return night_activity + (1.0 - night_activity) * bump;
}

// Shared generation state plumbed through task closures.
struct GenState {
  const MachineProfile* profile = nullptr;
  const SystemImage* image = nullptr;
  TracedKernel* kernel = nullptr;
  EventScheduler* scheduler = nullptr;
  SimTime end;
  std::vector<UserState> users;
  // Global user indices incoming mail may target (the shard's own users) and
  // the inter-arrival mean multiplier compensating for the narrowed set.
  const std::vector<int>* mail_recipients = nullptr;
  double mail_scale = 1.0;
};

WorkloadContext MakeContext(GenState& gs, Rng* rng, SimTime start) {
  return WorkloadContext(gs.kernel, gs.profile, rng, start, gs.scheduler);
}

// Picks a task by the profile mix and runs it.
void RunOneTask(GenState& gs, UserState& user, WorkloadContext& ctx) {
  const TaskMix& mix = gs.profile->mix;
  const std::vector<double> weights = {mix.compile, mix.edit, mix.mail, mix.shell,
                                       mix.format, mix.admin, mix.cad};
  switch (user.rng.WeightedIndex(weights)) {
    case 0:
      RunCompileTask(ctx, user, *gs.image);
      break;
    case 1:
      RunEditTask(ctx, user, *gs.image);
      break;
    case 2:
      RunMailTask(ctx, user, *gs.image);
      break;
    case 3:
      RunShellTask(ctx, user, *gs.image);
      break;
    case 4:
      RunFormatTask(ctx, user, *gs.image);
      break;
    case 5:
      RunAdminTask(ctx, user, *gs.image);
      break;
    default:
      RunCadTask(ctx, user, *gs.image);
      break;
  }
}

void ScheduleNextLogin(GenState& gs, size_t user_index, SimTime from);

// One session: login activity, then a think/task loop until the session
// length is exhausted, then schedule the next login.
void RunSessionTask(GenState& gs, size_t user_index, SimTime start) {
  UserState& user = gs.users[user_index];
  const MachineProfile& prof = *gs.profile;
  const Duration session_len =
      Duration::Seconds(user.rng.Exponential(prof.mean_session_length.seconds()));
  const SimTime session_end = start + session_len;

  WorkloadContext ctx = MakeContext(gs, &user.rng, start);
  RunLoginActivity(ctx, user, *gs.image);

  // Task loop.  The whole session runs as one atomic task on the user's
  // private timeline; the merged trace is re-sorted afterwards.
  const Duration think = prof.mean_think_time * (1.0 / std::max(prof.intensity, 0.05));
  while (ctx.now() < session_end && ctx.now() < gs.end) {
    ctx.AdvanceExp(think);
    if (ctx.now() >= session_end || ctx.now() >= gs.end) {
      break;
    }
    RunOneTask(gs, user, ctx);
  }

  ScheduleNextLogin(gs, user_index, ctx.now());
}

// Schedules the user's next login via thinning against the diurnal curve.
void ScheduleNextLogin(GenState& gs, size_t user_index, SimTime from) {
  UserState& user = gs.users[user_index];
  const MachineProfile& prof = *gs.profile;
  // Mean gap between logins if the machine were busy all day.
  const double mean_gap_s = 24.0 * 3600.0 /
                            std::max(prof.day_login_rate * prof.intensity, 0.05) * 0.55;
  SimTime t = from;
  for (int guard = 0; guard < 200; ++guard) {
    t += Duration::Seconds(user.rng.Exponential(mean_gap_s));
    if (t >= gs.end) {
      return;  // no more logins within the trace
    }
    if (user.rng.NextDouble() < DiurnalIntensity(t, prof.night_activity)) {
      GenState* gsp = &gs;
      gs.scheduler->At(t, [gsp, user_index](SimTime start) {
        RunSessionTask(*gsp, user_index, start);
      });
      return;
    }
  }
}

// Self-rescheduling daemon tick for one host file.
void ScheduleDaemon(GenState& gs, int host, SimTime when, uint64_t rng_seed) {
  if (when >= gs.end) {
    return;
  }
  GenState* gsp = &gs;
  gs.scheduler->At(when, [gsp, host, rng_seed](SimTime start) {
    Rng rng(rng_seed);
    WorkloadContext ctx = MakeContext(*gsp, &rng, start);
    RunDaemonTick(ctx, *gsp->image, host);
    // Re-arm: packets arrive every period with a little network jitter.
    const Duration period = gsp->profile->daemon_period;
    const Duration jitter = Duration::Millis(static_cast<int64_t>(rng.UniformInt(-400, 400)));
    ScheduleDaemon(*gsp, host, start + period + jitter, rng.NextU64());
  });
}

// Self-rescheduling background system activity (cron/syslog/getty).
void ScheduleSystemTick(GenState& gs, SimTime when, uint64_t rng_seed) {
  if (when >= gs.end) {
    return;
  }
  GenState* gsp = &gs;
  gs.scheduler->At(when, [gsp, rng_seed](SimTime start) {
    Rng rng(rng_seed);
    WorkloadContext ctx = MakeContext(*gsp, &rng, start);
    RunSystemTick(ctx, *gsp->image);
    const double mean = gsp->profile->system_tick_mean.seconds() /
                        std::max(gsp->profile->intensity, 0.05);
    ScheduleSystemTick(*gsp, start + Duration::Seconds(rng.Exponential(mean)), rng.NextU64());
  });
}

// Self-rescheduling incoming-mail delivery, thinned by the diurnal curve
// (people send mail during the day).  Recipients are drawn from the shard's
// own users; the full plan draws over the whole population, and its draw is
// bit-identical to the historical uniform-over-home_dirs draw.
void ScheduleMailDelivery(GenState& gs, SimTime when, uint64_t rng_seed) {
  if (when >= gs.end) {
    return;
  }
  GenState* gsp = &gs;
  gs.scheduler->At(when, [gsp, rng_seed](SimTime start) {
    Rng rng(rng_seed);
    WorkloadContext ctx = MakeContext(*gsp, &rng, start);
    const std::vector<int>& recipients = *gsp->mail_recipients;
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(recipients.size()) - 1));
    DeliverMail(ctx, *gsp->image, static_cast<size_t>(recipients[pick]));
    const double mean = gsp->profile->mail_delivery_mean.seconds() * gsp->mail_scale;
    const double intensity =
        std::max(0.25, DiurnalIntensity(start, gsp->profile->night_activity));
    ScheduleMailDelivery(*gsp, start + Duration::Seconds(rng.Exponential(mean / intensity)),
                         rng.NextU64());
  });
}

}  // namespace

namespace internal {

std::string TraceDescription(const MachineProfile& profile, const GeneratorOptions& options) {
  return "synthetic " + profile.trace_name + " trace, " + options.duration.ToString() +
         ", seed " + std::to_string(options.seed);
}

ShardPlan FullPlan(const MachineProfile& profile) {
  ShardPlan plan;
  plan.users.reserve(static_cast<size_t>(profile.user_population));
  for (int u = 0; u < profile.user_population; ++u) {
    plan.users.push_back(u);
  }
  plan.daemon_hosts.reserve(static_cast<size_t>(profile.daemon_host_count));
  for (int h = 0; h < profile.daemon_host_count; ++h) {
    plan.daemon_hosts.push_back(h);
  }
  return plan;
}

GenerationResult RunShard(const MachineProfile& profile, const GeneratorOptions& options,
                          const ShardPlan& plan) {
  auto fs = std::make_unique<FileSystem>(options.fs_options);
  Trace trace(TraceHeader{.machine = profile.machine,
                          .description = TraceDescription(profile, options)});
  TracedKernel kernel(fs.get(), &trace);

  // Every shard builds the shared system tree from the same root stream, so
  // shared FileIds agree across replicas; only owned homes are materialized.
  Rng root(options.seed);
  std::vector<bool> owned(static_cast<size_t>(profile.user_population), false);
  for (int u : plan.users) {
    owned[static_cast<size_t>(u)] = true;
  }
  const SystemImage image = BuildSystemImage(*fs, profile, root, &owned);

  // Activity randomness: shard 0 continues the root stream (so the full plan
  // reproduces the serial path draw-for-draw); other shards switch to an
  // independent counter-derived stream of the same seed family.
  Rng activity = plan.shard_index == 0 ? std::move(root)
                                       : Rng::Stream(options.seed, static_cast<uint64_t>(plan.shard_index));

  EventScheduler scheduler;
  // Steady state keeps roughly one pending task per user (the next login or
  // the session's next step) plus one per daemon host and the machine-wide
  // timers; double the user count covers login-burst overlap.
  scheduler.Reserve(2 * plan.users.size() + plan.daemon_hosts.size() + 8);
  GenState gs;
  gs.profile = &profile;
  gs.image = &image;
  gs.kernel = &kernel;
  gs.scheduler = &scheduler;
  gs.end = SimTime::Origin() + options.duration;
  gs.mail_recipients = &plan.users;
  gs.mail_scale = plan.mail_scale;

  // Users.  Ids start at 2 (0 = network daemon, 1 = printer daemon) and are
  // global, so /tmp scratch names never collide across shards.
  gs.users.reserve(plan.users.size());
  for (int u : plan.users) {
    UserState user;
    user.id = static_cast<UserId>(u + 2);
    user.home = image.home_dirs[static_cast<size_t>(u)];
    user.mailbox = image.mail_dir + "/user" + std::to_string(u);
    user.rng = activity.Fork();
    for (int i = 0; i < 6; ++i) {
      user.sources.push_back(user.home + "/src" + std::to_string(i) + ".c");
    }
    for (int i = 0; i < 3; ++i) {
      user.docs.push_back(user.home + "/doc" + std::to_string(i));
    }
    if (profile.mix.cad > 0) {
      for (int i = 0; i < 3; ++i) {
        user.decks.push_back(user.home + "/deck" + std::to_string(i));
      }
    }
    gs.users.push_back(std::move(user));
  }

  // Kick off the shard's daemon hosts (staggered by global host index) and
  // machine-wide background activity where the plan assigns it.
  for (int h : plan.daemon_hosts) {
    const Duration stagger =
        profile.daemon_period * (static_cast<double>(h) /
                                 std::max(profile.daemon_host_count, 1));
    ScheduleDaemon(gs, h, SimTime::Origin() + stagger, activity.NextU64());
  }
  if (plan.run_system_tick) {
    ScheduleSystemTick(gs, SimTime::Origin() + Duration::Seconds(5), activity.NextU64());
  }
  if (plan.run_mail && !plan.users.empty()) {
    ScheduleMailDelivery(gs, SimTime::Origin() + Duration::Seconds(30), activity.NextU64());
  }
  for (size_t u = 0; u < gs.users.size(); ++u) {
    ScheduleNextLogin(gs, u, SimTime::Origin());
  }

  GenerationResult result;
  result.tasks_executed = scheduler.Run(gs.end);

  // Merge the per-user timelines: stable sort by timestamp.
  std::stable_sort(trace.records().begin(), trace.records().end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  // Tasks may run a little past the horizon; clip trailing records so the
  // trace duration matches the request.
  while (!trace.records().empty() && trace.records().back().time > gs.end) {
    trace.records().pop_back();
  }

  result.kernel_counters = kernel.counters();
  result.fs_stats = fs->Statistics();
  result.fsck = CheckFileSystem(*fs);
  result.shared_image_watermark = image.shared_tree_watermark;
  result.trace = std::move(trace);
  return result;
}

}  // namespace internal

GenerationResult GenerateTrace(const MachineProfile& profile, const GeneratorOptions& options) {
  // Resolve any pending PopulationScale target first, so the serial path and
  // every sharded/fleet path simulate the same resolved machine.
  const MachineProfile resolved = ApplyPopulationScale(profile);
  return internal::RunShard(resolved, options, internal::FullPlan(resolved));
}

Trace GenerateTraceOnly(const MachineProfile& profile, const GeneratorOptions& options) {
  return GenerateTrace(profile, options).trace;
}

}  // namespace bsdtrace
