// Discrete-event scheduler for the workload generator.
//
// Tasks are closures scheduled at absolute simulated times and processed in
// start-time order.  A task runs "atomically": it performs traced syscalls
// while advancing its own local clock, and may schedule follow-up tasks.
// Because concurrent users advance independent local clocks, the merged
// record stream is sorted by timestamp after generation (see generator.cc).

#ifndef BSDTRACE_SRC_WORKLOAD_SCHEDULER_H_
#define BSDTRACE_SRC_WORKLOAD_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/sim_time.h"

namespace bsdtrace {

// A unit of workload activity.  Receives the scheduled start time.
using Task = std::function<void(SimTime start)>;

class EventScheduler {
 public:
  // Schedules `task` to run at time `when`.  Tasks scheduled for the same
  // instant run in scheduling order (FIFO).
  void At(SimTime when, Task task);

  // Pre-sizes the underlying heap.  Thousand-user populations keep one
  // pending entry per simulated user (plus daemons); reserving up front
  // avoids rehoming every Entry closure as the heap grows through the
  // login burst.
  void Reserve(size_t pending_capacity) { heap_.reserve(pending_capacity); }

  // Runs tasks in time order until the queue is empty or the next task would
  // start at or after `end`.  Returns the number of tasks executed.
  uint64_t Run(SimTime end);

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // An explicit binary heap (std::push_heap/pop_heap over a vector) with the
  // same (when, seq) order std::priority_queue<Entry, ..., Later> had; the
  // explicit form adds Reserve() and lets Run() move the popped closure out
  // without const_cast.
  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_SCHEDULER_H_
