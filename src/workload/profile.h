// Machine profiles: the calibration knobs that make a synthetic trace look
// like the paper's A5 (ucbarpa), E3 (ucbernie), or C4 (ucbcad) traces.
//
// The three machines differed in community and workload (paper §4):
//   * ucbarpa — graduate students/staff, program development & formatting;
//   * ucbernie — the same plus substantial secretarial/administrative work,
//     the most users;
//   * ucbcad — VLSI CAD tools (simulators, layout editors, extractors),
//     fewer users, bigger files, more repositioning (26% seeks in Table III).

#ifndef BSDTRACE_SRC_WORKLOAD_PROFILE_H_
#define BSDTRACE_SRC_WORKLOAD_PROFILE_H_

#include <string>

#include "src/util/sim_time.h"

namespace bsdtrace {

struct TaskMix {
  double compile = 0;  // edit/compile/link/run development cycle
  double edit = 0;     // long editor session (keeps a temp file open)
  double mail = 0;     // read/append mailbox
  double shell = 0;    // command execution, rc files, peeks
  double format = 0;   // document formatting + print spool
  double admin = 0;    // large administrative database access
  double cad = 0;      // CAD simulate/inspect cycle
};

struct MachineProfile {
  std::string machine;     // e.g. "ucbarpa"
  std::string trace_name;  // e.g. "A5"

  // -- Population and activity ------------------------------------------------
  int user_population = 90;           // distinct users over the whole trace
  double day_login_rate = 1.0;        // mean logins per user per working day
  Duration mean_session_length = Duration::Minutes(45);
  Duration mean_think_time = Duration::Seconds(40);  // between tasks in a session
  // Diurnal modulation: activity multiplier at night relative to the
  // afternoon peak (the traces cover busy weekdays; nights are quiet).
  double night_activity = 0.1;

  TaskMix mix;

  // -- Background system activity ----------------------------------------------
  Duration system_tick_mean = Duration::Seconds(40);   // cron/syslog/getty cadence
  Duration mail_delivery_mean = Duration::Seconds(150);  // incoming mail (daytime)

  // -- Network status daemon (the 180-second lifetime spike, Fig. 4) ----------
  int daemon_host_count = 20;
  Duration daemon_period = Duration::Minutes(3);
  double daemon_file_median = 1100;  // bytes per host status file

  // -- File-size scales (bytes; lognormal medians and log-space sigmas) -------
  double source_median = 2400, source_sigma = 0.95;
  double doc_median = 4000, doc_sigma = 1.3;
  double cad_deck_median = 24000, cad_deck_sigma = 1.4;
  double cad_listing_median = 90000, cad_listing_sigma = 1.1;

  // -- Administrative databases (the ~1 MB network tables / login logs) -------
  int admin_file_count = 5;
  double admin_file_size = 1 << 20;

  // -- Processing rates (bytes/second; VAX-11/780 era) -------------------------
  double fast_rate = 400e3;     // streaming copy / cat
  double compile_rate = 4e3;    // compiler consuming source (token by token)
  double format_rate = 5e3;     // troff-style formatter (slow, CPU-bound)

  // Global activity multiplier: scales login rate and background cadences up
  // and think times down.  2.0 approximates a machine twice as busy; useful
  // for stress runs and for matching the original machines' ~480K
  // records/day without retuning every task model.
  double intensity = 1.0;
};

// The three traced machines (paper Table III/IV calibration).
MachineProfile ProfileA5();
MachineProfile ProfileE3();
MachineProfile ProfileC4();

// Looks up a profile by trace name ("A5", "E3", "C4"); A5 for unknown names.
MachineProfile ProfileByName(const std::string& name);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_PROFILE_H_
