// Machine profiles: the calibration knobs that make a synthetic trace look
// like the paper's A5 (ucbarpa), E3 (ucbernie), or C4 (ucbcad) traces.
//
// The three machines differed in community and workload (paper §4):
//   * ucbarpa — graduate students/staff, program development & formatting;
//   * ucbernie — the same plus substantial secretarial/administrative work,
//     the most users;
//   * ucbcad — VLSI CAD tools (simulators, layout editors, extractors),
//     fewer users, bigger files, more repositioning (26% seeks in Table III).

#ifndef BSDTRACE_SRC_WORKLOAD_PROFILE_H_
#define BSDTRACE_SRC_WORKLOAD_PROFILE_H_

#include <string>

#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace bsdtrace {

struct TaskMix {
  double compile = 0;  // edit/compile/link/run development cycle
  double edit = 0;     // long editor session (keeps a temp file open)
  double mail = 0;     // read/append mailbox
  double shell = 0;    // command execution, rc files, peeks
  double format = 0;   // document formatting + print spool
  double admin = 0;    // large administrative database access
  double cad = 0;      // CAD simulate/inspect cycle
};

// Population-scaling knob: grows a profile's simulated community past the
// paper's ~90-user machines (thousands of users per machine) while keeping
// every per-user rate calibrated.  Applying the knob rescales the machine-
// wide knobs that are proportional to community size:
//   * user_population (and with it the materialized home directories),
//   * daemon_host_count (a bigger community sits on a bigger local net),
//   * mail_delivery_mean and system_tick_mean (machine-wide arrival
//     processes whose rates are the sum of per-user rates: k times the
//     users means k times the arrivals, i.e. mean inter-arrival / k),
//   * admin_file_size (wtmp/acct-style databases grow with the community).
// Per-user knobs (login rate, session length, think time, file sizes) are
// untouched, which is exactly what makes the Table I per-user activity
// bands scale-invariant.
struct PopulationScale {
  // Target user population; <= 0 keeps the profile's calibrated population.
  int users = 0;
};

struct MachineProfile {
  std::string machine;     // e.g. "ucbarpa"
  std::string trace_name;  // e.g. "A5"

  // -- Population and activity ------------------------------------------------
  int user_population = 90;           // distinct users over the whole trace
  double day_login_rate = 1.0;        // mean logins per user per working day
  Duration mean_session_length = Duration::Minutes(45);
  Duration mean_think_time = Duration::Seconds(40);  // between tasks in a session
  // Diurnal modulation: activity multiplier at night relative to the
  // afternoon peak (the traces cover busy weekdays; nights are quiet).
  double night_activity = 0.1;

  TaskMix mix;

  // -- Background system activity ----------------------------------------------
  Duration system_tick_mean = Duration::Seconds(40);   // cron/syslog/getty cadence
  Duration mail_delivery_mean = Duration::Seconds(150);  // incoming mail (daytime)

  // -- Network status daemon (the 180-second lifetime spike, Fig. 4) ----------
  int daemon_host_count = 20;
  Duration daemon_period = Duration::Minutes(3);
  double daemon_file_median = 1100;  // bytes per host status file

  // -- File-size scales (bytes; lognormal medians and log-space sigmas) -------
  double source_median = 2400, source_sigma = 0.95;
  double doc_median = 4000, doc_sigma = 1.3;
  double cad_deck_median = 24000, cad_deck_sigma = 1.4;
  double cad_listing_median = 90000, cad_listing_sigma = 1.1;

  // -- Administrative databases (the ~1 MB network tables / login logs) -------
  int admin_file_count = 5;
  double admin_file_size = 1 << 20;

  // -- Processing rates (bytes/second; VAX-11/780 era) -------------------------
  double fast_rate = 400e3;     // streaming copy / cat
  double compile_rate = 4e3;    // compiler consuming source (token by token)
  double format_rate = 5e3;     // troff-style formatter (slow, CPU-bound)

  // Global activity multiplier: scales login rate and background cadences up
  // and think times down.  2.0 approximates a machine twice as busy; useful
  // for stress runs and for matching the original machines' ~480K
  // records/day without retuning every task model.
  double intensity = 1.0;

  // Population scaling (see PopulationScale above).  The generation entry
  // points resolve the knob via ApplyPopulationScale before simulating, so
  // setting `scale.users = 1000` on ProfileA5() yields a thousand-user
  // ucbarpa whose per-user activity matches the calibrated 90-user machine.
  PopulationScale scale;
};

// The three traced machines (paper Table III/IV calibration).
MachineProfile ProfileA5();
MachineProfile ProfileE3();
MachineProfile ProfileC4();

// Resolves the PopulationScale knob into a concrete profile (see
// PopulationScale for what is rescaled).  Identity when the knob is unset or
// names the profile's calibrated population, so unscaled traces stay
// byte-identical to the historical generator.
MachineProfile ApplyPopulationScale(const MachineProfile& profile);

// Strict lookup by trace name or machine name ("A5"/"ucbarpa", "E3"/
// "ucbernie", "C4"/"ucbcad").  Unknown names are an error that lists the
// valid ones — a CLI typo must not silently fabricate A5 data.
StatusOr<MachineProfile> ProfileByNameOrError(const std::string& name);

// Lenient legacy lookup: A5 for unknown names.  Prefer ProfileByNameOrError
// anywhere a user-supplied string reaches.
MachineProfile ProfileByName(const std::string& name);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_PROFILE_H_
