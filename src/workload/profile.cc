#include "src/workload/profile.h"

#include <algorithm>
#include <cmath>

namespace bsdtrace {

MachineProfile ProfileA5() {
  MachineProfile p;
  p.machine = "ucbarpa";
  p.trace_name = "A5";
  p.user_population = 90;
  p.day_login_rate = 3.0;
  p.mean_session_length = Duration::Minutes(50);
  p.mean_think_time = Duration::Seconds(15);
  p.night_activity = 0.10;
  // Program development and document formatting (paper §4).
  p.mix = TaskMix{.compile = 7, .edit = 5, .mail = 13, .shell = 39, .format = 6,
                  .admin = 30, .cad = 0};
  p.source_median = 2400;
  p.doc_median = 6000;
  p.system_tick_mean = Duration::Seconds(9);
  return p;
}

MachineProfile ProfileE3() {
  MachineProfile p;
  p.machine = "ucbernie";
  p.trace_name = "E3";
  p.user_population = 140;
  p.day_login_rate = 2.6;
  p.mean_session_length = Duration::Minutes(45);
  p.mean_think_time = Duration::Seconds(16);
  p.night_activity = 0.09;
  // Development plus substantial secretarial/administrative work.
  p.mix = TaskMix{.compile = 7, .edit = 7, .mail = 16, .shell = 38, .format = 9,
                  .admin = 23, .cad = 0};
  p.doc_median = 4500;
  p.system_tick_mean = Duration::Seconds(10);
  p.mail_delivery_mean = Duration::Seconds(110);
  return p;
}

MachineProfile ProfileC4() {
  MachineProfile p;
  p.machine = "ucbcad";
  p.trace_name = "C4";
  p.user_population = 40;
  p.day_login_rate = 2.8;
  p.mean_session_length = Duration::Minutes(60);
  p.mean_think_time = Duration::Seconds(16);
  p.night_activity = 0.13;
  // CAD: circuit simulators, layout editors, design-rule checkers.  More
  // repositioning (26% seeks in Table III) and larger files.
  p.mix = TaskMix{.compile = 5, .edit = 5, .mail = 8, .shell = 34, .format = 3, .admin = 20,
                  .cad = 25};
  p.mail_delivery_mean = Duration::Seconds(300);
  p.system_tick_mean = Duration::Seconds(16);
  return p;
}

MachineProfile ApplyPopulationScale(const MachineProfile& profile) {
  if (profile.scale.users <= 0 || profile.scale.users == profile.user_population ||
      profile.user_population <= 0) {
    return profile;  // identity: keep unscaled traces byte-identical
  }
  MachineProfile scaled = profile;
  const double factor = static_cast<double>(profile.scale.users) /
                        static_cast<double>(profile.user_population);
  scaled.user_population = profile.scale.users;
  // Community-proportional knobs (see PopulationScale in the header).  The
  // machine-wide arrival means shrink by the population factor so per-user
  // delivery/cron rates are unchanged; floors keep the event loop sane when
  // scaling *down* to a handful of users.
  scaled.daemon_host_count = std::max(
      1, static_cast<int>(std::lround(profile.daemon_host_count * factor)));
  scaled.mail_delivery_mean =
      Duration::Seconds(std::max(0.05, profile.mail_delivery_mean.seconds() / factor));
  scaled.system_tick_mean =
      Duration::Seconds(std::max(0.05, profile.system_tick_mean.seconds() / factor));
  // Administrative databases (wtmp/acct, host tables) grow with the
  // community; capped so a huge fleet instance still fits its simulated disk.
  scaled.admin_file_size =
      std::min(profile.admin_file_size * factor, 64.0 * (1 << 20));
  scaled.scale.users = 0;  // resolved; applying again is the identity
  return scaled;
}

StatusOr<MachineProfile> ProfileByNameOrError(const std::string& name) {
  if (name == "A5" || name == "a5" || name == "ucbarpa") {
    return ProfileA5();
  }
  if (name == "E3" || name == "e3" || name == "ucbernie") {
    return ProfileE3();
  }
  if (name == "C4" || name == "c4" || name == "ucbcad") {
    return ProfileC4();
  }
  return Status::Error("unknown machine profile \"" + name +
                       "\" (valid: A5/ucbarpa, E3/ucbernie, C4/ucbcad)");
}

MachineProfile ProfileByName(const std::string& name) {
  StatusOr<MachineProfile> profile = ProfileByNameOrError(name);
  return profile.ok() ? profile.value() : ProfileA5();
}

}  // namespace bsdtrace
