#include "src/workload/scheduler.h"

#include <utility>

namespace bsdtrace {

void EventScheduler::At(SimTime when, Task task) {
  queue_.push(Entry{.when = when, .seq = next_seq_++, .task = std::move(task)});
}

uint64_t EventScheduler::Run(SimTime end) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when < end) {
    // priority_queue::top() is const; the entry is about to be popped, so
    // moving the closure out from under it is safe and avoids copying the
    // captured task state on every dispatch.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    entry.task(entry.when);
    ++executed;
  }
  return executed;
}

}  // namespace bsdtrace
