#include "src/workload/scheduler.h"

#include <algorithm>
#include <utility>

namespace bsdtrace {

void EventScheduler::At(SimTime when, Task task) {
  heap_.push_back(Entry{.when = when, .seq = next_seq_++, .task = std::move(task)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

uint64_t EventScheduler::Run(SimTime end) {
  uint64_t executed = 0;
  while (!heap_.empty() && heap_.front().when < end) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    entry.task(entry.when);
    ++executed;
  }
  return executed;
}

}  // namespace bsdtrace
