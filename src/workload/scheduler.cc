#include "src/workload/scheduler.h"

namespace bsdtrace {

void EventScheduler::At(SimTime when, Task task) {
  queue_.push(Entry{.when = when, .seq = next_seq_++, .task = std::move(task)});
}

uint64_t EventScheduler::Run(SimTime end) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when < end) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the closure is wasteful, so pop into a local.
    Entry entry = queue_.top();
    queue_.pop();
    entry.task(entry.when);
    ++executed;
  }
  return executed;
}

}  // namespace bsdtrace
