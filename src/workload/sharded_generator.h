// Sharded parallel trace generation.
//
// Partitions the simulated population into deterministic shards — each with
// its own FileSystem replica, TracedKernel, event scheduler, and an
// independent counter-derived RNG stream of (seed, shard) — runs the shards
// concurrently on a small thread pool, and k-way merges the per-shard traces
// by timestamp with a stable shard-index tie-break.
//
// Determinism contract:
//   * For a fixed (profile, options) — including shard_count — the merged
//     output is byte-identical across runs and across `threads` values; the
//     thread pool only changes wall-clock, never content.
//   * With shard_count = 1 the result is bit-identical to GenerateTrace(),
//     the serial reference path.
//   * shard_count is a semantic parameter: different shard counts partition
//     the users differently (users on different shards cannot share mail or
//     file-system state), so traces for different shard counts are
//     statistically equivalent, not byte-identical.
//
// Record identity across shards: FileIds at or below the shared-image
// watermark refer to the shared system tree and agree in every replica;
// FileIds above it and all OpenIds are shard-local and are remapped into
// disjoint interleaved ranges before the merge, so the merged trace has the
// same unique-id invariants as a serial one.

#ifndef BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
#define BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace.h"
#include "src/trace/trace_io.h"
#include "src/util/status.h"
#include "src/workload/fleet.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct ShardedGeneratorOptions {
  GeneratorOptions base;
  // Number of population shards; clamped to [1, user_population].  1 selects
  // the serial reference path.
  int shard_count = 1;
  // Worker threads; <= 0 means hardware concurrency.  Clamped to
  // [1, shard_count].  Has no effect on output, only on wall-clock.
  int threads = 0;
  // Spill-to-disk streaming path only: directory for the per-shard spill
  // files (must exist).  Empty selects the system temp directory.  Spill
  // files live in a private subdirectory that is removed when generation
  // finishes, successfully or not.
  std::string spill_dir;
  // Format of the file GenerateTraceShardedToFile writes: v3 (the default)
  // keeps the historical bytes; {.version = 4} compresses block payloads.
  TraceWriterOptions file_options{.version = 3};
};

// Generates a trace with the population split across shards.  See the
// determinism contract above.
GenerationResult GenerateTraceSharded(const MachineProfile& profile,
                                      const ShardedGeneratorOptions& options);

// -- Spill-to-disk streaming path ---------------------------------------------
//
// The streaming engine runs the same shards, but each worker spills its
// shard's time-sorted records through a block-buffered trace writer into a
// temp file as soon as the shard finishes simulating and frees them — so at
// most `threads` shards' records are ever in memory at once — and then an
// on-disk k-way merge (a loser tree over per-shard file cursors, with the
// FileId/OpenId remap applied record-by-record as they are pulled) streams
// the final trace into a TraceSink holding ONE record per shard.  A
// 1000-user multi-week trace can be generated, saved, and analyzed without
// ever fitting in RAM.
//
// Determinism: the streamed record sequence — and, for the ToFile variant,
// the file's bytes — is identical to the in-memory path's output for the
// same (profile, options):
//     GenerateTraceShardedToFile(p, o, f)  ==  SaveTrace(f, GenerateTraceSharded(p, o).trace,
//                                                        TraceWriterOptions{.version = 3})
// byte for byte, for every shard_count and threads value (pinned by
// ShardedStream tests and the bench_micro_generate gate).  ToFile writes
// trace format v3 (checksummed blocks + footer index) so the output feeds
// the parallel Analyze engine directly; the v3 framing is a deterministic function
// of the record stream, so byte-identity is preserved.

// Everything GenerateTraceSharded reports except the record vector, plus
// streaming bookkeeping.
struct ShardedStreamStats {
  // Header of the streamed trace (the sink only sees records).
  TraceHeader header;
  KernelCounters kernel_counters;
  FsStatistics fs_stats;
  FsckReport fsck;
  uint64_t tasks_executed = 0;
  FileId shared_image_watermark = 0;
  // Records delivered to the sink == records spilled across all shards.
  uint64_t records_streamed = 0;
  // Total bytes of per-shard spill files written (and deleted) on the way.
  uint64_t spill_bytes_written = 0;
  // Fleet wave generation only: how many waves ran and the total bytes of
  // the intermediate compressed v4 wave shard files (1 / 0 when the whole
  // fleet fit in one wave and no wave shards were written).
  uint64_t waves = 1;
  uint64_t wave_bytes_written = 0;
};

// Streams the merged trace into `sink` (which sees Append per record, in
// time order).  Errors — unwritable spill directory, a spill file truncated
// or corrupted between write and merge — surface as a clean Status.
StatusOr<ShardedStreamStats> GenerateTraceShardedTo(const MachineProfile& profile,
                                                    const ShardedGeneratorOptions& options,
                                                    TraceSink& sink);

// Streams the merged trace straight into a binary v3 trace file at `path`
// (checksummed blocks + block index), with the exact record count stamped in
// the header.  Byte-identical to saving the in-memory path's trace with the
// same v3 options (see above).
StatusOr<ShardedStreamStats> GenerateTraceShardedToFile(const MachineProfile& profile,
                                                        const ShardedGeneratorOptions& options,
                                                        const std::string& path);

// -- Fleet generation ---------------------------------------------------------
//
// Runs every machine instance of a FleetProfile (e.g. 4xA5 + 2xE3 + 2xC4,
// each optionally population-scaled to thousands of users) as its own group
// of shards in ONE sharded, spill-to-disk generation, and merges all groups
// into a single time-ordered v3 trace.  Identity invariants of the merged
// trace:
//   * FileIds/OpenIds: shard-local ids are first interleaved within their
//     instance (exactly the single-machine remap above), then instance-local
//     ids are interleaved across the M instances — id -> (id-1)*M + i + 1 —
//     so no id is ever shared between instances (separate machines share no
//     files; there is no cross-instance watermark).
//   * UserIds: instance i's ids are offset by base_i = sum of earlier
//     instances' (population + 2), matching FleetLayout(); the mapping is
//     stamped into the header description as a fleet tag (trace/fleet_tag.h)
//     so analyzers can attribute per-user activity back to machine profiles.
//   * Time/tie order: records merge by (time, instance-major unit index), so
//     for a fixed (fleet, options) the output is byte-identical across runs
//     and thread counts.  A fleet of ONE machine reproduces the exact record
//     stream of GenerateTraceSharded{,ToFile} with the same options (only
//     the header differs: fleet headers carry the tag).
// Instances with the same profile are decorrelated by a per-instance seed
// derived from options.base.seed (instance 0 keeps the base seed, which is
// what makes the one-machine fleet reproduce the single-machine stream).
struct FleetGeneratorOptions {
  GeneratorOptions base;
  // Shards per machine instance; clamped to [1, instance population].
  int shards_per_machine = 1;
  // Worker threads over ALL instances' shards; <= 0 means hardware
  // concurrency.  Output-invariant.
  int threads = 0;
  // Spill directory, as in ShardedGeneratorOptions.
  std::string spill_dir;
  // Fleet-of-fleets wave generation: when > 0, the instances are grouped
  // into contiguous waves whose summed (population-scaled) user counts stay
  // at or below this bound (every wave holds at least one instance).  Each
  // wave runs as its own bounded spill-and-merge generation whose output is
  // written to a compressed v4 wave shard file; the wave shards are then
  // k-way merged — ties breaking by wave index, which equals the global
  // instance-major unit order — into the final stream.  Output-invariant:
  // the record stream (and the ToFile variant's bytes) is identical to a
  // single-wave run.  <= 0 (the default) disables waving.
  int wave_users = 0;
  // Format of the file GenerateFleetToFile writes: v3 (the default) keeps
  // the historical bytes; {.version = 4} compresses block payloads.
  TraceWriterOptions file_options{.version = 3};
};

// The header GenerateFleetTo stamps on the merged stream (machine name,
// description, fleet tag), computable without running the generation.  The
// live service (`trace_stream serve`) uses it to label its rings before the
// generator thread starts.
TraceHeader FleetTraceHeader(const FleetProfile& fleet, const FleetGeneratorOptions& options);

// Streams the merged fleet trace into `sink` / into a v3 file at `path`.
// ShardedStreamStats.shared_image_watermark is 0 for fleets of more than one
// machine (watermarks are per-instance and meaningless fleet-wide).
StatusOr<ShardedStreamStats> GenerateFleetTo(const FleetProfile& fleet,
                                             const FleetGeneratorOptions& options,
                                             TraceSink& sink);
StatusOr<ShardedStreamStats> GenerateFleetToFile(const FleetProfile& fleet,
                                                 const FleetGeneratorOptions& options,
                                                 const std::string& path);

// In-memory convenience (tests, small runs): the merged trace plus stats.
struct FleetGenerationResult {
  Trace trace;
  ShardedStreamStats stats;
};
StatusOr<FleetGenerationResult> GenerateFleetTrace(const FleetProfile& fleet,
                                                   const FleetGeneratorOptions& options);

namespace internal {

// The per-shard partition the sharded engines run (exposed for tests).
// Invariants, for plans = MakeShardPlans(profile, S):
//   * users: round-robin by global index (shard s owns {u : u % S == s}),
//     ascending within each shard; the shards partition [0, population).
//   * daemon_hosts: the SAME round-robin split of [0, daemon_host_count) —
//     the network daemon fleet is spread across shards, NOT pinned to shard
//     0, so daemon load scales with the pool like everything else.
//   * run_system_tick: true exactly for shard 0 (machine-wide cron/syslog is
//     a single process on the real machine; see the ROADMAP note on
//     cross-shard approximations).
//   * run_mail/mail_scale: every shard with users delivers mail to its own
//     users only, with the inter-arrival mean stretched by population/owned
//     so the per-user delivery rate matches the serial path.
// With S == 1 this is exactly FullPlan(profile).
std::vector<ShardPlan> MakeShardPlans(const MachineProfile& profile, int shard_count);

// Deterministic per-instance seed: instance 0 keeps `seed`; later instances
// get an independent SplitMix64-derived stream so identical profiles in one
// fleet do not replay identical traces.
uint64_t FleetInstanceSeed(uint64_t seed, size_t instance);

// Greedy contiguous wave grouping (exposed for tests): instance i joins the
// current wave while the wave's summed population stays within
// `wave_users`; a wave never splits an instance, so an instance larger than
// the bound gets a wave of its own.  Returns [begin, end) instance-index
// pairs that partition [0, populations.size()) in order; wave_users <= 0
// yields one wave covering everything.
std::vector<std::pair<size_t, size_t>> PlanWaves(const std::vector<int>& populations,
                                                 int wave_users);

}  // namespace internal

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
