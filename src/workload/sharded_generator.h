// Sharded parallel trace generation.
//
// Partitions the simulated population into deterministic shards — each with
// its own FileSystem replica, TracedKernel, event scheduler, and an
// independent counter-derived RNG stream of (seed, shard) — runs the shards
// concurrently on a small thread pool, and k-way merges the per-shard traces
// by timestamp with a stable shard-index tie-break.
//
// Determinism contract:
//   * For a fixed (profile, options) — including shard_count — the merged
//     output is byte-identical across runs and across `threads` values; the
//     thread pool only changes wall-clock, never content.
//   * With shard_count = 1 the result is bit-identical to GenerateTrace(),
//     the serial reference path.
//   * shard_count is a semantic parameter: different shard counts partition
//     the users differently (users on different shards cannot share mail or
//     file-system state), so traces for different shard counts are
//     statistically equivalent, not byte-identical.
//
// Record identity across shards: FileIds at or below the shared-image
// watermark refer to the shared system tree and agree in every replica;
// FileIds above it and all OpenIds are shard-local and are remapped into
// disjoint interleaved ranges before the merge, so the merged trace has the
// same unique-id invariants as a serial one.

#ifndef BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
#define BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_

#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct ShardedGeneratorOptions {
  GeneratorOptions base;
  // Number of population shards; clamped to [1, user_population].  1 selects
  // the serial reference path.
  int shard_count = 1;
  // Worker threads; <= 0 means hardware concurrency.  Clamped to
  // [1, shard_count].  Has no effect on output, only on wall-clock.
  int threads = 0;
};

// Generates a trace with the population split across shards.  See the
// determinism contract above.
GenerationResult GenerateTraceSharded(const MachineProfile& profile,
                                      const ShardedGeneratorOptions& options);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
