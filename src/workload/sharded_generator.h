// Sharded parallel trace generation.
//
// Partitions the simulated population into deterministic shards — each with
// its own FileSystem replica, TracedKernel, event scheduler, and an
// independent counter-derived RNG stream of (seed, shard) — runs the shards
// concurrently on a small thread pool, and k-way merges the per-shard traces
// by timestamp with a stable shard-index tie-break.
//
// Determinism contract:
//   * For a fixed (profile, options) — including shard_count — the merged
//     output is byte-identical across runs and across `threads` values; the
//     thread pool only changes wall-clock, never content.
//   * With shard_count = 1 the result is bit-identical to GenerateTrace(),
//     the serial reference path.
//   * shard_count is a semantic parameter: different shard counts partition
//     the users differently (users on different shards cannot share mail or
//     file-system state), so traces for different shard counts are
//     statistically equivalent, not byte-identical.
//
// Record identity across shards: FileIds at or below the shared-image
// watermark refer to the shared system tree and agree in every replica;
// FileIds above it and all OpenIds are shard-local and are remapped into
// disjoint interleaved ranges before the merge, so the merged trace has the
// same unique-id invariants as a serial one.

#ifndef BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
#define BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_

#include <string>

#include "src/trace/trace.h"
#include "src/util/status.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {

struct ShardedGeneratorOptions {
  GeneratorOptions base;
  // Number of population shards; clamped to [1, user_population].  1 selects
  // the serial reference path.
  int shard_count = 1;
  // Worker threads; <= 0 means hardware concurrency.  Clamped to
  // [1, shard_count].  Has no effect on output, only on wall-clock.
  int threads = 0;
  // Spill-to-disk streaming path only: directory for the per-shard spill
  // files (must exist).  Empty selects the system temp directory.  Spill
  // files live in a private subdirectory that is removed when generation
  // finishes, successfully or not.
  std::string spill_dir;
};

// Generates a trace with the population split across shards.  See the
// determinism contract above.
GenerationResult GenerateTraceSharded(const MachineProfile& profile,
                                      const ShardedGeneratorOptions& options);

// -- Spill-to-disk streaming path ---------------------------------------------
//
// The streaming engine runs the same shards, but each worker spills its
// shard's time-sorted records through a block-buffered trace writer into a
// temp file as soon as the shard finishes simulating and frees them — so at
// most `threads` shards' records are ever in memory at once — and then an
// on-disk k-way merge (a loser tree over per-shard file cursors, with the
// FileId/OpenId remap applied record-by-record as they are pulled) streams
// the final trace into a TraceSink holding ONE record per shard.  A
// 1000-user multi-week trace can be generated, saved, and analyzed without
// ever fitting in RAM.
//
// Determinism: the streamed record sequence — and, for the ToFile variant,
// the file's bytes — is identical to the in-memory path's output for the
// same (profile, options):
//     GenerateTraceShardedToFile(p, o, f)  ==  SaveTrace(f, GenerateTraceSharded(p, o).trace,
//                                                        TraceWriterOptions{.version = 3})
// byte for byte, for every shard_count and threads value (pinned by
// ShardedStream tests and the bench_micro_generate gate).  ToFile writes
// trace format v3 (checksummed blocks + footer index) so the output feeds
// ParallelAnalyzeTrace directly; the v3 framing is a deterministic function
// of the record stream, so byte-identity is preserved.

// Everything GenerateTraceSharded reports except the record vector, plus
// streaming bookkeeping.
struct ShardedStreamStats {
  // Header of the streamed trace (the sink only sees records).
  TraceHeader header;
  KernelCounters kernel_counters;
  FsStatistics fs_stats;
  FsckReport fsck;
  uint64_t tasks_executed = 0;
  FileId shared_image_watermark = 0;
  // Records delivered to the sink == records spilled across all shards.
  uint64_t records_streamed = 0;
  // Total bytes of per-shard spill files written (and deleted) on the way.
  uint64_t spill_bytes_written = 0;
};

// Streams the merged trace into `sink` (which sees Append per record, in
// time order).  Errors — unwritable spill directory, a spill file truncated
// or corrupted between write and merge — surface as a clean Status.
StatusOr<ShardedStreamStats> GenerateTraceShardedTo(const MachineProfile& profile,
                                                    const ShardedGeneratorOptions& options,
                                                    TraceSink& sink);

// Streams the merged trace straight into a binary v3 trace file at `path`
// (checksummed blocks + block index), with the exact record count stamped in
// the header.  Byte-identical to saving the in-memory path's trace with the
// same v3 options (see above).
StatusOr<ShardedStreamStats> GenerateTraceShardedToFile(const MachineProfile& profile,
                                                        const ShardedGeneratorOptions& options,
                                                        const std::string& path);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_WORKLOAD_SHARDED_GENERATOR_H_
