// Office task models: mail, document formatting, administrative databases,
// and login-time activity.

#include <algorithm>

#include "src/workload/apps.h"

namespace bsdtrace {

void RunMailTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  ctx.Exec(image.mail_path, user.id);
  // Usually only the new messages at the end of the mailbox are read
  // (reposition + read to EOF); occasionally the whole box is rescanned.
  // The mailbox stays open while the user reads messages interactively —
  // one of the slower opens behind Figure 3's tail.
  auto size = ctx.kernel().FileSize(user.mailbox);
  const uint64_t mbox_size = size.ok() ? size.value() : 0;
  const uint64_t n = mbox_size;
  {
    const Fd fd = ctx.OpenRaw(user.mailbox, OpenFlags::ReadOnly(), user.id);
    if (fd >= 0) {
      if (mbox_size > 2048 && rng.Bernoulli(0.7)) {
        // Skip straight to the new messages at the end.
        ctx.RawSeek(fd, static_cast<uint64_t>(static_cast<double>(mbox_size) *
                                              rng.Uniform(0.6, 0.95)));
      }
      ctx.RawRead(fd, mbox_size);
      ctx.AdvanceExp(Duration::Seconds(25));  // reading
      ctx.CloseRaw(fd);
    }
  }

  if (rng.Bernoulli(0.6)) {
    // Send a message: lock-file dance plus an append onto the recipient's
    // mailbox — the paper's canonical single-reposition sequential access.
    const size_t other = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(image.home_dirs.size()) - 1));
    const std::string mbox = image.mail_dir + "/user" + std::to_string(other);
    const std::string lock = mbox + ".lock";
    ctx.AdvanceExp(Duration::Seconds(60));  // composing
    ctx.WriteNewFile(lock, user.id, 0);
    ctx.AppendFile(mbox, user.id, 300 + static_cast<uint64_t>(rng.UniformInt(0, 2700)));
    ctx.Unlink(lock, user.id);
  }

  if (n > 30000 && rng.Bernoulli(0.4)) {
    // Delete messages: the mailbox is trimmed (truncated) — mostly emptied.
    const double keep = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.1, 0.5);
    ctx.Truncate(user.mailbox, user.id,
                 static_cast<uint64_t>(static_cast<double>(n) * keep));
  }
}

void RunFormatTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  if (user.docs.empty()) {
    return;
  }
  ctx.Exec(image.troff_path, user.id);
  const std::string doc = user.Pick(user.docs);
  const uint64_t n = ctx.ReadWholeFile(doc, user.id, ctx.profile().format_rate);
  if (n == 0) {
    return;
  }
  // Only the needed macro definitions are pulled in (scattered probes).
  ctx.RandomReads(image.macros_path, user.id, 2, 1536);

  // Spool the formatted output; the printer daemon consumes and deletes it
  // shortly after — short-lifetime data, weighted by bytes (Fig. 4b).
  const std::string spool =
      image.spool_dir + "/df" + std::to_string(user.id) + "_" + std::to_string(user.tmp_seq++);
  ctx.WriteNewFile(spool, user.id,
                   static_cast<uint64_t>(static_cast<double>(n) * 1.25) + 2048);
  ctx.Defer(Duration::Seconds(20.0 + rng.Exponential(70.0)), [spool](WorkloadContext& c) {
    constexpr UserId kPrinterDaemon = 1;
    c.ReadWholeFile(spool, kPrinterDaemon);
    c.Unlink(spool, kPrinterDaemon);
  });
}

void RunAdminTask(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  if (image.admin_files.empty()) {
    return;
  }
  const std::string& db = image.admin_files[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(image.admin_files.size()) - 1))];

  const double r = rng.NextDouble();
  if (r < 0.55) {
    // The canonical administrative pattern: open, position once, read a
    // small amount, close — repeated a couple of times (Fig. 1a's 1 KB jump).
    auto size = ctx.kernel().FileSize(db);
    const uint64_t limit = size.ok() ? size.value() : 0;
    const int lookups = 2 + static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < lookups; ++i) {
      // Most lookups pull one 1 KB record; some slurp a whole section.
      const uint64_t amount =
          rng.Bernoulli(0.65) ? 1024
                              : 2048 * static_cast<uint64_t>(1 + rng.UniformInt(0, 7));
      const uint64_t offset = limit > amount
                                  ? static_cast<uint64_t>(rng.UniformInt(
                                        0, static_cast<int64_t>(limit - amount)))
                                  : 0;
      ctx.SeekRead(db, user.id, offset, amount);
    }
  } else if (r < 0.80) {
    // Append a log record at end of file via an explicit reposition, with a
    // lock-file dance around it.
    const bool locked = rng.Bernoulli(0.3);
    const std::string lock = "/tmp/adm" + std::to_string(user.id) + ".lock";
    if (locked) {
      ctx.WriteNewFile(lock, user.id, 0);
    }
    ctx.AppendFile(db, user.id, 64 + static_cast<uint64_t>(rng.UniformInt(0, 448)));
    if (locked) {
      ctx.Unlink(lock, user.id);
    }
  } else if (r < 0.965) {
    // dbm-style scattered read/update — the non-sequential read-write class
    // of Table V.
    ctx.RandomUpdate(db, user.id, 4 + static_cast<int>(rng.UniformInt(0, 4)),
                     1024 * static_cast<uint64_t>(1 + rng.UniformInt(0, 5)));
  } else if (rng.Bernoulli(0.5)) {
    // Full table scan: a long sequential run (Fig. 1b's byte mass).
    ctx.ReadWholeFile(db, user.id);
  } else {
    // Scan until the sought entry is found: a long sequential partial read.
    auto size = ctx.kernel().FileSize(db);
    const uint64_t limit = size.ok() ? size.value() : 0;
    const Fd fd = ctx.OpenRaw(db, OpenFlags::ReadOnly(), user.id);
    if (fd >= 0) {
      ctx.RawRead(fd, static_cast<uint64_t>(static_cast<double>(limit) *
                                            rng.Uniform(0.05, 0.7)));
      ctx.CloseRaw(fd);
    }
  }

  if (rng.Bernoulli(0.003)) {
    // Rare log rotation: the log is trimmed (old records dropped), keeping
    // the administrative files at their characteristic ~1 MB size.
    auto size = ctx.kernel().FileSize(db);
    if (size.ok() && size.value() > (1u << 20)) {
      ctx.Truncate(db, user.id, size.value() - (size.value() >> 3));
    }
  }
}

void RunLoginActivity(WorkloadContext& ctx, UserState& user, const SystemImage& image) {
  Rng& rng = user.rng;
  // login(1): check the password file, print the motd, record the login.
  ctx.ReadWholeFile("/etc/passwd", user.id);
  ctx.ReadWholeFile("/etc/motd", user.id);
  if (!image.admin_files.empty()) {
    // wtmp login record appended at end of file.
    ctx.AppendFile(image.admin_files.front(), user.id, 36);
  }
  // utmp slot update: reposition to this user's slot and rewrite it.
  ctx.SeekWrite(image.utmp_path, user.id,
                (static_cast<uint64_t>(user.id) * 36) % 2048, 36);
  // csh startup: dotfiles, termcap peek.
  ctx.ReadWholeFile(user.home + "/.cshrc", user.id);
  ctx.ReadWholeFile(user.home + "/.login", user.id);
  if (rng.Bernoulli(0.5)) {
    ctx.PeekFile("/etc/termcap", user.id, 4096);
  }
  if (rng.Bernoulli(0.4)) {
    // Check mail at login.
    ctx.PeekFile(user.mailbox, user.id, 1024);
  }
}

}  // namespace bsdtrace
