#include "src/workload/apps.h"

#include <cassert>

namespace bsdtrace {

const std::string& UserState::Pick(const std::vector<std::string>& v) {
  assert(!v.empty());
  return v[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
}

std::string UserState::TempPath() {
  return "/tmp/t" + std::to_string(id) + "_" + std::to_string(tmp_seq++);
}

}  // namespace bsdtrace
