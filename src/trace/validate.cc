#include "src/trace/validate.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

struct OpenState {
  FileId file_id = kInvalidFileId;
  uint64_t position = 0;  // position after the most recent event
};

}  // namespace

std::string ValidationResult::Summary() const {
  std::string out;
  for (const auto& e : errors) {
    out += "error: " + e + "\n";
  }
  for (const auto& w : warnings) {
    out += "warning: " + w + "\n";
  }
  return out;
}

ValidationResult ValidateTrace(const Trace& trace, const ValidateTraceOptions& options) {
  ValidationResult result;
  result.records = trace.size();

  std::unordered_map<OpenId, OpenState> open_files;
  // Ids whose close has been seen.  Needed to (a) reject id recycling — an
  // open id is like an i-number, assigned once per trace — and (b) tell a
  // close/seek on a stale id ("already closed") apart from one on an id the
  // trace never opened, which matters when debugging an importer's fd table.
  std::unordered_set<OpenId> closed_ids;
  SimTime prev_time = SimTime::Origin();
  uint64_t index = 0;

  auto error = [&](const std::string& msg) {
    if (result.errors.size() >= options.max_issues) {
      return;
    }
    const bool have_line =
        options.line_numbers != nullptr && index < options.line_numbers->size();
    std::string where = have_line ? "line " + std::to_string((*options.line_numbers)[index])
                                  : "record " + std::to_string(index);
    std::string text = std::move(where) + ": " + msg;
    if (options.render_records) {
      text += " [" + trace.records()[index].ToString() + "]";
    }
    result.errors.push_back(std::move(text));
  };

  // Resolves an open id for a close/seek, reporting the precise failure.
  auto find_open = [&](OpenId id, const char* what) {
    auto it = open_files.find(id);
    if (it == open_files.end()) {
      const char* why = closed_ids.count(id) != 0 ? " that was already closed"
                                                  : " that was never opened";
      error(std::string(what) + " on open id " + std::to_string(id) + why +
            " (not open)");
    }
    return it;
  };

  for (const TraceRecord& r : trace.records()) {
    if (r.time < prev_time) {
      error("time moves backwards");
    }
    prev_time = r.time;

    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate: {
        if (r.open_id == kInvalidOpenId) {
          error("open with invalid open id 0");
          break;
        }
        if (closed_ids.count(r.open_id) != 0) {
          error("open id " + std::to_string(r.open_id) + " reused after close");
          break;
        }
        auto [it, inserted] = open_files.try_emplace(r.open_id);
        if (!inserted) {
          error("open id " + std::to_string(r.open_id) + " reused while still open");
          break;
        }
        it->second.file_id = r.file_id;
        it->second.position = r.position;
        if (r.type == EventType::kCreate && (r.size != 0 || r.position != 0)) {
          error("create record must have size 0 and position 0");
        }
        if (r.type == EventType::kOpen && r.position > r.size) {
          error("open initial position beyond file size");
        }
        break;
      }
      case EventType::kSeek: {
        auto it = find_open(r.open_id, "seek");
        if (it == open_files.end()) {
          break;
        }
        if (it->second.file_id != r.file_id) {
          error("seek file id does not match the open");
        }
        if (r.seek_from < it->second.position) {
          error("seek 'from' position " + std::to_string(r.seek_from) +
                " behind the tracked position " + std::to_string(it->second.position) +
                " (positions only advance between repositions)");
        }
        it->second.position = r.seek_to;
        break;
      }
      case EventType::kClose: {
        auto it = find_open(r.open_id, "close");
        if (it == open_files.end()) {
          break;
        }
        if (it->second.file_id != r.file_id) {
          error("close file id does not match the open");
        }
        if (r.position < it->second.position) {
          error("close final position behind the last known position");
        }
        if (r.size < r.position) {
          error("close size smaller than final position");
        }
        open_files.erase(it);
        closed_ids.insert(r.open_id);
        break;
      }
      case EventType::kUnlink:
        break;
      case EventType::kTruncate:
        break;
      case EventType::kExecve:
        break;
    }
    ++index;
  }

  result.opens_pending_at_end = open_files.size();
  if (!open_files.empty()) {
    result.warnings.push_back(std::to_string(open_files.size()) +
                              " file(s) still open when the trace ends");
  }
  return result;
}

ValidationResult ValidateTrace(const Trace& trace, size_t max_issues) {
  ValidateTraceOptions options;
  options.max_issues = max_issues;
  return ValidateTrace(trace, options);
}

TraceFileCheck CheckTraceFile(const std::string& path) {
  TraceFileCheck check;

  // The seekable probe parses the footer index (v3) and surfaces a corrupt
  // footer as a non-ok status; v1/v2 files come back ok with no index.
  SeekableTraceSource seekable(path);
  if (!seekable.status().ok()) {
    check.status = seekable.status();
    return check;
  }
  check.version = seekable.version();
  check.has_index = seekable.has_index();
  check.index_entries = seekable.index().size();
  check.indexed_records = seekable.indexed_records();

  TraceFileReader reader(path);
  if (!reader.status().ok()) {
    check.status = reader.status();
    return check;
  }
  TraceRecord record{};
  while (reader.Next(&record)) {
    ++check.records;
    check.last_time = record.time;
  }
  check.blocks_verified = reader.blocks_verified();
  check.payload_stored_bytes = reader.payload_stored_bytes();
  check.payload_raw_bytes = reader.payload_raw_bytes();
  if (reader.version() >= 4) {
    switch (reader.codecs_seen()) {
      case 1u << static_cast<int>(TraceCodec::kNone):
        check.codec = "none";
        break;
      case 1u << static_cast<int>(TraceCodec::kLz):
        check.codec = "lz";
        break;
      case 0:
        check.codec = "none";  // empty v4 file: no blocks at all
        break;
      default:
        check.codec = "mixed";
        break;
    }
  }
  if (!reader.status().ok()) {
    check.status = reader.status();
    return check;
  }
  if (reader.declared_record_count() >= 0 &&
      static_cast<uint64_t>(reader.declared_record_count()) != check.records) {
    check.status = Status::Error(
        "header declares " + std::to_string(reader.declared_record_count()) +
        " records but the file holds " + std::to_string(check.records));
    return check;
  }
  if (check.has_index && check.indexed_records != check.records) {
    check.status = Status::Error(
        "footer index claims " + std::to_string(check.indexed_records) +
        " records but the blocks hold " + std::to_string(check.records));
    return check;
  }
  if (check.has_index && check.index_entries != check.blocks_verified) {
    check.status = Status::Error(
        "footer index lists " + std::to_string(check.index_entries) +
        " blocks but the file holds " + std::to_string(check.blocks_verified));
  }
  return check;
}

}  // namespace bsdtrace
