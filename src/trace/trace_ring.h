// Bounded in-memory ring buffer connecting a live trace producer to a
// consumer with no file in between — the transport behind `trace_stream
// serve` and the live mode of Analyze().
//
// The queue follows the Plan9 devtrace fifo idiom: a power-of-two slot
// array indexed by MONOTONICALLY increasing produce/consume counters that
// are masked (never wrapped) to get a slot, which makes empty
// (produce == consume), full (produce - consume == capacity), and occupancy
// (produce - consume) trivial and overflow-proof.  Unlike the kernel's
// lock-free log, producers and the consumer here synchronize with a mutex +
// condition variables so the structure stays obviously correct under TSan
// with any number of producers (MPSC); the counters keep the devtrace
// accounting.
//
// Backpressure is a policy choice made at construction:
//   * kBlock (default): Push waits for space.  With push_timeout == 0 it
//     waits indefinitely — no record is ever lost, the producer simply runs
//     at the consumer's pace.  With a positive timeout, a push that cannot
//     find space in time gives up and the record is counted in
//     stats().dropped_timeout.
//   * kDropOldest: Push never waits; when full it overwrites the oldest
//     unconsumed record and counts it in stats().dropped_oldest.  The
//     consumer sees a gapped but still time-ordered stream.
// Either way every loss is visible in TraceRingStats — a live analyzer can
// report exactly how much of the stream it missed.

#ifndef BSDTRACE_SRC_TRACE_TRACE_RING_H_
#define BSDTRACE_SRC_TRACE_TRACE_RING_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/trace/trace.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {

enum class RingOverflowPolicy : uint8_t {
  kBlock,      // producer waits for space (optionally bounded by a timeout)
  kDropOldest, // producer overwrites the oldest unconsumed record
};

struct TraceRingOptions {
  // Slot count; rounded UP to the next power of two, minimum 2.
  size_t capacity = 1 << 14;
  RingOverflowPolicy policy = RingOverflowPolicy::kBlock;
  // kBlock only: how long a producer waits for space before dropping the
  // record.  Zero means wait forever (lossless).
  std::chrono::milliseconds push_timeout{0};
};

// Counter snapshot; taken atomically under the ring lock.
struct TraceRingStats {
  size_t capacity = 0;
  uint64_t produced = 0;         // records accepted into the ring
  uint64_t consumed = 0;         // records handed to the consumer
  uint64_t dropped_oldest = 0;   // overwritten before consumption (kDropOldest)
  uint64_t dropped_timeout = 0;  // rejected pushes (kBlock with timeout)
  uint64_t max_occupancy = 0;    // high-water mark of produce - consume

  uint64_t dropped() const { return dropped_oldest + dropped_timeout; }
};

class TraceRing {
 public:
  explicit TraceRing(TraceHeader header, TraceRingOptions options = TraceRingOptions());

  const TraceHeader& header() const { return header_; }
  size_t capacity() const { return slots_.size(); }

  // Appends one record per the overflow policy.  Returns false iff the
  // record was dropped (kBlock with an expired timeout, or a push after
  // Close()).  Safe from any number of producer threads.
  bool Push(const TraceRecord& record);

  // Declares end of stream: blocked producers and the consumer wake, pushes
  // after close are refused, and Pop drains what remains then returns false.
  // Idempotent.
  void Close();
  bool closed() const;

  // Removes the oldest record.  Blocks until a record is available or the
  // ring is closed and drained (then returns false).  Single consumer.
  bool Pop(TraceRecord* record);

  TraceRingStats stats() const;

 private:
  TraceHeader header_;
  RingOverflowPolicy policy_;
  std::chrono::milliseconds push_timeout_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<TraceRecord> slots_;  // power-of-two length
  uint64_t mask_ = 0;
  // Monotonic counters (never masked in place); slot = counter & mask_.
  uint64_t produce_ = 0;
  uint64_t consume_ = 0;
  uint64_t dropped_oldest_ = 0;
  uint64_t dropped_timeout_ = 0;
  uint64_t max_occupancy_ = 0;
  bool closed_ = false;
};

// Producer face: lets anything that writes to a TraceSink — the traced
// kernel, the sharded generator's merge, a format converter — stream into a
// ring instead of a file.
class RingTraceSink : public TraceSink {
 public:
  explicit RingTraceSink(TraceRing* ring) : ring_(ring) {}
  void Append(const TraceRecord& record) override { ring_->Push(record); }

 private:
  TraceRing* ring_;
};

// Consumer face: a TraceSource whose Next() blocks on the live ring, so the
// analyzers consume a running generator exactly as they consume a file.
// Never fails: losses are a policy outcome, visible in ring->stats(), not an
// error.
class RingTraceSource : public TraceSource {
 public:
  explicit RingTraceSource(TraceRing* ring) : ring_(ring) {}

  const TraceHeader& header() const override { return ring_->header(); }
  bool Next(TraceRecord* record) override { return ring_->Pop(record); }
  Status status() const override { return Status::Ok(); }

 private:
  TraceRing* ring_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_RING_H_
