#include "src/trace/reconstruct.h"

#include <cassert>

#include "src/trace/trace.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

// Direction of one run.  Opens for reading or writing only are unambiguous.
// For read-write opens the trace cannot distinguish reads from writes; runs
// that extend the file beyond its size at open must have been writes, and we
// classify the rest as reads.  (Read-write opens are rare — see Table V — so
// this heuristic has little effect on aggregate results.)
TransferDirection RunDirection(AccessMode mode, uint64_t run_end, uint64_t size_at_open) {
  switch (mode) {
    case AccessMode::kReadOnly:
      return TransferDirection::kRead;
    case AccessMode::kWriteOnly:
      return TransferDirection::kWrite;
    case AccessMode::kReadWrite:
      return run_end > size_at_open ? TransferDirection::kWrite : TransferDirection::kRead;
  }
  return TransferDirection::kRead;
}

}  // namespace

AccessReconstructor::AccessReconstructor(ReconstructionSink* sink, BillingPolicy billing)
    : sink_(sink), billing_(billing) {
  assert(sink != nullptr);
}

void AccessReconstructor::EndRun(OpenState& state, SimTime end_time, uint64_t run_end) {
  if (run_end <= state.run_start) {
    return;  // empty run: no bytes moved since the last event
  }
  Transfer t;
  t.time = billing_ == BillingPolicy::kAtNextEvent ? end_time : state.run_start_time;
  t.open_id = state.summary.open_id;
  t.file_id = state.summary.file_id;
  t.user_id = state.summary.user_id;
  t.mode = state.summary.mode;
  t.direction = RunDirection(state.summary.mode, run_end, state.summary.size_at_open);
  t.offset = state.run_start;
  t.length = run_end - state.run_start;
  state.summary.bytes_transferred += t.length;
  state.summary.run_count += 1;
  sink_->OnTransfer(t);
}

void AccessReconstructor::Process(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      OpenState state;
      state.summary.open_id = r.open_id;
      state.summary.file_id = r.file_id;
      state.summary.user_id = r.user_id;
      state.summary.mode = r.mode;
      state.summary.created = (r.type == EventType::kCreate);
      state.summary.open_time = r.time;
      state.summary.size_at_open = r.size;
      state.run_start = r.position;
      state.run_start_time = r.time;
      open_files_[r.open_id] = state;
      break;
    }
    case EventType::kSeek: {
      auto it = open_files_.find(r.open_id);
      if (it == open_files_.end()) {
        ++orphan_events_;
        break;
      }
      OpenState& state = it->second;
      if (r.seek_from > state.run_start && state.summary.seek_count == 0) {
        state.transferred_before_first_seek = true;
      }
      EndRun(state, r.time, r.seek_from);
      state.summary.seek_count += 1;
      state.run_start = r.seek_to;
      state.run_start_time = r.time;
      break;
    }
    case EventType::kClose: {
      auto it = open_files_.find(r.open_id);
      if (it == open_files_.end()) {
        ++orphan_events_;
        break;
      }
      OpenState& state = it->second;
      EndRun(state, r.time, r.position);
      AccessSummary& s = state.summary;
      s.close_time = r.time;
      s.size_at_close = r.size;
      // Whole-file transfer: from byte 0 to end of file with no repositioning.
      const bool started_at_zero = (s.seek_count == 0 && state.run_start <= r.position &&
                                    r.position == s.bytes_transferred);
      s.whole_file = started_at_zero && r.position == s.size_at_close &&
                     (s.bytes_transferred > 0 || s.size_at_close == 0);
      // Sequential: no repositioning at all, or a single reposition before
      // any bytes were transferred (paper Table V definition).
      s.sequential =
          s.seek_count == 0 || (s.seek_count == 1 && !state.transferred_before_first_seek);
      sink_->OnAccess(s);
      open_files_.erase(it);
      break;
    }
    case EventType::kUnlink:
    case EventType::kTruncate:
    case EventType::kExecve:
      break;
  }
  sink_->OnRecord(r);
}

void AccessReconstructor::Finish() {
  dangling_opens_ += open_files_.size();
  open_files_.clear();
}

std::unordered_map<OpenId, AccessReconstructor::OpenState>
AccessReconstructor::TakeOpenStates() {
  std::unordered_map<OpenId, OpenState> taken;
  taken.swap(open_files_);
  return taken;
}

void AccessReconstructor::AdoptOpenStates(std::unordered_map<OpenId, OpenState> states) {
  for (auto& [id, state] : states) {
    open_files_.insert_or_assign(id, std::move(state));
  }
}

const AccessReconstructor::OpenState* AccessReconstructor::FindOpen(OpenId id) const {
  auto it = open_files_.find(id);
  return it == open_files_.end() ? nullptr : &it->second;
}

void Reconstruct(const Trace& trace, ReconstructionSink* sink, BillingPolicy billing) {
  AccessReconstructor reconstructor(sink, billing);
  for (const TraceRecord& r : trace.records()) {
    reconstructor.Process(r);
  }
  reconstructor.Finish();
}

Status Reconstruct(TraceSource& source, ReconstructionSink* sink, BillingPolicy billing) {
  AccessReconstructor reconstructor(sink, billing);
  TraceRecord r;
  while (source.Next(&r)) {
    reconstructor.Process(r);
  }
  if (!source.status().ok()) {
    return source.status();
  }
  reconstructor.Finish();
  return Status::Ok();
}

}  // namespace bsdtrace
