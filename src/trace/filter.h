// Trace slicing and filtering utilities.
//
// Derived traces stay structurally valid: filters keep the record set closed
// over open ids (a kept close always has its open kept, and vice versa), so
// the validator and all analyzers accept the result.

#ifndef BSDTRACE_SRC_TRACE_FILTER_H_
#define BSDTRACE_SRC_TRACE_FILTER_H_

#include <functional>
#include <map>

#include "src/trace/trace.h"

namespace bsdtrace {

// Keeps records with start <= time < end.  Accesses straddling a boundary
// are dropped entirely (their open or close lies outside the window), which
// matches the reconstructor's treatment of clipped opens.  Timestamps are
// rebased so the slice starts at 0 when `rebase` is true.
Trace SliceByTime(const Trace& trace, SimTime start, SimTime end, bool rebase = true);

// Keeps activity of users accepted by the predicate.  Close/seek records
// (which carry no user id) follow their open's user.
Trace FilterByUser(const Trace& trace, const std::function<bool(UserId)>& keep);

// Keeps activity touching files accepted by the predicate (whole accesses:
// the open/seek/close chain of a kept file is kept together).
Trace FilterByFile(const Trace& trace, const std::function<bool(FileId)>& keep);

// Event counts per user over the whole trace (close/seek attributed to the
// opening user).
std::map<UserId, uint64_t> CountEventsByUser(const Trace& trace);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_FILTER_H_
