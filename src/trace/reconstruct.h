// Access reconstruction: turning the no-read-write event stream back into
// byte-range transfers (paper §3.1).
//
// Because UNIX file I/O is implicitly sequential, the access position moves
// forward monotonically except at explicit repositions.  The positions logged
// at open, around each seek, and at close therefore delimit *sequential
// runs*: contiguous byte ranges that were read or written.  Each run is
// billed at the time of the event that ends it (the next seek or the close),
// exactly as the paper's analyses do.

#ifndef BSDTRACE_SRC_TRACE_RECONSTRUCT_H_
#define BSDTRACE_SRC_TRACE_RECONSTRUCT_H_

#include <cstdint>
#include <unordered_map>

#include "src/trace/record.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

enum class TransferDirection : uint8_t { kRead, kWrite };

// One sequential run of bytes, billed at `time`.
struct Transfer {
  SimTime time;
  OpenId open_id = kInvalidOpenId;
  FileId file_id = kInvalidFileId;
  UserId user_id = 0;
  AccessMode mode = AccessMode::kReadOnly;
  TransferDirection direction = TransferDirection::kRead;
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end() const { return offset + length; }
};

// Everything known about one open..close episode once it completes.
struct AccessSummary {
  OpenId open_id = kInvalidOpenId;
  FileId file_id = kInvalidFileId;
  UserId user_id = 0;
  AccessMode mode = AccessMode::kReadOnly;
  bool created = false;  // the open created / zero-truncated the file

  SimTime open_time;
  SimTime close_time;
  uint64_t size_at_open = 0;
  uint64_t size_at_close = 0;
  uint64_t bytes_transferred = 0;
  uint32_t run_count = 0;   // non-empty sequential runs
  uint32_t seek_count = 0;

  // Whole-file transfer: read/written sequentially from beginning to end
  // with no repositioning (Table V).
  bool whole_file = false;
  // Sequential access: whole-file, or a single reposition before any bytes
  // were transferred followed by one sequential run (Table V).
  bool sequential = false;

  Duration open_duration() const { return close_time - open_time; }
};

// Receives reconstruction results.  Default implementations ignore events, so
// consumers override only what they need.
class ReconstructionSink {
 public:
  virtual ~ReconstructionSink() = default;
  // A sequential run ended (by a seek or a close).
  virtual void OnTransfer(const Transfer& transfer) { (void)transfer; }
  // An open..close episode completed.
  virtual void OnAccess(const AccessSummary& access) { (void)access; }
  // Every raw record, in order, after per-open state was updated.  Lets
  // consumers see unlink/truncate/execve/create without re-reading the trace.
  virtual void OnRecord(const TraceRecord& record) { (void)record; }
};

// When a run's transfer is billed.  The trace only bounds transfer times:
// the run happened somewhere between the event that began it and the event
// that ended it.  The paper bills at the ending event ("we billed each
// transfer at the time of the next close or reposition"); the alternative
// bound supports the timing-imprecision ablation (§3.1; Thompson [13] found
// exact times lower cache miss ratios by 2-3%).
enum class BillingPolicy : uint8_t {
  kAtNextEvent,      // the paper's convention (upper bound on transfer time)
  kAtPreviousEvent,  // lower bound: bill when the run began
};

// Streaming reconstructor.  Feed records in time order; results are delivered
// to the sink as soon as they are known.
class AccessReconstructor {
 public:
  // Mid-episode state for one open.  Public so segmented analysis
  // (parallel_analyzer.h) can hand opens that straddle a segment boundary
  // from the worker that saw the open to the stitcher that sees the close.
  struct OpenState {
    AccessSummary summary;
    uint64_t run_start = 0;       // position where the current run began
    SimTime run_start_time;       // time of the event that began the run
    bool transferred_before_first_seek = false;
  };

  explicit AccessReconstructor(ReconstructionSink* sink,
                               BillingPolicy billing = BillingPolicy::kAtNextEvent);

  void Process(const TraceRecord& record);

  // Declares end of trace.  Opens still pending are *dropped* (their byte
  // ranges cannot be billed without a closing event), matching the paper's
  // treatment of trace clipping; the count is available afterwards.
  void Finish();

  uint64_t dangling_opens() const { return dangling_opens_; }
  // Events referencing open ids that were never opened (corrupt traces).
  uint64_t orphan_events() const { return orphan_events_; }

  // Segment-boundary handoff.  TakeOpenStates surrenders the pending opens
  // (the reconstructor forgets them without counting them dangling);
  // AdoptOpenStates installs opens carried over from an earlier segment, so
  // their seeks and closes resolve here instead of counting as orphans.
  std::unordered_map<OpenId, OpenState> TakeOpenStates();
  void AdoptOpenStates(std::unordered_map<OpenId, OpenState> states);
  // The pending open for `id`, or nullptr.  Stitching uses this to recover
  // the opening user/mode for records whose encodings do not carry them.
  const OpenState* FindOpen(OpenId id) const;

 private:
  void EndRun(OpenState& state, SimTime end_time, uint64_t run_end);

  ReconstructionSink* sink_;
  BillingPolicy billing_;
  std::unordered_map<OpenId, OpenState> open_files_;
  uint64_t dangling_opens_ = 0;
  uint64_t orphan_events_ = 0;
};

// Convenience: run a whole trace through the reconstructor.
void Reconstruct(const Trace& trace, ReconstructionSink* sink,
                 BillingPolicy billing = BillingPolicy::kAtNextEvent);

class TraceSource;  // trace_source.h

// Streams a TraceSource through the reconstructor — one record in flight, so
// arbitrarily long on-disk traces reconstruct in bounded memory.  Returns the
// source's error if the stream fails mid-way (the sink will have seen a
// prefix of the results; discard them on error).
Status Reconstruct(TraceSource& source, ReconstructionSink* sink,
                   BillingPolicy billing = BillingPolicy::kAtNextEvent);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_RECONSTRUCT_H_
