// Dependency-free LZ codec for trace format v4 block payloads.
//
// The container bakes no third-party compressor into the on-disk format:
// blocks carry a codec id (TraceCodec), and this translation unit provides
// the one non-trivial codec — a greedy LZ77 parse whose output (literals,
// match lengths, match offsets) is entropy-coded with an adaptive binary
// range coder, in the LZMA spirit but a fraction of the size.  Plain
// byte-aligned LZ77 was measured at ~1.25x on v4's columnar payloads: the
// streams are varint residuals with little exact repetition but very low
// byte entropy (a handful of distinct time deltas, heavily skewed id
// residuals), which is exactly what adaptive probability modelling
// compresses and token-aligned LZ cannot.  Compression is deterministic:
// the same input bytes always produce the same output bytes, which is what
// keeps v4 files byte-reproducible across runs and thread counts.
//
// Coded symbol stream (until `dst_len` output bytes are produced):
//   bit   is_match (context: whether the previous symbol was a match)
//   literal:  8 bits MSB-first through a 256-entry bit tree whose context
//             is the previous output byte (order-1 literal model)
//   match:    length - kLzMinMatch as 8 bits through a bit tree (matches
//             are capped at kLzMaxMatch), then the offset as a 6-bit
//             position-slot tree plus direct bits, LZMA's distance split.
//             The parser only emits long matches (>= ~32 bytes): on the
//             skewed v4 streams the adaptive literal model beats short
//             matches, which exist mostly by collision, not by structure
//
// The decoder is fully bounds-checked and fails cleanly on any malformed
// stream (truncation, offsets into the void, trailing garbage); it never
// reads past `src + src_len` nor writes past `dst + dst_len`.  Encoder and
// decoder renormalize in lockstep, so a valid stream is consumed exactly.

#ifndef BSDTRACE_SRC_TRACE_LZ_CODEC_H_
#define BSDTRACE_SRC_TRACE_LZ_CODEC_H_

#include <cstddef>
#include <cstdint>

namespace bsdtrace {

// Codec id stored in every v4 block header.  Values are part of the binary
// format; do not renumber.
enum class TraceCodec : uint8_t {
  kNone = 0,  // payload stored as-is
  kLz = 1,    // this file's range-coded LZ stream
};

// Human-readable codec name ("none", "lz", or "codec<N>" for unknown ids).
const char* TraceCodecName(uint8_t codec);

inline constexpr size_t kLzMinMatch = 4;
inline constexpr size_t kLzMaxMatch = kLzMinMatch + 255;  // 8-bit length tree

// Worst-case compressed size for `n` input bytes.  An adversarial
// (anti-adaptive) input can cost several coded bits per literal bit, so the
// bound is a multiple of n, not n plus a constant; block writers compare
// against the raw size and fall back to TraceCodec::kNone, so the bound
// only sizes scratch buffers.
size_t LzMaxCompressedSize(size_t n);

// Compresses src[0, n) into dst (which must hold LzMaxCompressedSize(n)
// bytes) and returns the number of bytes written.  n == 0 yields the empty
// coder flush (a few bytes), never 0.
size_t LzCompress(const uint8_t* src, size_t n, uint8_t* dst);

// Decompresses src[0, src_len) into exactly dst_len output bytes.  Returns
// false — without writing past dst + dst_len — if the stream is malformed,
// truncated, carries trailing garbage, or decodes to any other length.
bool LzDecompress(const uint8_t* src, size_t src_len, uint8_t* dst, size_t dst_len);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_LZ_CODEC_H_
