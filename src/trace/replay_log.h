// Reconstruct-once replay log (the phase-1 half of the two-phase sweep
// engine; see DESIGN.md §"Two-phase cache sweeps").
//
// A cache sweep replays the same reconstructed transfer stream through tens
// of configurations.  Reconstruction itself — open-table hashing, the
// per-record switch, run splitting — is identical for every configuration
// that shares a billing policy, so it is wasted work to repeat it.  ReplayLog
// runs AccessReconstructor exactly once into a recording sink and stores the
// results as one flat, time-ordered vector of packed 40-byte events
// (transfers interleaved with the raw records, in the exact order the
// reconstructor delivered them).  ReplayInto() then streams the log into any
// sink as a single linear scan: no hashing, no per-open state, no branching
// beyond one switch on the packed event kind.
//
// Fidelity: the packed events carry every field the cache simulator reads
// (transfer time/file/offset/length/direction; record type/time/file/size).
// Replayed TraceRecords do NOT carry open ids, user ids, access modes, or
// seek positions, and OnAccess() is never invoked — the log captures the
// cache-simulation projection of the reconstruction, not a full trace copy.
// Sinks that need those fields (the sequentiality analyzer, say) must run
// against AccessReconstructor directly.
//
// One log is valid for one (trace, billing policy) pair: billing moves the
// transfer timestamps, so sweeping both billing bounds needs two logs.

#ifndef BSDTRACE_SRC_TRACE_REPLAY_LOG_H_
#define BSDTRACE_SRC_TRACE_REPLAY_LOG_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/fleet_tag.h"
#include "src/trace/reconstruct.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

// One packed replay event: either a reconstructed transfer or a raw trace
// record, discriminated by `kind`.  40 bytes, no pointers, no allocation
// (`instance` sits in what was padding after `kind`).
struct ReplayEvent {
  // Transfer kinds first; record kinds mirror EventType (same order).
  enum class Kind : uint8_t {
    kReadTransfer = 0,
    kWriteTransfer = 1,
    kOpen = 2,
    kCreate = 3,
    kClose = 4,
    kSeek = 5,
    kUnlink = 6,
    kTruncate = 7,
    kExecve = 8,
  };

  SimTime time;
  FileId file = kInvalidFileId;
  uint64_t offset = 0;  // transfers only
  uint64_t length = 0;  // transfer length, or record `size` payload
  Kind kind = Kind::kOpen;
  // Fleet instance the event belongs to, attributed from the v3/v4 fleet tag
  // in the trace header via the acting user id (0 for untagged traces).  The
  // §7 hierarchy simulator routes each event to that instance's client cache.
  uint16_t instance = 0;

  bool is_transfer() const {
    return kind == Kind::kReadTransfer || kind == Kind::kWriteTransfer;
  }
};

class TraceSource;  // trace_source.h

// The recorded reconstruction of one trace under one billing policy.
class ReplayLog {
 public:
  // Runs the reconstructor over `trace` and records the output stream.
  static ReplayLog Build(const Trace& trace,
                         BillingPolicy billing = BillingPolicy::kAtNextEvent);

  // Streams any TraceSource through the reconstructor — one record in
  // flight, so the peak footprint is the log itself, never trace + log.
  // Source errors (truncated file, corrupt header) surface as a Status.
  static StatusOr<ReplayLog> Build(TraceSource& source,
                                   BillingPolicy billing = BillingPolicy::kAtNextEvent);

  // Convenience: Build over a file-backed source (block-buffered reader).
  static StatusOr<ReplayLog> BuildFromFile(const std::string& path,
                                           BillingPolicy billing = BillingPolicy::kAtNextEvent);

  ReplayLog() = default;

  // Streams the recorded events into `sink` in recorded order.  Statically
  // typed so calls devirtualize when Sink is a final class (the simulator hot
  // path); safe to call concurrently from many threads — replay is read-only.
  template <typename Sink>
  void ReplayInto(Sink& sink) const {
    for (const ReplayEvent& e : events_) {
      if (e.is_transfer()) {
        sink.OnTransfer(UnpackTransfer(e));
      } else {
        sink.OnRecord(UnpackRecord(e));
      }
    }
  }

  // Streams only the events a data-block cache acts on: transfers plus
  // create/unlink/truncate (invalidation) and execve (page-in) records.
  // Open/close/seek records reach such a sink solely to advance its
  // simulation clock, so they are elided here — as are invalidations of
  // files with no preceding data event (provable runtime no-ops) — and their
  // clock effect is realized by the next surviving event; one synthetic
  // trailing seek record restores the final clock value (end-of-trace
  // residency censoring).
  //
  // Bit-identical to ReplayInto for CacheSimulator sinks with
  // simulate_metadata off (the replay parity test pins this); metadata
  // simulation reads open/close records and must use ReplayInto.
  template <typename Sink>
  void ReplayDataEventsInto(Sink& sink) const {
    for (const ReplayEvent& e : data_events_) {
      if (e.is_transfer()) {
        sink.OnTransfer(UnpackTransfer(e));
      } else {
        sink.OnRecord(UnpackRecord(e));
      }
    }
    if (has_clock_tail_) {
      TraceRecord r;
      r.type = EventType::kSeek;
      r.time = clock_tail_time_;
      sink.OnRecord(r);
    }
  }

  // The instance-attributed variant of ReplayDataEventsInto: same stream,
  // same elisions, but each event is delivered with the fleet instance it
  // was attributed to (`OnTransferFrom(instance, t)` / `OnRecordFrom(
  // instance, r)`).  The synthetic clock tail is delivered as instance 0 —
  // it exists only to advance clocks.  Untagged traces attribute everything
  // to instance 0.
  template <typename Sink>
  void ReplayDataEventsWithInstancesInto(Sink& sink) const {
    for (const ReplayEvent& e : data_events_) {
      if (e.is_transfer()) {
        sink.OnTransferFrom(e.instance, UnpackTransfer(e));
      } else {
        sink.OnRecordFrom(e.instance, UnpackRecord(e));
      }
    }
    if (has_clock_tail_) {
      TraceRecord r;
      r.type = EventType::kSeek;
      r.time = clock_tail_time_;
      sink.OnRecordFrom(static_cast<uint16_t>(0), r);
    }
  }

  // Virtual-dispatch convenience for heterogeneous sinks.
  void Replay(ReconstructionSink* sink) const { ReplayInto(*sink); }

  BillingPolicy billing() const { return billing_; }
  size_t event_count() const { return events_.size(); }
  // Events streamed by ReplayDataEventsInto (including the synthetic clock
  // tail, if any).
  size_t data_event_count() const {
    return data_events_.size() + (has_clock_tail_ ? 1 : 0);
  }
  size_t transfer_count() const { return transfer_count_; }
  size_t record_count() const { return events_.size() - transfer_count_; }
  // Number of distinct file ids appearing in the log; sized-reserve hint for
  // per-file hash tables in replay consumers.
  size_t distinct_files() const { return distinct_files_; }
  // Fleet instances parsed from the trace header (empty for untagged
  // traces) and the number of instances events are attributed to (>= 1:
  // untagged traces have the single implicit instance 0).
  const std::vector<FleetInstanceTag>& fleet() const { return fleet_; }
  size_t instance_count() const { return std::max<size_t>(1, fleet_.size()); }

  // Known-extent feeds: the highest data offset previously seen for the
  // accessed file, precomputed per transfer (and per nonempty execve) in
  // stream order.  The trajectory is configuration-independent except for
  // execve page-in reads, which extend extents only when simulated — hence
  // two transfer feeds.  A replaying simulator consumes these sequentially
  // instead of maintaining its own extent table (CacheSimulator::
  // SetExtentFeeds); both ReplayInto and ReplayDataEventsInto deliver
  // transfers and nonempty execves in identical order, so one feed serves
  // both.
  const std::vector<uint64_t>& transfer_extents() const { return transfer_extents_; }
  const std::vector<uint64_t>& transfer_extents_pagein() const {
    return transfer_extents_pagein_;
  }
  const std::vector<uint64_t>& execve_extents() const { return execve_extents_; }
  uint64_t dangling_opens() const { return dangling_opens_; }
  uint64_t orphan_events() const { return orphan_events_; }
  const std::vector<ReplayEvent>& events() const { return events_; }

 private:
  static Transfer UnpackTransfer(const ReplayEvent& e) {
    Transfer t;
    t.time = e.time;
    t.file_id = e.file;
    t.direction = e.kind == ReplayEvent::Kind::kWriteTransfer
                      ? TransferDirection::kWrite
                      : TransferDirection::kRead;
    t.offset = e.offset;
    t.length = e.length;
    return t;
  }

  static TraceRecord UnpackRecord(const ReplayEvent& e) {
    TraceRecord r;
    r.type = static_cast<EventType>(static_cast<uint8_t>(e.kind) - 1);
    r.time = e.time;
    r.file_id = e.file;
    r.size = e.length;
    return r;
  }

  void BuildDerivedStreams();

  BillingPolicy billing_ = BillingPolicy::kAtNextEvent;
  std::vector<FleetInstanceTag> fleet_;
  std::vector<ReplayEvent> events_;
  // Dense copy of the non-elidable events (see ReplayDataEventsInto) in
  // stream order: replays stream it sequentially with no indirection.
  std::vector<ReplayEvent> data_events_;
  std::vector<uint64_t> transfer_extents_;         // execve page-in NOT simulated
  std::vector<uint64_t> transfer_extents_pagein_;  // execve page-in simulated
  std::vector<uint64_t> execve_extents_;           // page-in trajectory
  SimTime clock_tail_time_;
  bool has_clock_tail_ = false;
  size_t transfer_count_ = 0;
  size_t distinct_files_ = 0;
  uint64_t dangling_opens_ = 0;
  uint64_t orphan_events_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_REPLAY_LOG_H_
