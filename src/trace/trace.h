// In-memory trace container and the sink interface trace producers write to.

#ifndef BSDTRACE_SRC_TRACE_TRACE_H_
#define BSDTRACE_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/record.h"

namespace bsdtrace {

// Metadata carried at the front of every trace (file or in-memory).
struct TraceHeader {
  // The traced machine, e.g. "ucbarpa" (the paper's trace names A5/E3/C4
  // correspond to machines).
  std::string machine = "unknown";
  // Free-form description (generator parameters, seed, ...).
  std::string description;

  bool operator==(const TraceHeader&) const = default;
};

// Consumer interface for a stream of trace records.  The traced kernel emits
// records through this; implementations include the in-memory Trace, the
// binary file writer, and analyzer pipelines.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Append(const TraceRecord& record) = 0;
};

// A complete trace held in memory.  Records are expected to be in
// non-decreasing time order (validated by TraceValidator).
class Trace : public TraceSink {
 public:
  Trace() = default;
  explicit Trace(TraceHeader header) : header_(std::move(header)) {}

  void Append(const TraceRecord& record) override { records_.push_back(record); }

  // Pre-sizes the record vector (e.g. from a binary header's record count).
  void Reserve(size_t record_count) { records_.reserve(record_count); }

  const TraceHeader& header() const { return header_; }
  TraceHeader& header() { return header_; }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord>& records() { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Time of the last record (the trace duration, since traces start at 0).
  Duration duration() const {
    return records_.empty() ? Duration::Zero()
                            : records_.back().time - SimTime::Origin();
  }

  bool operator==(const Trace& o) const {
    return header_ == o.header_ && records_ == o.records_;
  }

 private:
  TraceHeader header_;
  std::vector<TraceRecord> records_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_H_
