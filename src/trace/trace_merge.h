// On-disk k-way merge: a TraceSource that interleaves k time-ordered input
// sources into one time-ordered stream, holding exactly one buffered record
// per input.
//
// The merge is a loser tree (tournament tree of losers): each Next() pops the
// overall winner, refills that one leaf from its input, and replays only the
// winner's path to the root — log2(k) comparisons per record instead of the
// 2·log2(k) a binary heap's sift-down costs, and no per-record allocation.
//
// Ordering and determinism: records compare by (time, input index), so ties
// across inputs break toward the lower input and records from one input are
// never reordered.  This is exactly the in-memory sharded merge's contract
// (sharded_generator.h), which is how the spill-to-disk generation path
// stays byte-identical to the all-in-memory one.
//
// A per-record rewrite hook is applied as records are pulled — the sharded
// generator uses it to remap shard-local FileIds/OpenIds into their global
// interleaved ranges without a second pass.  Rewrites MUST preserve record
// times (the merge order is decided on the stored time).
//
// Errors: if any input fails (truncated spill file, corrupt header), the
// merge stops and surfaces that input's Status; a clean end of all inputs
// leaves status() ok.

#ifndef BSDTRACE_SRC_TRACE_TRACE_MERGE_H_
#define BSDTRACE_SRC_TRACE_TRACE_MERGE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/trace/trace_source.h"

namespace bsdtrace {

class MergingTraceSource : public TraceSource {
 public:
  // Called on each record as it is pulled, with the index of the input it
  // came from.  May rewrite ids/payload but not the time.
  using Rewrite = std::function<void(size_t input_index, TraceRecord& record)>;

  // The merged stream carries `header` (inputs' own headers are ignored).
  // Inputs may be empty sources; an empty input list yields an empty stream.
  MergingTraceSource(std::vector<std::unique_ptr<TraceSource>> inputs,
                     TraceHeader header, Rewrite rewrite = nullptr);

  const TraceHeader& header() const override { return header_; }
  bool Next(TraceRecord* record) override;
  Status status() const override { return status_; }
  // Sum of the input hints, or -1 if any input lacks one.
  int64_t size_hint() const override { return size_hint_; }

 private:
  struct Leaf {
    TraceRecord record;
    bool valid = false;  // false: input exhausted (or errored)
  };

  // true when leaf a's current record must come out before leaf b's:
  // (time, input) lexicographic, exhausted leaves last.
  bool Beats(size_t a, size_t b) const;
  // Refills leaf `i` from its input; on input error latches status_.
  void Refill(size_t i);
  // Replays leaf i's path to the root after its record changed.
  void Replay(size_t i);

  TraceHeader header_;
  Rewrite rewrite_;
  std::vector<std::unique_ptr<TraceSource>> inputs_;
  std::vector<Leaf> leaves_;
  // tree_[0] is the overall winner; tree_[1..k-1] hold the loser of the
  // match played at that internal node.  Leaf i sits below node (i + k) / 2.
  std::vector<size_t> tree_;
  Status status_ = Status::Ok();
  int64_t size_hint_ = -1;
  bool done_ = false;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_MERGE_H_
