#include "src/trace/trace_merge.h"

namespace bsdtrace {

// Tree layout (standard loser tree, any k >= 2): leaf i sits at conceptual
// node i + k; internal nodes 1..k-1 play matches, node j's children being
// nodes 2j and 2j+1; tree_[0] holds the overall winner.  Exhausted leaves
// lose every match, so they sink to the bottom of the bracket and the merge
// ends when the champion itself is exhausted.

MergingTraceSource::MergingTraceSource(std::vector<std::unique_ptr<TraceSource>> inputs,
                                       TraceHeader header, Rewrite rewrite)
    : header_(std::move(header)), rewrite_(std::move(rewrite)), inputs_(std::move(inputs)) {
  const size_t k = inputs_.size();
  leaves_.resize(k);
  if (k == 0) {
    done_ = true;
    return;
  }
  size_hint_ = 0;
  for (const auto& input : inputs_) {
    const int64_t hint = input->size_hint();
    if (hint < 0 || size_hint_ < 0) {
      size_hint_ = -1;
    } else {
      size_hint_ += hint;
    }
  }
  for (size_t i = 0; i < k; ++i) {
    Refill(i);
  }
  if (k == 1) {
    tree_.assign(1, 0);
    return;
  }
  // Bottom-up build: play every match once, storing the loser at the match
  // node and carrying the winner upward.
  tree_.resize(k);
  std::vector<size_t> winner(2 * k);
  for (size_t m = k; m < 2 * k; ++m) {
    winner[m] = m - k;
  }
  for (size_t j = k - 1; j >= 1; --j) {
    const size_t a = winner[2 * j];
    const size_t b = winner[2 * j + 1];
    const bool a_wins = Beats(a, b);
    winner[j] = a_wins ? a : b;
    tree_[j] = a_wins ? b : a;
  }
  tree_[0] = winner[1];
}

bool MergingTraceSource::Beats(size_t a, size_t b) const {
  const Leaf& la = leaves_[a];
  const Leaf& lb = leaves_[b];
  if (la.valid != lb.valid) {
    return la.valid;  // live records beat exhausted leaves
  }
  if (!la.valid) {
    return a < b;  // both exhausted: arbitrary but total
  }
  if (la.record.time != lb.record.time) {
    return la.record.time < lb.record.time;
  }
  return a < b;  // tie: lower input index first (merge stability)
}

void MergingTraceSource::Refill(size_t i) {
  Leaf& leaf = leaves_[i];
  leaf.valid = inputs_[i]->Next(&leaf.record);
  if (!leaf.valid && status_.ok()) {
    const Status input_status = inputs_[i]->status();
    if (!input_status.ok()) {
      status_ = input_status;
    }
  }
}

void MergingTraceSource::Replay(size_t i) {
  const size_t k = leaves_.size();
  size_t cur = i;
  for (size_t node = (i + k) / 2; node >= 1; node /= 2) {
    if (Beats(tree_[node], cur)) {
      std::swap(cur, tree_[node]);
    }
  }
  tree_[0] = cur;
}

bool MergingTraceSource::Next(TraceRecord* record) {
  if (done_ || !status_.ok()) {
    return false;
  }
  const size_t winner = tree_[0];
  if (!leaves_[winner].valid) {
    done_ = true;  // every input exhausted
    return false;
  }
  *record = leaves_[winner].record;
  if (rewrite_) {
    rewrite_(winner, *record);
  }
  Refill(winner);
  if (leaves_.size() > 1) {
    Replay(winner);
  }
  return true;
}

}  // namespace bsdtrace
