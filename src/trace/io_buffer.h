// Block-buffered byte I/O for the binary trace codec.
//
// The varint codec touches the stream one byte at a time; routing every byte
// through std::istream/std::ostream costs a virtual call (and a sentry
// object, on reads) per byte, which dominates trace load/save time on
// million-record traces.  BufferedWriter and BufferedReader move bytes
// through 64 KB blocks instead: the hot path is a bounds check plus an
// inlined array access, with a bulk-memcpy path for runs of bytes and a
// direct-pointer window (`Reserve`/`Contiguous`) so whole records can be
// encoded or decoded against raw memory and committed in one step.
//
// The reader prefers mapping the whole file read-only (one contiguous
// window, no copies, the kernel readahead does the blocking) and falls back
// to buffered stdio when mmap is unavailable or fails.  Both classes report
// failures through Status rather than exceptions, like the rest of the I/O
// layer.

#ifndef BSDTRACE_SRC_TRACE_IO_BUFFER_H_
#define BSDTRACE_SRC_TRACE_IO_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/util/status.h"

namespace bsdtrace {

// Buffered file writer.  All writes are accepted after an error (and
// dropped); the first error is sticky and surfaced by status()/Close().
class BufferedWriter {
 public:
  static constexpr size_t kBlockSize = 64 * 1024;

  explicit BufferedWriter(const std::string& path);
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  void PutByte(uint8_t b) {
    if (pos_ == kBlockSize) {
      Flush();
    }
    buf_[pos_++] = b;
  }

  // Bulk append; memcpy into the block, flushing as needed.
  void Write(const void* data, size_t n);

  // Direct-encode fast path: returns a cursor with at least `n` writable
  // bytes (n <= kBlockSize), flushing first if the block is too full.
  // Commit the bytes actually produced with Advance().
  uint8_t* Reserve(size_t n);
  void Advance(size_t n) { pos_ += n; }

  // Bytes accepted so far (flushed + buffered).
  uint64_t bytes_written() const { return flushed_ + pos_; }

  // Flushes, closes, and returns the final status.  Idempotent; the
  // destructor calls it if the caller has not.
  Status Close();

 private:
  void Flush();
  void Fail(const std::string& message);

  std::FILE* file_ = nullptr;
  std::unique_ptr<uint8_t[]> buf_;
  size_t pos_ = 0;
  uint64_t flushed_ = 0;
  Status status_ = Status::Ok();
  std::string path_;
};

// Buffered file reader with an optional mmap window.
class BufferedReader {
 public:
  static constexpr size_t kBlockSize = 64 * 1024;

  explicit BufferedReader(const std::string& path, bool prefer_mmap = true);
  ~BufferedReader();

  BufferedReader(const BufferedReader&) = delete;
  BufferedReader& operator=(const BufferedReader&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  bool mapped() const { return map_base_ != nullptr; }

  // Next byte, or -1 at end of file / on error.
  int GetByte() {
    if (pos_ < end_) {
      return data_[pos_++];
    }
    return GetByteSlow();
  }

  // Bulk read of exactly `n` bytes; false (with the cursor at end of the
  // consumed prefix) if the file ends first.
  bool Read(void* out, size_t n);

  // Direct-decode fast path: a pointer to the next unconsumed bytes with
  // *available = min(n, bytes remaining in the file) guaranteed valid
  // (n <= kBlockSize; the mmap path usually exposes far more).  Consume with
  // Advance().  Inlined because callers hit it once per record.
  const uint8_t* Contiguous(size_t n, size_t* available) {
    if (end_ - pos_ >= n) {
      *available = end_ - pos_;
      return data_ + pos_;
    }
    return ContiguousSlow(n, available);
  }
  void Advance(size_t n) { pos_ += n; }

  // Repositions the cursor to an absolute file offset (trace format v3
  // cursors seek to index entries).  On the mmap path this is a pointer
  // move; on stdio it discards the buffer and fseeks.  Seeking past the end
  // of the file fails (sticky status).
  Status SkipTo(uint64_t offset);

 private:
  const uint8_t* ContiguousSlow(size_t n, size_t* available);
  int GetByteSlow();
  // Moves the unconsumed tail to the front of the block and refills from the
  // file; returns false at end of file with nothing buffered.
  bool Refill();
  void Fail(const std::string& message);

  const uint8_t* data_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;

  // Buffered-stdio path.
  std::FILE* file_ = nullptr;
  std::unique_ptr<uint8_t[]> buf_;

  // mmap path.
  void* map_base_ = nullptr;
  size_t map_size_ = 0;

  Status status_ = Status::Ok();
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_IO_BUFFER_H_
