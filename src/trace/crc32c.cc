#include "src/trace/crc32c.h"

#include <cstring>

namespace bsdtrace {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

// 8 tables of 256 entries: table[0] is the classic byte-at-a-time table,
// table[k][b] extends a CRC by byte b followed by k zero bytes, which lets
// the hot loop fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Byte-at-a-time until the cursor is 8-aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  // Slice-by-8 over the aligned middle (the fold below is little-endian).
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;  // fold the running CRC into the low 4 bytes
    crc = kTables.t[7][chunk & 0xFF] ^ kTables.t[6][(chunk >> 8) & 0xFF] ^
          kTables.t[5][(chunk >> 16) & 0xFF] ^ kTables.t[4][(chunk >> 24) & 0xFF] ^
          kTables.t[3][(chunk >> 32) & 0xFF] ^ kTables.t[2][(chunk >> 40) & 0xFF] ^
          kTables.t[1][(chunk >> 48) & 0xFF] ^ kTables.t[0][(chunk >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
#endif
  while (n > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace bsdtrace
