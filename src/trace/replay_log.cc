#include "src/trace/replay_log.h"

#include <algorithm>

#include "src/trace/trace_source.h"
#include "src/util/flat_map.h"

namespace bsdtrace {
namespace {

// Maps acting user ids to fleet instances via the header tag's user ranges.
// Instance i owns [user_base, user_base + user_population + 2) — the two
// daemon ids plus the interactive users (see fleet_tag.h).  Users outside
// every range (and all users of untagged traces) attribute to instance 0.
class InstanceAttributor {
 public:
  explicit InstanceAttributor(const std::vector<FleetInstanceTag>& tags) {
    ranges_.reserve(tags.size());
    for (size_t i = 0; i < tags.size(); ++i) {
      const UserId first = tags[i].user_base;
      const UserId last =
          tags[i].user_base + 1 +
          static_cast<UserId>(tags[i].user_population > 0 ? tags[i].user_population : 0);
      ranges_.push_back({first, last, static_cast<uint16_t>(i)});
    }
    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range& a, const Range& b) { return a.first < b.first; });
  }

  uint16_t InstanceOf(UserId user) const {
    if (ranges_.empty()) {
      return 0;
    }
    // Last range starting at or before `user`.
    size_t lo = 0, hi = ranges_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (ranges_[mid].first <= user) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) {
      return 0;
    }
    const Range& r = ranges_[lo - 1];
    return user <= r.last ? r.instance : 0;
  }

 private:
  struct Range {
    UserId first = 0;
    UserId last = 0;
    uint16_t instance = 0;
  };
  std::vector<Range> ranges_;
};

// Records the reconstructor's output stream as packed events, preserving the
// exact OnTransfer/OnRecord interleaving so replay reproduces it verbatim.
class RecordingSink : public ReconstructionSink {
 public:
  RecordingSink(std::vector<ReplayEvent>* events, const InstanceAttributor* attributor)
      : events_(events), attributor_(attributor) {}

  void OnTransfer(const Transfer& t) override {
    ReplayEvent e;
    e.time = t.time;
    e.file = t.file_id;
    e.offset = t.offset;
    e.length = t.length;
    e.kind = t.direction == TransferDirection::kWrite
                 ? ReplayEvent::Kind::kWriteTransfer
                 : ReplayEvent::Kind::kReadTransfer;
    e.instance = attributor_->InstanceOf(t.user_id);
    events_->push_back(e);
    ++transfer_count;
  }

  void OnRecord(const TraceRecord& r) override {
    ReplayEvent e;
    e.time = r.time;
    e.file = r.file_id;
    e.length = r.size;
    e.kind = static_cast<ReplayEvent::Kind>(static_cast<uint8_t>(r.type) + 1);
    // close/seek records carry no user id and attribute to instance 0; they
    // are clock-only for every instance-aware sink, so the attribution is
    // irrelevant (and they are elided from the data-event stream anyway).
    e.instance = attributor_->InstanceOf(r.user_id);
    events_->push_back(e);
  }

  size_t transfer_count = 0;

 private:
  std::vector<ReplayEvent>* events_;
  const InstanceAttributor* attributor_;
};

}  // namespace

ReplayLog ReplayLog::Build(const Trace& trace, BillingPolicy billing) {
  ReplayLog log;
  log.billing_ = billing;
  log.fleet_ = ParseFleetTag(trace.header().description);
  const InstanceAttributor attributor(log.fleet_);
  // Every record yields one record event; transfers add at most one more per
  // seek/close, so 2x is a safe upper bound that avoids regrowth.
  log.events_.reserve(trace.size() * 2);
  RecordingSink sink(&log.events_, &attributor);
  AccessReconstructor reconstructor(&sink, billing);
  for (const TraceRecord& r : trace.records()) {
    reconstructor.Process(r);
  }
  reconstructor.Finish();
  log.events_.shrink_to_fit();
  log.transfer_count_ = sink.transfer_count;
  log.dangling_opens_ = reconstructor.dangling_opens();
  log.orphan_events_ = reconstructor.orphan_events();
  log.BuildDerivedStreams();
  return log;
}

StatusOr<ReplayLog> ReplayLog::Build(TraceSource& source, BillingPolicy billing) {
  if (!source.status().ok()) {
    return source.status();
  }
  ReplayLog log;
  log.billing_ = billing;
  log.fleet_ = ParseFleetTag(source.header().description);
  const InstanceAttributor attributor(log.fleet_);
  if (source.size_hint() > 0) {
    // The hint is clamped by the source to what its backing store could
    // plausibly hold, so a lying header cannot drive an unbounded reserve.
    log.events_.reserve(static_cast<size_t>(source.size_hint()) * 2);
  }
  RecordingSink sink(&log.events_, &attributor);
  AccessReconstructor reconstructor(&sink, billing);
  // Records stream from the source straight into the reconstructor — the
  // full Trace is never materialized, so building a log from an on-disk
  // trace peaks at the size of the log, not trace + log.
  TraceRecord r;
  while (source.Next(&r)) {
    reconstructor.Process(r);
  }
  if (!source.status().ok()) {
    return source.status();
  }
  reconstructor.Finish();
  log.events_.shrink_to_fit();
  log.transfer_count_ = sink.transfer_count;
  log.dangling_opens_ = reconstructor.dangling_opens();
  log.orphan_events_ = reconstructor.orphan_events();
  log.BuildDerivedStreams();
  return log;
}

StatusOr<ReplayLog> ReplayLog::BuildFromFile(const std::string& path, BillingPolicy billing) {
  TraceFileSource source(path);
  return Build(source, billing);
}

// A clock-only record (open/close/seek) may be elided only when its clock
// advance is realized no later than the full replay would have realized it,
// relative to every event that does observable work.  Under kAtNextEvent the
// stream is time-monotone and this always holds, but kAtPreviousEvent bills
// transfers at the previous event's time, so a transfer later in the stream
// can carry an EARLIER timestamp than the record before it — eliding that
// record would delay a flush-back boundary crossing past the transfer and
// change which blocks the scan sees.
//
// Backward walk with a "floor": the elision of a record at time t is safe iff
// t <= the time of every kept event between it and the next kept event that
// unconditionally advances the clock (transfers and non-execve records;
// execve only advances when page-in simulation is on, so it bounds but does
// not reset the floor).  The synthetic tail — the maximum time over all
// unconditionally-advancing events — bounds the final run.
//
// The same forward walk precomputes, for every transfer (and every nonempty
// execve), the file's known extent at that point in the stream — the exact
// value the simulator's per-file extent table would hold.  Mirrors
// CacheSimulator: a transfer raises the extent to offset+length, an execve
// page-in read raises it to the program size (only when page-in is simulated
// — tracked as a separate trajectory), create/unlink drop the entry,
// truncate lowers it; absent entries read as extent 0.  It also counts
// distinct files (ReserveFiles sizing).  kInvalidFileId is the FlatMap empty
// sentinel so it is tallied out of band; like the simulator's own extent
// table, the maps assume real file ids on transfers and invalidations.
void ReplayLog::BuildDerivedStreams() {
  data_events_.clear();
  has_clock_tail_ = false;
  transfer_extents_.clear();
  transfer_extents_pagein_.clear();
  execve_extents_.clear();
  distinct_files_ = 0;
  if (events_.empty()) {
    return;
  }
  transfer_extents_.reserve(transfer_count_);
  transfer_extents_pagein_.reserve(transfer_count_);
  using ExtentMap = FlatMap<FileId, uint64_t, IdHash>;
  ExtentMap base{kInvalidFileId, 1024};    // page-in not simulated
  ExtentMap pagein{kInvalidFileId, 1024};  // page-in simulated
  // Files with a preceding transfer or page-in read: an invalidation
  // (create/unlink/truncate) of any OTHER file is a runtime no-op for a
  // data-block sink — the cache cannot hold the file's blocks and the
  // known-extent table cannot have an entry (invalidations never create
  // one).  Such records are clock-only, exactly like open/close/seek.
  // Common case: a create precedes its file's first write.  An execve
  // record with a zero size does nothing at all (not even a clock advance)
  // and is dropped.
  FlatMap<FileId, uint8_t, IdHash> data_seen{kInvalidFileId, 1024};
  FlatMap<FileId, uint8_t, IdHash> seen{kInvalidFileId, 1024};
  bool saw_invalid_file = false;
  auto raise = [](ExtentMap& ext, FileId file, uint64_t to) {
    uint64_t& e = ext[file];
    e = std::max(e, to);
  };
  auto lower = [](ExtentMap& ext, FileId file, uint64_t first_byte) {
    if (first_byte == 0) {
      ext.Erase(file);
      return;
    }
    if (uint64_t* e = ext.Find(file)) {
      *e = std::min(*e, first_byte);
    }
  };
  auto lookup = [](ExtentMap& ext, FileId file) {
    const uint64_t* e = ext.Find(file);
    return e != nullptr ? *e : 0;
  };
  SimTime max_clock;
  bool any_clock = false;
  std::vector<uint8_t> clock_only_flag(events_.size(), 0);
  for (size_t i = 0; i < events_.size(); ++i) {
    const ReplayEvent& e = events_[i];
    if (e.file == kInvalidFileId) {
      saw_invalid_file = true;
    } else {
      seen[e.file] = 1;
    }
    if (e.kind != ReplayEvent::Kind::kExecve && (!any_clock || e.time > max_clock)) {
      max_clock = e.time;
      any_clock = true;
    }
    switch (e.kind) {
      case ReplayEvent::Kind::kReadTransfer:
      case ReplayEvent::Kind::kWriteTransfer:
        data_seen[e.file] = 1;
        transfer_extents_.push_back(lookup(base, e.file));
        transfer_extents_pagein_.push_back(lookup(pagein, e.file));
        if (e.length > 0) {  // zero-length transfers don't reach the table
          raise(base, e.file, e.offset + e.length);
          raise(pagein, e.file, e.offset + e.length);
        }
        break;
      case ReplayEvent::Kind::kExecve:
        if (e.length > 0) {
          data_seen[e.file] = 1;
          execve_extents_.push_back(lookup(pagein, e.file));
          raise(pagein, e.file, e.length);
        }
        break;
      case ReplayEvent::Kind::kCreate:
      case ReplayEvent::Kind::kUnlink:
        if (data_seen.Find(e.file) == nullptr) {
          clock_only_flag[i] = 1;
        }
        lower(base, e.file, 0);
        lower(pagein, e.file, 0);
        break;
      case ReplayEvent::Kind::kTruncate:
        if (data_seen.Find(e.file) == nullptr) {
          clock_only_flag[i] = 1;
        }
        lower(base, e.file, e.length);
        lower(pagein, e.file, e.length);
        break;
      default:  // open/close/seek only advance the clock
        clock_only_flag[i] = 1;
        break;
    }
  }
  distinct_files_ = seen.size() + (saw_invalid_file ? 1 : 0);
  SimTime floor = max_clock;
  bool have_floor = any_clock;
  size_t elided = 0;
  for (size_t i = events_.size(); i-- > 0;) {
    const ReplayEvent& e = events_[i];
    if (e.kind == ReplayEvent::Kind::kExecve && e.length == 0) {
      continue;  // complete no-op: no clock advance to preserve
    }
    const bool clock_only = clock_only_flag[i] != 0;
    if (clock_only && have_floor && !(e.time > floor)) {
      ++elided;
      continue;
    }
    data_events_.push_back(e);
    if (e.kind == ReplayEvent::Kind::kExecve) {
      if (!have_floor || e.time < floor) {
        floor = e.time;
      }
    } else {
      floor = e.time;
    }
    have_floor = true;
  }
  std::reverse(data_events_.begin(), data_events_.end());
  if (elided > 0) {
    has_clock_tail_ = true;
    clock_tail_time_ = max_clock;
  }
}

}  // namespace bsdtrace
