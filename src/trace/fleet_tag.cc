#include "src/trace/fleet_tag.h"

#include <cstdlib>

namespace bsdtrace {
namespace {

constexpr char kTagIntro[] = "; fleet ";
constexpr size_t kTagIntroLen = sizeof(kTagIntro) - 1;

// Parses a non-negative decimal integer spanning [pos, end) of `s` exactly.
bool ParseUint(const std::string& s, size_t pos, size_t end, uint64_t* out) {
  if (pos >= end) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = pos; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(s[i] - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string AppendFleetTag(std::string description,
                           const std::vector<FleetInstanceTag>& instances) {
  if (instances.empty()) {
    return description;
  }
  description += kTagIntro;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) {
      description += '+';
    }
    description += instances[i].trace_name;
    description += ':';
    description += std::to_string(instances[i].user_base);
    description += ':';
    description += std::to_string(instances[i].user_population);
  }
  return description;
}

std::vector<FleetInstanceTag> ParseFleetTag(const std::string& description) {
  const size_t intro = description.rfind(kTagIntro);
  if (intro == std::string::npos) {
    return {};
  }
  std::vector<FleetInstanceTag> instances;
  size_t pos = intro + kTagIntroLen;
  while (pos < description.size()) {
    size_t end = description.find('+', pos);
    if (end == std::string::npos) {
      end = description.size();
    }
    // One entry: name:base:population.
    const size_t c1 = description.find(':', pos);
    if (c1 == std::string::npos || c1 >= end) {
      return {};
    }
    const size_t c2 = description.find(':', c1 + 1);
    if (c2 == std::string::npos || c2 >= end) {
      return {};
    }
    FleetInstanceTag tag;
    tag.trace_name = description.substr(pos, c1 - pos);
    uint64_t base = 0, population = 0;
    if (tag.trace_name.empty() || !ParseUint(description, c1 + 1, c2, &base) ||
        !ParseUint(description, c2 + 1, end, &population)) {
      return {};
    }
    tag.user_base = static_cast<UserId>(base);
    tag.user_population = static_cast<int>(population);
    instances.push_back(std::move(tag));
    pos = end + 1;
    if (end == description.size()) {
      break;
    }
    if (pos >= description.size()) {
      return {};  // trailing '+' with no entry after it
    }
  }
  return instances;
}

}  // namespace bsdtrace
