#include "src/trace/record.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "src/util/parse.h"

namespace bsdtrace {

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kReadOnly:
      return "r";
    case AccessMode::kWriteOnly:
      return "w";
    case AccessMode::kReadWrite:
      return "rw";
  }
  return "?";
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kOpen:
      return "open";
    case EventType::kCreate:
      return "create";
    case EventType::kClose:
      return "close";
    case EventType::kSeek:
      return "seek";
    case EventType::kUnlink:
      return "unlink";
    case EventType::kTruncate:
      return "truncate";
    case EventType::kExecve:
      return "execve";
  }
  return "?";
}

namespace {

// Renders microseconds as fixed-point seconds with 6 fractional digits.
// Integer arithmetic throughout: "%.6f" of micros/1e6 misrounds once the
// double's representation error reaches half a microsecond, which would
// break the Parse(ToString()) round-trip on large timestamps.
void FormatTime(int64_t us, char* buf, size_t len) {
  const char* sign = "";
  uint64_t mag = static_cast<uint64_t>(us);
  if (us < 0) {
    sign = "-";
    mag = 0 - mag;  // two's complement negate; correct even for INT64_MIN
  }
  std::snprintf(buf, len, "%s%" PRIu64 ".%06" PRIu64, sign, mag / 1000000, mag % 1000000);
}

}  // namespace

std::string TraceRecord::ToString() const {
  char ts[32];
  FormatTime(time.micros(), ts, sizeof(ts));
  char buf[256];
  switch (type) {
    case EventType::kOpen:
    case EventType::kCreate:
      std::snprintf(buf, sizeof(buf),
                    "%s\t%s\toid=%" PRIu64 "\tfile=%" PRIu64 "\tuser=%u\tmode=%s\tsize=%" PRIu64
                    "\tpos=%" PRIu64,
                    ts, EventTypeName(type), open_id, file_id, user_id, AccessModeName(mode),
                    size, position);
      break;
    case EventType::kClose:
      std::snprintf(buf, sizeof(buf),
                    "%s\tclose\toid=%" PRIu64 "\tfile=%" PRIu64 "\tpos=%" PRIu64
                    "\tsize=%" PRIu64,
                    ts, open_id, file_id, position, size);
      break;
    case EventType::kSeek:
      std::snprintf(buf, sizeof(buf),
                    "%s\tseek\toid=%" PRIu64 "\tfile=%" PRIu64 "\tfrom=%" PRIu64
                    "\tto=%" PRIu64,
                    ts, open_id, file_id, seek_from, seek_to);
      break;
    case EventType::kUnlink:
      std::snprintf(buf, sizeof(buf), "%s\tunlink\tfile=%" PRIu64 "\tuser=%u", ts, file_id,
                    user_id);
      break;
    case EventType::kTruncate:
      std::snprintf(buf, sizeof(buf), "%s\ttruncate\tfile=%" PRIu64 "\tuser=%u\tlen=%" PRIu64,
                    ts, file_id, user_id, size);
      break;
    case EventType::kExecve:
      std::snprintf(buf, sizeof(buf), "%s\texecve\tfile=%" PRIu64 "\tuser=%u\tsize=%" PRIu64,
                    ts, file_id, user_id, size);
      break;
  }
  return buf;
}

namespace {

// Splits a record line on runs of tabs/spaces.  ToString emits single tabs;
// accepting space runs too makes hand-written fixtures pleasant without
// introducing ambiguity (no field value contains whitespace).
std::vector<std::string_view> SplitRecordLine(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == '\t' || line[i] == ' ')) {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != '\t' && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

// "key=value" with a strict decimal uint64 value.
bool ParseKeyedUint(std::string_view token, std::string_view key, uint64_t* out) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return false;
  }
  return ParseUint64(token.substr(key.size() + 1), out);
}

bool ParseKeyedMode(std::string_view token, AccessMode* out) {
  if (token == "mode=r") {
    *out = AccessMode::kReadOnly;
  } else if (token == "mode=w") {
    *out = AccessMode::kWriteOnly;
  } else if (token == "mode=rw") {
    *out = AccessMode::kReadWrite;
  } else {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<TraceRecord> ParseTraceRecord(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitRecordLine(line);
  if (tokens.size() < 2) {
    return Status::Error("too few fields");
  }
  TraceRecord r;
  int64_t us = 0;
  if (!ParseSecondsToMicros(tokens[0], &us)) {
    return Status::Error("bad timestamp \"" + std::string(tokens[0]) + "\"");
  }
  r.time = SimTime::FromMicros(us);

  const std::string_view type = tokens[1];
  // Exact field count per type, checked up front so a failed take always
  // points at a genuinely malformed token rather than a missing one.
  auto expect_count = [&](size_t n) -> bool { return tokens.size() == n; };
  size_t next = 2;
  auto take = [&](std::string_view key, uint64_t* out) -> bool {
    return next < tokens.size() && ParseKeyedUint(tokens[next++], key, out);
  };
  auto field_error = [&]() -> Status {
    return Status::Error("bad or misplaced field \"" + std::string(tokens[next - 1]) + "\"");
  };
  auto count_error = [&](size_t n) -> Status {
    return Status::Error("expected " + std::to_string(n) + " fields for " + std::string(type) +
                         ", got " + std::to_string(tokens.size()));
  };
  uint64_t user = 0;

  if (type == "open" || type == "create") {
    if (!expect_count(8)) {
      return count_error(8);
    }
    r.type = type == "open" ? EventType::kOpen : EventType::kCreate;
    if (!take("oid", &r.open_id) || !take("file", &r.file_id) || !take("user", &user)) {
      return field_error();
    }
    if (next >= tokens.size() || !ParseKeyedMode(tokens[next++], &r.mode)) {
      return Status::Error("bad or missing mode field");
    }
    if (!take("size", &r.size) || !take("pos", &r.position)) {
      return field_error();
    }
  } else if (type == "close") {
    if (!expect_count(6)) {
      return count_error(6);
    }
    r.type = EventType::kClose;
    if (!take("oid", &r.open_id) || !take("file", &r.file_id) || !take("pos", &r.position) ||
        !take("size", &r.size)) {
      return field_error();
    }
  } else if (type == "seek") {
    if (!expect_count(6)) {
      return count_error(6);
    }
    r.type = EventType::kSeek;
    if (!take("oid", &r.open_id) || !take("file", &r.file_id) || !take("from", &r.seek_from) ||
        !take("to", &r.seek_to)) {
      return field_error();
    }
  } else if (type == "unlink") {
    if (!expect_count(4)) {
      return count_error(4);
    }
    r.type = EventType::kUnlink;
    if (!take("file", &r.file_id) || !take("user", &user)) {
      return field_error();
    }
  } else if (type == "truncate") {
    if (!expect_count(5)) {
      return count_error(5);
    }
    r.type = EventType::kTruncate;
    if (!take("file", &r.file_id) || !take("user", &user) || !take("len", &r.size)) {
      return field_error();
    }
  } else if (type == "execve") {
    if (!expect_count(5)) {
      return count_error(5);
    }
    r.type = EventType::kExecve;
    if (!take("file", &r.file_id) || !take("user", &user) || !take("size", &r.size)) {
      return field_error();
    }
  } else {
    return Status::Error("unknown event type \"" + std::string(type) + "\"");
  }

  if (user > 0xFFFFFFFFull) {
    return Status::Error("user id overflows 32 bits");
  }
  r.user_id = static_cast<UserId>(user);
  return r;
}

TraceRecord MakeOpen(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode,
                     uint64_t size_at_open, uint64_t initial_position) {
  TraceRecord r;
  r.type = EventType::kOpen;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.user_id = user;
  r.mode = mode;
  r.size = size_at_open;
  r.position = initial_position;
  return r;
}

TraceRecord MakeCreate(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode) {
  TraceRecord r;
  r.type = EventType::kCreate;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.user_id = user;
  r.mode = mode;
  r.size = 0;
  r.position = 0;
  return r;
}

TraceRecord MakeClose(SimTime t, OpenId open_id, FileId file, uint64_t final_position,
                      uint64_t size_at_close) {
  TraceRecord r;
  r.type = EventType::kClose;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.position = final_position;
  r.size = size_at_close;
  return r;
}

TraceRecord MakeSeek(SimTime t, OpenId open_id, FileId file, uint64_t from, uint64_t to) {
  TraceRecord r;
  r.type = EventType::kSeek;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.seek_from = from;
  r.seek_to = to;
  return r;
}

TraceRecord MakeUnlink(SimTime t, FileId file, UserId user) {
  TraceRecord r;
  r.type = EventType::kUnlink;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  return r;
}

TraceRecord MakeTruncate(SimTime t, FileId file, UserId user, uint64_t new_length) {
  TraceRecord r;
  r.type = EventType::kTruncate;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  r.size = new_length;
  return r;
}

TraceRecord MakeExecve(SimTime t, FileId file, UserId user, uint64_t file_size) {
  TraceRecord r;
  r.type = EventType::kExecve;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  r.size = file_size;
  return r;
}

}  // namespace bsdtrace
