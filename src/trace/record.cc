#include "src/trace/record.h"

#include <cinttypes>
#include <cstdio>

namespace bsdtrace {

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kReadOnly:
      return "r";
    case AccessMode::kWriteOnly:
      return "w";
    case AccessMode::kReadWrite:
      return "rw";
  }
  return "?";
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kOpen:
      return "open";
    case EventType::kCreate:
      return "create";
    case EventType::kClose:
      return "close";
    case EventType::kSeek:
      return "seek";
    case EventType::kUnlink:
      return "unlink";
    case EventType::kTruncate:
      return "truncate";
    case EventType::kExecve:
      return "execve";
  }
  return "?";
}

std::string TraceRecord::ToString() const {
  char buf[256];
  switch (type) {
    case EventType::kOpen:
    case EventType::kCreate:
      std::snprintf(buf, sizeof(buf),
                    "%.6f\t%s\toid=%" PRIu64 "\tfile=%" PRIu64 "\tuser=%u\tmode=%s\tsize=%" PRIu64
                    "\tpos=%" PRIu64,
                    time.seconds(), EventTypeName(type), open_id, file_id, user_id,
                    AccessModeName(mode), size, position);
      break;
    case EventType::kClose:
      std::snprintf(buf, sizeof(buf),
                    "%.6f\tclose\toid=%" PRIu64 "\tfile=%" PRIu64 "\tpos=%" PRIu64
                    "\tsize=%" PRIu64,
                    time.seconds(), open_id, file_id, position, size);
      break;
    case EventType::kSeek:
      std::snprintf(buf, sizeof(buf),
                    "%.6f\tseek\toid=%" PRIu64 "\tfile=%" PRIu64 "\tfrom=%" PRIu64
                    "\tto=%" PRIu64,
                    time.seconds(), open_id, file_id, seek_from, seek_to);
      break;
    case EventType::kUnlink:
      std::snprintf(buf, sizeof(buf), "%.6f\tunlink\tfile=%" PRIu64 "\tuser=%u", time.seconds(),
                    file_id, user_id);
      break;
    case EventType::kTruncate:
      std::snprintf(buf, sizeof(buf),
                    "%.6f\ttruncate\tfile=%" PRIu64 "\tuser=%u\tlen=%" PRIu64, time.seconds(),
                    file_id, user_id, size);
      break;
    case EventType::kExecve:
      std::snprintf(buf, sizeof(buf), "%.6f\texecve\tfile=%" PRIu64 "\tuser=%u\tsize=%" PRIu64,
                    time.seconds(), file_id, user_id, size);
      break;
  }
  return buf;
}

TraceRecord MakeOpen(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode,
                     uint64_t size_at_open, uint64_t initial_position) {
  TraceRecord r;
  r.type = EventType::kOpen;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.user_id = user;
  r.mode = mode;
  r.size = size_at_open;
  r.position = initial_position;
  return r;
}

TraceRecord MakeCreate(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode) {
  TraceRecord r;
  r.type = EventType::kCreate;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.user_id = user;
  r.mode = mode;
  r.size = 0;
  r.position = 0;
  return r;
}

TraceRecord MakeClose(SimTime t, OpenId open_id, FileId file, uint64_t final_position,
                      uint64_t size_at_close) {
  TraceRecord r;
  r.type = EventType::kClose;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.position = final_position;
  r.size = size_at_close;
  return r;
}

TraceRecord MakeSeek(SimTime t, OpenId open_id, FileId file, uint64_t from, uint64_t to) {
  TraceRecord r;
  r.type = EventType::kSeek;
  r.time = t;
  r.open_id = open_id;
  r.file_id = file;
  r.seek_from = from;
  r.seek_to = to;
  return r;
}

TraceRecord MakeUnlink(SimTime t, FileId file, UserId user) {
  TraceRecord r;
  r.type = EventType::kUnlink;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  return r;
}

TraceRecord MakeTruncate(SimTime t, FileId file, UserId user, uint64_t new_length) {
  TraceRecord r;
  r.type = EventType::kTruncate;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  r.size = new_length;
  return r;
}

TraceRecord MakeExecve(SimTime t, FileId file, UserId user, uint64_t file_size) {
  TraceRecord r;
  r.type = EventType::kExecve;
  r.time = t;
  r.file_id = file;
  r.user_id = user;
  r.size = file_size;
  return r;
}

}  // namespace bsdtrace
