#include "src/trace/io_buffer.h"

#include <cassert>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define BSDTRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bsdtrace {

// -- BufferedWriter -----------------------------------------------------------

BufferedWriter::BufferedWriter(const std::string& path) : path_(path) {
  // The block is allocated even when the open fails: writes are still
  // accepted (and dropped at Flush) so callers can defer the error check to
  // Close(), like the ostream interface this replaces.
  buf_ = std::make_unique<uint8_t[]>(kBlockSize);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::Error("cannot open for writing: " + path);
    return;
  }
  // stdio's own buffer would just double-copy ours.
  std::setvbuf(file_, nullptr, _IONBF, 0);
}

BufferedWriter::~BufferedWriter() { Close(); }

void BufferedWriter::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::Error(message);
  }
  pos_ = 0;  // drop buffered bytes; all further writes are no-ops
}

void BufferedWriter::Flush() {
  if (file_ == nullptr || !status_.ok()) {
    pos_ = 0;
    return;
  }
  if (pos_ > 0) {
    if (std::fwrite(buf_.get(), 1, pos_, file_) != pos_) {
      Fail("write failed: " + path_);
      return;
    }
    flushed_ += pos_;
    pos_ = 0;
  }
}

void BufferedWriter::Write(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    if (pos_ == kBlockSize) {
      Flush();
      if (!status_.ok()) {
        return;
      }
    }
    const size_t chunk = n < kBlockSize - pos_ ? n : kBlockSize - pos_;
    std::memcpy(buf_.get() + pos_, p, chunk);
    pos_ += chunk;
    p += chunk;
    n -= chunk;
  }
}

uint8_t* BufferedWriter::Reserve(size_t n) {
  assert(n <= kBlockSize);
  if (kBlockSize - pos_ < n) {
    Flush();
  }
  return buf_.get() + pos_;
}

Status BufferedWriter::Close() {
  if (file_ != nullptr) {
    Flush();
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::Error("close failed: " + path_);
    }
    file_ = nullptr;
  }
  return status_;
}

// -- BufferedReader -----------------------------------------------------------

BufferedReader::BufferedReader(const std::string& path, bool prefer_mmap) {
#if BSDTRACE_HAVE_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        if (st.st_size == 0) {
          ::close(fd);
          static constexpr uint8_t kEmpty[1] = {0};
          data_ = kEmpty;  // empty window; mmap of 0 bytes is invalid
          return;
        }
        void* base = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                            MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base != MAP_FAILED) {
          ::madvise(base, static_cast<size_t>(st.st_size), MADV_SEQUENTIAL);
          map_base_ = base;
          map_size_ = static_cast<size_t>(st.st_size);
          data_ = static_cast<const uint8_t*>(base);
          end_ = map_size_;
          return;
        }
      } else {
        ::close(fd);
      }
    }
    // Fall through to stdio (missing file reports its error there).
  }
#else
  (void)prefer_mmap;
#endif
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::Error("cannot open for reading: " + path);
    return;
  }
  std::setvbuf(file_, nullptr, _IONBF, 0);
  buf_ = std::make_unique<uint8_t[]>(kBlockSize);
  data_ = buf_.get();
}

BufferedReader::~BufferedReader() {
#if BSDTRACE_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_size_);
  }
#endif
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void BufferedReader::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::Error(message);
  }
}

bool BufferedReader::Refill() {
  if (file_ == nullptr || !status_.ok()) {
    return false;  // mmap windows never refill; errors stop reading
  }
  // Preserve the unconsumed tail (Contiguous may need it joined with the
  // next block).
  const size_t tail = end_ - pos_;
  if (tail > 0 && pos_ > 0) {
    std::memmove(buf_.get(), buf_.get() + pos_, tail);
  }
  pos_ = 0;
  end_ = tail;
  while (end_ < kBlockSize) {
    const size_t got = std::fread(buf_.get() + end_, 1, kBlockSize - end_, file_);
    if (got == 0) {
      if (std::ferror(file_)) {
        Fail("read failed");
        return false;
      }
      break;  // end of file
    }
    end_ += got;
  }
  return end_ > pos_;
}

int BufferedReader::GetByteSlow() {
  if (!Refill()) {
    return -1;
  }
  return data_[pos_++];
}

bool BufferedReader::Read(void* out, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(out);
  while (n > 0) {
    if (pos_ == end_ && !Refill()) {
      return false;
    }
    const size_t chunk = n < end_ - pos_ ? n : end_ - pos_;
    std::memcpy(p, data_ + pos_, chunk);
    pos_ += chunk;
    p += chunk;
    n -= chunk;
  }
  return true;
}

Status BufferedReader::SkipTo(uint64_t offset) {
  if (!status_.ok()) {
    return status_;
  }
  if (map_base_ != nullptr) {
    if (offset > map_size_) {
      Fail("seek past end of file");
      return status_;
    }
    pos_ = static_cast<size_t>(offset);
    end_ = map_size_;
    return Status::Ok();
  }
  if (file_ == nullptr) {
    // Zero-length-file window (or a failed open, already non-ok above).
    if (offset > 0) {
      Fail("seek past end of file");
    }
    return status_;
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    Fail("seek failed");
    return status_;
  }
  pos_ = 0;
  end_ = 0;
  return Status::Ok();
}

const uint8_t* BufferedReader::ContiguousSlow(size_t n, size_t* available) {
  assert(n <= kBlockSize);
  Refill();
  *available = end_ - pos_;
  return data_ + pos_;
}

}  // namespace bsdtrace
