// Trace well-formedness checking.
//
// The analyses assume structurally valid traces (every close matches an open,
// positions only advance between repositions, time is monotone).  The
// validator checks those assumptions and reports precise diagnostics, so that
// corrupted or hand-edited traces fail loudly instead of skewing results.

#ifndef BSDTRACE_SRC_TRACE_VALIDATE_H_
#define BSDTRACE_SRC_TRACE_VALIDATE_H_

#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

struct ValidationResult {
  // Hard violations: the trace must not be analyzed.
  std::vector<std::string> errors;
  // Soft issues: analysis is possible but should be noted (e.g. opens still
  // pending when the trace ends — expected, since real traces are clipped).
  std::vector<std::string> warnings;

  uint64_t records = 0;
  uint64_t opens_pending_at_end = 0;

  bool ok() const { return errors.empty(); }
  // All errors and warnings joined, for logging.
  std::string Summary() const;
};

struct ValidateTraceOptions {
  // Caps the number of reported issues to keep output bounded.
  size_t max_issues = 20;
  // When set, one source line number per record (same length as the trace;
  // the text importers produce it): diagnostics say "line 17" instead of
  // "record 4", which is what a user staring at a foreign log needs.
  const std::vector<uint64_t>* line_numbers = nullptr;
  // Append the offending record's ToString() rendering to each error.
  bool render_records = false;
};

// Validates structural invariants:
//  * record times are non-decreasing;
//  * open ids are unique for the life of the trace: never reused while
//    open NOR after their close (the paper's open ids are like i-numbers —
//    assigned once, never recycled);
//  * close/seek reference an id that is currently open — a never-opened or
//    already-closed id is rejected, with the two cases distinguished in the
//    message;
//  * seek/close carry the file id of the matching open;
//  * access positions never move backward except via an explicit seek: a
//    seek whose `from` is behind the tracked position (open position, or the
//    last seek's `to`) contradicts the implicit-sequentiality convention
//    (reads/writes only advance the position);
//  * close size is at least the final position;
//  * field conventions hold (e.g. create has size 0 and position 0).
ValidationResult ValidateTrace(const Trace& trace, const ValidateTraceOptions& options);
ValidationResult ValidateTrace(const Trace& trace, size_t max_issues = 20);

// File-level integrity check over a binary trace file.  Decodes every record
// through the checksumming reader (v3/v4 block CRC32Cs are verified as each
// block is entered; v4 blocks are additionally decompressed and size-checked
// against their headers) and cross-checks the declared header count and,
// when a footer index is present, the index's block/record totals against
// what the blocks actually hold.  A flipped byte, truncated file, a v4 block
// whose decompressed size disagrees with its header, or an index that
// disagrees with the data all surface in `status`; the counters describe how
// far the scan got.
struct TraceFileCheck {
  Status status = Status::Ok();  // first corruption or I/O error, if any
  int version = 0;               // format version (1 through 4)
  uint64_t records = 0;          // records successfully decoded
  uint64_t blocks_verified = 0;  // v3/v4 blocks whose checksum was verified
  bool has_index = false;        // v3/v4 footer index present
  uint64_t index_entries = 0;    // blocks listed in the footer index
  uint64_t indexed_records = 0;  // record total the footer index claims
  SimTime last_time;             // time of the last decoded record
  // Payload accounting across verified blocks: bytes as stored on disk
  // (compressed for v4 LZ blocks) and after decompression; equal for v3.
  // `codec` names the block codecs seen: "none", "lz", "mixed" (a v4 file
  // whose incompressible blocks fell back to stored), or "-" for v1-v3.
  uint64_t payload_stored_bytes = 0;
  uint64_t payload_raw_bytes = 0;
  std::string codec = "-";

  bool ok() const { return status.ok(); }
};

TraceFileCheck CheckTraceFile(const std::string& path);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_VALIDATE_H_
