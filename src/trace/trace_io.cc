#include "src/trace/trace_io.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/trace/io_buffer.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

constexpr char kMagicV1[8] = {'B', 'S', 'D', 'T', 'R', 'C', '1', '\n'};
constexpr char kMagicV2[8] = {'B', 'S', 'D', 'T', 'R', 'C', '2', '\n'};
constexpr uint8_t kEndSentinel = 0;

// The codec is templated over byte sinks/sources so the legacy iostream path
// and the block-buffered path share one encoding (and stay byte-identical).
//
// Sink concept:   void put(uint8_t);  void write(const void*, size_t);
// Source concept: int get();          bool read(void*, size_t);

struct OstreamSink {
  std::ostream& out;
  void put(uint8_t b) { out.put(static_cast<char>(b)); }
  void write(const void* p, size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
};

struct BufferedSink {
  BufferedWriter& out;
  void put(uint8_t b) { out.PutByte(b); }
  void write(const void* p, size_t n) { out.Write(p, n); }
};

// Unchecked raw-memory sink for the record fast path: the caller reserves
// kMaxRecordEncoding bytes up front.
struct PtrSink {
  uint8_t* p;
  void put(uint8_t b) { *p++ = b; }
  void write(const void* src, size_t n) {
    std::memcpy(p, src, n);
    p += n;
  }
};

struct IstreamSource {
  std::istream& in;
  int get() { return in.get(); }
  bool read(void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<size_t>(in.gcount()) == n;
  }
};

struct BufferedSource {
  BufferedReader& in;
  int get() { return in.GetByte(); }
  bool read(void* p, size_t n) { return in.Read(p, n); }
};

// Unchecked raw-memory source for the record fast path: the caller verifies
// kMaxRecordEncoding contiguous bytes up front, and the decoder consumes at
// most that many even on corrupt input (varints are capped at 10 bytes).
struct PtrSource {
  const uint8_t* p;
  int get() { return *p++; }
  bool read(void* out, size_t n) {
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
};

template <typename Sink>
void PutVarint(Sink& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<uint8_t>(v));
}

template <typename Source>
bool GetVarint(Source& in, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c < 0) {
      return false;
    }
    result |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return false;  // overlong varint
    }
  }
  *v = result;
  return true;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <typename Sink>
void PutString(Sink& out, const std::string& s) {
  PutVarint(out, s.size());
  out.write(s.data(), s.size());
}

template <typename Source>
bool GetString(Source& in, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(in, &len)) {
    return false;
  }
  if (len > (64u << 20)) {  // sanity cap: 64 MB strings mean corruption
    return false;
  }
  s->resize(len);
  return in.read(s->data(), len);
}

// One record: type byte, zigzag time delta, then the per-type payload.
template <typename Sink>
void EncodeRecord(Sink& out, const TraceRecord& r, int64_t* prev_time_us) {
  out.put(static_cast<uint8_t>(r.type));
  PutVarint(out, ZigZagEncode(r.time.micros() - *prev_time_us));
  *prev_time_us = r.time.micros();
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      out.put(static_cast<uint8_t>(r.mode));
      PutVarint(out, r.size);
      PutVarint(out, r.position);
      break;
    case EventType::kClose:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.position);
      PutVarint(out, r.size);
      break;
    case EventType::kSeek:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.seek_from);
      PutVarint(out, r.seek_to);
      break;
    case EventType::kUnlink:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      break;
    case EventType::kTruncate:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
    case EventType::kExecve:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
  }
}

enum class DecodeResult : uint8_t { kRecord, kEnd, kError };

// Decodes one record (after the caller consumed nothing).  On kError the
// stream position is unspecified; *error names the cause.
template <typename Source>
DecodeResult DecodeRecord(Source& in, TraceRecord* record, int64_t* prev_time_us,
                          const char** error) {
  const int type_byte = in.get();
  if (type_byte < 0) {
    *error = "unexpected end of stream (missing end sentinel)";
    return DecodeResult::kError;
  }
  if (type_byte == kEndSentinel) {
    return DecodeResult::kEnd;
  }
  if (type_byte < 1 || type_byte > 7) {
    *error = "corrupt record: unknown event type";
    return DecodeResult::kError;
  }

  // Decode in place (no local + copy-out); on kError the record's contents
  // are unspecified, per the contract above.
  *record = TraceRecord{};
  TraceRecord& r = *record;
  r.type = static_cast<EventType>(type_byte);
  uint64_t v = 0;
  auto fail = [&]() {
    *error = "truncated record body";
    return DecodeResult::kError;
  };
  if (!GetVarint(in, &v)) {
    return fail();
  }
  *prev_time_us += ZigZagDecode(v);
  r.time = SimTime::FromMicros(*prev_time_us);

  auto get = [&](uint64_t* out) { return GetVarint(in, out); };
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      uint64_t user = 0;
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&user)) {
        return fail();
      }
      const int mode_byte = in.get();
      if (mode_byte < 0 || mode_byte > 2) {
        return fail();
      }
      if (!get(&r.size) || !get(&r.position)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      r.mode = static_cast<AccessMode>(mode_byte);
      break;
    }
    case EventType::kClose:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.position) || !get(&r.size)) {
        return fail();
      }
      break;
    case EventType::kSeek:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.seek_from) || !get(&r.seek_to)) {
        return fail();
      }
      break;
    case EventType::kUnlink: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
    case EventType::kTruncate:
    case EventType::kExecve: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user) || !get(&r.size)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
  }
  return DecodeResult::kRecord;
}

template <typename Sink>
void EncodeHeader(Sink& out, const TraceHeader& header, int64_t expected_records) {
  out.write(kMagicV2, sizeof(kMagicV2));
  PutString(out, header.machine);
  PutString(out, header.description);
  // N+1 so that 0 can mean "count unknown" (streamed traces).
  PutVarint(out, expected_records >= 0 ? static_cast<uint64_t>(expected_records) + 1 : 0);
}

// Parses the magic + header; returns false with *error set on failure.
// *declared stays -1 for v1 files or unknown counts.
template <typename Source>
bool DecodeHeader(Source& in, TraceHeader* header, int64_t* declared, const char** error) {
  char magic[sizeof(kMagicV2)];
  const bool got_magic = in.read(magic, sizeof(magic));
  const bool v1 = got_magic && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = got_magic && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v1 && !v2) {
    *error = "bad magic: not a bsdtrace binary trace";
    return false;
  }
  if (!GetString(in, &header->machine) || !GetString(in, &header->description)) {
    *error = "truncated trace header";
    return false;
  }
  if (v2) {
    uint64_t count_plus_one = 0;
    if (!GetVarint(in, &count_plus_one)) {
      *error = "truncated trace header";
      return false;
    }
    if (count_plus_one > 0) {
      *declared = static_cast<int64_t>(count_plus_one - 1);
    }
  }
  return true;
}

}  // namespace

// -- Legacy iostream path -----------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                                     int64_t expected_records)
    : out_(out) {
  OstreamSink sink{out_};
  EncodeHeader(sink, header, expected_records);
}

BinaryTraceWriter::~BinaryTraceWriter() { Finish(); }

void BinaryTraceWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  OstreamSink sink{out_};
  EncodeRecord(sink, r, &prev_time_us_);
  ++records_written_;
}

void BinaryTraceWriter::Finish() {
  if (finished_) {
    return;
  }
  out_.put(static_cast<char>(kEndSentinel));
  out_.flush();
  finished_ = true;
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  IstreamSource source{in_};
  const char* error = nullptr;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &error)) {
    status_ = Status::Error(error);
    done_ = true;
  }
}

bool BinaryTraceReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  IstreamSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      status_ = Status::Error(error);
      done_ = true;
      return false;
  }
  return false;
}

// -- Block-buffered file path -------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string& path, const TraceHeader& header,
                                 int64_t expected_records)
    : out_(path) {
  if (!out_.ok()) {
    return;
  }
  BufferedSink sink{out_};
  EncodeHeader(sink, header, expected_records);
}

TraceFileWriter::~TraceFileWriter() { Finish(); }

void TraceFileWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  uint8_t* base = out_.Reserve(kMaxRecordEncoding);
  PtrSink sink{base};
  EncodeRecord(sink, r, &prev_time_us_);
  assert(static_cast<size_t>(sink.p - base) <= kMaxRecordEncoding);
  out_.Advance(static_cast<size_t>(sink.p - base));
  ++records_written_;
}

Status TraceFileWriter::Finish() {
  if (!finished_) {
    out_.PutByte(kEndSentinel);
    finished_ = true;
  }
  return out_.Close();
}

TraceFileReader::TraceFileReader(const std::string& path, bool prefer_mmap)
    : in_(path, prefer_mmap) {
  if (!in_.ok()) {
    status_ = in_.status();
    done_ = true;
    return;
  }
  BufferedSource source{in_};
  const char* error = nullptr;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &error)) {
    status_ = Status::Error(error);
    done_ = true;
  }
}

bool TraceFileReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  // Fast path: when a full worst-case record is available contiguously
  // (essentially always — the mmap window is the whole file), decode straight
  // from memory with no per-byte end-of-stream checks.
  size_t available = 0;
  const uint8_t* window = in_.Contiguous(kMaxRecordEncoding, &available);
  if (available >= kMaxRecordEncoding) {
    PtrSource source{window};
    const char* error = nullptr;
    switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
      case DecodeResult::kRecord:
        in_.Advance(static_cast<size_t>(source.p - window));
        return true;
      case DecodeResult::kEnd:
        in_.Advance(1);
        done_ = true;
        return false;
      case DecodeResult::kError:
        status_ = Status::Error(error);
        done_ = true;
        return false;
    }
  }
  // Slow path: near the end of the file, where a record may be truncated.
  BufferedSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      if (!in_.status().ok()) {
        status_ = in_.status();  // underlying I/O error beats "truncated"
      } else {
        status_ = Status::Error(error);
      }
      done_ = true;
      return false;
  }
  return false;
}

Status WriteTextTrace(std::ostream& out, TraceSource& source) {
  out << "# machine " << source.header().machine << "\n";
  if (!source.header().description.empty()) {
    out << "# description " << source.header().description << "\n";
  }
  TraceRecord r;
  while (source.Next(&r)) {
    out << r.ToString() << "\n";
  }
  if (!source.status().ok()) {
    return source.status();
  }
  out.flush();
  if (!out.good()) {
    return Status::Error("text trace write failed (stream error)");
  }
  return Status::Ok();
}

Status WriteTextTrace(std::ostream& out, const Trace& trace) {
  TraceVectorSource source(trace);
  return WriteTextTrace(out, source);
}

namespace {

// Parses "key=value" tokens from a text trace line after time and type.
bool ParseField(const std::string& token, const char* key, uint64_t* out) {
  const size_t klen = std::strlen(key);
  if (token.size() <= klen + 1 || token.compare(0, klen, key) != 0 || token[klen] != '=') {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(token.c_str() + klen + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseModeField(const std::string& token, AccessMode* out) {
  if (token == "mode=r") {
    *out = AccessMode::kReadOnly;
    return true;
  }
  if (token == "mode=w") {
    *out = AccessMode::kWriteOnly;
    return true;
  }
  if (token == "mode=rw") {
    *out = AccessMode::kReadWrite;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<Trace> ReadTextTrace(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "machine") {
        hdr >> trace.header().machine;
      } else if (key == "description") {
        std::string rest;
        std::getline(hdr, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        trace.header().description = rest;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    std::vector<std::string> tokens;
    while (std::getline(ls, tok, '\t')) {
      tokens.push_back(tok);
    }
    auto err = [&](const char* what) {
      return Status::Error("line " + std::to_string(line_no) + ": " + what);
    };
    if (tokens.size() < 2) {
      return err("too few fields");
    }
    char* end = nullptr;
    const double t = std::strtod(tokens[0].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return err("bad timestamp");
    }
    TraceRecord r;
    r.time = SimTime::FromSeconds(t);
    const std::string& type = tokens[1];
    uint64_t u64 = 0;
    auto field = [&](size_t i, const char* key, uint64_t* out) {
      return i < tokens.size() && ParseField(tokens[i], key, out);
    };
    if (type == "open" || type == "create") {
      r.type = (type == "open") ? EventType::kOpen : EventType::kCreate;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "user", &u64)) {
        return err("bad open fields");
      }
      r.user_id = static_cast<UserId>(u64);
      if (tokens.size() < 8 || !ParseModeField(tokens[5], &r.mode) ||
          !ParseField(tokens[6], "size", &r.size) || !ParseField(tokens[7], "pos", &r.position)) {
        return err("bad open mode/size/pos");
      }
    } else if (type == "close") {
      r.type = EventType::kClose;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "pos", &r.position) || !field(5, "size", &r.size)) {
        return err("bad close fields");
      }
    } else if (type == "seek") {
      r.type = EventType::kSeek;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "from", &r.seek_from) || !field(5, "to", &r.seek_to)) {
        return err("bad seek fields");
      }
    } else if (type == "unlink") {
      r.type = EventType::kUnlink;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64)) {
        return err("bad unlink fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "truncate") {
      r.type = EventType::kTruncate;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "len", &r.size)) {
        return err("bad truncate fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "execve") {
      r.type = EventType::kExecve;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "size", &r.size)) {
        return err("bad execve fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else {
      return err("unknown event type");
    }
    trace.Append(r);
  }
  return trace;
}

Status WriteBinaryTrace(std::ostream& out, const Trace& trace) {
  BinaryTraceWriter writer(out, trace.header(), static_cast<int64_t>(trace.size()));
  for (const TraceRecord& r : trace.records()) {
    writer.Append(r);
  }
  writer.Finish();
  if (!out.good()) {
    return Status::Error("binary trace write failed (stream error)");
  }
  return Status::Ok();
}

StatusOr<Trace> ReadBinaryTrace(std::istream& in) {
  BinaryTraceReader reader(in);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  if (reader.declared_record_count() > 0) {
    // One up-front allocation instead of log2(N) doublings on large traces.
    // The count comes from an untrusted header and an istream's length is
    // unknowable up front, so cap the act-of-faith allocation; a header
    // declaring more is either corrupt or a trace large enough that vector
    // doubling beyond the cap is noise.
    constexpr int64_t kIstreamReserveCap = int64_t{1} << 20;
    trace.Reserve(static_cast<size_t>(
        std::min(reader.declared_record_count(), kIstreamReserveCap)));
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    trace.Append(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

Status SaveTrace(const std::string& path, TraceSource& source) {
  TraceFileWriter writer(path, source.header(), source.size_hint());
  if (!writer.status().ok()) {
    return writer.status();
  }
  TraceRecord r;
  while (source.Next(&r)) {
    writer.Append(r);
  }
  if (!source.status().ok()) {
    writer.Finish();  // close the partial file; the source error wins
    return source.status();
  }
  return writer.Finish();
}

Status SaveTrace(const std::string& path, const Trace& trace) {
  TraceVectorSource source(trace);
  return SaveTrace(path, source);
}

StatusOr<Trace> LoadTrace(const std::string& path) {
  TraceFileReader reader(path);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  std::vector<TraceRecord>& records = trace.records();
  // The declared count is advisory and untrusted: clamp it to the file size
  // (records encode to >= 4 bytes, so more records than bytes means a corrupt
  // or hostile header) so the pre-sizing below cannot allocate unboundedly.
  int64_t declared = reader.declared_record_count();
  if (declared > 0) {
    std::error_code ec;
    const uint64_t bytes = std::filesystem::file_size(path, ec);
    if (!ec) {
      declared = std::min(declared, static_cast<int64_t>(bytes));
    }
  }
  if (declared > 0) {
    // Decode straight into pre-sized vector slots — one allocation and no
    // per-record copy.  Tolerate both a short stream (shrink) and extra
    // records (append).
    records.resize(static_cast<size_t>(declared));
    size_t n = 0;
    while (n < records.size() && reader.Next(&records[n])) {
      ++n;
    }
    records.resize(n);
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    records.push_back(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

}  // namespace bsdtrace
