#include "src/trace/trace_io.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/trace/crc32c.h"
#include "src/trace/io_buffer.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

constexpr char kMagicV1[8] = {'B', 'S', 'D', 'T', 'R', 'C', '1', '\n'};
constexpr char kMagicV2[8] = {'B', 'S', 'D', 'T', 'R', 'C', '2', '\n'};
constexpr char kMagicV3[8] = {'B', 'S', 'D', 'T', 'R', 'C', '3', '\n'};
constexpr uint8_t kEndSentinel = 0;
constexpr uint8_t kBlockMarker = 1;
constexpr int64_t kMicrosPerHour = int64_t{3'600} * 1'000'000;
// Sanity cap on a declared block payload: anything larger is corruption, not
// a real block (writers target ~256 KB).
constexpr uint64_t kMaxBlockPayload = uint64_t{1} << 30;

// The codec is templated over byte sinks/sources so the legacy iostream path
// and the block-buffered path share one encoding (and stay byte-identical).
//
// Sink concept:   void put(uint8_t);  void write(const void*, size_t);
// Source concept: int get();          bool read(void*, size_t);

struct OstreamSink {
  std::ostream& out;
  void put(uint8_t b) { out.put(static_cast<char>(b)); }
  void write(const void* p, size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
};

struct BufferedSink {
  BufferedWriter& out;
  void put(uint8_t b) { out.PutByte(b); }
  void write(const void* p, size_t n) { out.Write(p, n); }
};

// Unchecked raw-memory sink for the record fast path: the caller reserves
// kMaxRecordEncoding bytes up front.
struct PtrSink {
  uint8_t* p;
  void put(uint8_t b) { *p++ = b; }
  void write(const void* src, size_t n) {
    std::memcpy(p, src, n);
    p += n;
  }
};

struct IstreamSource {
  std::istream& in;
  int get() { return in.get(); }
  bool read(void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<size_t>(in.gcount()) == n;
  }
};

struct BufferedSource {
  BufferedReader& in;
  int get() { return in.GetByte(); }
  bool read(void* p, size_t n) { return in.Read(p, n); }
};

// Unchecked raw-memory source for the record fast path: the caller verifies
// kMaxRecordEncoding contiguous bytes up front, and the decoder consumes at
// most that many even on corrupt input (varints are capped at 10 bytes).
struct PtrSource {
  const uint8_t* p;
  int get() { return *p++; }
  bool read(void* out, size_t n) {
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
};

template <typename Sink>
void PutVarint(Sink& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<uint8_t>(v));
}

template <typename Source>
bool GetVarint(Source& in, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c < 0) {
      return false;
    }
    result |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return false;  // overlong varint
    }
  }
  *v = result;
  return true;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <typename Sink>
void PutString(Sink& out, const std::string& s) {
  PutVarint(out, s.size());
  out.write(s.data(), s.size());
}

template <typename Source>
bool GetString(Source& in, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(in, &len)) {
    return false;
  }
  if (len > (64u << 20)) {  // sanity cap: 64 MB strings mean corruption
    return false;
  }
  s->resize(len);
  return in.read(s->data(), len);
}

// One record: type byte, zigzag time delta, then the per-type payload.
template <typename Sink>
void EncodeRecord(Sink& out, const TraceRecord& r, int64_t* prev_time_us) {
  out.put(static_cast<uint8_t>(r.type));
  PutVarint(out, ZigZagEncode(r.time.micros() - *prev_time_us));
  *prev_time_us = r.time.micros();
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      out.put(static_cast<uint8_t>(r.mode));
      PutVarint(out, r.size);
      PutVarint(out, r.position);
      break;
    case EventType::kClose:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.position);
      PutVarint(out, r.size);
      break;
    case EventType::kSeek:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.seek_from);
      PutVarint(out, r.seek_to);
      break;
    case EventType::kUnlink:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      break;
    case EventType::kTruncate:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
    case EventType::kExecve:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
  }
}

enum class DecodeResult : uint8_t { kRecord, kEnd, kError };

// Decodes one record (after the caller consumed nothing).  On kError the
// stream position is unspecified; *error names the cause.
template <typename Source>
DecodeResult DecodeRecord(Source& in, TraceRecord* record, int64_t* prev_time_us,
                          const char** error) {
  const int type_byte = in.get();
  if (type_byte < 0) {
    *error = "unexpected end of stream (missing end sentinel)";
    return DecodeResult::kError;
  }
  if (type_byte == kEndSentinel) {
    return DecodeResult::kEnd;
  }
  if (type_byte < 1 || type_byte > 7) {
    *error = "corrupt record: unknown event type";
    return DecodeResult::kError;
  }

  // Decode in place (no local + copy-out); on kError the record's contents
  // are unspecified, per the contract above.
  *record = TraceRecord{};
  TraceRecord& r = *record;
  r.type = static_cast<EventType>(type_byte);
  uint64_t v = 0;
  auto fail = [&]() {
    *error = "truncated record body";
    return DecodeResult::kError;
  };
  if (!GetVarint(in, &v)) {
    return fail();
  }
  *prev_time_us += ZigZagDecode(v);
  r.time = SimTime::FromMicros(*prev_time_us);

  auto get = [&](uint64_t* out) { return GetVarint(in, out); };
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      uint64_t user = 0;
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&user)) {
        return fail();
      }
      const int mode_byte = in.get();
      if (mode_byte < 0 || mode_byte > 2) {
        return fail();
      }
      if (!get(&r.size) || !get(&r.position)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      r.mode = static_cast<AccessMode>(mode_byte);
      break;
    }
    case EventType::kClose:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.position) || !get(&r.size)) {
        return fail();
      }
      break;
    case EventType::kSeek:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.seek_from) || !get(&r.seek_to)) {
        return fail();
      }
      break;
    case EventType::kUnlink: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
    case EventType::kTruncate:
    case EventType::kExecve: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user) || !get(&r.size)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
  }
  return DecodeResult::kRecord;
}

template <typename Sink>
void PutFixed32(Sink& out, uint32_t v) {
  uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                  static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
  out.write(b, sizeof(b));
}

template <typename Sink>
void PutFixed64(Sink& out, uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  out.write(b, sizeof(b));
}

uint32_t ReadFixed32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

template <typename Sink>
void EncodeHeader(Sink& out, const TraceHeader& header, int64_t expected_records,
                  int version = 2) {
  out.write(version == 3 ? kMagicV3 : kMagicV2, sizeof(kMagicV2));
  PutString(out, header.machine);
  PutString(out, header.description);
  // N+1 so that 0 can mean "count unknown" (streamed traces).
  PutVarint(out, expected_records >= 0 ? static_cast<uint64_t>(expected_records) + 1 : 0);
}

// Parses the magic + header; returns false with *error set on failure.
// *declared stays -1 for v1 files or unknown counts; *version gets 1..3.
template <typename Source>
bool DecodeHeader(Source& in, TraceHeader* header, int64_t* declared, int* version,
                  const char** error) {
  char magic[sizeof(kMagicV2)];
  const bool got_magic = in.read(magic, sizeof(magic));
  const bool v1 = got_magic && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = got_magic && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  const bool v3 = got_magic && std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0;
  if (!v1 && !v2 && !v3) {
    *error = "bad magic: not a bsdtrace binary trace";
    return false;
  }
  *version = v1 ? 1 : (v2 ? 2 : 3);
  if (!GetString(in, &header->machine) || !GetString(in, &header->description)) {
    *error = "truncated trace header";
    return false;
  }
  if (!v1) {
    uint64_t count_plus_one = 0;
    if (!GetVarint(in, &count_plus_one)) {
      *error = "truncated trace header";
      return false;
    }
    if (count_plus_one > 0) {
      *declared = static_cast<int64_t>(count_plus_one - 1);
    }
  }
  return true;
}

}  // namespace

// -- Legacy iostream path -----------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                                     int64_t expected_records)
    : out_(out) {
  OstreamSink sink{out_};
  EncodeHeader(sink, header, expected_records);
}

BinaryTraceWriter::~BinaryTraceWriter() { Finish(); }

void BinaryTraceWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  OstreamSink sink{out_};
  EncodeRecord(sink, r, &prev_time_us_);
  ++records_written_;
}

void BinaryTraceWriter::Finish() {
  if (finished_) {
    return;
  }
  out_.put(static_cast<char>(kEndSentinel));
  out_.flush();
  finished_ = true;
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  IstreamSource source{in_};
  const char* error = nullptr;
  int version = 2;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &version, &error)) {
    status_ = Status::Error(error);
    done_ = true;
    return;
  }
  if (version >= 3) {
    // The iostream reader has no block/checksum support; v3 files go through
    // TraceFileReader (LoadTrace and TraceFileSource both do).
    status_ = Status::Error("v3 trace: use the file reader (checksummed blocks)");
    done_ = true;
  }
}

bool BinaryTraceReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  IstreamSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      status_ = Status::Error(error);
      done_ = true;
      return false;
  }
  return false;
}

// -- Block-buffered file path -------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string& path, const TraceHeader& header,
                                 int64_t expected_records)
    : TraceFileWriter(path, header, expected_records, TraceWriterOptions{}) {}

TraceFileWriter::TraceFileWriter(const std::string& path, const TraceHeader& header,
                                 int64_t expected_records, const TraceWriterOptions& options)
    : out_(path), options_(options) {
  assert(options_.version == 2 || options_.version == 3);
  if (!out_.ok()) {
    return;
  }
  BufferedSink sink{out_};
  EncodeHeader(sink, header, expected_records, options_.version);
  if (options_.version == 3) {
    block_.reserve(options_.block_target_bytes + kMaxRecordEncoding);
  }
}

TraceFileWriter::~TraceFileWriter() { Finish(); }

void TraceFileWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  if (options_.version == 3) {
    // Close the block at the size target or when the record crosses a
    // simulated-hour boundary, so the footer doubles as an hour index.  The
    // break decision is a pure function of the record stream, keeping v3
    // output byte-deterministic like v2.
    const int64_t hour = r.time.micros() / kMicrosPerHour;
    if (block_records_ > 0 &&
        (block_.size() >= options_.block_target_bytes || hour != block_first_hour_)) {
      FlushBlock();
    }
    if (block_records_ == 0) {
      block_first_hour_ = hour;
      block_start_time_us_ = r.time.micros();
      prev_time_us_ = 0;  // per-block delta base: blocks decode independently
    }
    const size_t old_size = block_.size();
    block_.resize(old_size + kMaxRecordEncoding);
    PtrSink sink{block_.data() + old_size};
    EncodeRecord(sink, r, &prev_time_us_);
    block_.resize(old_size + static_cast<size_t>(sink.p - (block_.data() + old_size)));
    ++block_records_;
    ++records_written_;
    return;
  }
  uint8_t* base = out_.Reserve(kMaxRecordEncoding);
  PtrSink sink{base};
  EncodeRecord(sink, r, &prev_time_us_);
  assert(static_cast<size_t>(sink.p - base) <= kMaxRecordEncoding);
  out_.Advance(static_cast<size_t>(sink.p - base));
  ++records_written_;
}

void TraceFileWriter::FlushBlock() {
  if (block_records_ == 0) {
    return;
  }
  index_.push_back(TraceBlockIndexEntry{
      .offset = out_.bytes_written(),
      .record_count = block_records_,
      .start_time = SimTime::FromMicros(block_start_time_us_)});
  BufferedSink sink{out_};
  sink.put(kBlockMarker);
  PutVarint(sink, block_records_);
  PutVarint(sink, block_.size());
  PutFixed32(sink, Crc32c(block_.data(), block_.size()));
  out_.Write(block_.data(), block_.size());
  block_.clear();
  block_records_ = 0;
}

Status TraceFileWriter::Finish() {
  if (!finished_) {
    if (options_.version == 3) {
      FlushBlock();
      out_.PutByte(kEndSentinel);
      if (options_.write_index) {
        const uint64_t footer_offset = out_.bytes_written();
        BufferedSink sink{out_};
        PutVarint(sink, index_.size());
        uint64_t prev_offset = 0;
        for (const TraceBlockIndexEntry& e : index_) {
          PutVarint(sink, e.offset - prev_offset);
          PutVarint(sink, e.record_count);
          PutVarint(sink, static_cast<uint64_t>(e.start_time.micros()));
          prev_offset = e.offset;
        }
        PutFixed64(sink, footer_offset);
        out_.Write(kTraceIndexTailMagic, sizeof(kTraceIndexTailMagic));
      }
    } else {
      out_.PutByte(kEndSentinel);
    }
    finished_ = true;
  }
  return out_.Close();
}

TraceFileReader::TraceFileReader(const std::string& path, bool prefer_mmap)
    : in_(path, prefer_mmap) {
  if (!in_.ok()) {
    status_ = in_.status();
    done_ = true;
    return;
  }
  BufferedSource source{in_};
  const char* error = nullptr;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &version_, &error)) {
    status_ = Status::Error(error);
    done_ = true;
  }
}

bool TraceFileReader::FailCorrupt(const char* error) {
  if (!in_.status().ok()) {
    status_ = in_.status();  // underlying I/O error beats the decode error
  } else {
    status_ = Status::Error(error);
  }
  done_ = true;
  return false;
}

Status TraceFileReader::SeekToBlock(uint64_t offset, uint64_t block_count) {
  if (!status_.ok()) {
    return status_;
  }
  if (version_ != 3) {
    status_ = Status::Error("SeekToBlock requires a v3 trace");
    done_ = true;
    return status_;
  }
  const Status s = in_.SkipTo(offset);
  if (!s.ok()) {
    status_ = s;
    done_ = true;
    return s;
  }
  done_ = false;
  block_remaining_ = 0;
  scratch_active_ = false;
  blocks_limited_ = true;
  blocks_left_ = block_count;
  return Status::Ok();
}

// One v3 record: drains the current block, verifying the next block's CRC32C
// before any of its records are surfaced.
bool TraceFileReader::NextV3(TraceRecord* record) {
  while (true) {
    if (block_remaining_ > 0) {
      --block_remaining_;
      const char* error = nullptr;
      if (scratch_active_) {
        // Copy-and-verify path (unmapped reads): decode from the scratch
        // buffer.  The CRC already vouched for the payload, and the buffer
        // carries kMaxRecordEncoding zero bytes of slack, so the unchecked
        // PtrSource cannot run past the allocation even on a decoder bug.
        const uint8_t* base = scratch_.data() + scratch_pos_;
        PtrSource source{base};
        if (scratch_pos_ > scratch_len_ ||
            DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
          return FailCorrupt("corrupt v3 block: record decode failed after checksum");
        }
        scratch_pos_ += static_cast<size_t>(source.p - base);
        return true;
      }
      // Mapped path: decode straight from the file window, as in v2.
      size_t available = 0;
      const uint8_t* window = in_.Contiguous(kMaxRecordEncoding, &available);
      if (available >= kMaxRecordEncoding) {
        PtrSource source{window};
        if (DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
          return FailCorrupt("corrupt v3 block: record decode failed after checksum");
        }
        in_.Advance(static_cast<size_t>(source.p - window));
        return true;
      }
      BufferedSource source{in_};
      if (DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
        return FailCorrupt("corrupt v3 block: record decode failed after checksum");
      }
      return true;
    }
    // Between blocks: enforce the cursor budget, then enter the next block.
    scratch_active_ = false;
    if (blocks_limited_ && blocks_left_ == 0) {
      done_ = true;
      return false;
    }
    const int marker = in_.GetByte();
    if (marker < 0) {
      return FailCorrupt("unexpected end of file (missing end sentinel)");
    }
    if (marker == kEndSentinel) {
      done_ = true;  // the footer index (if any) is not part of the stream
      return false;
    }
    if (marker != kBlockMarker) {
      return FailCorrupt("corrupt v3 trace: bad block marker");
    }
    if (blocks_limited_) {
      --blocks_left_;
    }
    BufferedSource header_source{in_};
    uint64_t record_count = 0;
    uint64_t payload_len = 0;
    uint8_t crc_bytes[4];
    if (!GetVarint(header_source, &record_count) || !GetVarint(header_source, &payload_len) ||
        !in_.Read(crc_bytes, sizeof(crc_bytes))) {
      return FailCorrupt("truncated v3 block header");
    }
    if (record_count == 0 || payload_len == 0 || payload_len > kMaxBlockPayload) {
      return FailCorrupt("corrupt v3 block header");
    }
    const uint32_t expected_crc = ReadFixed32(crc_bytes);
    if (in_.mapped()) {
      size_t available = 0;
      const uint8_t* window = in_.Contiguous(1, &available);  // mapped: whole rest
      if (window == nullptr || available < payload_len) {
        return FailCorrupt("truncated v3 block payload");
      }
      if (Crc32c(window, payload_len) != expected_crc) {
        return FailCorrupt("v3 block checksum mismatch (corrupt trace)");
      }
    } else {
      scratch_.resize(payload_len + kMaxRecordEncoding);
      if (!in_.Read(scratch_.data(), payload_len)) {
        return FailCorrupt("truncated v3 block payload");
      }
      std::memset(scratch_.data() + payload_len, 0, kMaxRecordEncoding);
      if (Crc32c(scratch_.data(), payload_len) != expected_crc) {
        return FailCorrupt("v3 block checksum mismatch (corrupt trace)");
      }
      scratch_pos_ = 0;
      scratch_len_ = payload_len;
      scratch_active_ = true;
    }
    ++blocks_verified_;
    block_remaining_ = record_count;
    prev_time_us_ = 0;  // per-block time-delta base
  }
}

bool TraceFileReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  if (version_ == 3) {
    return NextV3(record);
  }
  // Fast path: when a full worst-case record is available contiguously
  // (essentially always — the mmap window is the whole file), decode straight
  // from memory with no per-byte end-of-stream checks.
  size_t available = 0;
  const uint8_t* window = in_.Contiguous(kMaxRecordEncoding, &available);
  if (available >= kMaxRecordEncoding) {
    PtrSource source{window};
    const char* error = nullptr;
    switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
      case DecodeResult::kRecord:
        in_.Advance(static_cast<size_t>(source.p - window));
        return true;
      case DecodeResult::kEnd:
        in_.Advance(1);
        done_ = true;
        return false;
      case DecodeResult::kError:
        status_ = Status::Error(error);
        done_ = true;
        return false;
    }
  }
  // Slow path: near the end of the file, where a record may be truncated.
  BufferedSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      if (!in_.status().ok()) {
        status_ = in_.status();  // underlying I/O error beats "truncated"
      } else {
        status_ = Status::Error(error);
      }
      done_ = true;
      return false;
  }
  return false;
}

Status WriteTextTrace(std::ostream& out, TraceSource& source) {
  out << "# machine " << source.header().machine << "\n";
  if (!source.header().description.empty()) {
    out << "# description " << source.header().description << "\n";
  }
  TraceRecord r;
  while (source.Next(&r)) {
    out << r.ToString() << "\n";
  }
  if (!source.status().ok()) {
    return source.status();
  }
  out.flush();
  if (!out.good()) {
    return Status::Error("text trace write failed (stream error)");
  }
  return Status::Ok();
}

Status WriteTextTrace(std::ostream& out, const Trace& trace) {
  TraceVectorSource source(trace);
  return WriteTextTrace(out, source);
}

namespace {

// Parses "key=value" tokens from a text trace line after time and type.
bool ParseField(const std::string& token, const char* key, uint64_t* out) {
  const size_t klen = std::strlen(key);
  if (token.size() <= klen + 1 || token.compare(0, klen, key) != 0 || token[klen] != '=') {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(token.c_str() + klen + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseModeField(const std::string& token, AccessMode* out) {
  if (token == "mode=r") {
    *out = AccessMode::kReadOnly;
    return true;
  }
  if (token == "mode=w") {
    *out = AccessMode::kWriteOnly;
    return true;
  }
  if (token == "mode=rw") {
    *out = AccessMode::kReadWrite;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<Trace> ReadTextTrace(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "machine") {
        hdr >> trace.header().machine;
      } else if (key == "description") {
        std::string rest;
        std::getline(hdr, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        trace.header().description = rest;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    std::vector<std::string> tokens;
    while (std::getline(ls, tok, '\t')) {
      tokens.push_back(tok);
    }
    auto err = [&](const char* what) {
      return Status::Error("line " + std::to_string(line_no) + ": " + what);
    };
    if (tokens.size() < 2) {
      return err("too few fields");
    }
    char* end = nullptr;
    const double t = std::strtod(tokens[0].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return err("bad timestamp");
    }
    TraceRecord r;
    r.time = SimTime::FromSeconds(t);
    const std::string& type = tokens[1];
    uint64_t u64 = 0;
    auto field = [&](size_t i, const char* key, uint64_t* out) {
      return i < tokens.size() && ParseField(tokens[i], key, out);
    };
    if (type == "open" || type == "create") {
      r.type = (type == "open") ? EventType::kOpen : EventType::kCreate;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "user", &u64)) {
        return err("bad open fields");
      }
      r.user_id = static_cast<UserId>(u64);
      if (tokens.size() < 8 || !ParseModeField(tokens[5], &r.mode) ||
          !ParseField(tokens[6], "size", &r.size) || !ParseField(tokens[7], "pos", &r.position)) {
        return err("bad open mode/size/pos");
      }
    } else if (type == "close") {
      r.type = EventType::kClose;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "pos", &r.position) || !field(5, "size", &r.size)) {
        return err("bad close fields");
      }
    } else if (type == "seek") {
      r.type = EventType::kSeek;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "from", &r.seek_from) || !field(5, "to", &r.seek_to)) {
        return err("bad seek fields");
      }
    } else if (type == "unlink") {
      r.type = EventType::kUnlink;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64)) {
        return err("bad unlink fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "truncate") {
      r.type = EventType::kTruncate;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "len", &r.size)) {
        return err("bad truncate fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "execve") {
      r.type = EventType::kExecve;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "size", &r.size)) {
        return err("bad execve fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else {
      return err("unknown event type");
    }
    trace.Append(r);
  }
  return trace;
}

Status WriteBinaryTrace(std::ostream& out, const Trace& trace) {
  BinaryTraceWriter writer(out, trace.header(), static_cast<int64_t>(trace.size()));
  for (const TraceRecord& r : trace.records()) {
    writer.Append(r);
  }
  writer.Finish();
  if (!out.good()) {
    return Status::Error("binary trace write failed (stream error)");
  }
  return Status::Ok();
}

StatusOr<Trace> ReadBinaryTrace(std::istream& in) {
  BinaryTraceReader reader(in);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  if (reader.declared_record_count() > 0) {
    // One up-front allocation instead of log2(N) doublings on large traces.
    // The count comes from an untrusted header and an istream's length is
    // unknowable up front, so cap the act-of-faith allocation; a header
    // declaring more is either corrupt or a trace large enough that vector
    // doubling beyond the cap is noise.
    constexpr int64_t kIstreamReserveCap = int64_t{1} << 20;
    trace.Reserve(static_cast<size_t>(
        std::min(reader.declared_record_count(), kIstreamReserveCap)));
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    trace.Append(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

Status SaveTrace(const std::string& path, TraceSource& source,
                 const TraceWriterOptions& options) {
  TraceFileWriter writer(path, source.header(), source.size_hint(), options);
  if (!writer.status().ok()) {
    return writer.status();
  }
  TraceRecord r;
  while (source.Next(&r)) {
    writer.Append(r);
  }
  if (!source.status().ok()) {
    writer.Finish();  // close the partial file; the source error wins
    return source.status();
  }
  return writer.Finish();
}

Status SaveTrace(const std::string& path, TraceSource& source) {
  return SaveTrace(path, source, TraceWriterOptions{});
}

Status SaveTrace(const std::string& path, const Trace& trace) {
  TraceVectorSource source(trace);
  return SaveTrace(path, source);
}

Status SaveTrace(const std::string& path, const Trace& trace,
                 const TraceWriterOptions& options) {
  TraceVectorSource source(trace);
  return SaveTrace(path, source, options);
}

StatusOr<Trace> LoadTrace(const std::string& path) {
  TraceFileReader reader(path);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  std::vector<TraceRecord>& records = trace.records();
  // The declared count is advisory and untrusted: clamp it to the file size
  // (records encode to >= 4 bytes, so more records than bytes means a corrupt
  // or hostile header) so the pre-sizing below cannot allocate unboundedly.
  int64_t declared = reader.declared_record_count();
  if (declared > 0) {
    std::error_code ec;
    const uint64_t bytes = std::filesystem::file_size(path, ec);
    if (!ec) {
      declared = std::min(declared, static_cast<int64_t>(bytes));
    }
  }
  if (declared > 0) {
    // Decode straight into pre-sized vector slots — one allocation and no
    // per-record copy.  Tolerate both a short stream (shrink) and extra
    // records (append).
    records.resize(static_cast<size_t>(declared));
    size_t n = 0;
    while (n < records.size() && reader.Next(&records[n])) {
      ++n;
    }
    records.resize(n);
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    records.push_back(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

}  // namespace bsdtrace
