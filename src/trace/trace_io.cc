#include "src/trace/trace_io.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/trace/crc32c.h"
#include "src/trace/io_buffer.h"
#include "src/trace/lz_codec.h"
#include "src/trace/trace_source.h"

namespace bsdtrace {
namespace {

constexpr char kMagicV1[8] = {'B', 'S', 'D', 'T', 'R', 'C', '1', '\n'};
constexpr char kMagicV2[8] = {'B', 'S', 'D', 'T', 'R', 'C', '2', '\n'};
constexpr char kMagicV3[8] = {'B', 'S', 'D', 'T', 'R', 'C', '3', '\n'};
constexpr char kMagicV4[8] = {'B', 'S', 'D', 'T', 'R', 'C', '4', '\n'};
constexpr uint8_t kEndSentinel = 0;
constexpr uint8_t kBlockMarker = 1;
constexpr int64_t kMicrosPerHour = int64_t{3'600} * 1'000'000;
// Sanity cap on a declared block payload: anything larger is corruption, not
// a real block (writers target ~256 KB).
constexpr uint64_t kMaxBlockPayload = uint64_t{1} << 30;

// The codec is templated over byte sinks/sources so the legacy iostream path
// and the block-buffered path share one encoding (and stay byte-identical).
//
// Sink concept:   void put(uint8_t);  void write(const void*, size_t);
// Source concept: int get();          bool read(void*, size_t);

struct OstreamSink {
  std::ostream& out;
  void put(uint8_t b) { out.put(static_cast<char>(b)); }
  void write(const void* p, size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
};

struct BufferedSink {
  BufferedWriter& out;
  void put(uint8_t b) { out.PutByte(b); }
  void write(const void* p, size_t n) { out.Write(p, n); }
};

// Unchecked raw-memory sink for the record fast path: the caller reserves
// kMaxRecordEncoding bytes up front.
struct PtrSink {
  uint8_t* p;
  void put(uint8_t b) { *p++ = b; }
  void write(const void* src, size_t n) {
    std::memcpy(p, src, n);
    p += n;
  }
};

struct IstreamSource {
  std::istream& in;
  int get() { return in.get(); }
  bool read(void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return static_cast<size_t>(in.gcount()) == n;
  }
};

struct BufferedSource {
  BufferedReader& in;
  int get() { return in.GetByte(); }
  bool read(void* p, size_t n) { return in.Read(p, n); }
};

// Unchecked raw-memory source for the record fast path: the caller verifies
// kMaxRecordEncoding contiguous bytes up front, and the decoder consumes at
// most that many even on corrupt input (varints are capped at 10 bytes).
struct PtrSource {
  const uint8_t* p;
  int get() { return *p++; }
  bool read(void* out, size_t n) {
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
};

// Append-to-vector sink for the v4 per-field stream buffers.
struct VecSink {
  std::vector<uint8_t>& out;
  void put(uint8_t b) { out.push_back(b); }
  void write(const void* p, size_t n) {
    const uint8_t* src = static_cast<const uint8_t*>(p);
    out.insert(out.end(), src, src + n);
  }
};

// Bounds-checked memory source for v4 block payloads (decompressed bytes are
// untrusted even after the CRC: the checksum covers the stored bytes).
struct ByteCursor {
  const uint8_t* p = nullptr;
  const uint8_t* end = nullptr;
  int get() { return p < end ? *p++ : -1; }
  bool read(void* out, size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
};

template <typename Sink>
void PutVarint(Sink& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<uint8_t>(v));
}

template <typename Source>
bool GetVarint(Source& in, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c < 0) {
      return false;
    }
    result |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return false;  // overlong varint
    }
  }
  *v = result;
  return true;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <typename Sink>
void PutString(Sink& out, const std::string& s) {
  PutVarint(out, s.size());
  out.write(s.data(), s.size());
}

template <typename Source>
bool GetString(Source& in, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(in, &len)) {
    return false;
  }
  if (len > (64u << 20)) {  // sanity cap: 64 MB strings mean corruption
    return false;
  }
  s->resize(len);
  return in.read(s->data(), len);
}

// One record: type byte, zigzag time delta, then the per-type payload.
template <typename Sink>
void EncodeRecord(Sink& out, const TraceRecord& r, int64_t* prev_time_us) {
  out.put(static_cast<uint8_t>(r.type));
  PutVarint(out, ZigZagEncode(r.time.micros() - *prev_time_us));
  *prev_time_us = r.time.micros();
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      out.put(static_cast<uint8_t>(r.mode));
      PutVarint(out, r.size);
      PutVarint(out, r.position);
      break;
    case EventType::kClose:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.position);
      PutVarint(out, r.size);
      break;
    case EventType::kSeek:
      PutVarint(out, r.open_id);
      PutVarint(out, r.file_id);
      PutVarint(out, r.seek_from);
      PutVarint(out, r.seek_to);
      break;
    case EventType::kUnlink:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      break;
    case EventType::kTruncate:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
    case EventType::kExecve:
      PutVarint(out, r.file_id);
      PutVarint(out, r.user_id);
      PutVarint(out, r.size);
      break;
  }
}

enum class DecodeResult : uint8_t { kRecord, kEnd, kError };

// Decodes one record (after the caller consumed nothing).  On kError the
// stream position is unspecified; *error names the cause.
template <typename Source>
DecodeResult DecodeRecord(Source& in, TraceRecord* record, int64_t* prev_time_us,
                          const char** error) {
  const int type_byte = in.get();
  if (type_byte < 0) {
    *error = "unexpected end of stream (missing end sentinel)";
    return DecodeResult::kError;
  }
  if (type_byte == kEndSentinel) {
    return DecodeResult::kEnd;
  }
  if (type_byte < 1 || type_byte > 7) {
    *error = "corrupt record: unknown event type";
    return DecodeResult::kError;
  }

  // Decode in place (no local + copy-out); on kError the record's contents
  // are unspecified, per the contract above.
  *record = TraceRecord{};
  TraceRecord& r = *record;
  r.type = static_cast<EventType>(type_byte);
  uint64_t v = 0;
  auto fail = [&]() {
    *error = "truncated record body";
    return DecodeResult::kError;
  };
  if (!GetVarint(in, &v)) {
    return fail();
  }
  *prev_time_us += ZigZagDecode(v);
  r.time = SimTime::FromMicros(*prev_time_us);

  auto get = [&](uint64_t* out) { return GetVarint(in, out); };
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      uint64_t user = 0;
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&user)) {
        return fail();
      }
      const int mode_byte = in.get();
      if (mode_byte < 0 || mode_byte > 2) {
        return fail();
      }
      if (!get(&r.size) || !get(&r.position)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      r.mode = static_cast<AccessMode>(mode_byte);
      break;
    }
    case EventType::kClose:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.position) || !get(&r.size)) {
        return fail();
      }
      break;
    case EventType::kSeek:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.seek_from) || !get(&r.seek_to)) {
        return fail();
      }
      break;
    case EventType::kUnlink: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
    case EventType::kTruncate:
    case EventType::kExecve: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user) || !get(&r.size)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
  }
  return DecodeResult::kRecord;
}

template <typename Sink>
void PutFixed32(Sink& out, uint32_t v) {
  uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                  static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
  out.write(b, sizeof(b));
}

template <typename Sink>
void PutFixed64(Sink& out, uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  out.write(b, sizeof(b));
}

uint32_t ReadFixed32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

template <typename Sink>
void EncodeHeader(Sink& out, const TraceHeader& header, int64_t expected_records,
                  int version = 2) {
  out.write(version == 4 ? kMagicV4 : (version == 3 ? kMagicV3 : kMagicV2), sizeof(kMagicV2));
  PutString(out, header.machine);
  PutString(out, header.description);
  // N+1 so that 0 can mean "count unknown" (streamed traces).
  PutVarint(out, expected_records >= 0 ? static_cast<uint64_t>(expected_records) + 1 : 0);
}

// Parses the magic + header; returns false with *error set on failure.
// *declared stays -1 for v1 files or unknown counts; *version gets 1..4.
template <typename Source>
bool DecodeHeader(Source& in, TraceHeader* header, int64_t* declared, int* version,
                  const char** error) {
  char magic[sizeof(kMagicV2)];
  const bool got_magic = in.read(magic, sizeof(magic));
  const bool v1 = got_magic && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = got_magic && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  const bool v3 = got_magic && std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0;
  const bool v4 = got_magic && std::memcmp(magic, kMagicV4, sizeof(kMagicV4)) == 0;
  if (!v1 && !v2 && !v3 && !v4) {
    *error = "bad magic: not a bsdtrace binary trace";
    return false;
  }
  *version = v1 ? 1 : (v2 ? 2 : (v3 ? 3 : 4));
  if (!GetString(in, &header->machine) || !GetString(in, &header->description)) {
    *error = "truncated trace header";
    return false;
  }
  if (!v1) {
    uint64_t count_plus_one = 0;
    if (!GetVarint(in, &count_plus_one)) {
      *error = "truncated trace header";
      return false;
    }
    if (count_plus_one > 0) {
      *declared = static_cast<int64_t>(count_plus_one - 1);
    }
  }
  return true;
}

}  // namespace

// -- Legacy iostream path -----------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                                     int64_t expected_records)
    : out_(out) {
  OstreamSink sink{out_};
  EncodeHeader(sink, header, expected_records);
}

BinaryTraceWriter::~BinaryTraceWriter() { Finish(); }

void BinaryTraceWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  OstreamSink sink{out_};
  EncodeRecord(sink, r, &prev_time_us_);
  ++records_written_;
}

void BinaryTraceWriter::Finish() {
  if (finished_) {
    return;
  }
  out_.put(static_cast<char>(kEndSentinel));
  out_.flush();
  finished_ = true;
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  IstreamSource source{in_};
  const char* error = nullptr;
  int version = 2;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &version, &error)) {
    status_ = Status::Error(error);
    done_ = true;
    return;
  }
  if (version >= 3) {
    // The iostream reader has no block/checksum support; v3/v4 files go
    // through TraceFileReader (LoadTrace and TraceFileSource both do).
    status_ = Status::Error("v3/v4 trace: use the file reader (checksummed blocks)");
    done_ = true;
  }
}

bool BinaryTraceReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  IstreamSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      status_ = Status::Error(error);
      done_ = true;
      return false;
  }
  return false;
}

// -- Block-buffered file path -------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string& path, const TraceHeader& header,
                                 int64_t expected_records)
    : TraceFileWriter(path, header, expected_records, TraceWriterOptions{}) {}

TraceFileWriter::TraceFileWriter(const std::string& path, const TraceHeader& header,
                                 int64_t expected_records, const TraceWriterOptions& options)
    : out_(path), options_(options) {
  assert(options_.version >= 2 && options_.version <= 4);
  if (!out_.ok()) {
    return;
  }
  BufferedSink sink{out_};
  EncodeHeader(sink, header, expected_records, options_.version);
  if (options_.version == 3) {
    block_.reserve(options_.block_target_bytes + kMaxRecordEncoding);
  }
}

TraceFileWriter::~TraceFileWriter() { Finish(); }

void TraceFileWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  if (options_.version == 4) {
    AppendV4(r);
    return;
  }
  if (options_.version == 3) {
    // Close the block at the size target or when the record crosses a
    // simulated-hour boundary, so the footer doubles as an hour index.  The
    // break decision is a pure function of the record stream, keeping v3
    // output byte-deterministic like v2.
    const int64_t hour = r.time.micros() / kMicrosPerHour;
    if (block_records_ > 0 &&
        (block_.size() >= options_.block_target_bytes || hour != block_first_hour_)) {
      FlushBlock();
    }
    if (block_records_ == 0) {
      block_first_hour_ = hour;
      block_start_time_us_ = r.time.micros();
      prev_time_us_ = 0;  // per-block delta base: blocks decode independently
    }
    const size_t old_size = block_.size();
    block_.resize(old_size + kMaxRecordEncoding);
    PtrSink sink{block_.data() + old_size};
    EncodeRecord(sink, r, &prev_time_us_);
    block_.resize(old_size + static_cast<size_t>(sink.p - (block_.data() + old_size)));
    ++block_records_;
    ++records_written_;
    return;
  }
  uint8_t* base = out_.Reserve(kMaxRecordEncoding);
  PtrSink sink{base};
  EncodeRecord(sink, r, &prev_time_us_);
  assert(static_cast<size_t>(sink.p - base) <= kMaxRecordEncoding);
  out_.Advance(static_cast<size_t>(sink.p - base));
  ++records_written_;
}

void TraceFileWriter::FlushBlock() {
  if (block_records_ == 0) {
    return;
  }
  index_.push_back(TraceBlockIndexEntry{
      .offset = out_.bytes_written(),
      .record_count = block_records_,
      .start_time = SimTime::FromMicros(block_start_time_us_)});
  BufferedSink sink{out_};
  sink.put(kBlockMarker);
  PutVarint(sink, block_records_);
  PutVarint(sink, block_.size());
  PutFixed32(sink, Crc32c(block_.data(), block_.size()));
  out_.Write(block_.data(), block_.size());
  block_.clear();
  block_records_ = 0;
}

size_t TraceFileWriter::V4FieldStreams::payload_size() const {
  return types.size() + times.size() + open_ids.size() + file_ids.size() + user_ids.size() +
         flags.size() + sizes.size() + positions.size() + seek_froms.size() + seek_tos.size();
}

void TraceFileWriter::V4FieldStreams::Clear() {
  types.clear();
  times.clear();
  open_ids.clear();
  file_ids.clear();
  user_ids.clear();
  flags.clear();
  sizes.clear();
  positions.clear();
  seek_froms.clear();
  seek_tos.clear();
  prev_open_id = 0;
  open_table.clear();
  open_lru.clear();
  file_mtf.clear();
  user_mtf.clear();
  file_size.clear();
}

namespace {

// Zigzag delta against the stream's previous value, in uint64 arithmetic so
// wraparound is well-defined for any field values.
void PutDelta(std::vector<uint8_t>& stream, uint64_t* prev, uint64_t value) {
  VecSink sink{stream};
  PutVarint(sink, ZigZagEncode(static_cast<int64_t>(value - *prev)));
  *prev = value;
}

// Zigzag-coded residual against a predicted value (uint64 wraparound).
void PutResidual(std::vector<uint8_t>& stream, uint64_t value, uint64_t predicted) {
  VecSink sink{stream};
  PutVarint(sink, ZigZagEncode(static_cast<int64_t>(value - predicted)));
}

void PutRaw(std::vector<uint8_t>& stream, uint64_t value) {
  VecSink sink{stream};
  PutVarint(sink, value);
}

// File and user ids are Zipfian references, not random-walk values, so they
// are coded through a block-local move-to-front list: rank+1 for a value on
// the list (which then moves to the front), 0 followed by the full value for
// one that is not (which is inserted at the front).  The list is capped so a
// pathological id stream cannot make lookups quadratic in the block size.
constexpr size_t kV4MtfCap = 4096;

void PutMtf(std::vector<uint8_t>& stream, std::vector<uint64_t>* mtf, uint64_t value) {
  auto it = std::find(mtf->begin(), mtf->end(), value);
  if (it != mtf->end()) {
    PutRaw(stream, static_cast<uint64_t>(it - mtf->begin()) + 1);
    mtf->erase(it);
  } else {
    PutRaw(stream, 0);
    PutRaw(stream, value);
    if (mtf->size() >= kV4MtfCap) {
      mtf->pop_back();
    }
  }
  mtf->insert(mtf->begin(), value);
}

// v4 close/seek prediction flags (see the trace_io.h format comment).  A
// close or seek is "in table" only when its open id maps to an open from
// this block AND the record's file id agrees — so omitting the file id
// rewrites nothing, and round-trips are exact for arbitrary (even invalid)
// record sequences.
constexpr uint8_t kV4InTable = 1u << 0;
constexpr uint8_t kV4PosEqSize = 1u << 1;   // close: position == size
constexpr uint8_t kV4SizeEqOpen = 1u << 2;  // close: size == open's size
constexpr uint8_t kV4FromEqPos = 1u << 1;   // seek: from == table position

}  // namespace

void TraceFileWriter::AppendV4(const TraceRecord& r) {
  // Same block-close rule as v3 (size target or simulated-hour boundary,
  // decided before the record is added), so v4 output stays a pure function
  // of the record stream — byte-deterministic across runs and thread counts.
  const int64_t hour = r.time.micros() / kMicrosPerHour;
  if (block_records_ > 0 &&
      (v4_.payload_size() >= options_.block_target_bytes || hour != block_first_hour_)) {
    FlushBlockV4();
  }
  if (block_records_ == 0) {
    block_first_hour_ = hour;
    block_start_time_us_ = r.time.micros();
    prev_time_us_ = 0;  // per-block bases: blocks decode independently
    v4_.Clear();
  }
  const bool has_mode = r.type == EventType::kOpen || r.type == EventType::kCreate;
  v4_.types.push_back(static_cast<uint8_t>(r.type) |
                      (has_mode ? static_cast<uint8_t>(r.mode) << 3 : 0));
  {
    VecSink sink{v4_.times};
    PutVarint(sink, ZigZagEncode(r.time.micros() - prev_time_us_));
    prev_time_us_ = r.time.micros();
  }
  // Size of a file reference: residual against the file's last size seen in
  // this block (files rarely change size between references).
  auto put_size = [&](uint64_t file_id, uint64_t size) {
    auto fs = v4_.file_size.find(file_id);
    PutResidual(v4_.sizes, size, fs == v4_.file_size.end() ? 0 : fs->second);
    v4_.file_size[file_id] = size;
  };
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      PutDelta(v4_.open_ids, &v4_.prev_open_id, r.open_id);
      PutMtf(v4_.file_ids, &v4_.file_mtf, r.file_id);
      PutMtf(v4_.user_ids, &v4_.user_mtf, r.user_id);
      put_size(r.file_id, r.size);
      PutRaw(v4_.positions, r.position);
      // The LRU list mirrors the table's key set exactly; a re-used open id
      // replaces its old entry in both.
      if (v4_.open_table.count(r.open_id) != 0) {
        v4_.open_lru.erase(std::find(v4_.open_lru.begin(), v4_.open_lru.end(), r.open_id));
      }
      v4_.open_table[r.open_id] = {r.file_id, r.size, r.position};
      v4_.open_lru.insert(v4_.open_lru.begin(), r.open_id);
      break;
    }
    case EventType::kClose: {
      auto it = v4_.open_table.find(r.open_id);
      const bool in_table = it != v4_.open_table.end() && it->second.file_id == r.file_id;
      const bool pos_eq = r.position == r.size;
      const bool size_eq = in_table && r.size == it->second.size;
      v4_.flags.push_back(static_cast<uint8_t>((in_table ? kV4InTable : 0) |
                                               (pos_eq ? kV4PosEqSize : 0) |
                                               (size_eq ? kV4SizeEqOpen : 0)));
      if (in_table) {
        auto lru = std::find(v4_.open_lru.begin(), v4_.open_lru.end(), r.open_id);
        PutRaw(v4_.open_ids, static_cast<uint64_t>(lru - v4_.open_lru.begin()));
        v4_.open_lru.erase(lru);
      } else {
        PutDelta(v4_.open_ids, &v4_.prev_open_id, r.open_id);
        PutMtf(v4_.file_ids, &v4_.file_mtf, r.file_id);
      }
      if (!size_eq) {
        if (in_table) {
          PutResidual(v4_.sizes, r.size, it->second.size);
        } else {
          PutRaw(v4_.sizes, r.size);
        }
      }
      if (!pos_eq) {
        PutResidual(v4_.positions, r.position, r.size);
      }
      if (in_table) {
        v4_.open_table.erase(it);
        v4_.file_size[r.file_id] = r.size;
      }
      break;
    }
    case EventType::kSeek: {
      auto it = v4_.open_table.find(r.open_id);
      const bool in_table = it != v4_.open_table.end() && it->second.file_id == r.file_id;
      const bool from_eq = in_table && r.seek_from == it->second.position;
      v4_.flags.push_back(static_cast<uint8_t>((in_table ? kV4InTable : 0) |
                                               (from_eq ? kV4FromEqPos : 0)));
      if (in_table) {
        auto lru = std::find(v4_.open_lru.begin(), v4_.open_lru.end(), r.open_id);
        const uint64_t rank = static_cast<uint64_t>(lru - v4_.open_lru.begin());
        PutRaw(v4_.open_ids, rank);
        v4_.open_lru.erase(lru);
        v4_.open_lru.insert(v4_.open_lru.begin(), r.open_id);
      } else {
        PutDelta(v4_.open_ids, &v4_.prev_open_id, r.open_id);
        PutMtf(v4_.file_ids, &v4_.file_mtf, r.file_id);
      }
      if (!from_eq) {
        if (in_table) {
          PutResidual(v4_.seek_froms, r.seek_from, it->second.position);
        } else {
          PutRaw(v4_.seek_froms, r.seek_from);
        }
      }
      PutResidual(v4_.seek_tos, r.seek_to, r.seek_from);
      if (in_table) {
        it->second.position = r.seek_to;
      }
      break;
    }
    case EventType::kUnlink:
      PutMtf(v4_.file_ids, &v4_.file_mtf, r.file_id);
      PutMtf(v4_.user_ids, &v4_.user_mtf, r.user_id);
      break;
    case EventType::kTruncate:
    case EventType::kExecve:
      PutMtf(v4_.file_ids, &v4_.file_mtf, r.file_id);
      PutMtf(v4_.user_ids, &v4_.user_mtf, r.user_id);
      put_size(r.file_id, r.size);
      break;
  }
  ++block_records_;
  ++records_written_;
}

void TraceFileWriter::FlushBlockV4() {
  if (block_records_ == 0) {
    return;
  }
  // Assemble the raw payload: the type stream (its length is the block's
  // record count, already in the header), then each field stream
  // length-prefixed, in fixed order.
  v4_raw_.clear();
  VecSink raw{v4_raw_};
  raw.write(v4_.types.data(), v4_.types.size());
  for (const std::vector<uint8_t>* s :
       {&v4_.times, &v4_.open_ids, &v4_.file_ids, &v4_.user_ids, &v4_.flags, &v4_.sizes,
        &v4_.positions, &v4_.seek_froms, &v4_.seek_tos}) {
    PutVarint(raw, s->size());
    raw.write(s->data(), s->size());
  }
  uint8_t codec = static_cast<uint8_t>(options_.codec);
  const uint8_t* stored = v4_raw_.data();
  size_t stored_len = v4_raw_.size();
  if (options_.codec == TraceCodec::kLz) {
    v4_stored_.resize(LzMaxCompressedSize(v4_raw_.size()));
    const size_t n = LzCompress(v4_raw_.data(), v4_raw_.size(), v4_stored_.data());
    if (n < v4_raw_.size()) {
      stored = v4_stored_.data();
      stored_len = n;
    } else {
      codec = static_cast<uint8_t>(TraceCodec::kNone);  // incompressible block
    }
  }
  index_.push_back(TraceBlockIndexEntry{
      .offset = out_.bytes_written(),
      .record_count = block_records_,
      .start_time = SimTime::FromMicros(block_start_time_us_)});
  BufferedSink sink{out_};
  sink.put(kBlockMarker);
  PutVarint(sink, block_records_);
  PutVarint(sink, v4_raw_.size());
  sink.put(codec);
  PutVarint(sink, stored_len);
  PutFixed32(sink, Crc32c(stored, stored_len));
  out_.Write(stored, stored_len);
  payload_raw_bytes_ += v4_raw_.size();
  payload_stored_bytes_ += stored_len;
  block_records_ = 0;
}

Status TraceFileWriter::Finish() {
  if (!finished_) {
    if (options_.version >= 3) {
      if (options_.version == 4) {
        FlushBlockV4();
      } else {
        FlushBlock();
      }
      out_.PutByte(kEndSentinel);
      if (options_.write_index) {
        const uint64_t footer_offset = out_.bytes_written();
        BufferedSink sink{out_};
        PutVarint(sink, index_.size());
        uint64_t prev_offset = 0;
        for (const TraceBlockIndexEntry& e : index_) {
          PutVarint(sink, e.offset - prev_offset);
          PutVarint(sink, e.record_count);
          PutVarint(sink, static_cast<uint64_t>(e.start_time.micros()));
          prev_offset = e.offset;
        }
        PutFixed64(sink, footer_offset);
        out_.Write(kTraceIndexTailMagic, sizeof(kTraceIndexTailMagic));
      }
    } else {
      out_.PutByte(kEndSentinel);
    }
    finished_ = true;
  }
  return out_.Close();
}

TraceFileReader::TraceFileReader(const std::string& path, bool prefer_mmap)
    : in_(path, prefer_mmap) {
  if (!in_.ok()) {
    status_ = in_.status();
    done_ = true;
    return;
  }
  BufferedSource source{in_};
  const char* error = nullptr;
  if (!DecodeHeader(source, &header_, &declared_record_count_, &version_, &error)) {
    status_ = Status::Error(error);
    done_ = true;
  }
}

bool TraceFileReader::FailCorrupt(const char* error) {
  if (!in_.status().ok()) {
    status_ = in_.status();  // underlying I/O error beats the decode error
  } else {
    status_ = Status::Error(error);
  }
  done_ = true;
  return false;
}

Status TraceFileReader::SeekToBlock(uint64_t offset, uint64_t block_count) {
  if (!status_.ok()) {
    return status_;
  }
  if (version_ < 3) {
    status_ = Status::Error("SeekToBlock requires a v3/v4 trace");
    done_ = true;
    return status_;
  }
  const Status s = in_.SkipTo(offset);
  if (!s.ok()) {
    status_ = s;
    done_ = true;
    return s;
  }
  done_ = false;
  block_remaining_ = 0;
  scratch_active_ = false;
  v4_records_.clear();
  v4_next_ = 0;
  blocks_limited_ = true;
  blocks_left_ = block_count;
  return Status::Ok();
}

// One v3 record: drains the current block, verifying the next block's CRC32C
// before any of its records are surfaced.
bool TraceFileReader::NextV3(TraceRecord* record) {
  while (true) {
    if (block_remaining_ > 0) {
      --block_remaining_;
      const char* error = nullptr;
      if (scratch_active_) {
        // Copy-and-verify path (unmapped reads): decode from the scratch
        // buffer.  The CRC already vouched for the payload, and the buffer
        // carries kMaxRecordEncoding zero bytes of slack, so the unchecked
        // PtrSource cannot run past the allocation even on a decoder bug.
        const uint8_t* base = scratch_.data() + scratch_pos_;
        PtrSource source{base};
        if (scratch_pos_ > scratch_len_ ||
            DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
          return FailCorrupt("corrupt v3 block: record decode failed after checksum");
        }
        scratch_pos_ += static_cast<size_t>(source.p - base);
        return true;
      }
      // Mapped path: decode straight from the file window, as in v2.
      size_t available = 0;
      const uint8_t* window = in_.Contiguous(kMaxRecordEncoding, &available);
      if (available >= kMaxRecordEncoding) {
        PtrSource source{window};
        if (DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
          return FailCorrupt("corrupt v3 block: record decode failed after checksum");
        }
        in_.Advance(static_cast<size_t>(source.p - window));
        return true;
      }
      BufferedSource source{in_};
      if (DecodeRecord(source, record, &prev_time_us_, &error) != DecodeResult::kRecord) {
        return FailCorrupt("corrupt v3 block: record decode failed after checksum");
      }
      return true;
    }
    // Between blocks: enforce the cursor budget, then enter the next block.
    scratch_active_ = false;
    if (blocks_limited_ && blocks_left_ == 0) {
      done_ = true;
      return false;
    }
    const int marker = in_.GetByte();
    if (marker < 0) {
      return FailCorrupt("unexpected end of file (missing end sentinel)");
    }
    if (marker == kEndSentinel) {
      done_ = true;  // the footer index (if any) is not part of the stream
      return false;
    }
    if (marker != kBlockMarker) {
      return FailCorrupt("corrupt v3 trace: bad block marker");
    }
    if (blocks_limited_) {
      --blocks_left_;
    }
    BufferedSource header_source{in_};
    uint64_t record_count = 0;
    uint64_t payload_len = 0;
    uint8_t crc_bytes[4];
    if (!GetVarint(header_source, &record_count) || !GetVarint(header_source, &payload_len) ||
        !in_.Read(crc_bytes, sizeof(crc_bytes))) {
      return FailCorrupt("truncated v3 block header");
    }
    if (record_count == 0 || payload_len == 0 || payload_len > kMaxBlockPayload) {
      return FailCorrupt("corrupt v3 block header");
    }
    const uint32_t expected_crc = ReadFixed32(crc_bytes);
    if (in_.mapped()) {
      size_t available = 0;
      const uint8_t* window = in_.Contiguous(1, &available);  // mapped: whole rest
      if (window == nullptr || available < payload_len) {
        return FailCorrupt("truncated v3 block payload");
      }
      if (Crc32c(window, payload_len) != expected_crc) {
        return FailCorrupt("v3 block checksum mismatch (corrupt trace)");
      }
    } else {
      scratch_.resize(payload_len + kMaxRecordEncoding);
      if (!in_.Read(scratch_.data(), payload_len)) {
        return FailCorrupt("truncated v3 block payload");
      }
      std::memset(scratch_.data() + payload_len, 0, kMaxRecordEncoding);
      if (Crc32c(scratch_.data(), payload_len) != expected_crc) {
        return FailCorrupt("v3 block checksum mismatch (corrupt trace)");
      }
      scratch_pos_ = 0;
      scratch_len_ = payload_len;
      scratch_active_ = true;
    }
    ++blocks_verified_;
    payload_stored_bytes_ += payload_len;  // v3 stores payloads raw
    payload_raw_bytes_ += payload_len;
    block_remaining_ = record_count;
    prev_time_us_ = 0;  // per-block time-delta base
  }
}

namespace {

// Decodes one v4 block's raw (decompressed) payload into records.  Fully
// bounds-checked: the CRC covered the stored bytes, so everything here is
// still untrusted.  Returns false on any malformed layout — wrong stream
// lengths, bad types, truncated varints, or streams not consumed exactly.
bool DecodeBlockV4(const uint8_t* raw, size_t raw_len, uint64_t record_count,
                   std::vector<TraceRecord>* out) {
  if (record_count > raw_len) {
    return false;  // the type stream alone needs one byte per record
  }
  const uint8_t* const end = raw + raw_len;
  const uint8_t* const types = raw;
  ByteCursor layout{raw + record_count, end};
  // Field streams in the fixed writer order: times, open_ids, file_ids,
  // user_ids, flags, sizes, positions, seek_froms, seek_tos.
  ByteCursor streams[9];
  for (ByteCursor& stream : streams) {
    uint64_t len = 0;
    if (!GetVarint(layout, &len) || len > static_cast<size_t>(layout.end - layout.p)) {
      return false;
    }
    stream = ByteCursor{layout.p, layout.p + len};
    layout.p += len;
  }
  if (layout.p != end) {
    return false;  // trailing bytes after the last stream
  }
  ByteCursor& times = streams[0];
  ByteCursor& open_ids = streams[1];
  ByteCursor& file_ids = streams[2];
  ByteCursor& user_ids = streams[3];
  ByteCursor& flags = streams[4];
  ByteCursor& sizes = streams[5];
  ByteCursor& positions = streams[6];
  ByteCursor& seek_froms = streams[7];
  ByteCursor& seek_tos = streams[8];
  uint64_t prev_time = 0, prev_open = 0;
  auto delta = [](ByteCursor& c, uint64_t* prev, uint64_t* value) {
    uint64_t z = 0;
    if (!GetVarint(c, &z)) {
      return false;
    }
    *prev += static_cast<uint64_t>(ZigZagDecode(z));
    *value = *prev;
    return true;
  };
  auto residual = [](ByteCursor& c, uint64_t predicted, uint64_t* value) {
    uint64_t z = 0;
    if (!GetVarint(c, &z)) {
      return false;
    }
    *value = predicted + static_cast<uint64_t>(ZigZagDecode(z));
    return true;
  };
  // Mirrors of the writer's block-local prediction state (see trace_io.h):
  // the open table + its LRU list, the file/user MTF lists, the size map.
  struct OpenInfo {
    uint64_t file_id = 0;
    uint64_t size = 0;
    uint64_t position = 0;
  };
  std::unordered_map<uint64_t, OpenInfo> open_table;
  std::vector<uint64_t> open_lru;
  std::vector<uint64_t> file_mtf, user_mtf;
  std::unordered_map<uint64_t, uint64_t> file_size;
  auto mtf_get = [](ByteCursor& c, std::vector<uint64_t>* mtf, uint64_t* value) {
    uint64_t v = 0;
    if (!GetVarint(c, &v)) {
      return false;
    }
    if (v == 0) {
      if (!GetVarint(c, value)) {
        return false;
      }
      if (mtf->size() >= kV4MtfCap) {
        mtf->pop_back();
      }
    } else {
      if (v > mtf->size()) {
        return false;
      }
      *value = (*mtf)[v - 1];
      mtf->erase(mtf->begin() + static_cast<ptrdiff_t>(v - 1));
    }
    mtf->insert(mtf->begin(), *value);
    return true;
  };
  auto size_get = [&](ByteCursor& c, uint64_t file_id, uint64_t* value) {
    auto fs = file_size.find(file_id);
    if (!residual(c, fs == file_size.end() ? 0 : fs->second, value)) {
      return false;
    }
    file_size[file_id] = *value;
    return true;
  };
  out->reserve(out->size() + static_cast<size_t>(std::min<uint64_t>(record_count, 1u << 20)));
  for (uint64_t i = 0; i < record_count; ++i) {
    const uint8_t type_byte = types[i] & 0x07;
    const uint8_t mode_bits = types[i] >> 3;
    if (type_byte < 1 || type_byte > 7) {
      return false;
    }
    TraceRecord r;
    r.type = static_cast<EventType>(type_byte);
    const bool has_mode = r.type == EventType::kOpen || r.type == EventType::kCreate;
    if (has_mode ? mode_bits > 2 : mode_bits != 0) {
      return false;  // non-canonical type byte
    }
    uint64_t v = 0;
    if (!delta(times, &prev_time, &v)) {
      return false;
    }
    r.time = SimTime::FromMicros(static_cast<int64_t>(prev_time));
    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate: {
        uint64_t user = 0;
        if (!delta(open_ids, &prev_open, &r.open_id) ||
            !mtf_get(file_ids, &file_mtf, &r.file_id) || !mtf_get(user_ids, &user_mtf, &user) ||
            !size_get(sizes, r.file_id, &r.size) || !GetVarint(positions, &r.position)) {
          return false;
        }
        r.user_id = static_cast<UserId>(user);
        r.mode = static_cast<AccessMode>(mode_bits);
        if (open_table.count(r.open_id) != 0) {
          open_lru.erase(std::find(open_lru.begin(), open_lru.end(), r.open_id));
        }
        open_table[r.open_id] = {r.file_id, r.size, r.position};
        open_lru.insert(open_lru.begin(), r.open_id);
        break;
      }
      case EventType::kClose: {
        const int f = flags.get();
        if (f < 0 || (f & ~(kV4InTable | kV4PosEqSize | kV4SizeEqOpen)) != 0) {
          return false;
        }
        auto it = open_table.end();
        if (f & kV4InTable) {
          uint64_t rank = 0;
          if (!GetVarint(open_ids, &rank) || rank >= open_lru.size()) {
            return false;
          }
          r.open_id = open_lru[rank];
          it = open_table.find(r.open_id);
          if (it == open_table.end()) {
            return false;  // unreachable: the LRU list mirrors the table keys
          }
          r.file_id = it->second.file_id;
          open_lru.erase(open_lru.begin() + static_cast<ptrdiff_t>(rank));
        } else if (!delta(open_ids, &prev_open, &r.open_id) ||
                   !mtf_get(file_ids, &file_mtf, &r.file_id)) {
          return false;
        }
        if (f & kV4SizeEqOpen) {
          if ((f & kV4InTable) == 0) {
            return false;
          }
          r.size = it->second.size;
        } else if (f & kV4InTable) {
          if (!residual(sizes, it->second.size, &r.size)) {
            return false;
          }
        } else if (!GetVarint(sizes, &r.size)) {
          return false;
        }
        if (f & kV4PosEqSize) {
          r.position = r.size;
        } else if (!residual(positions, r.size, &r.position)) {
          return false;
        }
        if (f & kV4InTable) {
          open_table.erase(it);
          file_size[r.file_id] = r.size;
        }
        break;
      }
      case EventType::kSeek: {
        const int f = flags.get();
        if (f < 0 || (f & ~(kV4InTable | kV4FromEqPos)) != 0) {
          return false;
        }
        auto it = open_table.end();
        if (f & kV4InTable) {
          uint64_t rank = 0;
          if (!GetVarint(open_ids, &rank) || rank >= open_lru.size()) {
            return false;
          }
          r.open_id = open_lru[rank];
          it = open_table.find(r.open_id);
          if (it == open_table.end()) {
            return false;  // unreachable: the LRU list mirrors the table keys
          }
          r.file_id = it->second.file_id;
          open_lru.erase(open_lru.begin() + static_cast<ptrdiff_t>(rank));
          open_lru.insert(open_lru.begin(), r.open_id);
        } else if (!delta(open_ids, &prev_open, &r.open_id) ||
                   !mtf_get(file_ids, &file_mtf, &r.file_id)) {
          return false;
        }
        if (f & kV4FromEqPos) {
          if ((f & kV4InTable) == 0) {
            return false;
          }
          r.seek_from = it->second.position;
        } else if (f & kV4InTable) {
          if (!residual(seek_froms, it->second.position, &r.seek_from)) {
            return false;
          }
        } else if (!GetVarint(seek_froms, &r.seek_from)) {
          return false;
        }
        if (!residual(seek_tos, r.seek_from, &r.seek_to)) {
          return false;
        }
        if (f & kV4InTable) {
          it->second.position = r.seek_to;
        }
        break;
      }
      case EventType::kUnlink: {
        uint64_t user = 0;
        if (!mtf_get(file_ids, &file_mtf, &r.file_id) || !mtf_get(user_ids, &user_mtf, &user)) {
          return false;
        }
        r.user_id = static_cast<UserId>(user);
        break;
      }
      case EventType::kTruncate:
      case EventType::kExecve: {
        uint64_t user = 0;
        if (!mtf_get(file_ids, &file_mtf, &r.file_id) || !mtf_get(user_ids, &user_mtf, &user) ||
            !size_get(sizes, r.file_id, &r.size)) {
          return false;
        }
        r.user_id = static_cast<UserId>(user);
        break;
      }
    }
    out->push_back(r);
  }
  // Every stream must be consumed exactly; leftovers mean the block header
  // lied about the record count or the payload was tampered with.
  for (const ByteCursor& stream : streams) {
    if (stream.p != stream.end) {
      return false;
    }
  }
  return true;
}

}  // namespace

// One v4 record: serves from the current block's decoded records, entering
// (CRC-verifying, decompressing, decoding) the next block when drained.
bool TraceFileReader::NextV4(TraceRecord* record) {
  while (true) {
    if (v4_next_ < v4_records_.size()) {
      *record = v4_records_[v4_next_++];
      return true;
    }
    v4_records_.clear();
    v4_next_ = 0;
    // Between blocks: enforce the cursor budget, then enter the next block.
    if (blocks_limited_ && blocks_left_ == 0) {
      done_ = true;
      return false;
    }
    const int marker = in_.GetByte();
    if (marker < 0) {
      return FailCorrupt("unexpected end of file (missing end sentinel)");
    }
    if (marker == kEndSentinel) {
      done_ = true;  // the footer index (if any) is not part of the stream
      return false;
    }
    if (marker != kBlockMarker) {
      return FailCorrupt("corrupt v4 trace: bad block marker");
    }
    if (blocks_limited_) {
      --blocks_left_;
    }
    BufferedSource header_source{in_};
    uint64_t record_count = 0;
    uint64_t raw_len = 0;
    uint64_t stored_len = 0;
    if (!GetVarint(header_source, &record_count) || !GetVarint(header_source, &raw_len)) {
      return FailCorrupt("truncated v4 block header");
    }
    const int codec_byte = in_.GetByte();
    uint8_t crc_bytes[4];
    if (codec_byte < 0 || !GetVarint(header_source, &stored_len) ||
        !in_.Read(crc_bytes, sizeof(crc_bytes))) {
      return FailCorrupt("truncated v4 block header");
    }
    if (record_count == 0 || raw_len == 0 || raw_len > kMaxBlockPayload || stored_len == 0 ||
        stored_len > kMaxBlockPayload || record_count > raw_len) {
      return FailCorrupt("corrupt v4 block header");
    }
    if (codec_byte != static_cast<int>(TraceCodec::kNone) &&
        codec_byte != static_cast<int>(TraceCodec::kLz)) {
      return FailCorrupt("v4 block: unknown codec id");
    }
    const uint32_t expected_crc = ReadFixed32(crc_bytes);
    const uint8_t* stored = nullptr;
    bool advance_after_decode = false;
    if (in_.mapped()) {
      size_t available = 0;
      const uint8_t* window = in_.Contiguous(1, &available);  // mapped: whole rest
      if (window == nullptr || available < stored_len) {
        return FailCorrupt("truncated v4 block payload");
      }
      stored = window;
      advance_after_decode = true;
    } else {
      v4_stored_scratch_.resize(stored_len);
      if (!in_.Read(v4_stored_scratch_.data(), stored_len)) {
        return FailCorrupt("truncated v4 block payload");
      }
      stored = v4_stored_scratch_.data();
    }
    if (Crc32c(stored, stored_len) != expected_crc) {
      return FailCorrupt("v4 block checksum mismatch (corrupt trace)");
    }
    const uint8_t* raw = stored;
    if (codec_byte == static_cast<int>(TraceCodec::kNone)) {
      if (stored_len != raw_len) {
        return FailCorrupt("v4 block: decompressed size disagrees with header");
      }
    } else {
      scratch_.resize(raw_len);
      if (!LzDecompress(stored, stored_len, scratch_.data(), raw_len)) {
        return FailCorrupt("v4 block: decompressed size disagrees with header");
      }
      raw = scratch_.data();
    }
    if (!DecodeBlockV4(raw, raw_len, record_count, &v4_records_)) {
      v4_records_.clear();  // no partial records from a malformed block
      return FailCorrupt("corrupt v4 block: record decode failed after checksum");
    }
    if (advance_after_decode) {
      in_.Advance(stored_len);
    }
    ++blocks_verified_;
    codecs_seen_ |= 1u << codec_byte;
    payload_stored_bytes_ += stored_len;
    payload_raw_bytes_ += raw_len;
  }
}

bool TraceFileReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  if (version_ == 4) {
    return NextV4(record);
  }
  if (version_ == 3) {
    return NextV3(record);
  }
  // Fast path: when a full worst-case record is available contiguously
  // (essentially always — the mmap window is the whole file), decode straight
  // from memory with no per-byte end-of-stream checks.
  size_t available = 0;
  const uint8_t* window = in_.Contiguous(kMaxRecordEncoding, &available);
  if (available >= kMaxRecordEncoding) {
    PtrSource source{window};
    const char* error = nullptr;
    switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
      case DecodeResult::kRecord:
        in_.Advance(static_cast<size_t>(source.p - window));
        return true;
      case DecodeResult::kEnd:
        in_.Advance(1);
        done_ = true;
        return false;
      case DecodeResult::kError:
        status_ = Status::Error(error);
        done_ = true;
        return false;
    }
  }
  // Slow path: near the end of the file, where a record may be truncated.
  BufferedSource source{in_};
  const char* error = nullptr;
  switch (DecodeRecord(source, record, &prev_time_us_, &error)) {
    case DecodeResult::kRecord:
      return true;
    case DecodeResult::kEnd:
      done_ = true;
      return false;
    case DecodeResult::kError:
      if (!in_.status().ok()) {
        status_ = in_.status();  // underlying I/O error beats "truncated"
      } else {
        status_ = Status::Error(error);
      }
      done_ = true;
      return false;
  }
  return false;
}

Status WriteTextTrace(std::ostream& out, TraceSource& source) {
  out << "# machine " << source.header().machine << "\n";
  if (!source.header().description.empty()) {
    out << "# description " << source.header().description << "\n";
  }
  TraceRecord r;
  while (source.Next(&r)) {
    out << r.ToString() << "\n";
  }
  if (!source.status().ok()) {
    return source.status();
  }
  out.flush();
  if (!out.good()) {
    return Status::Error("text trace write failed (stream error)");
  }
  return Status::Ok();
}

Status WriteTextTrace(std::ostream& out, const Trace& trace) {
  TraceVectorSource source(trace);
  return WriteTextTrace(out, source);
}

StatusOr<Trace> ReadTextTrace(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF logs
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "machine") {
        hdr >> trace.header().machine;
      } else if (key == "description") {
        std::string rest;
        std::getline(hdr, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        trace.header().description = rest;
      }
      continue;
    }
    // Record lines go through the strict bsdtxt grammar (record.h); the old
    // in-file parser accepted signs, wrapping values, and trailing garbage.
    StatusOr<TraceRecord> record = ParseTraceRecord(line);
    if (!record.ok()) {
      return Status::Error("line " + std::to_string(line_no) + ": " +
                           record.status().message());
    }
    trace.Append(record.value());
  }
  return trace;
}

Status WriteBinaryTrace(std::ostream& out, const Trace& trace) {
  BinaryTraceWriter writer(out, trace.header(), static_cast<int64_t>(trace.size()));
  for (const TraceRecord& r : trace.records()) {
    writer.Append(r);
  }
  writer.Finish();
  if (!out.good()) {
    return Status::Error("binary trace write failed (stream error)");
  }
  return Status::Ok();
}

StatusOr<Trace> ReadBinaryTrace(std::istream& in) {
  BinaryTraceReader reader(in);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  if (reader.declared_record_count() > 0) {
    // One up-front allocation instead of log2(N) doublings on large traces.
    // The count comes from an untrusted header and an istream's length is
    // unknowable up front, so cap the act-of-faith allocation; a header
    // declaring more is either corrupt or a trace large enough that vector
    // doubling beyond the cap is noise.
    constexpr int64_t kIstreamReserveCap = int64_t{1} << 20;
    trace.Reserve(static_cast<size_t>(
        std::min(reader.declared_record_count(), kIstreamReserveCap)));
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    trace.Append(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

Status SaveTrace(const std::string& path, TraceSource& source,
                 const TraceWriterOptions& options) {
  TraceFileWriter writer(path, source.header(), source.size_hint(), options);
  if (!writer.status().ok()) {
    return writer.status();
  }
  TraceRecord r;
  while (source.Next(&r)) {
    writer.Append(r);
  }
  if (!source.status().ok()) {
    writer.Finish();  // close the partial file; the source error wins
    return source.status();
  }
  return writer.Finish();
}

Status SaveTrace(const std::string& path, TraceSource& source) {
  return SaveTrace(path, source, TraceWriterOptions{});
}

Status SaveTrace(const std::string& path, const Trace& trace) {
  TraceVectorSource source(trace);
  return SaveTrace(path, source);
}

Status SaveTrace(const std::string& path, const Trace& trace,
                 const TraceWriterOptions& options) {
  TraceVectorSource source(trace);
  return SaveTrace(path, source, options);
}

StatusOr<Trace> LoadTrace(const std::string& path) {
  TraceFileReader reader(path);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  std::vector<TraceRecord>& records = trace.records();
  // The declared count is advisory and untrusted: clamp it to the file size
  // (records encode to >= 4 bytes, so more records than bytes means a corrupt
  // or hostile header) so the pre-sizing below cannot allocate unboundedly.
  // v4 files are compressed, so a record can occupy under a byte on disk;
  // allow 4 records per byte before distrusting the header.
  int64_t declared = reader.declared_record_count();
  if (declared > 0) {
    std::error_code ec;
    const uint64_t bytes = std::filesystem::file_size(path, ec);
    if (!ec) {
      const uint64_t per_byte = reader.version() >= 4 ? 4 : 1;
      declared = std::min(declared, static_cast<int64_t>(bytes * per_byte));
    }
  }
  if (declared > 0) {
    // Decode straight into pre-sized vector slots — one allocation and no
    // per-record copy.  Tolerate both a short stream (shrink) and extra
    // records (append).
    records.resize(static_cast<size_t>(declared));
    size_t n = 0;
    while (n < records.size() && reader.Next(&records[n])) {
      ++n;
    }
    records.resize(n);
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    records.push_back(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

}  // namespace bsdtrace
