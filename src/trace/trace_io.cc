#include "src/trace/trace_io.h"

#include <cassert>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace bsdtrace {
namespace {

constexpr char kMagicV1[8] = {'B', 'S', 'D', 'T', 'R', 'C', '1', '\n'};
constexpr char kMagicV2[8] = {'B', 'S', 'D', 'T', 'R', 'C', '2', '\n'};
constexpr uint8_t kEndSentinel = 0;

void PutVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

bool GetVarint(std::istream& in, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == EOF) {
      return false;
    }
    result |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return false;  // overlong varint
    }
  }
  *v = result;
  return true;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(std::ostream& out, const std::string& s) {
  PutVarint(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& in, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(in, &len)) {
    return false;
  }
  if (len > (64u << 20)) {  // sanity cap: 64 MB strings mean corruption
    return false;
  }
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<uint64_t>(in.gcount()) == len;
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                                     int64_t expected_records)
    : out_(out) {
  out_.write(kMagicV2, sizeof(kMagicV2));
  PutString(out_, header.machine);
  PutString(out_, header.description);
  // N+1 so that 0 can mean "count unknown" (streamed traces).
  PutVarint(out_, expected_records >= 0 ? static_cast<uint64_t>(expected_records) + 1 : 0);
}

BinaryTraceWriter::~BinaryTraceWriter() { Finish(); }

void BinaryTraceWriter::Append(const TraceRecord& r) {
  assert(!finished_);
  out_.put(static_cast<char>(r.type));
  PutVarint(out_, ZigZagEncode(r.time.micros() - prev_time_us_));
  prev_time_us_ = r.time.micros();
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate:
      PutVarint(out_, r.open_id);
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.user_id);
      out_.put(static_cast<char>(r.mode));
      PutVarint(out_, r.size);
      PutVarint(out_, r.position);
      break;
    case EventType::kClose:
      PutVarint(out_, r.open_id);
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.position);
      PutVarint(out_, r.size);
      break;
    case EventType::kSeek:
      PutVarint(out_, r.open_id);
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.seek_from);
      PutVarint(out_, r.seek_to);
      break;
    case EventType::kUnlink:
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.user_id);
      break;
    case EventType::kTruncate:
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.user_id);
      PutVarint(out_, r.size);
      break;
    case EventType::kExecve:
      PutVarint(out_, r.file_id);
      PutVarint(out_, r.user_id);
      PutVarint(out_, r.size);
      break;
  }
  ++records_written_;
}

void BinaryTraceWriter::Finish() {
  if (finished_) {
    return;
  }
  out_.put(static_cast<char>(kEndSentinel));
  out_.flush();
  finished_ = true;
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  char magic[sizeof(kMagicV2)];
  in_.read(magic, sizeof(magic));
  const bool v1 = in_.gcount() == sizeof(magic) &&
                  std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  const bool v2 = in_.gcount() == sizeof(magic) &&
                  std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v1 && !v2) {
    status_ = Status::Error("bad magic: not a bsdtrace binary trace");
    done_ = true;
    return;
  }
  if (!GetString(in_, &header_.machine) || !GetString(in_, &header_.description)) {
    status_ = Status::Error("truncated trace header");
    done_ = true;
    return;
  }
  if (v2) {
    uint64_t count_plus_one = 0;
    if (!GetVarint(in_, &count_plus_one)) {
      status_ = Status::Error("truncated trace header");
      done_ = true;
      return;
    }
    if (count_plus_one > 0) {
      declared_record_count_ = static_cast<int64_t>(count_plus_one - 1);
    }
  }
}

bool BinaryTraceReader::Next(TraceRecord* record) {
  if (done_) {
    return false;
  }
  const int type_byte = in_.get();
  if (type_byte == EOF) {
    status_ = Status::Error("unexpected end of stream (missing end sentinel)");
    done_ = true;
    return false;
  }
  if (type_byte == kEndSentinel) {
    done_ = true;
    return false;
  }
  if (type_byte < 1 || type_byte > 7) {
    status_ = Status::Error("corrupt record: unknown event type " + std::to_string(type_byte));
    done_ = true;
    return false;
  }

  TraceRecord r;
  r.type = static_cast<EventType>(type_byte);
  uint64_t v = 0;
  auto fail = [&]() {
    status_ = Status::Error("truncated record body");
    done_ = true;
    return false;
  };
  if (!GetVarint(in_, &v)) {
    return fail();
  }
  prev_time_us_ += ZigZagDecode(v);
  r.time = SimTime::FromMicros(prev_time_us_);

  auto get = [&](uint64_t* out) { return GetVarint(in_, out); };
  switch (r.type) {
    case EventType::kOpen:
    case EventType::kCreate: {
      uint64_t user = 0, mode = 0;
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&user)) {
        return fail();
      }
      const int mode_byte = in_.get();
      if (mode_byte == EOF || mode_byte > 2) {
        return fail();
      }
      mode = static_cast<uint64_t>(mode_byte);
      if (!get(&r.size) || !get(&r.position)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      r.mode = static_cast<AccessMode>(mode);
      break;
    }
    case EventType::kClose:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.position) || !get(&r.size)) {
        return fail();
      }
      break;
    case EventType::kSeek:
      if (!get(&r.open_id) || !get(&r.file_id) || !get(&r.seek_from) || !get(&r.seek_to)) {
        return fail();
      }
      break;
    case EventType::kUnlink: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
    case EventType::kTruncate:
    case EventType::kExecve: {
      uint64_t user = 0;
      if (!get(&r.file_id) || !get(&user) || !get(&r.size)) {
        return fail();
      }
      r.user_id = static_cast<UserId>(user);
      break;
    }
  }
  *record = r;
  return true;
}

void WriteTextTrace(std::ostream& out, const Trace& trace) {
  out << "# machine " << trace.header().machine << "\n";
  if (!trace.header().description.empty()) {
    out << "# description " << trace.header().description << "\n";
  }
  for (const TraceRecord& r : trace.records()) {
    out << r.ToString() << "\n";
  }
}

namespace {

// Parses "key=value" tokens from a text trace line after time and type.
bool ParseField(const std::string& token, const char* key, uint64_t* out) {
  const size_t klen = std::strlen(key);
  if (token.size() <= klen + 1 || token.compare(0, klen, key) != 0 || token[klen] != '=') {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(token.c_str() + klen + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseModeField(const std::string& token, AccessMode* out) {
  if (token == "mode=r") {
    *out = AccessMode::kReadOnly;
    return true;
  }
  if (token == "mode=w") {
    *out = AccessMode::kWriteOnly;
    return true;
  }
  if (token == "mode=rw") {
    *out = AccessMode::kReadWrite;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<Trace> ReadTextTrace(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "machine") {
        hdr >> trace.header().machine;
      } else if (key == "description") {
        std::string rest;
        std::getline(hdr, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        trace.header().description = rest;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    std::vector<std::string> tokens;
    while (std::getline(ls, tok, '\t')) {
      tokens.push_back(tok);
    }
    auto err = [&](const char* what) {
      return Status::Error("line " + std::to_string(line_no) + ": " + what);
    };
    if (tokens.size() < 2) {
      return err("too few fields");
    }
    char* end = nullptr;
    const double t = std::strtod(tokens[0].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return err("bad timestamp");
    }
    TraceRecord r;
    r.time = SimTime::FromSeconds(t);
    const std::string& type = tokens[1];
    uint64_t u64 = 0;
    auto field = [&](size_t i, const char* key, uint64_t* out) {
      return i < tokens.size() && ParseField(tokens[i], key, out);
    };
    if (type == "open" || type == "create") {
      r.type = (type == "open") ? EventType::kOpen : EventType::kCreate;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "user", &u64)) {
        return err("bad open fields");
      }
      r.user_id = static_cast<UserId>(u64);
      if (tokens.size() < 8 || !ParseModeField(tokens[5], &r.mode) ||
          !ParseField(tokens[6], "size", &r.size) || !ParseField(tokens[7], "pos", &r.position)) {
        return err("bad open mode/size/pos");
      }
    } else if (type == "close") {
      r.type = EventType::kClose;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "pos", &r.position) || !field(5, "size", &r.size)) {
        return err("bad close fields");
      }
    } else if (type == "seek") {
      r.type = EventType::kSeek;
      if (!field(2, "oid", &r.open_id) || !field(3, "file", &r.file_id) ||
          !field(4, "from", &r.seek_from) || !field(5, "to", &r.seek_to)) {
        return err("bad seek fields");
      }
    } else if (type == "unlink") {
      r.type = EventType::kUnlink;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64)) {
        return err("bad unlink fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "truncate") {
      r.type = EventType::kTruncate;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "len", &r.size)) {
        return err("bad truncate fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else if (type == "execve") {
      r.type = EventType::kExecve;
      if (!field(2, "file", &r.file_id) || !field(3, "user", &u64) ||
          !field(4, "size", &r.size)) {
        return err("bad execve fields");
      }
      r.user_id = static_cast<UserId>(u64);
    } else {
      return err("unknown event type");
    }
    trace.Append(r);
  }
  return trace;
}

void WriteBinaryTrace(std::ostream& out, const Trace& trace) {
  BinaryTraceWriter writer(out, trace.header(), static_cast<int64_t>(trace.size()));
  for (const TraceRecord& r : trace.records()) {
    writer.Append(r);
  }
  writer.Finish();
}

StatusOr<Trace> ReadBinaryTrace(std::istream& in) {
  BinaryTraceReader reader(in);
  if (!reader.status().ok()) {
    return reader.status();
  }
  Trace trace(reader.header());
  if (reader.declared_record_count() > 0) {
    // One up-front allocation instead of log2(N) doublings on large traces.
    trace.Reserve(static_cast<size_t>(reader.declared_record_count()));
  }
  TraceRecord r;
  while (reader.Next(&r)) {
    trace.Append(r);
  }
  if (!reader.status().ok()) {
    return reader.status();
  }
  return trace;
}

Status SaveTrace(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  WriteBinaryTrace(out, trace);
  out.close();
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<Trace> LoadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error("cannot open for reading: " + path);
  }
  return ReadBinaryTrace(in);
}

}  // namespace bsdtrace
