#include "src/trace/trace_ring.h"

#include <utility>

namespace bsdtrace {
namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceRing::TraceRing(TraceHeader header, TraceRingOptions options)
    : header_(std::move(header)),
      policy_(options.policy),
      push_timeout_(options.push_timeout),
      slots_(RoundUpPowerOfTwo(options.capacity)) {
  mask_ = slots_.size() - 1;
}

bool TraceRing::Push(const TraceRecord& record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    ++dropped_timeout_;
    return false;
  }
  if (produce_ - consume_ == slots_.size()) {
    if (policy_ == RingOverflowPolicy::kDropOldest) {
      // Overwrite the oldest unconsumed slot: advance the consumer past it.
      ++consume_;
      ++dropped_oldest_;
    } else {
      auto have_space = [this] {
        return closed_ || produce_ - consume_ < slots_.size();
      };
      if (push_timeout_.count() > 0) {
        if (!not_full_.wait_for(lock, push_timeout_, have_space)) {
          ++dropped_timeout_;
          return false;
        }
      } else {
        not_full_.wait(lock, have_space);
      }
      if (closed_) {
        ++dropped_timeout_;
        return false;
      }
    }
  }
  slots_[produce_ & mask_] = record;
  ++produce_;
  const uint64_t occupancy = produce_ - consume_;
  if (occupancy > max_occupancy_) {
    max_occupancy_ = occupancy;
  }
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void TraceRing::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool TraceRing::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

bool TraceRing::Pop(TraceRecord* record) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || produce_ != consume_; });
  if (produce_ == consume_) {
    return false;  // closed and drained
  }
  *record = slots_[consume_ & mask_];
  ++consume_;
  lock.unlock();
  not_full_.notify_one();
  return true;
}

TraceRingStats TraceRing::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceRingStats s;
  s.capacity = slots_.size();
  // consume_ advances once per record handed to the consumer AND once per
  // drop-oldest overwrite, so the consumer-visible count subtracts the drops.
  s.produced = produce_;
  s.consumed = consume_ - dropped_oldest_;
  s.dropped_oldest = dropped_oldest_;
  s.dropped_timeout = dropped_timeout_;
  s.max_occupancy = max_occupancy_;
  return s;
}

}  // namespace bsdtrace
