// The trace record schema: the events of paper Table II.
//
// The tracer deliberately does NOT record individual read and write system
// calls.  Because UNIX I/O is implicitly sequential, recording the access
// position at open, close, and around each explicit reposition (seek) is
// enough to reconstruct exactly which byte ranges were transferred; only the
// transfer *times* are approximate (bounded by the surrounding events).
//
// Schema notes relative to Table II:
//   * `kCreate` is an open() that created the file or truncated it to zero
//     length; the paper's Table III counts creates separately from opens.
//   * Open/create records carry the access mode (read-only / write-only /
//     read-write); Table V is grouped by it.
//   * Close records carry the file size at close in addition to the final
//     position; Figure 2 ("file sizes measured when files were closed")
//     requires it.

#ifndef BSDTRACE_SRC_TRACE_RECORD_H_
#define BSDTRACE_SRC_TRACE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/trace/types.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace bsdtrace {

// Discriminator for TraceRecord.  Values are part of the binary format; do
// not renumber.
enum class EventType : uint8_t {
  kOpen = 1,      // open of an existing file
  kCreate = 2,    // open that created or zero-truncated the file
  kClose = 3,
  kSeek = 4,      // explicit reposition within an open file
  kUnlink = 5,    // file deletion
  kTruncate = 6,  // shorten file (not via open)
  kExecve = 7,    // program load
};

const char* EventTypeName(EventType type);

// One trace event.  A flat struct rather than a variant: every field is
// meaningful for at least one event type (see the per-type factory functions
// below for which), and flatness keeps the codec and analyzers simple.
struct TraceRecord {
  EventType type = EventType::kOpen;
  SimTime time;

  OpenId open_id = kInvalidOpenId;  // open/create/close/seek
  FileId file_id = kInvalidFileId;  // all events
  UserId user_id = 0;               // open/create/unlink/truncate/execve

  AccessMode mode = AccessMode::kReadOnly;  // open/create

  // open/create: file size at open (0 for create).
  // close: file size at close.
  // truncate: new length.
  // execve: size of the program file.
  uint64_t size = 0;

  // open/create: initial access position (non-zero for append opens).
  // close: final access position.
  uint64_t position = 0;

  // seek only: access position before and after the reposition.
  uint64_t seek_from = 0;
  uint64_t seek_to = 0;

  bool operator==(const TraceRecord&) const = default;

  // One-line rendering; the record line of the `bsdtxt` text trace format.
  // The rendering is exact: timestamps are printed from the integer
  // microsecond count (never through a double), and every field the record's
  // type carries is emitted, so ParseTraceRecord(ToString()) == *this for
  // any record that follows the per-type field conventions (the ones the
  // factories below enforce and ValidateTrace checks).  Fields a type does
  // not carry (e.g. user on close/seek) are not printed and parse back as
  // their zero defaults.
  std::string ToString() const;
};

// Parses one bsdtxt record line — the inverse of TraceRecord::ToString and
// the normative grammar for the text trace format:
//
//   <time> <type> <key>=<value> ...
//
// where <time> is non-negative fixed-point seconds with at most 6 fractional
// digits and fields are separated by runs of tabs or spaces (ToString emits
// single tabs).  The per-type field lists, in order:
//
//   open     oid= file= user= mode= size= pos=
//   create   oid= file= user= mode= size= pos=
//   close    oid= file= pos= size=
//   seek     oid= file= from= to=
//   unlink   file= user=
//   truncate file= user= len=
//   execve   file= user= size=
//
// mode is r | w | rw; every other value is a plain decimal uint64 (user fits
// in 32 bits).  Parsing is strict: unknown types or keys, missing or
// out-of-order fields, trailing garbage, signs, hex, scientific notation,
// and overflowing values are all errors.  Line-level concerns (comments,
// blank lines, the "# machine" header) belong to the readers in
// trace_io.h / import/text_import.h, not here.
StatusOr<TraceRecord> ParseTraceRecord(std::string_view line);

// Factory helpers enforcing per-type field conventions.
TraceRecord MakeOpen(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode,
                     uint64_t size_at_open, uint64_t initial_position);
TraceRecord MakeCreate(SimTime t, OpenId open_id, FileId file, UserId user, AccessMode mode);
TraceRecord MakeClose(SimTime t, OpenId open_id, FileId file, uint64_t final_position,
                      uint64_t size_at_close);
TraceRecord MakeSeek(SimTime t, OpenId open_id, FileId file, uint64_t from, uint64_t to);
TraceRecord MakeUnlink(SimTime t, FileId file, UserId user);
TraceRecord MakeTruncate(SimTime t, FileId file, UserId user, uint64_t new_length);
TraceRecord MakeExecve(SimTime t, FileId file, UserId user, uint64_t file_size);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_RECORD_H_
