#include "src/trace/lz_codec.h"

#include <cstring>
#include <memory>

namespace bsdtrace {
namespace {

// -- Adaptive binary range coder ----------------------------------------------
//
// The classic carry-propagating range coder: 11-bit probabilities adapted
// with a shift-by-5 move, 24-bit renormalization.  Encoder and decoder
// renormalize under the same condition after every bit, so they consume /
// produce bytes in lockstep — a property LzDecompress relies on to detect
// trailing garbage exactly.

constexpr uint32_t kProbBits = 11;
constexpr uint16_t kProbInit = 1u << (kProbBits - 1);
constexpr uint32_t kMoveBits = 4;
constexpr uint32_t kTopValue = 1u << 24;

class RangeEncoder {
 public:
  RangeEncoder(uint8_t* out, size_t capacity) : out_(out), capacity_(capacity) {}

  void EncodeBit(uint16_t* prob, uint32_t bit) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    if (bit == 0) {
      range_ = bound;
      *prob = static_cast<uint16_t>(*prob + (((1u << kProbBits) - *prob) >> kMoveBits));
    } else {
      low_ += bound;
      range_ -= bound;
      *prob = static_cast<uint16_t>(*prob - (*prob >> kMoveBits));
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      ShiftLow();
    }
  }

  // `bits` equiprobable bits, MSB first (offset payload bits).
  void EncodeDirect(uint32_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((value >> i) & 1u) {
        low_ += range_;
      }
      while (range_ < kTopValue) {
        range_ <<= 8;
        ShiftLow();
      }
    }
  }

  // Flushes the remaining low bytes and returns the total output size.
  size_t Finish() {
    for (int i = 0; i < 5; ++i) {
      ShiftLow();
    }
    return pos_;
  }

 private:
  void ShiftLow() {
    if (static_cast<uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      uint8_t byte = cache_;
      do {
        Put(static_cast<uint8_t>(byte + (low_ >> 32)));
        byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFu) << 8;
  }

  void Put(uint8_t b) {
    if (pos_ < capacity_) {
      out_[pos_] = b;
    }
    ++pos_;  // past-capacity writes are counted, not stored (caller falls back)
  }

  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
  uint8_t* out_;
  size_t capacity_;
  size_t pos_ = 0;
};

class RangeDecoder {
 public:
  RangeDecoder(const uint8_t* src, size_t src_len) : p_(src), end_(src + src_len) {
    Byte();  // the encoder's first shifted byte is always 0
    for (int i = 0; i < 4; ++i) {
      code_ = (code_ << 8) | Byte();
    }
  }

  uint32_t DecodeBit(uint16_t* prob) {
    const uint32_t bound = (range_ >> kProbBits) * *prob;
    uint32_t bit;
    if (code_ < bound) {
      range_ = bound;
      *prob = static_cast<uint16_t>(*prob + (((1u << kProbBits) - *prob) >> kMoveBits));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      *prob = static_cast<uint16_t>(*prob - (*prob >> kMoveBits));
      bit = 1;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | Byte();
    }
    return bit;
  }

  uint32_t DecodeDirect(int bits) {
    uint32_t value = 0;
    for (int i = 0; i < bits; ++i) {
      range_ >>= 1;
      uint32_t bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      value = (value << 1) | bit;
      while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | Byte();
      }
    }
    return value;
  }

  bool overran() const { return overran_; }
  bool Exhausted() const { return p_ == end_; }

 private:
  uint8_t Byte() {
    if (p_ == end_) {
      overran_ = true;
      return 0;
    }
    return *p_++;
  }

  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
  const uint8_t* p_;
  const uint8_t* end_;
  bool overran_ = false;
};

// -- Symbol models ------------------------------------------------------------

// Offsets are split LZMA-style into a slot (coded through a bit tree) and
// slot/2-1 direct bits: slot 0..3 IS offset-1; above that the slot holds the
// top two bits and their position.
inline uint32_t PosSlot(uint32_t d) {  // d = offset - 1
  if (d < 4) {
    return d;
  }
  int log = 31 - __builtin_clz(d);
  return static_cast<uint32_t>((log << 1) | ((d >> (log - 1)) & 1));
}

struct LzModels {
  uint16_t is_match[2];          // context: previous symbol was a match
  uint16_t literal[256][256];    // [previous output byte][bit-tree node]
  uint16_t length[256];          // bit tree over match length - kLzMinMatch
  uint16_t slot[64];             // bit tree over the offset's position slot

  void Init() {
    // One memset-style fill; kProbInit in both bytes of a uint16 would not
    // hold, so fill explicitly (a few hundred KB, once per block).
    is_match[0] = is_match[1] = kProbInit;
    uint16_t* flat = &literal[0][0];
    for (size_t i = 0; i < 256 * 256; ++i) {
      flat[i] = kProbInit;
    }
    for (size_t i = 0; i < 256; ++i) {
      length[i] = kProbInit;
    }
    for (size_t i = 0; i < 64; ++i) {
      slot[i] = kProbInit;
    }
  }
};

template <size_t kBits, typename Coder, size_t N>
uint32_t DecodeTree(Coder& dec, uint16_t (&probs)[N]) {
  static_assert((1u << kBits) <= N);
  uint32_t node = 1;
  for (size_t i = 0; i < kBits; ++i) {
    node = (node << 1) | dec.DecodeBit(&probs[node]);
  }
  return node - (1u << kBits);
}

template <size_t kBits, size_t N>
void EncodeTree(RangeEncoder& enc, uint16_t (&probs)[N], uint32_t value) {
  static_assert((1u << kBits) <= N);
  uint32_t node = 1;
  for (size_t i = kBits; i-- > 0;) {
    const uint32_t bit = (value >> i) & 1u;
    enc.EncodeBit(&probs[node], bit);
    node = (node << 1) | bit;
  }
}

// -- Greedy LZ77 parse --------------------------------------------------------
//
// Single-probe hash table over 4-byte prefixes, LZ4-style: one candidate per
// bucket, newest position wins.  kHashBits trades table size (128 KB of
// uint32s) against collision rate on ~256 KB blocks.
constexpr int kHashBits = 15;
constexpr uint32_t kNoPos = 0xFFFFFFFFu;

// Minimum match length the parser will accept (before offset-cost bumps).
// See the comment at the acceptance check below.
constexpr size_t kLzMatchAccept = 32;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash4(const uint8_t* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

const char* TraceCodecName(uint8_t codec) {
  switch (codec) {
    case static_cast<uint8_t>(TraceCodec::kNone):
      return "none";
    case static_cast<uint8_t>(TraceCodec::kLz):
      return "lz";
    default:
      return "unknown";
  }
}

size_t LzMaxCompressedSize(size_t n) {
  // A maximally anti-adaptive literal costs under 8 coded bits of 6.05 bits
  // each (the probability clamp), i.e. < 7 output bytes per input byte.
  // Block writers fall back to kNone long before this bound matters; it
  // only sizes scratch buffers.
  return 8 * n + 64;
}

size_t LzCompress(const uint8_t* src, size_t n, uint8_t* dst) {
  static thread_local uint32_t table[1u << kHashBits];
  std::memset(table, 0xFF, sizeof(table));
  auto models = std::make_unique<LzModels>();
  models->Init();

  RangeEncoder enc(dst, LzMaxCompressedSize(n));
  uint32_t prev_match = 0;
  uint8_t prev_byte = 0;
  size_t ip = 0;
  const size_t match_limit = n >= kLzMinMatch ? n - kLzMinMatch + 1 : 0;
  while (ip < n) {
    size_t len = 0;
    size_t cand = 0;
    if (ip < match_limit) {
      const uint32_t h = Hash4(src + ip);
      const uint32_t c = table[h];
      table[h] = static_cast<uint32_t>(ip);
      if (c != kNoPos && Load32(src + c) == Load32(src + ip)) {
        cand = c;
        len = kLzMinMatch;
        while (len < kLzMaxMatch && ip + len < n && src[cand + len] == src[ip + len]) {
          ++len;
        }
        // On v4's low-entropy columnar payloads the order-1 literal model
        // routinely beats short matches: a match costs ~17 coded bits while
        // the literals it replaces cost ~3 bits each, so emitting it skews
        // the models and loses overall (measured: accept-all matches coded
        // 15% larger than literal-only).  Only long matches — where the
        // per-byte cost amortizes and real repetition exists — pay off.
        const size_t offset = ip - cand;
        if (len < kLzMatchAccept + 2 * (offset >= (1u << 12)) + 2 * (offset >= (1u << 18))) {
          len = 0;
        }
      }
    }
    if (len == 0) {
      enc.EncodeBit(&models->is_match[prev_match], 0);
      EncodeTree<8>(enc, models->literal[prev_byte], src[ip]);
      prev_byte = src[ip];
      prev_match = 0;
      ++ip;
      continue;
    }
    enc.EncodeBit(&models->is_match[prev_match], 1);
    EncodeTree<8>(enc, models->length, static_cast<uint32_t>(len - kLzMinMatch));
    const uint32_t d = static_cast<uint32_t>(ip - cand) - 1;
    const uint32_t slot = PosSlot(d);
    EncodeTree<6>(enc, models->slot, slot);
    if (slot >= 4) {
      const int direct = static_cast<int>(slot >> 1) - 1;
      enc.EncodeDirect(d & ((1u << direct) - 1u), direct);
    }
    ip += len;
    prev_byte = src[ip - 1];
    prev_match = 1;
  }
  return enc.Finish();
}

bool LzDecompress(const uint8_t* src, size_t src_len, uint8_t* dst, size_t dst_len) {
  auto models = std::make_unique<LzModels>();
  models->Init();
  RangeDecoder dec(src, src_len);

  uint32_t prev_match = 0;
  uint8_t prev_byte = 0;
  size_t op = 0;
  while (op < dst_len) {
    if (dec.overran()) {
      return false;
    }
    if (dec.DecodeBit(&models->is_match[prev_match]) == 0) {
      const uint32_t sym = DecodeTree<8>(dec, models->literal[prev_byte]);
      dst[op++] = static_cast<uint8_t>(sym);
      prev_byte = static_cast<uint8_t>(sym);
      prev_match = 0;
      continue;
    }
    const size_t len = kLzMinMatch + DecodeTree<8>(dec, models->length);
    const uint32_t slot = DecodeTree<6>(dec, models->slot);
    uint32_t d = slot;
    if (slot >= 4) {
      const int direct = static_cast<int>(slot >> 1) - 1;
      d = ((2u | (slot & 1u)) << direct) | dec.DecodeDirect(direct);
    }
    const size_t offset = static_cast<size_t>(d) + 1;
    if (offset > op || len > dst_len - op) {
      return false;
    }
    for (size_t i = 0; i < len; ++i) {  // may overlap: front to back
      dst[op + i] = dst[op + i - offset];
    }
    op += len;
    prev_byte = dst[op - 1];
    prev_match = 1;
  }
  // Lockstep renormalization: a well-formed stream is consumed exactly, so
  // unread bytes are trailing garbage and a read past the end is truncation.
  return !dec.overran() && dec.Exhausted();
}

}  // namespace bsdtrace
