#include "src/trace/import/text_import.h"

#include <iostream>
#include <sstream>

#include "src/trace/record.h"

namespace bsdtrace {

TextTraceSource::TextTraceSource(const std::string& path) {
  if (path == "-") {
    in_ = &std::cin;
  } else {
    owned_ = std::make_unique<std::ifstream>(path);
    if (!owned_->is_open()) {
      status_ = Status::Error("cannot open text trace " + path);
      in_ = owned_.get();
      return;
    }
    in_ = owned_.get();
  }
  ReadHeader();
}

TextTraceSource::TextTraceSource(std::istream& in) : in_(&in) { ReadHeader(); }

bool TextTraceSource::NextLine(std::string* line) {
  if (!std::getline(*in_, *line)) {
    return false;
  }
  ++line_number_;
  if (!line->empty() && line->back() == '\r') {
    line->pop_back();
  }
  return true;
}

void TextTraceSource::ReadHeader() {
  // Consume leading comments and blanks; the first record line is stashed
  // for the first Next() call.
  std::string line;
  while (NextLine(&line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "machine") {
        hdr >> header_.machine;
      } else if (key == "description") {
        std::string rest;
        std::getline(hdr, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        header_.description = rest;
      }
      continue;
    }
    pending_valid_ = true;
    pending_line_ = line;
    pending_line_no_ = line_number_;
    return;
  }
}

bool TextTraceSource::Next(TraceRecord* record) {
  if (!status_.ok()) {
    return false;
  }
  std::string line;
  uint64_t line_no = 0;
  for (;;) {
    if (pending_valid_) {
      line = std::move(pending_line_);
      line_no = pending_line_no_;
      pending_valid_ = false;
    } else {
      if (!NextLine(&line)) {
        return false;
      }
      line_no = line_number_;
      if (line.empty() || line[0] == '#') {
        continue;
      }
    }
    StatusOr<TraceRecord> parsed = ParseTraceRecord(line);
    if (!parsed.ok()) {
      status_ = Status::Error("line " + std::to_string(line_no) + ": " +
                              parsed.status().message());
      return false;
    }
    if (!record_lines_.empty() && parsed.value().time < prev_time_) {
      status_ = Status::Error("line " + std::to_string(line_no) +
                              ": time moves backwards [" + parsed.value().ToString() + "]");
      return false;
    }
    prev_time_ = parsed.value().time;
    *record = parsed.value();
    record_lines_.push_back(line_no);
    return true;
  }
}

}  // namespace bsdtrace
