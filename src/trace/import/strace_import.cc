#include "src/trace/import/strace_import.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/util/parse.h"

namespace bsdtrace {
namespace {

// One open file description.  dup'd fds share a single entry (shared_ptr);
// the kClose is billed when the last duplicate goes away.
struct OpenEntry {
  OpenId open_id = kInvalidOpenId;
  FileId file_id = kInvalidFileId;
  uint64_t position = 0;  // synthesized from read/write return values
  uint64_t size = 0;      // largest size observed while open
};

using FdTable = std::unordered_map<int64_t, std::shared_ptr<OpenEntry>>;

std::string_view TrimLeft(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

std::string_view TrimRight(std::string_view s) {
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool HasFlag(std::string_view flags, std::string_view name) {
  // Flag tokens are separated by '|'; a plain substring search would let
  // O_RDONLY match inside a hypothetical longer name, so check boundaries.
  size_t at = 0;
  while ((at = flags.find(name, at)) != std::string_view::npos) {
    const bool left_ok = at == 0 || flags[at - 1] == '|';
    const size_t end = at + name.size();
    const bool right_ok = end == flags.size() || flags[end] == '|' || flags[end] == ',';
    if (left_ok && right_ok) {
      return true;
    }
    at = end;
  }
  return false;
}

class StraceParser {
 public:
  explicit StraceParser(std::istream& in) : in_(in) {}

  StatusOr<StraceImportResult> Run() {
    std::string raw;
    while (std::getline(in_, raw)) {
      ++line_no_;
      ++stats_.lines;
      std::string_view line = TrimRight(TrimLeft(raw));
      if (line.empty()) {
        continue;
      }
      Status s = ParseLine(line);
      if (!s.ok()) {
        return Status::Error("line " + std::to_string(line_no_) + ": " + s.message() +
                             " [" + std::string(line) + "]");
      }
    }
    return Finish();
  }

 private:
  // ---- line layer ------------------------------------------------------

  Status ParseLine(std::string_view line) {
    int64_t pid = 0;
    if (!ParsePidPrefix(&line, &pid)) {
      return Status::Error("unrecognized pid prefix");
    }
    line = TrimLeft(line);

    // -ttt timestamp: epoch seconds with a fractional part.
    const size_t ts_end = line.find(' ');
    if (ts_end == std::string_view::npos) {
      return Status::Error("missing timestamp or event");
    }
    int64_t us = 0;
    if (!ParseSecondsToMicros(line.substr(0, ts_end), &us)) {
      return Status::Error("bad -ttt timestamp \"" + std::string(line.substr(0, ts_end)) + "\"");
    }
    std::string_view rest = TrimLeft(line.substr(ts_end + 1));

    if (rest.substr(0, 3) == "+++" || rest.substr(0, 3) == "---") {
      ++stats_.ignored_lines;  // process exit / signal delivery
      return Status::Ok();
    }

    // `<... name resumed> tail` completes a per-pid pending prefix.
    if (rest.substr(0, 5) == "<... ") {
      const size_t mark = rest.find("resumed>");
      if (mark == std::string_view::npos) {
        return Status::Error("malformed resumed marker");
      }
      auto it = pending_.find(pid);
      if (it == pending_.end()) {
        return Status::Error("resumed call with no matching <unfinished ...>");
      }
      std::string joined = it->second + std::string(TrimLeft(rest.substr(mark + 8)));
      pending_.erase(it);
      ++stats_.resumed_joined;
      return ParseSyscall(pid, us, joined);
    }

    // `name(args... <unfinished ...>` stashes the prefix until resumed.
    if (rest.size() >= 16 && rest.substr(rest.size() - 16) == "<unfinished ...>") {
      if (pending_.count(pid) != 0) {
        return Status::Error("two unfinished calls pending for pid " + std::to_string(pid));
      }
      pending_[pid] = std::string(TrimRight(rest.substr(0, rest.size() - 16)));
      return Status::Ok();
    }

    return ParseSyscall(pid, us, rest);
  }

  // Accepts "[pid N] ", "N " (strace -f -o output), or no prefix.  A leading
  // all-digit token is a pid; a token containing '.' is the timestamp.
  bool ParsePidPrefix(std::string_view* line, int64_t* pid) {
    std::string_view s = *line;
    if (s.substr(0, 4) == "[pid") {
      s.remove_prefix(4);
      s = TrimLeft(s);
      const size_t close = s.find(']');
      uint64_t v = 0;
      if (close == std::string_view::npos || !ParseUint64(s.substr(0, close), &v)) {
        return false;
      }
      *pid = static_cast<int64_t>(v);
      *line = s.substr(close + 1);
      return true;
    }
    const size_t sp = s.find(' ');
    if (sp != std::string_view::npos) {
      uint64_t v = 0;
      if (ParseUint64(s.substr(0, sp), &v)) {
        *pid = static_cast<int64_t>(v);
        *line = s.substr(sp + 1);
        return true;
      }
    }
    *pid = 0;  // single-process log: no prefix
    return true;
  }

  // ---- syscall layer ---------------------------------------------------

  Status ParseSyscall(int64_t pid, int64_t us, std::string_view text) {
    // name(args) = ret [note]
    size_t i = 0;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
      ++i;
    }
    if (i == 0 || i >= text.size() || text[i] != '(') {
      return Status::Error("unrecognized event");
    }
    const std::string_view name = text.substr(0, i);

    // Walk the argument list with string/bracket awareness: commas inside
    // quoted data, array or struct arguments must not split arguments, and
    // ')' inside them must not end the list.
    std::vector<std::string_view> args;
    size_t arg_start = i + 1;
    int depth = 0;
    bool in_str = false;
    size_t close = std::string_view::npos;
    for (size_t j = i + 1; j < text.size(); ++j) {
      const char c = text[j];
      if (in_str) {
        if (c == '\\') {
          ++j;
        } else if (c == '"') {
          in_str = false;
        }
        continue;
      }
      if (c == '"') {
        in_str = true;
      } else if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        --depth;
      } else if (c == ')') {
        if (depth == 0) {
          close = j;
          break;
        }
        --depth;
      } else if (c == ',' && depth == 0) {
        args.push_back(TrimLeft(TrimRight(text.substr(arg_start, j - arg_start))));
        arg_start = j + 1;
      }
    }
    if (close == std::string_view::npos) {
      return Status::Error("unterminated argument list");
    }
    std::string_view last = TrimLeft(TrimRight(text.substr(arg_start, close - arg_start)));
    if (!last.empty()) {
      args.push_back(last);
    }

    // " = ret"
    std::string_view tail = TrimLeft(text.substr(close + 1));
    if (tail.empty() || tail[0] != '=') {
      return Status::Error("missing return value");
    }
    tail = TrimLeft(tail.substr(1));
    const size_t ret_end = tail.find(' ');
    const std::string_view ret_tok =
        ret_end == std::string_view::npos ? tail : tail.substr(0, ret_end);
    if (ret_tok == "?") {
      ++stats_.ignored_lines;  // call interrupted by process death
      return Status::Ok();
    }
    if (!ret_tok.empty() && ret_tok[0] == '-') {
      ++stats_.failed_calls;  // failed syscall: no Table-II event happened
      return Status::Ok();
    }
    uint64_t ret = 0;
    if (!ParseUint64(ret_tok, &ret)) {
      return Status::Error("bad return value \"" + std::string(ret_tok) + "\"");
    }

    return Dispatch(pid, us, name, args, ret);
  }

  Status Dispatch(int64_t pid, int64_t us, std::string_view name,
                  const std::vector<std::string_view>& args, uint64_t ret) {
    if (name == "open" || name == "openat" || name == "creat") {
      return DoOpen(pid, us, name, args, ret);
    }
    if (name == "close") {
      return DoClose(pid, us, args);
    }
    if (name == "read" || name == "write" || name == "pread64" || name == "pwrite64") {
      return DoTransfer(pid, us, name, args, ret);
    }
    if (name == "lseek") {
      return DoSeek(pid, us, args, ret);
    }
    if (name == "unlink" || name == "unlinkat") {
      return DoUnlink(pid, us, name, args);
    }
    if (name == "truncate" || name == "ftruncate") {
      return DoTruncate(pid, us, name, args);
    }
    if (name == "execve") {
      return DoExecve(pid, us, args);
    }
    if (name == "dup" || name == "dup2" || name == "dup3") {
      return DoDup(pid, us, args, ret);
    }
    ++stats_.ignored_lines;  // untracked syscall (well-formed, just not ours)
    return Status::Ok();
  }

  // ---- syscall handlers ------------------------------------------------

  Status DoOpen(int64_t pid, int64_t us, std::string_view name,
                const std::vector<std::string_view>& args, uint64_t ret) {
    const bool is_openat = name == "openat";
    const bool is_creat = name == "creat";
    const size_t path_arg = is_openat ? 1 : 0;
    if (args.size() <= path_arg) {
      return Status::Error("missing path argument");
    }
    std::string path;
    if (!UnquotePath(args[path_arg], &path)) {
      return Status::Error("bad path argument \"" + std::string(args[path_arg]) + "\"");
    }
    std::string_view flags;
    if (!is_creat) {
      const size_t flag_arg = path_arg + 1;
      if (args.size() <= flag_arg) {
        return Status::Error("missing flags argument");
      }
      flags = args[flag_arg];
    }

    AccessMode mode = AccessMode::kReadOnly;
    bool writable = is_creat;
    if (is_creat || HasFlag(flags, "O_WRONLY")) {
      mode = AccessMode::kWriteOnly;
      writable = true;
    } else if (HasFlag(flags, "O_RDWR")) {
      mode = AccessMode::kReadWrite;
      writable = true;
    }

    const bool known = paths_.count(path) != 0;
    // A create is a call that makes the data anew: creat(), open with
    // O_TRUNC and write access, or O_CREAT of a path this log has not seen.
    const bool create = is_creat || (writable && HasFlag(flags, "O_TRUNC")) ||
                        (HasFlag(flags, "O_CREAT") && !known);

    const FileId file = InternPath(path);
    uint64_t size = 0;
    if (create) {
      sizes_[file] = 0;
    } else {
      auto it = sizes_.find(file);
      size = it == sizes_.end() ? 0 : it->second;
    }

    auto entry = std::make_shared<OpenEntry>();
    entry->open_id = next_open_id_++;
    entry->file_id = file;
    entry->size = size;
    entry->position = (!create && HasFlag(flags, "O_APPEND")) ? size : 0;

    // The kernel hands out the lowest free fd; if our table still has this
    // fd, we missed its close (untraced path) — retire the stale entry so
    // the stream stays structurally valid.
    FdTable& table = fds_[pid];
    auto stale = table.find(static_cast<int64_t>(ret));
    if (stale != table.end()) {
      ReleaseFd(table, stale, us);
    }
    table[static_cast<int64_t>(ret)] = entry;

    const SimTime t = SimTime::FromMicros(us);
    const UserId user = static_cast<UserId>(pid);
    if (create) {
      Emit(MakeCreate(t, entry->open_id, file, user, mode));
    } else {
      Emit(MakeOpen(t, entry->open_id, file, user, mode, size, entry->position));
    }
    return Status::Ok();
  }

  Status DoClose(int64_t pid, int64_t us, const std::vector<std::string_view>& args) {
    int64_t fd = 0;
    if (args.empty() || !ParseFd(args[0], &fd)) {
      return Status::Error("bad fd argument");
    }
    if (fd < 3) {
      ++stats_.ignored_lines;  // stdio fds are ttys/pipes, not files
      return Status::Ok();
    }
    FdTable& table = fds_[pid];
    auto it = table.find(fd);
    if (it == table.end()) {
      // Closing an fd we never saw opened: synthesize the open so the
      // close has a mate, then retire it immediately.
      SynthesizeOpen(pid, us, fd);
      it = table.find(fd);
    }
    ReleaseFd(table, it, us);
    return Status::Ok();
  }

  Status DoTransfer(int64_t pid, int64_t us, std::string_view name,
                    const std::vector<std::string_view>& args, uint64_t ret) {
    int64_t fd = 0;
    if (args.empty() || !ParseFd(args[0], &fd)) {
      return Status::Error("bad fd argument");
    }
    std::shared_ptr<OpenEntry> entry = LookupFd(pid, us, fd);
    if (entry == nullptr) {
      return Status::Ok();  // stdio fd
    }
    // pread/pwrite do not move the file offset; plain read/write advance it
    // by the transfer size (the paper's implicit-sequentiality rule).
    const bool positional = name == "pread64" || name == "pwrite64";
    const bool is_write = name == "write" || name == "pwrite64";
    if (!positional) {
      entry->position += ret;
    }
    if (is_write) {
      uint64_t end = positional ? 0 : entry->position;
      if (positional && args.size() >= 4) {
        uint64_t off = 0;
        if (ParseUint64(args[3], &off)) {
          end = off + ret;
        }
      }
      entry->size = std::max(entry->size, end);
    }
    return Status::Ok();
  }

  Status DoSeek(int64_t pid, int64_t us, const std::vector<std::string_view>& args,
                uint64_t ret) {
    int64_t fd = 0;
    if (args.empty() || !ParseFd(args[0], &fd)) {
      return Status::Error("bad fd argument");
    }
    std::shared_ptr<OpenEntry> entry = LookupFd(pid, us, fd);
    if (entry == nullptr) {
      return Status::Ok();
    }
    // lseek returns the resulting absolute offset.  Only an actual
    // reposition is a Table-II event — the paper's tracer did not log
    // null seeks (e.g. lseek(fd, 0, SEEK_CUR) to tell the position).
    if (ret != entry->position) {
      Emit(MakeSeek(SimTime::FromMicros(us), entry->open_id, entry->file_id,
                    entry->position, ret));
      entry->position = ret;
    }
    return Status::Ok();
  }

  Status DoUnlink(int64_t pid, int64_t us, std::string_view name,
                  const std::vector<std::string_view>& args) {
    const size_t path_arg = name == "unlinkat" ? 1 : 0;
    if (args.size() <= path_arg) {
      return Status::Error("missing path argument");
    }
    std::string path;
    if (!UnquotePath(args[path_arg], &path)) {
      return Status::Error("bad path argument \"" + std::string(args[path_arg]) + "\"");
    }
    const FileId file = InternPath(path);
    Emit(MakeUnlink(SimTime::FromMicros(us), file, static_cast<UserId>(pid)));
    // The name is gone: a later create of the same path is a new file
    // (fresh i-number), so retire the interning entry.
    paths_.erase(path);
    sizes_.erase(file);
    return Status::Ok();
  }

  Status DoTruncate(int64_t pid, int64_t us, std::string_view name,
                    const std::vector<std::string_view>& args) {
    if (args.size() < 2) {
      return Status::Error("missing length argument");
    }
    uint64_t len = 0;
    if (!ParseUint64(args[1], &len)) {
      return Status::Error("bad length argument \"" + std::string(args[1]) + "\"");
    }
    FileId file = kInvalidFileId;
    if (name == "ftruncate") {
      int64_t fd = 0;
      if (!ParseFd(args[0], &fd)) {
        return Status::Error("bad fd argument");
      }
      std::shared_ptr<OpenEntry> entry = LookupFd(pid, us, fd);
      if (entry == nullptr) {
        return Status::Ok();
      }
      entry->size = len;
      file = entry->file_id;
    } else {
      std::string path;
      if (!UnquotePath(args[0], &path)) {
        return Status::Error("bad path argument \"" + std::string(args[0]) + "\"");
      }
      file = InternPath(path);
      sizes_[file] = len;
    }
    Emit(MakeTruncate(SimTime::FromMicros(us), file, static_cast<UserId>(pid), len));
    return Status::Ok();
  }

  Status DoExecve(int64_t pid, int64_t us, const std::vector<std::string_view>& args) {
    if (args.empty()) {
      return Status::Error("missing path argument");
    }
    std::string path;
    if (!UnquotePath(args[0], &path)) {
      return Status::Error("bad path argument \"" + std::string(args[0]) + "\"");
    }
    const FileId file = InternPath(path);
    auto it = sizes_.find(file);
    const uint64_t size = it == sizes_.end() ? 0 : it->second;
    Emit(MakeExecve(SimTime::FromMicros(us), file, static_cast<UserId>(pid), size));
    return Status::Ok();
  }

  Status DoDup(int64_t pid, int64_t us, const std::vector<std::string_view>& args,
               uint64_t ret) {
    int64_t oldfd = 0;
    if (args.empty() || !ParseFd(args[0], &oldfd)) {
      return Status::Error("bad fd argument");
    }
    std::shared_ptr<OpenEntry> entry = LookupFd(pid, us, oldfd);
    FdTable& table = fds_[pid];
    // dup2/dup3 silently close an already-open newfd; bill that close.
    auto stale = table.find(static_cast<int64_t>(ret));
    if (stale != table.end() && stale->second != entry) {
      ReleaseFd(table, stale, us);
    }
    if (entry != nullptr && static_cast<int64_t>(ret) >= 3) {
      table[static_cast<int64_t>(ret)] = entry;  // shares the open entry
    }
    return Status::Ok();
  }

  // ---- fd/file bookkeeping --------------------------------------------

  FileId InternPath(const std::string& path) {
    auto [it, inserted] = paths_.try_emplace(path, next_file_id_);
    if (inserted) {
      ++next_file_id_;
    }
    return it->second;
  }

  // fd >= 3 the log never opened (inherited, or opened before attach):
  // synthesize a plain read-write open of a fresh anonymous file so every
  // later event on the fd has a structurally valid mate.
  std::shared_ptr<OpenEntry> SynthesizeOpen(int64_t pid, int64_t us, int64_t fd) {
    auto entry = std::make_shared<OpenEntry>();
    entry->open_id = next_open_id_++;
    entry->file_id = next_file_id_++;
    fds_[pid][fd] = entry;
    ++stats_.synthesized_opens;
    Emit(MakeOpen(SimTime::FromMicros(us), entry->open_id, entry->file_id,
                  static_cast<UserId>(pid), AccessMode::kReadWrite, 0, 0));
    return entry;
  }

  std::shared_ptr<OpenEntry> LookupFd(int64_t pid, int64_t us, int64_t fd) {
    if (fd < 3) {
      return nullptr;
    }
    FdTable& table = fds_[pid];
    auto it = table.find(fd);
    if (it != table.end()) {
      return it->second;
    }
    return SynthesizeOpen(pid, us, fd);
  }

  // Drops one fd reference; bills the kClose when the last duplicate goes.
  void ReleaseFd(FdTable& table, FdTable::iterator it, int64_t us) {
    std::shared_ptr<OpenEntry> entry = it->second;
    table.erase(it);
    // Any other fd (in any pid) still holding the entry?
    if (entry.use_count() > 1) {
      return;
    }
    const uint64_t size = std::max(entry->size, entry->position);
    Emit(MakeClose(SimTime::FromMicros(us), entry->open_id, entry->file_id,
                   entry->position, size));
    sizes_[entry->file_id] = std::max(sizes_[entry->file_id], size);
  }

  // ---- small token parsers --------------------------------------------

  // Leading decimal digits; tolerates strace -y decorations ("3</tmp/x>").
  static bool ParseFd(std::string_view arg, int64_t* fd) {
    size_t i = 0;
    while (i < arg.size() && std::isdigit(static_cast<unsigned char>(arg[i]))) {
      ++i;
    }
    uint64_t v = 0;
    if (i == 0 || !ParseUint64(arg.substr(0, i), &v) || v > INT64_MAX) {
      return false;
    }
    if (i != arg.size() && arg[i] != '<') {
      return false;
    }
    *fd = static_cast<int64_t>(v);
    return true;
  }

  // `"escaped\tpath"` possibly followed by `...` (strace -s truncation).
  // The raw escaped text is kept as the interning key — consistency is all
  // that matters, the path never leaves the importer.
  static bool UnquotePath(std::string_view arg, std::string* out) {
    if (arg.size() < 2 || arg[0] != '"') {
      return false;
    }
    for (size_t i = 1; i < arg.size(); ++i) {
      if (arg[i] == '\\') {
        ++i;
        continue;
      }
      if (arg[i] == '"') {
        std::string_view tail = arg.substr(i + 1);
        if (!tail.empty() && tail != "...") {
          return false;
        }
        *out = std::string(arg.substr(1, i - 1));
        if (!tail.empty()) {
          *out += "...";  // truncated: keep the marker in the key
        }
        return true;
      }
    }
    return false;
  }

  // ---- assembly --------------------------------------------------------

  void Emit(const TraceRecord& record) {
    emitted_.push_back({record, line_no_});
  }

  StatusOr<StraceImportResult> Finish() {
    StraceImportResult result;
    result.trace.header().machine = "strace";
    result.trace.header().description = "imported from strace -f -ttt log";

    if (!emitted_.empty()) {
      // Rebase so the first event is t=0, then sort: resumed-call joins are
      // billed at their completion time, which can land out of order with
      // other pids' lines.
      int64_t min_us = emitted_.front().first.time.micros();
      for (const auto& [r, line] : emitted_) {
        min_us = std::min(min_us, r.time.micros());
      }
      for (auto& [r, line] : emitted_) {
        r.time = SimTime::FromMicros(r.time.micros() - min_us);
      }
      std::stable_sort(emitted_.begin(), emitted_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first.time < b.first.time;
                       });
    }
    result.record_lines.reserve(emitted_.size());
    result.trace.Reserve(emitted_.size());
    for (const auto& [r, line] : emitted_) {
      result.trace.Append(r);
      result.record_lines.push_back(line);
    }
    stats_.records = emitted_.size();
    stats_.pids = fds_.size();
    stats_.files = next_file_id_ - 1;
    result.stats = stats_;
    return result;
  }

  std::istream& in_;
  uint64_t line_no_ = 0;
  StraceImportStats stats_;

  std::vector<std::pair<TraceRecord, uint64_t>> emitted_;
  std::unordered_map<int64_t, FdTable> fds_;            // pid -> fd table
  std::unordered_map<int64_t, std::string> pending_;    // pid -> unfinished prefix
  std::unordered_map<std::string, FileId> paths_;       // live path -> id
  std::unordered_map<FileId, uint64_t> sizes_;          // last known size
  OpenId next_open_id_ = 1;
  FileId next_file_id_ = 1;
};

}  // namespace

StatusOr<StraceImportResult> ImportStraceLog(std::istream& in) {
  return StraceParser(in).Run();
}

StatusOr<StraceImportResult> ImportStraceLog(const std::string& path) {
  if (path == "-") {
    return ImportStraceLog(std::cin);
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::Error("cannot open strace log " + path);
  }
  return ImportStraceLog(in);
}

}  // namespace bsdtrace
