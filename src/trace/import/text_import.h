// Streaming import of `bsdtxt` text traces — the line-oriented text format
// defined by TraceRecord::ToString / ParseTraceRecord (record.h):
//
//   # machine <name>             optional header comments; other "#" lines
//   # description <text>         are ignored
//   <record line>                one ParseTraceRecord line per record
//
// Blank lines are skipped and CRLF endings are tolerated anywhere.  Header
// comments must appear before the first record: header() is served before
// any record is pulled, so "# machine"/"# description" lines after the
// first record are skipped as plain comments.
//
// TextTraceSource is a true streaming TraceSource: one line is in flight at
// a time, so `trace_stream import` and Analyze({.source = ...}) handle
// arbitrarily large text logs in bounded memory.  It also enforces the
// TraceSource time-ordering contract as it reads — a record whose timestamp
// moves backwards fails with its line number rather than silently feeding
// unsorted data to an analyzer.

#ifndef BSDTRACE_SRC_TRACE_IMPORT_TEXT_IMPORT_H_
#define BSDTRACE_SRC_TRACE_IMPORT_TEXT_IMPORT_H_

#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace_source.h"

namespace bsdtrace {

class TextTraceSource : public TraceSource {
 public:
  // Reads from a file path ("-" means stdin) or a caller-owned stream.
  explicit TextTraceSource(const std::string& path);
  explicit TextTraceSource(std::istream& in);

  const TraceHeader& header() const override { return header_; }
  bool Next(TraceRecord* record) override;
  Status status() const override { return status_; }

  // Source line (1-based) of the record most recently returned by Next().
  uint64_t line_number() const { return line_number_; }
  // Source line of every record returned so far, in order.  Feed this to
  // ValidateTraceOptions::line_numbers so validation errors cite the text
  // file's lines.
  const std::vector<uint64_t>& record_lines() const { return record_lines_; }

 private:
  void ReadHeader();
  bool NextLine(std::string* line);

  std::unique_ptr<std::ifstream> owned_;
  std::istream* in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  SimTime prev_time_;
  uint64_t line_number_ = 0;   // lines consumed so far
  std::vector<uint64_t> record_lines_;
  bool pending_valid_ = false;  // a record line read while scanning the header
  std::string pending_line_;
  uint64_t pending_line_no_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_IMPORT_TEXT_IMPORT_H_
