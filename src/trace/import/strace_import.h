// strace → Table-II adapter: converts the output of
//
//   strace -f -ttt -e trace=open,openat,creat,close,lseek,read,write,
//          unlink,truncate,ftruncate,execve  (one -e list; wrapped here)
//
// into the repo's Table-II trace schema, so a real syscall log can feed the
// same Analyze / replay-log / sweep machinery as a generated trace.
//
// Mapping (one Table-II record per completed syscall, billed as the paper's
// kernel tracer would have billed it):
//
//   open/openat   kOpen   oid = fresh per successful open (never recycled),
//                         file = interned path, user = pid, mode from the
//                         O_* access flags, size = last known size of the
//                         path (0 if never seen), pos = size if O_APPEND
//                         else 0.  An open with O_CREAT of an unknown path,
//                         or with O_TRUNC and write access, is a kCreate.
//   creat         kCreate (write-only open that truncates)
//   read/write    no record — Table II has no per-transfer events.  The
//                 return value advances the fd's synthesized position
//                 (implicit sequentiality); writes extending past the
//                 tracked size grow it.
//   lseek         kSeek(from = synthesized position, to = return value),
//                 emitted only when the call actually repositions
//                 (ret != current position), matching the paper's tracer
//                 which logged only real repositions.
//   close         kClose(pos = synthesized position, size = max(tracked
//                 size, position)) — sizes are billed at close, as in the
//                 paper.  Emitted when the last duplicate of the open is
//                 closed (dup/dup2/dup3 share one open entry).
//   unlink(at)    kUnlink; the path's FileId is retired (a later create of
//                 the same name is a new file, like a fresh i-number).
//   truncate      kTruncate(len); ftruncate maps through the fd's file.
//   execve        kExecve(size = last known size of the image).
//
// Process model: `-f` interleaves pids; each pid has its own fd table and
// UserId = pid (strace does not report uids).  An operation on an fd >= 3
// this log never saw opened (inherited across an untraced fork, or opened
// before attach) synthesizes a plain kOpen at that instant so the stream
// stays structurally valid; fds 0-2 are assumed to be ttys/pipes and are
// ignored.  `<unfinished ...>` / `<... resumed>` pairs are joined per pid
// and billed at the resumed line's timestamp.
//
// Failed calls (`= -1 E...`), detached calls (`= ?`), signal (`--- ... ---`)
// and exit (`+++ ... +++`) lines are skipped; anything else that does not
// parse as an strace event is a hard error naming the line, so a truncated
// or corrupted log fails loudly instead of importing partially.
//
// Timestamps are -ttt epoch seconds; the import rebases them so the first
// event is t = 0 and stably sorts the result (resumed-call joining can emit
// slightly out of order).

#ifndef BSDTRACE_SRC_TRACE_IMPORT_STRACE_IMPORT_H_
#define BSDTRACE_SRC_TRACE_IMPORT_STRACE_IMPORT_H_

#include <istream>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/trace/trace_source.h"
#include "src/util/status.h"

namespace bsdtrace {

struct StraceImportStats {
  uint64_t lines = 0;             // lines read
  uint64_t records = 0;           // Table-II records emitted
  uint64_t failed_calls = 0;      // syscalls returning -1 (skipped)
  uint64_t ignored_lines = 0;     // signals, exits, untracked syscalls
  uint64_t synthesized_opens = 0; // fds first seen mid-stream (fd >= 3)
  uint64_t resumed_joined = 0;    // <unfinished ...>/<... resumed> pairs
  uint64_t pids = 0;              // distinct pids seen
  uint64_t files = 0;             // distinct FileIds assigned
};

struct StraceImportResult {
  Trace trace;
  // Source line of each record, parallel to trace.records() — feed to
  // ValidateTraceOptions::line_numbers.
  std::vector<uint64_t> record_lines;
  StraceImportStats stats;
};

// Parses a whole strace log.  The result is materialized (the log must be
// time-rebased and sorted before it is a valid stream), so this is intended
// for logs that fit in memory — the use case is importing a captured
// session, not a firehose.
StatusOr<StraceImportResult> ImportStraceLog(std::istream& in);
StatusOr<StraceImportResult> ImportStraceLog(const std::string& path);  // "-" = stdin

// TraceSource over an imported log, so the importer plugs into
// Analyze({.source = ...}) and SaveTrace like any other stream.
class StraceTraceSource : public TraceSource {
 public:
  explicit StraceTraceSource(StraceImportResult result)
      : result_(std::move(result)) {}
  // Import failure: a source that yields nothing but the sticky error.
  explicit StraceTraceSource(Status status) : status_(std::move(status)) {}

  const TraceHeader& header() const override { return result_.trace.header(); }
  bool Next(TraceRecord* record) override {
    if (!status_.ok() || next_ >= result_.trace.size()) {
      return false;
    }
    *record = result_.trace.records()[next_++];
    return true;
  }
  Status status() const override { return status_; }
  int64_t size_hint() const override {
    return static_cast<int64_t>(result_.trace.size());
  }

  const StraceImportResult& result() const { return result_; }

 private:
  StraceImportResult result_;
  Status status_ = Status::Ok();
  size_t next_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_IMPORT_STRACE_IMPORT_H_
