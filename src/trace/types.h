// Shared identifier types for the trace schema (paper Table II).

#ifndef BSDTRACE_SRC_TRACE_TYPES_H_
#define BSDTRACE_SRC_TRACE_TYPES_H_

#include <cstdint>

namespace bsdtrace {

// Unique identifier assigned to each open() call; disambiguates concurrent
// accesses to the same file (Table II).
using OpenId = uint64_t;

// Unique per file (the paper's "file id"; analogous to an i-number that is
// never reused).
using FileId = uint64_t;

// The account under which an operation was invoked.
using UserId = uint32_t;

inline constexpr OpenId kInvalidOpenId = 0;
inline constexpr FileId kInvalidFileId = 0;

// How a file was opened.  Needed to classify accesses into the read-only /
// write-only / read-write rows of Table V.
enum class AccessMode : uint8_t {
  kReadOnly = 0,
  kWriteOnly = 1,
  kReadWrite = 2,
};

const char* AccessModeName(AccessMode mode);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TYPES_H_
