// Trace serialization: a compact binary format and a line-oriented text
// format, plus whole-file convenience helpers.
//
// Binary format (version 2):
//   magic   "BSDTRC2\n" (8 bytes)
//   header  varint-length-prefixed machine string, then description string,
//           then a varint record count: 0 = unknown (streamed), else N+1 for
//           a trace of N records (lets loaders reserve() the record vector
//           instead of reallocating while reading large traces)
//   records sequence of:
//             u8      event type (EventType, 1..7)
//             varint  time delta vs. previous record, microseconds (zigzag)
//             varints per-type payload fields (see trace_io.cc)
//   end     u8 0 sentinel
//
// Version 1 ("BSDTRC1\n", no record count) is still read transparently.
//
// Binary format version 3 ("BSDTRC3\n") keeps the v2 header and record
// encoding but frames the records into independently decodable blocks for
// archival integrity and parallel analysis:
//   blocks  sequence of:
//             u8      1 (block marker)
//             varint  record count in the block (>= 1)
//             varint  payload length in bytes
//             u32le   CRC32C of the payload
//             payload records encoded as in v2, except the time-delta base
//                     resets to 0 at the start of each block (the first
//                     record's delta is its absolute time in microseconds),
//                     so a reader can start decoding at any block boundary
//   end     u8 0 sentinel
//   footer  varint index entry count, then per block:
//             varint  offset of the block marker (delta vs. previous entry;
//                     the first entry is absolute from the file start)
//             varint  record count
//             varint  time of the block's first record, microseconds
//   tail    u64le offset of the footer from the file start,
//           magic "BSDIDX3\n" (8 bytes)
// The writer closes a block when its payload reaches the configured target
// (~256 KB) and always at simulated-hour boundaries, so the footer doubles
// as an (hour, segment) -> byte offset index.  Sequential readers verify
// each block's CRC32C and stop at the end sentinel; SeekableTraceSource
// (trace_source.h) parses the footer and opens cursors at any entry.
//
// Binary format version 4 ("BSDTRC4\n") keeps the v3 file skeleton — the v2
// header, checksummed size/hour-bounded blocks, end sentinel, footer index +
// tail — but re-encodes each block's payload for compression:
//   blocks  sequence of:
//             u8      1 (block marker)
//             varint  record count in the block (>= 1)
//             varint  raw payload length (before compression)
//             u8      codec id (TraceCodec: 0 = stored, 1 = LZ)
//             varint  stored payload length (== raw length when stored)
//             u32le   CRC32C of the STORED payload (corruption is caught
//                     before any decompressor sees the bytes)
//             payload stored bytes
// The raw payload is columnar with a semantic pre-pass: per-record
// type|mode bytes (mode in bits 3-4, open/create only), then length-prefixed
// per-field streams — zigzag time deltas; open ids; file ids; user ids;
// close/seek prediction flags; sizes; positions; seek froms/tos.  Close and
// seek records are coded against a block-local open table (the opens seen
// earlier in the same block): a close whose open is in the table codes its
// open id as a recency rank in the table's LRU list, omits its file id
// entirely, and flags say whether its final position equals its size and
// its size equals the open's size — both true for most closes (sequential
// whole-file access, Section 4 of the paper) — so the common close is a
// type byte, a time delta, a tiny rank, and one flags byte.  Seeks likewise
// rank-code the open id, omit the file id, and predict seek-from from the
// table's last position.  File and user ids are Zipfian references, so they
// go through block-local move-to-front lists (rank+1 on a hit, 0 + the full
// value on a miss); open/truncate/execve sizes are residuals against the
// file's last size seen in the block.  What remains is low-entropy rather
// than literally repetitive, so the block codec (lz_codec.h) entropy-codes
// the streams; blocks the codec fails to shrink are stored raw (codec 0), so
// v4 never expands.  All prediction state — prevs, the open table, the MTF
// lists, the size map — resets at each block start, so blocks stay
// independently decodable (a close whose open lies in an earlier block
// simply codes its fields explicitly) and the footer index keeps working
// for SeekableTraceSource and the parallel analyzer — each worker
// decompresses its own blocks.
//
// Varints are LEB128; times are delta-encoded because trace records are in
// time order, which keeps the common case to 1-3 bytes.  The paper logged
// ~500-600 bytes/minute of trace data; this format is in the same spirit.

#ifndef BSDTRACE_SRC_TRACE_TRACE_IO_H_
#define BSDTRACE_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/io_buffer.h"
#include "src/trace/lz_codec.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

class TraceSource;  // trace_source.h; streaming writers pull from one

// Worst-case encoded size of one record: type byte + 10-byte time varint +
// up to five 10-byte varints + the mode byte.  The buffered writer reserves
// this much contiguous space per record so encoding never bounds-checks.
inline constexpr size_t kMaxRecordEncoding = 64;

// The fixed tail that terminates a v3/v4 file carrying a block index: a
// u64le footer offset followed by this magic.  v4 reuses the v3 tail — the
// footer layout did not change, only the block payloads did.
inline constexpr char kTraceIndexTailMagic[8] = {'B', 'S', 'D', 'I', 'D', 'X', '3', '\n'};
inline constexpr size_t kTraceIndexTailSize = 16;

// How TraceFileWriter frames the record stream.  The default (version 2)
// byte-matches the legacy flat stream; version 3 adds checksummed blocks and
// the footer index described in the file comment; version 4 adds the
// columnar delta pre-pass and per-block compression.
struct TraceWriterOptions {
  int version = 2;
  // v3/v4: close the current block once its payload reaches this size.
  // Blocks also close at simulated-hour boundaries regardless of size.
  size_t block_target_bytes = 256 * 1024;
  // v3/v4: append the footer index + tail.  Without it the file is still
  // checksummed and sequentially readable, just not seekable.
  bool write_index = true;
  // v4: block payload codec.  Blocks a codec fails to shrink are stored raw
  // (each block header carries its own codec id), so v4 never expands.
  TraceCodec codec = TraceCodec::kLz;
};

// One footer index entry: where a block starts, how many records it holds,
// and the time of its first record.
struct TraceBlockIndexEntry {
  uint64_t offset = 0;        // byte offset of the block marker
  uint64_t record_count = 0;  // records in the block
  SimTime start_time;         // time of the block's first record
};

// Streaming binary writer.  Writes the header on construction; call Finish()
// (or let the destructor do it) to emit the end-of-stream sentinel.
// `expected_records` is written into the header when non-negative so readers
// can pre-size their buffers; pass -1 (the default) when streaming a record
// count that is not known up front.
class BinaryTraceWriter : public TraceSink {
 public:
  BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                    int64_t expected_records = -1);
  ~BinaryTraceWriter() override;

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void Append(const TraceRecord& record) override;
  void Finish();

  uint64_t records_written() const { return records_written_; }

 private:
  std::ostream& out_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;
};

// Streaming binary reader.
class BinaryTraceReader {
 public:
  // Parses the header; check status() before reading records.
  explicit BinaryTraceReader(std::istream& in);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Record count declared in the header, or -1 if the stream did not carry
  // one (v1 files, or a writer that streamed an unknown count).  Advisory:
  // reading always continues to the end sentinel regardless.
  int64_t declared_record_count() const { return declared_record_count_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

 private:
  std::istream& in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  bool done_ = false;
};

// Block-buffered binary writer to a file path.  Same format (and bytes) as
// BinaryTraceWriter over an std::ofstream, several times faster: records are
// encoded straight into 64 KB blocks instead of per-byte ostream virtual
// calls.  Call Finish() for the end sentinel and the final write status; the
// destructor finishes but swallows the status.
class TraceFileWriter : public TraceSink {
 public:
  TraceFileWriter(const std::string& path, const TraceHeader& header,
                  int64_t expected_records = -1);
  // Format-version-aware constructor; TraceWriterOptions{} writes v2.
  TraceFileWriter(const std::string& path, const TraceHeader& header,
                  int64_t expected_records, const TraceWriterOptions& options);
  ~TraceFileWriter() override;

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(const TraceRecord& record) override;
  Status Finish();

  const Status& status() const { return out_.status(); }
  uint64_t records_written() const { return records_written_; }
  // Encoded bytes accepted so far (header + records; flushed + buffered).
  uint64_t bytes_written() const { return out_.bytes_written(); }
  // v3/v4: index entries for the blocks flushed so far.
  const std::vector<TraceBlockIndexEntry>& index() const { return index_; }
  // v4: payload bytes across flushed blocks, before and after the block
  // codec (their ratio is the compression ratio; both 0 unless writing v4).
  uint64_t payload_raw_bytes() const { return payload_raw_bytes_; }
  uint64_t payload_stored_bytes() const { return payload_stored_bytes_; }

 private:
  void FlushBlock();
  void AppendV4(const TraceRecord& record);
  void FlushBlockV4();

  BufferedWriter out_;
  TraceWriterOptions options_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;

  // v3 block under construction.
  std::vector<uint8_t> block_;
  uint64_t block_records_ = 0;
  int64_t block_first_hour_ = 0;
  int64_t block_start_time_us_ = 0;
  std::vector<TraceBlockIndexEntry> index_;

  // v4 block under construction: one stream per Table-II field (semantic
  // columnar layout; see the file comment).  Delta bases, and the open table
  // close/seek predictions are coded against, reset at each block start.
  struct V4FieldStreams {
    std::vector<uint8_t> types;  // type | mode << 3 per record
    std::vector<uint8_t> times;
    std::vector<uint8_t> open_ids;
    std::vector<uint8_t> file_ids;
    std::vector<uint8_t> user_ids;
    std::vector<uint8_t> flags;  // close/seek prediction flags
    std::vector<uint8_t> sizes;
    std::vector<uint8_t> positions;
    std::vector<uint8_t> seek_froms;
    std::vector<uint8_t> seek_tos;
    uint64_t prev_open_id = 0;
    // Block-local open table: open id -> (file id, size, last position) for
    // opens appended in this block, mirrored exactly by the decoder.
    struct OpenInfo {
      uint64_t file_id = 0;
      uint64_t size = 0;
      uint64_t position = 0;
    };
    std::unordered_map<uint64_t, OpenInfo> open_table;
    // Recency list over the open table's keys (most recent first): in-table
    // closes and seeks code their open id as a rank in this list, which is
    // tiny for the common close-what-you-just-opened pattern.
    std::vector<uint64_t> open_lru;
    // Move-to-front lists for file and user ids: references are Zipfian, so
    // recency ranks code far smaller than value deltas.
    std::vector<uint64_t> file_mtf;
    std::vector<uint64_t> user_mtf;
    // file id -> last size seen in this block; open/truncate/execve sizes
    // are coded as residuals against it (files rarely change size).
    std::unordered_map<uint64_t, uint64_t> file_size;

    size_t payload_size() const;
    void Clear();
  };
  V4FieldStreams v4_;
  std::vector<uint8_t> v4_raw_;     // assembled raw payload scratch
  std::vector<uint8_t> v4_stored_;  // compressed payload scratch
  uint64_t payload_raw_bytes_ = 0;
  uint64_t payload_stored_bytes_ = 0;
};

// Block-buffered binary reader from a file path (mmap when available, 64 KB
// blocks otherwise).  Reads v1 through v4 files; v3/v4 block checksums are
// verified as each block is entered, so a flipped byte anywhere in a block
// surfaces as a clean non-ok status() before any record of that block is
// returned.  v4 blocks are additionally decompressed and decoded whole on
// entry, so a malformed compressed stream never yields partial records.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path, bool prefer_mmap = true);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Format version parsed from the magic (1 through 4).
  int version() const { return version_; }

  // Record count declared in the header, or -1 if absent (see
  // BinaryTraceReader::declared_record_count).
  int64_t declared_record_count() const { return declared_record_count_; }

  // Blocks whose checksums have been verified so far (v3/v4 only).
  uint64_t blocks_verified() const { return blocks_verified_; }

  // Bitmask of codec ids seen in verified v4 blocks (bit N = TraceCodec N);
  // 0 for v1-v3 files.
  uint32_t codecs_seen() const { return codecs_seen_; }

  // Payload bytes across verified blocks: as stored on disk (possibly
  // compressed) and raw (after decompression).  Equal for v3 files.
  uint64_t payload_stored_bytes() const { return payload_stored_bytes_; }
  uint64_t payload_raw_bytes() const { return payload_raw_bytes_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

  // v3/v4 only: repositions to the block starting at `offset` (a footer
  // index entry) and limits reading to the next `block_count` blocks.
  // Cursors opened by SeekableTraceSource are built on this.
  Status SeekToBlock(uint64_t offset, uint64_t block_count);

 private:
  bool NextV3(TraceRecord* record);
  bool NextV4(TraceRecord* record);
  bool FailCorrupt(const char* error);

  BufferedReader in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  int version_ = 2;
  bool done_ = false;

  // v3 state: records left in the current block, the optional block budget
  // from SeekToBlock, and the copy-and-verify scratch for unmapped reads.
  uint64_t block_remaining_ = 0;
  uint64_t blocks_verified_ = 0;
  bool blocks_limited_ = false;
  uint64_t blocks_left_ = 0;
  bool scratch_active_ = false;
  size_t scratch_pos_ = 0;
  size_t scratch_len_ = 0;
  std::vector<uint8_t> scratch_;

  // v4 state: the current block's records (decoded whole after CRC +
  // decompression) and the stored-bytes scratch for unmapped reads.  The v3
  // scratch_ doubles as the decompression buffer.
  std::vector<TraceRecord> v4_records_;
  size_t v4_next_ = 0;
  std::vector<uint8_t> v4_stored_scratch_;
  uint32_t codecs_seen_ = 0;
  uint64_t payload_stored_bytes_ = 0;
  uint64_t payload_raw_bytes_ = 0;
};

// Text format: "# machine <name>" / "# description <text>" comment header,
// then one TraceRecord::ToString() line per record.  The source overload is
// the implementation; the Trace overload wraps it.  Stream write failures
// and source errors surface as a non-ok Status.
Status WriteTextTrace(std::ostream& out, TraceSource& source);
Status WriteTextTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadTextTrace(std::istream& in);

// Whole-trace binary helpers over iostreams (the legacy per-byte path; the
// file-path helpers below are several times faster).
Status WriteBinaryTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadBinaryTrace(std::istream& in);

// File-path helpers (binary format).  Routed through the block-buffered
// TraceFileWriter/TraceFileReader path.  The TraceSource overload streams —
// one record in flight, any trace length in bounded memory — and stamps the
// source's size hint into the header; it is byte-identical to saving the
// collected Trace when the hint is exact (sources over files and vectors).
Status SaveTrace(const std::string& path, TraceSource& source);
Status SaveTrace(const std::string& path, const Trace& trace);
// Format-version-aware variants (v3 with a block index, custom block sizes).
// The default SaveTrace stays v2 so existing byte-identity contracts against
// the iostream writer hold.
Status SaveTrace(const std::string& path, TraceSource& source,
                 const TraceWriterOptions& options);
Status SaveTrace(const std::string& path, const Trace& trace,
                 const TraceWriterOptions& options);
StatusOr<Trace> LoadTrace(const std::string& path);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_IO_H_
