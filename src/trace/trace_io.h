// Trace serialization: a compact binary format and a line-oriented text
// format, plus whole-file convenience helpers.
//
// Binary format (version 2):
//   magic   "BSDTRC2\n" (8 bytes)
//   header  varint-length-prefixed machine string, then description string,
//           then a varint record count: 0 = unknown (streamed), else N+1 for
//           a trace of N records (lets loaders reserve() the record vector
//           instead of reallocating while reading large traces)
//   records sequence of:
//             u8      event type (EventType, 1..7)
//             varint  time delta vs. previous record, microseconds (zigzag)
//             varints per-type payload fields (see trace_io.cc)
//   end     u8 0 sentinel
//
// Version 1 ("BSDTRC1\n", no record count) is still read transparently.
//
// Varints are LEB128; times are delta-encoded because trace records are in
// time order, which keeps the common case to 1-3 bytes.  The paper logged
// ~500-600 bytes/minute of trace data; this format is in the same spirit.

#ifndef BSDTRACE_SRC_TRACE_TRACE_IO_H_
#define BSDTRACE_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/io_buffer.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

class TraceSource;  // trace_source.h; streaming writers pull from one

// Worst-case encoded size of one record: type byte + 10-byte time varint +
// up to five 10-byte varints + the mode byte.  The buffered writer reserves
// this much contiguous space per record so encoding never bounds-checks.
inline constexpr size_t kMaxRecordEncoding = 64;

// Streaming binary writer.  Writes the header on construction; call Finish()
// (or let the destructor do it) to emit the end-of-stream sentinel.
// `expected_records` is written into the header when non-negative so readers
// can pre-size their buffers; pass -1 (the default) when streaming a record
// count that is not known up front.
class BinaryTraceWriter : public TraceSink {
 public:
  BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                    int64_t expected_records = -1);
  ~BinaryTraceWriter() override;

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void Append(const TraceRecord& record) override;
  void Finish();

  uint64_t records_written() const { return records_written_; }

 private:
  std::ostream& out_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;
};

// Streaming binary reader.
class BinaryTraceReader {
 public:
  // Parses the header; check status() before reading records.
  explicit BinaryTraceReader(std::istream& in);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Record count declared in the header, or -1 if the stream did not carry
  // one (v1 files, or a writer that streamed an unknown count).  Advisory:
  // reading always continues to the end sentinel regardless.
  int64_t declared_record_count() const { return declared_record_count_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

 private:
  std::istream& in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  bool done_ = false;
};

// Block-buffered binary writer to a file path.  Same format (and bytes) as
// BinaryTraceWriter over an std::ofstream, several times faster: records are
// encoded straight into 64 KB blocks instead of per-byte ostream virtual
// calls.  Call Finish() for the end sentinel and the final write status; the
// destructor finishes but swallows the status.
class TraceFileWriter : public TraceSink {
 public:
  TraceFileWriter(const std::string& path, const TraceHeader& header,
                  int64_t expected_records = -1);
  ~TraceFileWriter() override;

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(const TraceRecord& record) override;
  Status Finish();

  const Status& status() const { return out_.status(); }
  uint64_t records_written() const { return records_written_; }
  // Encoded bytes accepted so far (header + records; flushed + buffered).
  uint64_t bytes_written() const { return out_.bytes_written(); }

 private:
  BufferedWriter out_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;
};

// Block-buffered binary reader from a file path (mmap when available, 64 KB
// blocks otherwise).  Reads both v1 and v2 files, like BinaryTraceReader.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path, bool prefer_mmap = true);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Record count declared in the header, or -1 if absent (see
  // BinaryTraceReader::declared_record_count).
  int64_t declared_record_count() const { return declared_record_count_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

 private:
  BufferedReader in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  bool done_ = false;
};

// Text format: "# machine <name>" / "# description <text>" comment header,
// then one TraceRecord::ToString() line per record.  The source overload is
// the implementation; the Trace overload wraps it.  Stream write failures
// and source errors surface as a non-ok Status.
Status WriteTextTrace(std::ostream& out, TraceSource& source);
Status WriteTextTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadTextTrace(std::istream& in);

// Whole-trace binary helpers over iostreams (the legacy per-byte path; the
// file-path helpers below are several times faster).
Status WriteBinaryTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadBinaryTrace(std::istream& in);

// File-path helpers (binary format).  Routed through the block-buffered
// TraceFileWriter/TraceFileReader path.  The TraceSource overload streams —
// one record in flight, any trace length in bounded memory — and stamps the
// source's size hint into the header; it is byte-identical to saving the
// collected Trace when the hint is exact (sources over files and vectors).
Status SaveTrace(const std::string& path, TraceSource& source);
Status SaveTrace(const std::string& path, const Trace& trace);
StatusOr<Trace> LoadTrace(const std::string& path);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_IO_H_
