// Trace serialization: a compact binary format and a line-oriented text
// format, plus whole-file convenience helpers.
//
// Binary format (version 2):
//   magic   "BSDTRC2\n" (8 bytes)
//   header  varint-length-prefixed machine string, then description string,
//           then a varint record count: 0 = unknown (streamed), else N+1 for
//           a trace of N records (lets loaders reserve() the record vector
//           instead of reallocating while reading large traces)
//   records sequence of:
//             u8      event type (EventType, 1..7)
//             varint  time delta vs. previous record, microseconds (zigzag)
//             varints per-type payload fields (see trace_io.cc)
//   end     u8 0 sentinel
//
// Version 1 ("BSDTRC1\n", no record count) is still read transparently.
//
// Binary format version 3 ("BSDTRC3\n") keeps the v2 header and record
// encoding but frames the records into independently decodable blocks for
// archival integrity and parallel analysis:
//   blocks  sequence of:
//             u8      1 (block marker)
//             varint  record count in the block (>= 1)
//             varint  payload length in bytes
//             u32le   CRC32C of the payload
//             payload records encoded as in v2, except the time-delta base
//                     resets to 0 at the start of each block (the first
//                     record's delta is its absolute time in microseconds),
//                     so a reader can start decoding at any block boundary
//   end     u8 0 sentinel
//   footer  varint index entry count, then per block:
//             varint  offset of the block marker (delta vs. previous entry;
//                     the first entry is absolute from the file start)
//             varint  record count
//             varint  time of the block's first record, microseconds
//   tail    u64le offset of the footer from the file start,
//           magic "BSDIDX3\n" (8 bytes)
// The writer closes a block when its payload reaches the configured target
// (~256 KB) and always at simulated-hour boundaries, so the footer doubles
// as an (hour, segment) -> byte offset index.  Sequential readers verify
// each block's CRC32C and stop at the end sentinel; SeekableTraceSource
// (trace_source.h) parses the footer and opens cursors at any entry.
//
// Varints are LEB128; times are delta-encoded because trace records are in
// time order, which keeps the common case to 1-3 bytes.  The paper logged
// ~500-600 bytes/minute of trace data; this format is in the same spirit.

#ifndef BSDTRACE_SRC_TRACE_TRACE_IO_H_
#define BSDTRACE_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/io_buffer.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace bsdtrace {

class TraceSource;  // trace_source.h; streaming writers pull from one

// Worst-case encoded size of one record: type byte + 10-byte time varint +
// up to five 10-byte varints + the mode byte.  The buffered writer reserves
// this much contiguous space per record so encoding never bounds-checks.
inline constexpr size_t kMaxRecordEncoding = 64;

// The fixed tail that terminates a v3 file carrying a block index: a u64le
// footer offset followed by this magic.
inline constexpr char kTraceIndexTailMagic[8] = {'B', 'S', 'D', 'I', 'D', 'X', '3', '\n'};
inline constexpr size_t kTraceIndexTailSize = 16;

// How TraceFileWriter frames the record stream.  The default (version 2)
// byte-matches the legacy flat stream; version 3 adds checksummed blocks and
// the footer index described in the file comment.
struct TraceWriterOptions {
  int version = 2;
  // v3: close the current block once its payload reaches this size.  Blocks
  // also close at simulated-hour boundaries regardless of size.
  size_t block_target_bytes = 256 * 1024;
  // v3: append the footer index + tail.  Without it the file is still
  // checksummed and sequentially readable, just not seekable.
  bool write_index = true;
};

// One footer index entry: where a block starts, how many records it holds,
// and the time of its first record.
struct TraceBlockIndexEntry {
  uint64_t offset = 0;        // byte offset of the block marker
  uint64_t record_count = 0;  // records in the block
  SimTime start_time;         // time of the block's first record
};

// Streaming binary writer.  Writes the header on construction; call Finish()
// (or let the destructor do it) to emit the end-of-stream sentinel.
// `expected_records` is written into the header when non-negative so readers
// can pre-size their buffers; pass -1 (the default) when streaming a record
// count that is not known up front.
class BinaryTraceWriter : public TraceSink {
 public:
  BinaryTraceWriter(std::ostream& out, const TraceHeader& header,
                    int64_t expected_records = -1);
  ~BinaryTraceWriter() override;

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void Append(const TraceRecord& record) override;
  void Finish();

  uint64_t records_written() const { return records_written_; }

 private:
  std::ostream& out_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;
};

// Streaming binary reader.
class BinaryTraceReader {
 public:
  // Parses the header; check status() before reading records.
  explicit BinaryTraceReader(std::istream& in);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Record count declared in the header, or -1 if the stream did not carry
  // one (v1 files, or a writer that streamed an unknown count).  Advisory:
  // reading always continues to the end sentinel regardless.
  int64_t declared_record_count() const { return declared_record_count_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

 private:
  std::istream& in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  bool done_ = false;
};

// Block-buffered binary writer to a file path.  Same format (and bytes) as
// BinaryTraceWriter over an std::ofstream, several times faster: records are
// encoded straight into 64 KB blocks instead of per-byte ostream virtual
// calls.  Call Finish() for the end sentinel and the final write status; the
// destructor finishes but swallows the status.
class TraceFileWriter : public TraceSink {
 public:
  TraceFileWriter(const std::string& path, const TraceHeader& header,
                  int64_t expected_records = -1);
  // Format-version-aware constructor; TraceWriterOptions{} writes v2.
  TraceFileWriter(const std::string& path, const TraceHeader& header,
                  int64_t expected_records, const TraceWriterOptions& options);
  ~TraceFileWriter() override;

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void Append(const TraceRecord& record) override;
  Status Finish();

  const Status& status() const { return out_.status(); }
  uint64_t records_written() const { return records_written_; }
  // Encoded bytes accepted so far (header + records; flushed + buffered).
  uint64_t bytes_written() const { return out_.bytes_written(); }
  // v3: index entries for the blocks flushed so far.
  const std::vector<TraceBlockIndexEntry>& index() const { return index_; }

 private:
  void FlushBlock();

  BufferedWriter out_;
  TraceWriterOptions options_;
  int64_t prev_time_us_ = 0;
  uint64_t records_written_ = 0;
  bool finished_ = false;

  // v3 block under construction.
  std::vector<uint8_t> block_;
  uint64_t block_records_ = 0;
  int64_t block_first_hour_ = 0;
  int64_t block_start_time_us_ = 0;
  std::vector<TraceBlockIndexEntry> index_;
};

// Block-buffered binary reader from a file path (mmap when available, 64 KB
// blocks otherwise).  Reads v1, v2, and v3 files; v3 block checksums are
// verified as each block is entered, so a flipped byte anywhere in a block
// surfaces as a clean non-ok status() before any record of that block is
// returned.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path, bool prefer_mmap = true);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }

  // Format version parsed from the magic (1, 2, or 3).
  int version() const { return version_; }

  // Record count declared in the header, or -1 if absent (see
  // BinaryTraceReader::declared_record_count).
  int64_t declared_record_count() const { return declared_record_count_; }

  // Blocks whose checksums have been verified so far (v3 only).
  uint64_t blocks_verified() const { return blocks_verified_; }

  // Reads the next record into *record.  Returns false at end of stream or on
  // error (distinguish via status()).
  bool Next(TraceRecord* record);

  // v3 only: repositions to the block starting at `offset` (a footer index
  // entry) and limits reading to the next `block_count` blocks.  Cursors
  // opened by SeekableTraceSource are built on this.
  Status SeekToBlock(uint64_t offset, uint64_t block_count);

 private:
  bool NextV3(TraceRecord* record);
  bool FailCorrupt(const char* error);

  BufferedReader in_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int64_t prev_time_us_ = 0;
  int64_t declared_record_count_ = -1;
  int version_ = 2;
  bool done_ = false;

  // v3 state: records left in the current block, the optional block budget
  // from SeekToBlock, and the copy-and-verify scratch for unmapped reads.
  uint64_t block_remaining_ = 0;
  uint64_t blocks_verified_ = 0;
  bool blocks_limited_ = false;
  uint64_t blocks_left_ = 0;
  bool scratch_active_ = false;
  size_t scratch_pos_ = 0;
  size_t scratch_len_ = 0;
  std::vector<uint8_t> scratch_;
};

// Text format: "# machine <name>" / "# description <text>" comment header,
// then one TraceRecord::ToString() line per record.  The source overload is
// the implementation; the Trace overload wraps it.  Stream write failures
// and source errors surface as a non-ok Status.
Status WriteTextTrace(std::ostream& out, TraceSource& source);
Status WriteTextTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadTextTrace(std::istream& in);

// Whole-trace binary helpers over iostreams (the legacy per-byte path; the
// file-path helpers below are several times faster).
Status WriteBinaryTrace(std::ostream& out, const Trace& trace);
StatusOr<Trace> ReadBinaryTrace(std::istream& in);

// File-path helpers (binary format).  Routed through the block-buffered
// TraceFileWriter/TraceFileReader path.  The TraceSource overload streams —
// one record in flight, any trace length in bounded memory — and stamps the
// source's size hint into the header; it is byte-identical to saving the
// collected Trace when the hint is exact (sources over files and vectors).
Status SaveTrace(const std::string& path, TraceSource& source);
Status SaveTrace(const std::string& path, const Trace& trace);
// Format-version-aware variants (v3 with a block index, custom block sizes).
// The default SaveTrace stays v2 so existing byte-identity contracts against
// the iostream writer hold.
Status SaveTrace(const std::string& path, TraceSource& source,
                 const TraceWriterOptions& options);
Status SaveTrace(const std::string& path, const Trace& trace,
                 const TraceWriterOptions& options);
StatusOr<Trace> LoadTrace(const std::string& path);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_IO_H_
