// CRC32C (Castagnoli) checksums for trace format v3 block integrity.
//
// Software slice-by-8 implementation: no SSE4.2 dependency, so the format is
// readable on any platform, and ~1 byte/cycle — far faster than the trace
// codec it protects.  The polynomial (0x1EDC6F41, reflected 0x82F63B78) is
// the same one iSCSI, ext4, and LevelDB use, chosen for its error-detection
// properties on exactly this kind of medium-sized block.

#ifndef BSDTRACE_SRC_TRACE_CRC32C_H_
#define BSDTRACE_SRC_TRACE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bsdtrace {

// CRC32C of `n` bytes at `data`.  `seed` chains incremental computations:
// Crc32c(ab) == Crc32c(b, Crc32c(a)).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_CRC32C_H_
