#include "src/trace/filter.h"

#include <unordered_map>
#include <unordered_set>

namespace bsdtrace {
namespace {

// Copies the header and stamps the description with the derivation.
Trace Derive(const Trace& source, const std::string& note) {
  TraceHeader header = source.header();
  if (!header.description.empty()) {
    header.description += "; ";
  }
  header.description += note;
  return Trace(header);
}

// Generic keep-by-open-id filter: two passes.  `keep_record` decides for
// records that carry their own identity (open/create decide for their whole
// open id; unlink/truncate/execve decide individually).
Trace FilterByOpens(const Trace& source, const std::string& note,
                    const std::function<bool(const TraceRecord&)>& keep_record) {
  // Pass 1: decide which open ids survive.
  std::unordered_set<OpenId> kept_opens;
  for (const TraceRecord& r : source.records()) {
    if ((r.type == EventType::kOpen || r.type == EventType::kCreate) && keep_record(r)) {
      kept_opens.insert(r.open_id);
    }
  }
  // Pass 2: copy.
  Trace out = Derive(source, note);
  for (const TraceRecord& r : source.records()) {
    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate:
      case EventType::kClose:
      case EventType::kSeek:
        if (kept_opens.count(r.open_id) != 0) {
          out.Append(r);
        }
        break;
      default:
        if (keep_record(r)) {
          out.Append(r);
        }
        break;
    }
  }
  return out;
}

}  // namespace

Trace SliceByTime(const Trace& source, SimTime start, SimTime end, bool rebase) {
  // Opens whose whole lifetime lies inside the window.
  std::unordered_set<OpenId> inside;
  std::unordered_set<OpenId> spoiled;
  for (const TraceRecord& r : source.records()) {
    const bool in_window = r.time >= start && r.time < end;
    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate:
        if (in_window) {
          inside.insert(r.open_id);
        } else {
          spoiled.insert(r.open_id);
        }
        break;
      case EventType::kSeek:
      case EventType::kClose:
        if (!in_window) {
          spoiled.insert(r.open_id);
        }
        break;
      default:
        break;
    }
  }

  Trace out = Derive(source, "slice [" + start.ToString() + ", " + end.ToString() + ")");
  const Duration shift = start - SimTime::Origin();
  for (const TraceRecord& r : source.records()) {
    if (r.time < start || r.time >= end) {
      continue;
    }
    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate:
      case EventType::kClose:
      case EventType::kSeek:
        if (inside.count(r.open_id) == 0 || spoiled.count(r.open_id) != 0) {
          continue;
        }
        break;
      default:
        break;
    }
    TraceRecord copy = r;
    if (rebase) {
      copy.time = copy.time - shift;
    }
    out.Append(copy);
  }
  return out;
}

Trace FilterByUser(const Trace& source, const std::function<bool(UserId)>& keep) {
  return FilterByOpens(source, "user filter",
                       [&keep](const TraceRecord& r) { return keep(r.user_id); });
}

Trace FilterByFile(const Trace& source, const std::function<bool(FileId)>& keep) {
  return FilterByOpens(source, "file filter",
                       [&keep](const TraceRecord& r) { return keep(r.file_id); });
}

std::map<UserId, uint64_t> CountEventsByUser(const Trace& trace) {
  std::map<UserId, uint64_t> counts;
  std::unordered_map<OpenId, UserId> open_user;
  for (const TraceRecord& r : trace.records()) {
    switch (r.type) {
      case EventType::kOpen:
      case EventType::kCreate:
        open_user[r.open_id] = r.user_id;
        counts[r.user_id] += 1;
        break;
      case EventType::kSeek:
      case EventType::kClose: {
        auto it = open_user.find(r.open_id);
        counts[it != open_user.end() ? it->second : r.user_id] += 1;
        if (r.type == EventType::kClose && it != open_user.end()) {
          open_user.erase(it);
        }
        break;
      }
      default:
        counts[r.user_id] += 1;
        break;
    }
  }
  return counts;
}

}  // namespace bsdtrace
