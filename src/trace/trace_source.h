// Pull-side streaming counterpart of TraceSink: a cursor over an ordered
// stream of trace records plus the trace header.
//
// TraceSource is the I/O front door for every record consumer — the
// analyzers, the replay-log builder, and SaveTrace all accept one — so a
// trace can flow from a generator, a file, or a k-way merge of spill files
// (trace_merge.h) without ever being materialized as an in-memory vector.
// Whole-`Trace` vectors are just one source among several (TraceVectorSource)
// and one sink among several (Trace itself).
//
// Contract: Next() returns records in non-decreasing time order (the same
// invariant TraceValidator checks for in-memory traces) and returns false at
// end of stream or on error; the two are distinguished via status(), which is
// sticky.  size_hint() is advisory — implementations clamp untrusted header
// counts to what the backing store could plausibly hold, so consumers may
// reserve() it without an OOM guard.

#ifndef BSDTRACE_SRC_TRACE_TRACE_SOURCE_H_
#define BSDTRACE_SRC_TRACE_TRACE_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/trace/trace_io.h"
#include "src/util/status.h"

namespace bsdtrace {

// Producer interface for a stream of trace records (see file comment).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  virtual const TraceHeader& header() const = 0;

  // Reads the next record into *record.  Returns false at end of stream or
  // on error (distinguish via status()).
  virtual bool Next(TraceRecord* record) = 0;

  // Ok until the stream fails; sticky once set.
  virtual Status status() const = 0;

  // Expected number of records, or -1 if unknown.  Advisory (a v1 file or a
  // lying header may disagree) but safe to reserve(): implementations bound
  // it by the backing store's size.
  virtual int64_t size_hint() const { return -1; }
};

// In-memory source over a Trace the caller keeps alive.  Never fails.
class TraceVectorSource : public TraceSource {
 public:
  explicit TraceVectorSource(const Trace& trace) : trace_(trace) {}

  const TraceHeader& header() const override { return trace_.header(); }
  bool Next(TraceRecord* record) override {
    if (next_ >= trace_.records().size()) {
      return false;
    }
    *record = trace_.records()[next_++];
    return true;
  }
  Status status() const override { return Status::Ok(); }
  int64_t size_hint() const override { return static_cast<int64_t>(trace_.size()); }

 private:
  const Trace& trace_;
  size_t next_ = 0;
};

// File-backed source over the block-buffered binary reader.  A missing file,
// bad magic, corrupt header, or mid-stream truncation surfaces through
// status(); the declared record count is clamped to the file size (a four-
// byte-minimum record encoding means a count beyond that is a corrupt or
// hostile header, not a reason to over-reserve).
class TraceFileSource : public TraceSource {
 public:
  explicit TraceFileSource(const std::string& path);

  const TraceHeader& header() const override { return reader_.header(); }
  bool Next(TraceRecord* record) override { return reader_.Next(record); }
  Status status() const override { return reader_.status(); }
  int64_t size_hint() const override { return size_hint_; }

 private:
  TraceFileReader reader_;
  int64_t size_hint_ = -1;
};

// Random-access view of a v3 trace file: parses the footer block index and
// opens independent cursors (each with its own file handle) over any
// contiguous run of blocks.  v1/v2 files and index-less v3 files open fine
// but report has_index() == false — callers fall back to sequential reads.
// A v3 file whose tail magic is present but whose footer does not decode is
// reported as corrupt through status().
class SeekableTraceSource {
 public:
  explicit SeekableTraceSource(const std::string& path);

  Status status() const { return status_; }
  const TraceHeader& header() const { return header_; }
  int version() const { return version_; }
  int64_t size_hint() const { return declared_; }
  bool has_index() const { return !index_.empty(); }
  const std::vector<TraceBlockIndexEntry>& index() const { return index_; }
  const std::string& path() const { return path_; }
  // Total records across the index (the authoritative count for carving).
  uint64_t indexed_records() const;

  // A TraceSource over blocks [first_block, first_block + block_count) with
  // its own reader; multiple cursors read the same file concurrently.
  class Cursor : public TraceSource {
   public:
    Cursor(const std::string& path, uint64_t offset, uint64_t block_count,
           int64_t record_count);
    const TraceHeader& header() const override { return reader_.header(); }
    bool Next(TraceRecord* record) override { return reader_.Next(record); }
    Status status() const override { return reader_.status(); }
    int64_t size_hint() const override { return record_count_; }

   private:
    TraceFileReader reader_;
    int64_t record_count_;
  };

  // Opens a cursor over the given block range (clamped to the index).
  // Returns a source whose status() reflects any open/seek failure.
  std::unique_ptr<Cursor> OpenCursor(size_t first_block, size_t block_count) const;

 private:
  std::string path_;
  TraceHeader header_;
  Status status_ = Status::Ok();
  int version_ = 0;
  int64_t declared_ = -1;
  std::vector<TraceBlockIndexEntry> index_;
};

// Drains a source into an in-memory Trace (header + all records), reserving
// from the size hint.  Errors from the source are passed through.
StatusOr<Trace> CollectTrace(TraceSource& source);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_TRACE_SOURCE_H_
