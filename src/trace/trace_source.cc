#include "src/trace/trace_source.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

namespace bsdtrace {

namespace {

// Minimal LEB128 decoder over an in-memory footer slice (the codec's decoder
// is wired to its own source types, and the footer is a few dozen bytes).
bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t byte = *(*p)++;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

TraceFileSource::TraceFileSource(const std::string& path) : reader_(path) {
  if (!reader_.status().ok()) {
    return;
  }
  size_hint_ = reader_.declared_record_count();
  if (size_hint_ < 0) {
    return;  // v1 file or streamed-unknown count
  }
  // Clamp a lying header: every v1-v3 record encodes to at least 4 bytes, so
  // a count beyond the file size is impossible; v4 blocks are compressed, so
  // allow 4 records per on-disk byte before distrusting the count.  The
  // count is advisory (readers always run to the end sentinel), so clamping
  // keeps the stream readable while making reserve(size_hint()) safe.
  std::error_code ec;
  const uint64_t bytes = std::filesystem::file_size(path, ec);
  const uint64_t per_byte = reader_.version() >= 4 ? 4 : 1;
  if (!ec && size_hint_ > static_cast<int64_t>(bytes * per_byte)) {
    size_hint_ = static_cast<int64_t>(bytes * per_byte);
  }
}

// -- SeekableTraceSource ------------------------------------------------------

SeekableTraceSource::SeekableTraceSource(const std::string& path) : path_(path) {
  // Probe the header (and catch missing/corrupt files) with the sequential
  // reader; the index itself lives at the end of the file.
  TraceFileReader probe(path);
  if (!probe.status().ok()) {
    status_ = probe.status();
    return;
  }
  header_ = probe.header();
  version_ = probe.version();
  declared_ = probe.declared_record_count();
  if (version_ < 3) {
    return;  // readable, but not seekable
  }

  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec || file_size < kTraceIndexTailSize) {
    return;  // no room for a tail: an index-less v3 file
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    status_ = Status::Error("cannot open for reading: " + path);
    return;
  }
  uint8_t tail[kTraceIndexTailSize];
  bool tail_ok = std::fseek(f, -static_cast<long>(kTraceIndexTailSize), SEEK_END) == 0 &&
                 std::fread(tail, 1, kTraceIndexTailSize, f) == kTraceIndexTailSize;
  if (!tail_ok || std::memcmp(tail + 8, kTraceIndexTailMagic, 8) != 0) {
    std::fclose(f);
    return;  // written with write_index = false (or truncated past the tail)
  }
  uint64_t footer_offset = 0;
  for (int i = 7; i >= 0; --i) {
    footer_offset = (footer_offset << 8) | tail[i];
  }
  const uint64_t footer_end = file_size - kTraceIndexTailSize;
  // From here on the tail magic promised an index, so failures are corruption.
  if (footer_offset >= footer_end) {
    std::fclose(f);
    status_ = Status::Error("corrupt v3 index: footer offset out of range");
    return;
  }
  std::vector<uint8_t> footer(footer_end - footer_offset);
  const bool footer_ok =
      std::fseek(f, static_cast<long>(footer_offset), SEEK_SET) == 0 &&
      std::fread(footer.data(), 1, footer.size(), f) == footer.size();
  std::fclose(f);
  if (!footer_ok) {
    status_ = Status::Error("corrupt v3 index: footer read failed");
    return;
  }
  const uint8_t* p = footer.data();
  const uint8_t* end = p + footer.size();
  uint64_t entries = 0;
  if (!GetVarint(&p, end, &entries) || entries > footer_offset) {
    status_ = Status::Error("corrupt v3 index: bad entry count");
    return;
  }
  index_.reserve(entries);
  uint64_t prev_offset = 0;
  for (uint64_t i = 0; i < entries; ++i) {
    uint64_t offset_delta = 0, record_count = 0, start_us = 0;
    if (!GetVarint(&p, end, &offset_delta) || !GetVarint(&p, end, &record_count) ||
        !GetVarint(&p, end, &start_us)) {
      index_.clear();
      status_ = Status::Error("corrupt v3 index: truncated entry");
      return;
    }
    TraceBlockIndexEntry entry;
    entry.offset = prev_offset + offset_delta;
    entry.record_count = record_count;
    entry.start_time = SimTime::FromMicros(static_cast<int64_t>(start_us));
    prev_offset = entry.offset;
    if (entry.offset >= footer_offset) {
      index_.clear();
      status_ = Status::Error("corrupt v3 index: entry offset out of range");
      return;
    }
    index_.push_back(entry);
  }
}

uint64_t SeekableTraceSource::indexed_records() const {
  uint64_t total = 0;
  for (const TraceBlockIndexEntry& entry : index_) {
    total += entry.record_count;
  }
  return total;
}

SeekableTraceSource::Cursor::Cursor(const std::string& path, uint64_t offset,
                                    uint64_t block_count, int64_t record_count)
    : reader_(path), record_count_(record_count) {
  if (reader_.status().ok()) {
    reader_.SeekToBlock(offset, block_count);
  }
}

std::unique_ptr<SeekableTraceSource::Cursor> SeekableTraceSource::OpenCursor(
    size_t first_block, size_t block_count) const {
  if (first_block >= index_.size()) {
    first_block = index_.size();
    block_count = 0;
  } else if (block_count > index_.size() - first_block) {
    block_count = index_.size() - first_block;
  }
  const uint64_t offset = block_count > 0 ? index_[first_block].offset : 0;
  int64_t records = 0;
  for (size_t i = first_block; i < first_block + block_count; ++i) {
    records += static_cast<int64_t>(index_[i].record_count);
  }
  return std::make_unique<Cursor>(path_, offset, block_count, records);
}

StatusOr<Trace> CollectTrace(TraceSource& source) {
  Trace trace(source.header());
  if (source.size_hint() > 0) {
    trace.Reserve(static_cast<size_t>(source.size_hint()));
  }
  TraceRecord r;
  while (source.Next(&r)) {
    trace.Append(r);
  }
  if (!source.status().ok()) {
    return source.status();
  }
  return trace;
}

}  // namespace bsdtrace
