#include "src/trace/trace_source.h"

#include <filesystem>

namespace bsdtrace {

TraceFileSource::TraceFileSource(const std::string& path) : reader_(path) {
  if (!reader_.status().ok()) {
    return;
  }
  size_hint_ = reader_.declared_record_count();
  if (size_hint_ < 0) {
    return;  // v1 file or streamed-unknown count
  }
  // Clamp a lying v2 header: every record encodes to at least 4 bytes, so a
  // count beyond the file size is impossible.  The count is advisory (readers
  // always run to the end sentinel), so clamping keeps the stream readable
  // while making reserve(size_hint()) safe.
  std::error_code ec;
  const uint64_t bytes = std::filesystem::file_size(path, ec);
  if (!ec && size_hint_ > static_cast<int64_t>(bytes)) {
    size_hint_ = static_cast<int64_t>(bytes);
  }
}

StatusOr<Trace> CollectTrace(TraceSource& source) {
  Trace trace(source.header());
  if (source.size_hint() > 0) {
    trace.Reserve(static_cast<size_t>(source.size_hint()));
  }
  TraceRecord r;
  while (source.Next(&r)) {
    trace.Append(r);
  }
  if (!source.status().ok()) {
    return source.status();
  }
  return trace;
}

}  // namespace bsdtrace
