// Per-instance machine identity inside a merged fleet trace.
//
// A fleet generation runs several simulated machines in one sharded run and
// merges their records into a single v3 trace.  Record identity is kept
// disjoint by construction (per-instance FileId/OpenId interleaving and a
// per-instance UserId base), and the *mapping* from user-id ranges back to
// constituent machine profiles is stamped into the trace header description
// as a machine-parsable tag:
//
//     <free-form description>; fleet A5:0:1000+A5:2004:1000+E3:4008:1000
//
// Each entry is <trace_name>:<user_base>:<user_population>.  Instance users
// occupy the id range [user_base, user_base + user_population + 2): ids
// user_base and user_base+1 are the instance's network/printer daemons, and
// its interactive users are user_base+2 .. user_base+user_population+1 —
// the same "+2" convention the single-machine generator has always used.
//
// Keeping the tag inside the existing description string means the v3 file
// format is unchanged: v1/v2/v3 readers are untouched, untagged traces parse
// to an empty instance list, and analyzers that do not care about fleets see
// a slightly longer description.  The Table I activity-band validator
// (analysis/per_user_activity.h) uses the tag to check per-user records/day
// separately for every constituent machine profile.

#ifndef BSDTRACE_SRC_TRACE_FLEET_TAG_H_
#define BSDTRACE_SRC_TRACE_FLEET_TAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/types.h"

namespace bsdtrace {

struct FleetInstanceTag {
  std::string trace_name;   // constituent profile, e.g. "A5"
  UserId user_base = 0;     // first user id owned by the instance
  int user_population = 0;  // interactive users (daemon ids excluded)

  // Interactive users: [FirstUser(), LastUser()] inclusive.
  UserId FirstUser() const { return user_base + 2; }
  UserId LastUser() const {
    return user_base + 1 + static_cast<UserId>(user_population > 0 ? user_population : 0);
  }

  bool operator==(const FleetInstanceTag&) const = default;
};

// Renders the tag suffix ("; fleet A5:0:90+...") and appends it to
// `description`.  An empty instance list appends nothing.
std::string AppendFleetTag(std::string description,
                           const std::vector<FleetInstanceTag>& instances);

// Extracts the instance list from a header description.  Returns an empty
// vector when no well-formed tag is present (legacy single-machine traces).
std::vector<FleetInstanceTag> ParseFleetTag(const std::string& description);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_TRACE_FLEET_TAG_H_
