#include "src/fs/file_system.h"

#include <algorithm>
#include <cassert>

namespace bsdtrace {

const char* FsErrorName(FsError error) {
  switch (error) {
    case FsError::kNotFound:
      return "not found";
    case FsError::kExists:
      return "already exists";
    case FsError::kNotDirectory:
      return "not a directory";
    case FsError::kIsDirectory:
      return "is a directory";
    case FsError::kNoSpace:
      return "no space on device";
    case FsError::kNotEmpty:
      return "directory not empty";
    case FsError::kInvalidArgument:
      return "invalid argument";
  }
  return "?";
}

FileSystem::FileSystem(const FsOptions& options)
    : options_(options), allocator_(options.total_blocks, options.frags_per_block()) {
  assert(options.block_size % options.frag_size == 0);
  // Create the root directory.
  const InodeNum root = NewInode(FileType::kDirectory, SimTime::Origin());
  assert(root == kRootInode);
  MutableInode(root).nlink = 1;
  UpdateDirectorySize(root);
}

InodeNum FileSystem::NewInode(FileType type, SimTime now) {
  Inode inode;
  inode.ino = next_inode_++;
  inode.file_id = next_file_id_++;
  inode.type = type;
  inode.ctime = inode.mtime = inode.atime = now;
  const InodeNum ino = inode.ino;
  inodes_.emplace(ino, std::move(inode));
  return ino;
}

Inode& FileSystem::MutableInode(InodeNum ino) {
  auto it = inodes_.find(ino);
  assert(it != inodes_.end());
  return it->second;
}

void FileSystem::UpdateDirectorySize(InodeNum dir_ino) {
  Inode& dir = MutableInode(dir_ino);
  assert(dir.type == FileType::kDirectory);
  // Old-UNIX directories: 16 bytes per entry (plus "." and ".."), rounded up
  // to 512-byte directory blocks, at least one block.
  const uint64_t raw = (dir.entries.size() + 2) * 16;
  const uint64_t size = std::max<uint64_t>(512, (raw + 511) / 512 * 512);
  if (size != dir.size) {
    // Best effort: a full disk leaves the recorded size stale, which is
    // harmless for directories.
    Reallocate(dir, size);
  }
}

const Inode* FileSystem::GetInode(InodeNum ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

FsResult<InodeNum> FileSystem::LookupPath(const std::string& path) const {
  if (!IsValidAbsolutePath(path)) {
    return FsError::kInvalidArgument;
  }
  InodeNum cur = kRootInode;
  for (const std::string& comp : SplitPath(path)) {
    const Inode* inode = GetInode(cur);
    assert(inode != nullptr);
    if (inode->type != FileType::kDirectory) {
      return FsError::kNotDirectory;
    }
    auto it = inode->entries.find(comp);
    if (it == inode->entries.end()) {
      return FsError::kNotFound;
    }
    cur = it->second;
  }
  return cur;
}

FsResult<InodeNum> FileSystem::ResolveParent(const std::string& path, std::string* leaf) const {
  if (!IsValidAbsolutePath(path)) {
    return FsError::kInvalidArgument;
  }
  *leaf = Basename(path);
  if (leaf->empty()) {
    return FsError::kInvalidArgument;
  }
  auto parent = LookupPath(Dirname(path));
  if (!parent.ok()) {
    return parent.error();
  }
  const Inode* p = GetInode(parent.value());
  if (p->type != FileType::kDirectory) {
    return FsError::kNotDirectory;
  }
  return parent.value();
}

FsResult<InodeNum> FileSystem::Mkdir(const std::string& path, SimTime now) {
  std::string leaf;
  auto parent = ResolveParent(path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  Inode& p = MutableInode(parent.value());
  if (p.entries.count(leaf) != 0) {
    return FsError::kExists;
  }
  const InodeNum ino = NewInode(FileType::kDirectory, now);
  MutableInode(ino).nlink = 1;
  UpdateDirectorySize(ino);
  MutableInode(parent.value()).entries.emplace(leaf, ino);
  UpdateDirectorySize(parent.value());
  return ino;
}

FsResult<InodeNum> FileSystem::MkdirAll(const std::string& path, SimTime now) {
  if (!IsValidAbsolutePath(path)) {
    return FsError::kInvalidArgument;
  }
  InodeNum cur = kRootInode;
  for (const std::string& comp : SplitPath(path)) {
    Inode& dir = MutableInode(cur);
    if (dir.type != FileType::kDirectory) {
      return FsError::kNotDirectory;
    }
    auto it = dir.entries.find(comp);
    if (it != dir.entries.end()) {
      cur = it->second;
      continue;
    }
    const InodeNum ino = NewInode(FileType::kDirectory, now);
    MutableInode(ino).nlink = 1;
    UpdateDirectorySize(ino);
    MutableInode(cur).entries.emplace(comp, ino);
    UpdateDirectorySize(cur);
    cur = ino;
  }
  if (GetInode(cur)->type != FileType::kDirectory) {
    return FsError::kNotDirectory;
  }
  return cur;
}

FsResult<InodeNum> FileSystem::CreateFile(const std::string& path, SimTime now) {
  std::string leaf;
  auto parent = ResolveParent(path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  if (MutableInode(parent.value()).entries.count(leaf) != 0) {
    return FsError::kExists;
  }
  const InodeNum ino = NewInode(FileType::kRegular, now);
  MutableInode(ino).nlink = 1;
  MutableInode(parent.value()).entries.emplace(leaf, ino);
  UpdateDirectorySize(parent.value());
  return ino;
}

FsStatus FileSystem::Link(const std::string& existing_path, const std::string& new_path,
                          SimTime now) {
  auto target = LookupPath(existing_path);
  if (!target.ok()) {
    return target.error();
  }
  Inode& t = MutableInode(target.value());
  if (t.type == FileType::kDirectory) {
    return FsError::kIsDirectory;
  }
  std::string leaf;
  auto parent = ResolveParent(new_path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  Inode& p = MutableInode(parent.value());
  if (p.entries.count(leaf) != 0) {
    return FsError::kExists;
  }
  p.entries.emplace(leaf, target.value());
  UpdateDirectorySize(parent.value());
  t.nlink += 1;
  t.ctime = now;
  return FsStatus::Ok();
}

FsStatus FileSystem::Unlink(const std::string& path, SimTime now) {
  std::string leaf;
  auto parent = ResolveParent(path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  Inode& p = MutableInode(parent.value());
  auto it = p.entries.find(leaf);
  if (it == p.entries.end()) {
    return FsError::kNotFound;
  }
  Inode& target = MutableInode(it->second);
  if (target.type == FileType::kDirectory) {
    return FsError::kIsDirectory;
  }
  assert(target.nlink > 0);
  target.nlink -= 1;
  target.ctime = now;
  p.entries.erase(it);
  UpdateDirectorySize(parent.value());
  return FsStatus::Ok();
}

FsStatus FileSystem::Rmdir(const std::string& path) {
  std::string leaf;
  auto parent = ResolveParent(path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  Inode& p = MutableInode(parent.value());
  auto it = p.entries.find(leaf);
  if (it == p.entries.end()) {
    return FsError::kNotFound;
  }
  Inode& target = MutableInode(it->second);
  if (target.type != FileType::kDirectory) {
    return FsError::kNotDirectory;
  }
  if (!target.entries.empty()) {
    return FsError::kNotEmpty;
  }
  const InodeNum ino = it->second;
  p.entries.erase(it);
  FreeStorage(MutableInode(ino));
  inodes_.erase(ino);
  UpdateDirectorySize(parent.value());
  return FsStatus::Ok();
}

FsStatus FileSystem::Rename(const std::string& from, const std::string& to, SimTime now) {
  auto src = LookupPath(from);
  if (!src.ok()) {
    return src.error();
  }
  if (GetInode(src.value())->type == FileType::kDirectory) {
    // Directory rename is not needed by the workload models; keep the
    // substrate simple and explicit about it.
    return FsError::kInvalidArgument;
  }
  std::string to_leaf;
  auto to_parent = ResolveParent(to, &to_leaf);
  if (!to_parent.ok()) {
    return to_parent.error();
  }
  // Replace semantics: unlink any existing regular file at the destination.
  Inode& dest_dir = MutableInode(to_parent.value());
  auto existing = dest_dir.entries.find(to_leaf);
  if (existing != dest_dir.entries.end()) {
    Inode& old = MutableInode(existing->second);
    if (old.type == FileType::kDirectory) {
      return FsError::kIsDirectory;
    }
    if (existing->second == src.value()) {
      return FsStatus::Ok();  // rename onto itself
    }
    assert(old.nlink > 0);
    old.nlink -= 1;
    const InodeNum old_ino = existing->second;
    dest_dir.entries.erase(existing);
    if (MutableInode(old_ino).nlink == 0) {
      ReleaseInode(old_ino);
    }
  }
  // Remove the source entry.
  std::string from_leaf;
  auto from_parent = ResolveParent(from, &from_leaf);
  assert(from_parent.ok());
  MutableInode(from_parent.value()).entries.erase(from_leaf);
  UpdateDirectorySize(from_parent.value());
  MutableInode(to_parent.value()).entries.emplace(to_leaf, src.value());
  UpdateDirectorySize(to_parent.value());
  MutableInode(src.value()).ctime = now;
  return FsStatus::Ok();
}

bool FileSystem::Reallocate(Inode& inode, uint64_t new_size) {
  const uint32_t bs = options_.block_size;
  const uint32_t fs = options_.frag_size;

  const uint64_t want_full_blocks = new_size / bs;
  const uint32_t tail_bytes = static_cast<uint32_t>(new_size % bs);
  const uint32_t want_tail_frags = (tail_bytes + fs - 1) / fs;

  // Track what we allocate so a mid-way failure can be rolled back.
  std::vector<FragExtent> newly_allocated;
  auto rollback = [&]() {
    for (const FragExtent& e : newly_allocated) {
      allocator_.Free(e);
    }
  };

  // Grow full blocks.  If the tail must become a full block (file grew past
  // a block boundary), the old tail is released and replaced.
  std::optional<FragExtent> new_tail = inode.tail;
  std::vector<FragExtent> blocks = inode.blocks;

  if (want_full_blocks > blocks.size()) {
    // Old tail fragments are copied into a full block (FFS tail promotion).
    if (new_tail.has_value()) {
      allocator_.Free(*new_tail);
      new_tail.reset();
    }
    while (blocks.size() < want_full_blocks) {
      auto b = allocator_.AllocateBlock();
      if (!b.has_value()) {
        rollback();
        return false;
      }
      newly_allocated.push_back(*b);
      blocks.push_back(*b);
    }
  } else if (want_full_blocks < blocks.size()) {
    while (blocks.size() > want_full_blocks) {
      allocator_.Free(blocks.back());
      blocks.pop_back();
    }
  }

  // Adjust the tail.
  const uint32_t have_tail_frags = new_tail.has_value() ? new_tail->frag_count : 0;
  if (want_tail_frags != have_tail_frags) {
    if (new_tail.has_value()) {
      allocator_.Free(*new_tail);
      new_tail.reset();
    }
    if (want_tail_frags > 0) {
      auto t = allocator_.AllocateFragments(want_tail_frags);
      if (!t.has_value()) {
        // Fall back to a full block if contiguous fragments are unavailable.
        t = allocator_.AllocateBlock();
      }
      if (!t.has_value()) {
        rollback();
        return false;
      }
      newly_allocated.push_back(*t);
      new_tail = *t;
    }
  }

  inode.blocks = std::move(blocks);
  inode.tail = new_tail;
  inode.size = new_size;
  return true;
}

FsStatus FileSystem::SetFileSize(InodeNum ino, uint64_t new_size, SimTime now) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return FsError::kNotFound;
  }
  Inode& inode = it->second;
  if (inode.type != FileType::kRegular) {
    return FsError::kIsDirectory;
  }
  if (!Reallocate(inode, new_size)) {
    return FsError::kNoSpace;
  }
  inode.mtime = now;
  return FsStatus::Ok();
}

void FileSystem::TouchAccess(InodeNum ino, SimTime now) {
  auto it = inodes_.find(ino);
  if (it != inodes_.end()) {
    it->second.atime = now;
  }
}

void FileSystem::FreeStorage(Inode& inode) {
  for (const FragExtent& e : inode.blocks) {
    allocator_.Free(e);
  }
  inode.blocks.clear();
  if (inode.tail.has_value()) {
    allocator_.Free(*inode.tail);
    inode.tail.reset();
  }
  inode.size = 0;
}

void FileSystem::ReleaseInode(InodeNum ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return;
  }
  if (it->second.nlink > 0) {
    return;  // still referenced by the namespace
  }
  FreeStorage(it->second);
  inodes_.erase(it);
}

bool FileSystem::IsOrphan(InodeNum ino) const {
  const Inode* inode = GetInode(ino);
  return inode != nullptr && inode->nlink == 0;
}

FsResult<std::vector<std::string>> FileSystem::ListDirectory(const std::string& path) const {
  auto ino = LookupPath(path);
  if (!ino.ok()) {
    return ino.error();
  }
  const Inode* dir = GetInode(ino.value());
  if (dir->type != FileType::kDirectory) {
    return FsError::kNotDirectory;
  }
  std::vector<std::string> names;
  names.reserve(dir->entries.size());
  for (const auto& [name, child] : dir->entries) {
    names.push_back(name);
  }
  return names;
}

void FileSystem::ForEachInode(const std::function<void(const Inode&)>& fn) const {
  for (const auto& [ino, inode] : inodes_) {
    fn(inode);
  }
}

FsStatistics FileSystem::Statistics() const {
  FsStatistics stats;
  for (const auto& [ino, inode] : inodes_) {
    if (inode.type == FileType::kDirectory) {
      ++stats.directories;
    } else {
      ++stats.files;
      stats.live_bytes += inode.size;
    }
  }
  stats.allocated_bytes = allocator_.allocated_frags() * options_.frag_size;
  stats.free_bytes = allocator_.free_frags() * options_.frag_size;
  stats.internal_fragmentation =
      stats.allocated_bytes > 0
          ? 1.0 - static_cast<double>(stats.live_bytes) /
                      static_cast<double>(stats.allocated_bytes)
          : 0.0;
  return stats;
}

}  // namespace bsdtrace
