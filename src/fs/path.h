// Path manipulation for the simulated file system (absolute, '/'-separated).

#ifndef BSDTRACE_SRC_FS_PATH_H_
#define BSDTRACE_SRC_FS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace bsdtrace {

// Splits an absolute path into components: "/a/b/c" -> {"a","b","c"}.
// Empty components (from "//") are dropped; "." components are dropped;
// ".." is resolved lexically.  "/" yields {}.
std::vector<std::string> SplitPath(std::string_view path);

// True if the path is absolute and contains no empty component after
// normalization pitfalls ("", relative paths) — i.e. usable with SplitPath.
bool IsValidAbsolutePath(std::string_view path);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string Dirname(std::string_view path);

// "/a/b/c" -> "c"; "/" -> "".
std::string Basename(std::string_view path);

// Joins a directory and a name: ("/a", "b") -> "/a/b".
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_FS_PATH_H_
