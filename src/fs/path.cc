#include "src/fs/path.h"

namespace bsdtrace {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t j = i;
    while (j < path.size() && path[j] != '/') {
      ++j;
    }
    if (j > i) {
      std::string_view comp = path.substr(i, j - i);
      if (comp == ".") {
        // skip
      } else if (comp == "..") {
        if (!parts.empty()) {
          parts.pop_back();
        }
      } else {
        parts.emplace_back(comp);
      }
    }
    i = j;
  }
  return parts;
}

bool IsValidAbsolutePath(std::string_view path) {
  return !path.empty() && path.front() == '/';
}

std::string Dirname(std::string_view path) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return "/";
  }
  parts.pop_back();
  std::string out = "/";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string Basename(std::string_view path) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return "";
  }
  return parts.back();
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') {
    out += '/';
  }
  out += name;
  return out;
}

}  // namespace bsdtrace
