#include "src/fs/fsck.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bsdtrace {

std::string FsckReport::Summary() const {
  std::string out;
  for (const std::string& e : errors) {
    out += "fsck: " + e + "\n";
  }
  out += "fsck: " + std::to_string(inodes_checked) + " inodes, " +
         std::to_string(reachable_inodes) + " reachable, " + std::to_string(orphan_inodes) +
         " orphaned" + (ok() ? ", clean\n" : ", ERRORS FOUND\n");
  return out;
}

FsckReport CheckFileSystem(const FileSystem& fs) {
  FsckReport report;
  auto error = [&report](const std::string& msg) {
    if (report.errors.size() < 50) {
      report.errors.push_back(msg);
    }
  };

  // Pass 1: inventory inodes, count directory references, and verify the
  // extents of each inode against the disk geometry.
  std::unordered_map<InodeNum, uint32_t> ref_counts;
  std::unordered_map<InodeNum, const Inode*> inodes;
  const uint64_t total_frags = fs.allocator().total_frags();
  const uint32_t frag_size = fs.options().frag_size;
  std::unordered_set<uint64_t> claimed_frags;
  uint64_t claimed_total = 0;

  fs.ForEachInode([&](const Inode& inode) {
    report.inodes_checked += 1;
    inodes[inode.ino] = &inode;

    std::vector<FragExtent> extents = inode.blocks;
    if (inode.tail.has_value()) {
      extents.push_back(*inode.tail);
    }
    uint64_t allocated = 0;
    for (const FragExtent& e : extents) {
      if (e.start_frag + e.frag_count > total_frags) {
        error("inode " + std::to_string(inode.ino) + ": extent beyond end of disk");
        continue;
      }
      allocated += static_cast<uint64_t>(e.frag_count) * frag_size;
      for (uint32_t k = 0; k < e.frag_count; ++k) {
        if (!claimed_frags.insert(e.start_frag + k).second) {
          error("fragment " + std::to_string(e.start_frag + k) +
                " claimed by multiple inodes (dup at inode " + std::to_string(inode.ino) + ")");
        } else {
          ++claimed_total;
        }
      }
    }
    if (inode.size > allocated) {
      error("inode " + std::to_string(inode.ino) + ": size " + std::to_string(inode.size) +
            " exceeds allocated " + std::to_string(allocated));
    }
    if (inode.type == FileType::kDirectory) {
      for (const auto& [name, child] : inode.entries) {
        ref_counts[child] += 1;
        if (name.empty() || name.find('/') != std::string::npos) {
          error("directory " + std::to_string(inode.ino) + ": invalid entry name '" + name +
                "'");
        }
      }
    }
  });

  // Pass 2: allocator agreement.
  const uint64_t allocator_used = fs.allocator().allocated_frags();
  if (allocator_used != claimed_total) {
    error("allocator reports " + std::to_string(allocator_used) + " fragments in use but " +
          std::to_string(claimed_total) + " are claimed by inodes (leak or corruption)");
  }

  // Pass 3: reachability from the root, cycle detection.
  std::unordered_set<InodeNum> reachable;
  std::vector<InodeNum> stack;
  if (inodes.count(kRootInode) == 0) {
    error("root inode missing");
  } else {
    stack.push_back(kRootInode);
    reachable.insert(kRootInode);
    while (!stack.empty()) {
      const InodeNum ino = stack.back();
      stack.pop_back();
      const Inode* inode = inodes[ino];
      if (inode->type != FileType::kDirectory) {
        continue;
      }
      for (const auto& [name, child] : inode->entries) {
        auto it = inodes.find(child);
        if (it == inodes.end()) {
          error("directory " + std::to_string(ino) + ": entry '" + name +
                "' points at missing inode " + std::to_string(child));
          continue;
        }
        if (it->second->type == FileType::kDirectory && !reachable.insert(child).second) {
          error("directory " + std::to_string(child) +
                " reachable by multiple paths (cycle or illegal hard link)");
          continue;
        }
        if (it->second->type != FileType::kDirectory) {
          reachable.insert(child);
        }
        stack.push_back(child);
      }
    }
  }
  report.reachable_inodes = reachable.size();

  // Pass 4: link counts and orphans.
  for (const auto& [ino, inode] : inodes) {
    uint32_t expected = ref_counts.count(ino) != 0 ? ref_counts[ino] : 0;
    if (ino == kRootInode) {
      expected += 1;  // the root exists without a parent entry
    }
    if (inode->nlink != expected) {
      error("inode " + std::to_string(ino) + ": nlink " + std::to_string(inode->nlink) +
            " but " + std::to_string(expected) + " references");
    }
    if (inode->nlink == 0) {
      report.orphan_inodes += 1;
      if (reachable.count(ino) != 0) {
        error("inode " + std::to_string(ino) + " has nlink 0 but is reachable");
      }
    } else if (reachable.count(ino) == 0) {
      error("inode " + std::to_string(ino) + " linked but unreachable from root");
    }
  }

  return report;
}

}  // namespace bsdtrace
