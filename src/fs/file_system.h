// An in-memory 4.2 BSD-style file system substrate.
//
// This is the structure underneath the traced kernel: hierarchical
// directories, inodes with link counts, and block/fragment disk allocation.
// File *contents* are not stored — none of the paper's analyses depend on
// data bytes, only on sizes, byte ranges, and identities — but every size
// change performs a real allocation against a fixed-size disk, so space
// accounting and ENOSPC behaviour are faithful.
//
// Deleted-but-open files follow UNIX semantics: Unlink removes the directory
// entry immediately, while the inode (and its disk space) persists until the
// caller — the kernel layer, which tracks open descriptors — releases it.

#ifndef BSDTRACE_SRC_FS_FILE_SYSTEM_H_
#define BSDTRACE_SRC_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/fs/block_allocator.h"
#include "src/fs/path.h"
#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace bsdtrace {

enum class FsError : uint8_t {
  kNotFound,
  kExists,
  kNotDirectory,
  kIsDirectory,
  kNoSpace,
  kNotEmpty,
  kInvalidArgument,
};

const char* FsErrorName(FsError error);

// Expected-style result for file-system operations.
template <typename T>
class FsResult {
 public:
  FsResult(T value) : v_(std::move(value)) {}      // NOLINT(runtime/explicit)
  FsResult(FsError error) : v_(error) {}           // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const {
    return std::get<T>(v_);
  }
  FsError error() const { return std::get<FsError>(v_); }

 private:
  std::variant<T, FsError> v_;
};

// Result of a value-less operation.
class FsStatus {
 public:
  static FsStatus Ok() { return FsStatus(); }
  FsStatus(FsError error) : error_(error) {}  // NOLINT(runtime/explicit)

  bool ok() const { return !error_.has_value(); }
  FsError error() const { return *error_; }

 private:
  FsStatus() = default;
  std::optional<FsError> error_;
};

using InodeNum = uint64_t;
inline constexpr InodeNum kRootInode = 1;

enum class FileType : uint8_t { kRegular, kDirectory };

struct Inode {
  InodeNum ino = 0;
  // Trace file identity: unique forever, never reused (unlike real inode
  // numbers), so trace analyses can track lifetimes across creation cycles.
  FileId file_id = kInvalidFileId;
  FileType type = FileType::kRegular;
  uint64_t size = 0;
  uint32_t nlink = 0;
  SimTime ctime, mtime, atime;

  // Disk layout: full blocks plus an optional fragment tail (FFS-style).
  std::vector<FragExtent> blocks;
  std::optional<FragExtent> tail;

  // Directory entries (directories only); ordered for determinism.
  std::map<std::string, InodeNum> entries;
};

struct FsOptions {
  uint32_t block_size = 4096;    // bytes per full block
  uint32_t frag_size = 1024;     // bytes per fragment
  uint64_t total_blocks = 262144;  // 1 GB at 4 KB blocks

  uint32_t frags_per_block() const { return block_size / frag_size; }
};

struct FsStatistics {
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t live_bytes = 0;       // sum of file sizes
  uint64_t allocated_bytes = 0;  // fragments in use * frag size
  uint64_t free_bytes = 0;
  double internal_fragmentation = 0.0;  // allocated - live, as a fraction
};

class FileSystem {
 public:
  explicit FileSystem(const FsOptions& options = FsOptions());

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // -- Namespace operations ------------------------------------------------

  // Creates a directory; the parent must already exist.
  FsResult<InodeNum> Mkdir(const std::string& path, SimTime now = SimTime::Origin());
  // Creates all missing directories along the path.
  FsResult<InodeNum> MkdirAll(const std::string& path, SimTime now = SimTime::Origin());
  // Creates an empty regular file; fails with kExists if the name is taken.
  FsResult<InodeNum> CreateFile(const std::string& path, SimTime now = SimTime::Origin());
  // Resolves a path to an inode.
  FsResult<InodeNum> LookupPath(const std::string& path) const;
  // Adds a hard link `new_path` to the file at `existing_path`.
  FsStatus Link(const std::string& existing_path, const std::string& new_path, SimTime now);
  // Removes a directory entry.  If the link count drops to zero the inode is
  // orphaned; storage is reclaimed when ReleaseInode is called (the kernel
  // calls it once no descriptor references the file).
  FsStatus Unlink(const std::string& path, SimTime now = SimTime::Origin());
  // Removes an empty directory.
  FsStatus Rmdir(const std::string& path);
  // Classic rename: atomically repoints the name, replacing any existing
  // regular file at `to` (which is unlinked).
  FsStatus Rename(const std::string& from, const std::string& to, SimTime now);

  // -- Inode operations ----------------------------------------------------

  const Inode* GetInode(InodeNum ino) const;
  // Changes a regular file's size, allocating or freeing disk space.
  // Returns kNoSpace (leaving the size unchanged) if the disk is full.
  FsStatus SetFileSize(InodeNum ino, uint64_t new_size, SimTime now);
  FsStatus Truncate(InodeNum ino, uint64_t new_size, SimTime now) {
    return SetFileSize(ino, new_size, now);
  }
  // Marks an access time update.
  void TouchAccess(InodeNum ino, SimTime now);

  // Frees an orphaned inode's storage; no-op if the inode still has links.
  // Called by the kernel when the last open descriptor goes away.
  void ReleaseInode(InodeNum ino);

  // Whether the inode exists and has no directory entry pointing at it.
  bool IsOrphan(InodeNum ino) const;

  // -- Introspection ---------------------------------------------------------

  // Lists entry names of a directory.
  FsResult<std::vector<std::string>> ListDirectory(const std::string& path) const;
  FsStatistics Statistics() const;
  const FsOptions& options() const { return options_; }
  // Highest FileId assigned so far (ids are sequential and never reused).
  // Lets image builders record watermarks separating deterministic shared
  // state from later per-shard allocations.
  FileId LastAssignedFileId() const { return next_file_id_ - 1; }
  // Visits every live inode (consistency checking, reporting).
  void ForEachInode(const std::function<void(const Inode&)>& fn) const;
  const BlockAllocator& allocator() const { return allocator_; }

 private:
  FsResult<InodeNum> ResolveParent(const std::string& path, std::string* leaf) const;
  Inode& MutableInode(InodeNum ino);
  InodeNum NewInode(FileType type, SimTime now);
  // Releases all disk extents of an inode.
  void FreeStorage(Inode& inode);
  // Adjusts the extent list to cover `new_size` bytes; returns false on
  // ENOSPC with the inode unchanged.
  bool Reallocate(Inode& inode, uint64_t new_size);

  // Recomputes a directory's size from its entry count (old-UNIX style:
  // 512-byte directory blocks; directories are readable as files).
  void UpdateDirectorySize(InodeNum dir_ino);

  FsOptions options_;
  BlockAllocator allocator_;
  std::unordered_map<InodeNum, Inode> inodes_;
  InodeNum next_inode_ = kRootInode;
  FileId next_file_id_ = 1;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_FS_FILE_SYSTEM_H_
