// Block/fragment disk allocation in the style of the 4.2 BSD Fast File
// System (McKusick et al. 1984).
//
// The FFS divides the disk into blocks (4096 bytes in most 4.2 BSD systems)
// that can be split into fragments (typically 1024 bytes).  A file occupies
// whole blocks except possibly its tail, which may occupy 1..(frags/block - 1)
// contiguous fragments of a partially-used block — this is the "multiple
// block sizes on disk to avoid wasted space for small files" scheme the paper
// credits (§6.3) for making large cache blocks practical.
//
// The analyses never look at physical addresses, but the substrate allocates
// real fragment ranges with a first-fit rotor so that space accounting,
// ENOSPC behaviour, and fragmentation statistics are faithful.

#ifndef BSDTRACE_SRC_FS_BLOCK_ALLOCATOR_H_
#define BSDTRACE_SRC_FS_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace bsdtrace {

// A run of contiguous fragments on disk.
struct FragExtent {
  uint64_t start_frag = 0;
  uint32_t frag_count = 0;

  bool operator==(const FragExtent&) const = default;
};

class BlockAllocator {
 public:
  // `total_blocks` full blocks of `frags_per_block` fragments each.
  BlockAllocator(uint64_t total_blocks, uint32_t frags_per_block);

  // Allocates one full, block-aligned block.  Returns nullopt when no free
  // block exists (even if scattered fragments remain — matching FFS, which
  // never assembles a block from fragments of different blocks).
  std::optional<FragExtent> AllocateBlock();

  // Allocates `frag_count` contiguous fragments that do not cross a block
  // boundary (a tail allocation).  frag_count must be in
  // [1, frags_per_block]: a tail of `new_size % block_size` bytes rounds up
  // to a full block of fragments when it lands in the last fragment, so the
  // upper bound is inclusive (the scan then finds a fully free block).
  std::optional<FragExtent> AllocateFragments(uint32_t frag_count);

  // Frees a previously-allocated extent.  Double frees are detected by
  // assertion in debug builds.
  void Free(const FragExtent& extent);

  uint64_t total_frags() const { return free_map_.size(); }
  uint64_t free_frags() const { return free_frags_; }
  uint64_t allocated_frags() const { return total_frags() - free_frags_; }
  uint32_t frags_per_block() const { return frags_per_block_; }

  // Fraction of free fragments that cannot serve a full-block allocation
  // (external fragmentation of block-sized requests).
  double BlockFragmentation() const;

  // True if every fragment is free (leak check for tests).
  bool AllFree() const { return free_frags_ == total_frags(); }

 private:
  // Whether the whole block containing `frag` is free.
  bool BlockIsFree(uint64_t block_index) const;

  std::vector<bool> free_map_;  // one bit per fragment; true = free
  uint32_t frags_per_block_;
  uint64_t free_frags_;
  uint64_t block_rotor_ = 0;  // next block index to consider
  uint64_t frag_rotor_ = 0;   // next block index to consider for tail allocs
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_FS_BLOCK_ALLOCATOR_H_
