// fsck-style consistency checking for the simulated file system.
//
// Long simulations exercise millions of namespace and allocation operations;
// this checker verifies the global invariants after (or during) a run, in
// the spirit of fsck(8):
//
//   * every inode reachable from the root, or orphaned with nlink == 0;
//   * nlink counts equal the number of directory entries referencing each
//     inode (plus 1 for a directory's own existence);
//   * no directory entry points at a missing inode; the tree is acyclic;
//   * every inode's extents are within the disk and mutually disjoint;
//   * the allocator's free count matches the space not covered by extents;
//   * recorded sizes fit within the allocated extents.

#ifndef BSDTRACE_SRC_FS_FSCK_H_
#define BSDTRACE_SRC_FS_FSCK_H_

#include <string>
#include <vector>

#include "src/fs/file_system.h"

namespace bsdtrace {

struct FsckReport {
  std::vector<std::string> errors;
  uint64_t inodes_checked = 0;
  uint64_t reachable_inodes = 0;
  uint64_t orphan_inodes = 0;  // nlink == 0, awaiting ReleaseInode

  bool ok() const { return errors.empty(); }
  std::string Summary() const;
};

// Full consistency check.  Read-only; O(inodes + allocated fragments).
FsckReport CheckFileSystem(const FileSystem& fs);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_FS_FSCK_H_
