#include "src/fs/block_allocator.h"

#include <cassert>

namespace bsdtrace {

BlockAllocator::BlockAllocator(uint64_t total_blocks, uint32_t frags_per_block)
    : free_map_(total_blocks * frags_per_block, true),
      frags_per_block_(frags_per_block),
      free_frags_(total_blocks * frags_per_block) {
  assert(frags_per_block >= 1);
  assert(total_blocks >= 1);
}

bool BlockAllocator::BlockIsFree(uint64_t block_index) const {
  const uint64_t base = block_index * frags_per_block_;
  for (uint32_t i = 0; i < frags_per_block_; ++i) {
    if (!free_map_[base + i]) {
      return false;
    }
  }
  return true;
}

std::optional<FragExtent> BlockAllocator::AllocateBlock() {
  const uint64_t blocks = free_map_.size() / frags_per_block_;
  if (free_frags_ < frags_per_block_) {
    return std::nullopt;
  }
  for (uint64_t step = 0; step < blocks; ++step) {
    const uint64_t b = (block_rotor_ + step) % blocks;
    if (BlockIsFree(b)) {
      const uint64_t base = b * frags_per_block_;
      for (uint32_t i = 0; i < frags_per_block_; ++i) {
        free_map_[base + i] = false;
      }
      free_frags_ -= frags_per_block_;
      block_rotor_ = (b + 1) % blocks;
      return FragExtent{.start_frag = base, .frag_count = frags_per_block_};
    }
  }
  return std::nullopt;
}

std::optional<FragExtent> BlockAllocator::AllocateFragments(uint32_t frag_count) {
  assert(frag_count >= 1 && frag_count <= frags_per_block_);
  if (free_frags_ < frag_count) {
    return std::nullopt;
  }
  const uint64_t blocks = free_map_.size() / frags_per_block_;
  // Two passes: prefer a partially-used block (leave full blocks intact for
  // block allocations, as FFS does), then fall back to any block.  The first
  // pass is bounded: scanning the whole disk for a partial block would cost
  // O(disk) per small-file allocation on a mostly-empty disk.
  constexpr uint64_t kPartialScanWindow = 512;
  for (int pass = 0; pass < 2; ++pass) {
    const uint64_t steps = pass == 0 ? std::min(blocks, kPartialScanWindow) : blocks;
    for (uint64_t step = 0; step < steps; ++step) {
      const uint64_t b = (frag_rotor_ + step) % blocks;
      if (pass == 0 && BlockIsFree(b)) {
        continue;
      }
      const uint64_t base = b * frags_per_block_;
      uint32_t run = 0;
      for (uint32_t i = 0; i < frags_per_block_; ++i) {
        if (free_map_[base + i]) {
          ++run;
          if (run == frag_count) {
            const uint64_t start = base + i + 1 - frag_count;
            for (uint32_t k = 0; k < frag_count; ++k) {
              free_map_[start + k] = false;
            }
            free_frags_ -= frag_count;
            frag_rotor_ = b;
            return FragExtent{.start_frag = start, .frag_count = frag_count};
          }
        } else {
          run = 0;
        }
      }
    }
  }
  return std::nullopt;
}

void BlockAllocator::Free(const FragExtent& extent) {
  assert(extent.start_frag + extent.frag_count <= free_map_.size());
  for (uint32_t i = 0; i < extent.frag_count; ++i) {
    assert(!free_map_[extent.start_frag + i] && "double free of fragment");
    free_map_[extent.start_frag + i] = true;
  }
  free_frags_ += extent.frag_count;
}

double BlockAllocator::BlockFragmentation() const {
  if (free_frags_ == 0) {
    return 0.0;
  }
  const uint64_t blocks = free_map_.size() / frags_per_block_;
  uint64_t frags_in_free_blocks = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    if (BlockIsFree(b)) {
      frags_in_free_blocks += frags_per_block_;
    }
  }
  return 1.0 - static_cast<double>(frags_in_free_blocks) / static_cast<double>(free_frags_);
}

}  // namespace bsdtrace
