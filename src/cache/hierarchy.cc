#include "src/cache/hierarchy.h"

#include <algorithm>
#include <cassert>

#include "src/util/stats.h"

namespace bsdtrace {

std::string HierarchyConfig::ToString() const {
  if (!has_clients()) {
    return "no client / " + server.ToString() + " server";
  }
  return client.ToString() + " client / " + server.ToString() + " server";
}

HierarchySimulator::HierarchySimulator(const HierarchyConfig& config, size_t client_count)
    : config_(config), server_(config.server) {
  assert(!config.client.simulate_metadata && !config.server.simulate_metadata);
  assert(config.client.block_size == config.server.block_size);
  assert(config.client.simulate_execve_pagein == config.server.simulate_execve_pagein);
  if (config.has_clients()) {
    const size_t n = std::max<size_t>(1, client_count);
    for (size_t i = 0; i < n; ++i) {
      clients_.emplace_back(config.client, ServerLink{&server_});
    }
  }
}

void HierarchySimulator::ReserveFiles(size_t file_count) {
  if (transfer_extent_feed_ == nullptr) {
    known_extent_.Reserve(file_count);
  }
}

void HierarchySimulator::Access(uint16_t instance, SimTime now, FileId file,
                                uint64_t offset, uint64_t length, bool is_write) {
  if (length == 0) {
    return;
  }
  // The extent is a property of the FILE, not of any cache level: one global
  // table shared by every instance — the same trajectory the precomputed
  // feeds carry (fleet traces keep file ids instance-disjoint anyway).
  uint64_t* ext = known_extent_.Find(file);
  AccessBlocks(instance, now, file, offset, length, is_write, ext != nullptr ? *ext : 0);
  if (ext != nullptr) {
    *ext = std::max(*ext, offset + length);
  } else {
    known_extent_[file] = offset + length;
  }
}

void HierarchySimulator::InvalidateFrom(SimTime now, FileId file, uint64_t first_byte) {
  if (clients_.empty()) {
    server_.Invalidate(now, file, first_byte);
  } else {
    server_.AdvanceClock(now);
    // Fan-out: every client drops the file's blocks (dirty ones silently —
    // their write-backs never reach the server), then the server drops its
    // copy.  Invalidate also advances each client's clock, so pending flush
    // scans fire before the removal.
    for (ClientLevel& client : clients_) {
      client.Invalidate(now, file, first_byte);
    }
    server_.Invalidate(now, file, first_byte);
  }
  if (transfer_extent_feed_ != nullptr) {
    return;  // extent trajectory is precomputed in the feeds
  }
  if (first_byte == 0) {
    known_extent_.Erase(file);
  } else {
    if (uint64_t* extent = known_extent_.Find(file)) {
      *extent = std::min(*extent, first_byte);
    }
  }
}

void HierarchySimulator::OnRecordFrom(uint16_t instance, const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
    case EventType::kUnlink:
      InvalidateFrom(r.time, r.file_id, 0);
      break;
    case EventType::kTruncate:
      InvalidateFrom(r.time, r.file_id, r.size);
      break;
    case EventType::kExecve:
      // Mirrors CacheSimulator: the feed holds one slot per nonempty execve
      // regardless of whether page-in is simulated.
      if (execve_extent_feed_ != nullptr) {
        if (r.size > 0) {
          const uint64_t extent = execve_extent_feed_[execve_feed_pos_++];
          if (config_.simulate_execve_pagein()) {
            AccessBlocks(instance, r.time, r.file_id, 0, r.size, /*is_write=*/false, extent);
          }
        }
      } else if (config_.simulate_execve_pagein() && r.size > 0) {
        Access(instance, r.time, r.file_id, 0, r.size, /*is_write=*/false);
      }
      break;
    default:
      // Clock-only.  The owning client follows its own event stream; the
      // server follows the global stream.
      server_.AdvanceClock(r.time);
      if (!clients_.empty()) {
        ClientFor(instance).AdvanceClock(r.time);
      }
      break;
  }
}

void HierarchySimulator::Finish() {
  // Clients first: their right-censored residency uses their own clocks.
  // Dirty blocks are NOT flushed down — at every level the trace simply
  // ended (the single-level convention, applied per level).
  for (ClientLevel& client : clients_) {
    client.Finish();
  }
  server_.Finish();
}

HierarchyMetrics HierarchySimulator::Collect() const {
  HierarchyMetrics out;
  out.client_count = clients_.size();
  out.clients.reserve(clients_.size());
  for (const ClientLevel& client : clients_) {
    const CacheMetrics& m = client.metrics();
    out.clients.push_back(m);
    out.client_total.logical_accesses += m.logical_accesses;
    out.client_total.read_accesses += m.read_accesses;
    out.client_total.write_accesses += m.write_accesses;
    out.client_total.metadata_accesses += m.metadata_accesses;
    out.client_total.disk_reads += m.disk_reads;
    out.client_total.disk_writes += m.disk_writes;
    out.client_total.dirty_discarded += m.dirty_discarded;
    out.client_total.evictions += m.evictions;
    out.client_total.residency_seconds.Merge(m.residency_seconds);
    out.client_total.residency_over_20min += m.residency_over_20min;
    out.client_total.residency_samples += m.residency_samples;
  }
  out.server = server_.metrics();
  return out;
}

HierarchyMetrics SimulateHierarchy(const ReplayLog& log, const HierarchyConfig& config) {
  HierarchySimulator sim(config, log.instance_count());
  sim.SetExtentFeeds(config.simulate_execve_pagein()
                         ? log.transfer_extents_pagein().data()
                         : log.transfer_extents().data(),
                     log.execve_extents().data());
  sim.ReserveFiles(log.distinct_files());
  log.ReplayDataEventsWithInstancesInto(sim);
  sim.Finish();
  return sim.Collect();
}

}  // namespace bsdtrace
