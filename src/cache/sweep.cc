#include "src/cache/sweep.h"

#include <atomic>
#include <thread>

namespace bsdtrace {

CacheMetrics SimulateCache(const Trace& trace, const CacheConfig& config,
                           BillingPolicy billing) {
  CacheSimulator sim(config);
  Reconstruct(trace, &sim, billing);
  sim.Finish();
  return sim.metrics();
}

CacheMetrics SimulateCache(const ReplayLog& log, const CacheConfig& config) {
  CacheSimulator sim(config);
  // The log carries the precomputed known-extent trajectory; pick the
  // transfer feed matching whether execve page-ins extend extents.
  sim.SetExtentFeeds(config.simulate_execve_pagein
                         ? log.transfer_extents_pagein().data()
                         : log.transfer_extents().data(),
                     log.execve_extents().data());
  sim.ReserveFiles(log.distinct_files());
  // Both paths devirtualize (CacheSimulator is final).  Metadata simulation
  // reads open/close records; everything else only clock-advances on them,
  // so the compact stream skips them (bit-identical — see replay_log.h).
  if (config.simulate_metadata) {
    log.ReplayInto(sim);
  } else {
    log.ReplayDataEventsInto(sim);
  }
  sim.Finish();
  return sim.metrics();
}

std::vector<SweepPoint> RunCacheSweep(const ReplayLog& log,
                                      const std::vector<CacheConfig>& configs,
                                      unsigned threads) {
  std::vector<SweepPoint> points(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    points[i].config = configs[i];
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(configs.size()));

  // Work-stealing counter: workers only need atomicity of the claim itself,
  // not ordering against each other's writes (each point is written by
  // exactly one worker, and thread join supplies the final synchronization).
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) {
        return;
      }
      points[i].metrics = SimulateCache(log, points[i].config);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return points;
}

std::vector<SweepPoint> RunCacheSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                                      unsigned threads) {
  if (configs.empty()) {
    return {};
  }
  return RunCacheSweep(ReplayLog::Build(trace), configs, threads);
}

namespace {

constexpr uint64_t kKb = 1024;
constexpr uint64_t kMb = 1024 * 1024;

}  // namespace

std::vector<CacheConfig> Fig5Configs() {
  // 390 KB is the paper's "UNIX" point (about 10% of a 4 MB machine).
  const uint64_t sizes[] = {390 * kKb, 1 * kMb, 2 * kMb, 4 * kMb, 8 * kMb, 16 * kMb};
  std::vector<CacheConfig> configs;
  for (uint64_t size : sizes) {
    for (int p = 0; p < 4; ++p) {
      CacheConfig c;
      c.size_bytes = size;
      c.block_size = 4096;
      switch (p) {
        case 0:
          c.policy = WritePolicy::kWriteThrough;
          break;
        case 1:
          c.policy = WritePolicy::kFlushBack;
          c.flush_interval = Duration::Seconds(30);
          break;
        case 2:
          c.policy = WritePolicy::kFlushBack;
          c.flush_interval = Duration::Minutes(5);
          break;
        default:
          c.policy = WritePolicy::kDelayedWrite;
          break;
      }
      configs.push_back(c);
    }
  }
  return configs;
}

std::vector<CacheConfig> Fig6Configs() {
  const uint32_t block_sizes[] = {1 * kKb, 2 * kKb, 4 * kKb, 8 * kKb, 16 * kKb, 32 * kKb};
  const uint64_t cache_sizes[] = {400 * kKb, 2 * kMb, 4 * kMb, 8 * kMb};
  std::vector<CacheConfig> configs;
  for (uint64_t cache : cache_sizes) {
    for (uint32_t block : block_sizes) {
      CacheConfig c;
      c.size_bytes = cache;
      c.block_size = block;
      c.policy = WritePolicy::kDelayedWrite;
      configs.push_back(c);
    }
  }
  return configs;
}

std::vector<CacheConfig> Fig7Configs() {
  const uint64_t sizes[] = {390 * kKb, 1 * kMb, 2 * kMb, 4 * kMb, 8 * kMb, 16 * kMb};
  std::vector<CacheConfig> configs;
  for (bool pagein : {false, true}) {
    for (uint64_t size : sizes) {
      CacheConfig c;
      c.size_bytes = size;
      c.block_size = 4096;
      c.policy = WritePolicy::kDelayedWrite;
      c.simulate_execve_pagein = pagein;
      configs.push_back(c);
    }
  }
  return configs;
}

}  // namespace bsdtrace
