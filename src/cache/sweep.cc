#include "src/cache/sweep.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <tuple>

namespace bsdtrace {

CacheMetrics SimulateCache(const Trace& trace, const CacheConfig& config,
                           BillingPolicy billing) {
  CacheSimulator sim(config);
  Reconstruct(trace, &sim, billing);
  sim.Finish();
  return sim.metrics();
}

CacheMetrics SimulateCache(const ReplayLog& log, const CacheConfig& config) {
  CacheSimulator sim(config);
  // The log carries the precomputed known-extent trajectory; pick the
  // transfer feed matching whether execve page-ins extend extents.
  sim.SetExtentFeeds(config.simulate_execve_pagein
                         ? log.transfer_extents_pagein().data()
                         : log.transfer_extents().data(),
                     log.execve_extents().data());
  sim.ReserveFiles(log.distinct_files());
  // Both paths devirtualize (CacheSimulator is final).  Metadata simulation
  // reads open/close records; everything else only clock-advances on them,
  // so the compact stream skips them (bit-identical — see replay_log.h).
  if (config.simulate_metadata) {
    log.ReplayInto(sim);
  } else {
    log.ReplayDataEventsInto(sim);
  }
  sim.Finish();
  return sim.metrics();
}

std::vector<SweepPoint> RunCacheSweep(const ReplayLog& log,
                                      const std::vector<CacheConfig>& configs,
                                      unsigned threads) {
  std::vector<SweepPoint> points(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    points[i].config = configs[i];
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(configs.size()));

  // Work-stealing counter: workers only need atomicity of the claim itself,
  // not ordering against each other's writes (each point is written by
  // exactly one worker, and thread join supplies the final synchronization).
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) {
        return;
      }
      points[i].metrics = SimulateCache(log, points[i].config);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return points;
}

std::vector<SweepPoint> RunCacheSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                                      unsigned threads) {
  if (configs.empty()) {
    return {};
  }
  return RunCacheSweep(ReplayLog::Build(trace), configs, threads);
}

namespace {

constexpr uint64_t kKb = 1024;
constexpr uint64_t kMb = 1024 * 1024;

}  // namespace

std::vector<CacheConfig> Fig5Configs() {
  // 390 KB is the paper's "UNIX" point (about 10% of a 4 MB machine).
  const uint64_t sizes[] = {390 * kKb, 1 * kMb, 2 * kMb, 4 * kMb, 8 * kMb, 16 * kMb};
  std::vector<CacheConfig> configs;
  for (uint64_t size : sizes) {
    for (int p = 0; p < 4; ++p) {
      CacheConfig c;
      c.size_bytes = size;
      c.block_size = 4096;
      switch (p) {
        case 0:
          c.policy = WritePolicy::kWriteThrough;
          break;
        case 1:
          c.policy = WritePolicy::kFlushBack;
          c.flush_interval = Duration::Seconds(30);
          break;
        case 2:
          c.policy = WritePolicy::kFlushBack;
          c.flush_interval = Duration::Minutes(5);
          break;
        default:
          c.policy = WritePolicy::kDelayedWrite;
          break;
      }
      configs.push_back(c);
    }
  }
  return configs;
}

std::vector<CacheConfig> Fig6Configs() {
  const uint32_t block_sizes[] = {1 * kKb, 2 * kKb, 4 * kKb, 8 * kKb, 16 * kKb, 32 * kKb};
  const uint64_t cache_sizes[] = {400 * kKb, 2 * kMb, 4 * kMb, 8 * kMb};
  std::vector<CacheConfig> configs;
  for (uint64_t cache : cache_sizes) {
    for (uint32_t block : block_sizes) {
      CacheConfig c;
      c.size_bytes = cache;
      c.block_size = block;
      c.policy = WritePolicy::kDelayedWrite;
      configs.push_back(c);
    }
  }
  return configs;
}

std::vector<uint64_t> SweepCurveSizes() {
  // Quarter-octave steps: the stack pass answers every capacity from one
  // replay, so the sampled axis costs nothing extra — only table height.
  return {256 * kKb,     320 * kKb,     390 * kKb,     448 * kKb, 512 * kKb,
          640 * kKb,     768 * kKb,     896 * kKb,     1 * kMb,   5 * kMb / 4,
          3 * kMb / 2,   7 * kMb / 4,   2 * kMb,       5 * kMb / 2,
          3 * kMb,       7 * kMb / 2,   4 * kMb,       5 * kMb,   6 * kMb,
          7 * kMb,       8 * kMb,       10 * kMb,      12 * kMb,  14 * kMb,
          16 * kMb};
}

namespace {

// Runs `work` items on `threads` workers with a work-stealing counter (same
// discipline as RunCacheSweep: each item writes disjoint state; join is the
// only synchronization).
void RunWorkItems(std::vector<std::function<void()>>& work, unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(work.size()));
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= work.size()) {
        return;
      }
      work[i]();
    }
  };
  if (threads <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

uint64_t BlocksFor(uint64_t size_bytes, uint32_t block_size) {
  return std::max<uint64_t>(1, size_bytes / block_size);
}

}  // namespace

PlannedSweep RunPlannedSweep(const ReplayLog& log, const std::vector<CacheConfig>& configs,
                             std::vector<uint64_t> curve_sizes, unsigned threads) {
  PlannedSweep result;
  result.points.resize(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    result.points[i].config = configs[i];
  }
  if (configs.empty()) {
    return result;
  }
  if (curve_sizes.empty()) {
    curve_sizes = SweepCurveSizes();
  }

  // Partition by shared cache state: configs that differ only in write
  // policy replay once, fused.  Metadata configs fall back (the fused cache
  // cannot share i-node dirtiness across policies).
  struct FusedGroup {
    std::vector<size_t> members;  // config indices, <= 8 (lane-mask width)
  };
  std::map<std::tuple<uint64_t, uint32_t, int, bool>, std::vector<size_t>> by_cache;
  std::vector<size_t> fallbacks;
  for (size_t i = 0; i < configs.size(); ++i) {
    const CacheConfig& c = configs[i];
    if (c.simulate_metadata) {
      fallbacks.push_back(i);
      continue;
    }
    by_cache[{c.size_bytes, c.block_size, static_cast<int>(c.replacement),
              c.simulate_execve_pagein}]
        .push_back(i);
  }
  std::vector<FusedGroup> fused_groups;
  for (auto& [key, members] : by_cache) {
    for (size_t at = 0; at < members.size(); at += 8) {
      FusedGroup g;
      g.members.assign(members.begin() + static_cast<ptrdiff_t>(at),
                       members.begin() + static_cast<ptrdiff_t>(std::min(at + 8, members.size())));
      fused_groups.push_back(std::move(g));
    }
  }

  // One Mattson pass per (block size, page-in) family of LRU configs: the
  // whole size axis of that family from a single pass.
  struct MattsonGroup {
    uint32_t block_size = 4096;
    bool pagein = false;
    std::vector<size_t> members;
  };
  std::map<std::pair<uint32_t, bool>, std::vector<size_t>> by_family;
  for (size_t i = 0; i < configs.size(); ++i) {
    const CacheConfig& c = configs[i];
    if (c.replacement == ReplacementPolicy::kLru && !c.simulate_metadata) {
      by_family[{c.block_size, c.simulate_execve_pagein}].push_back(i);
    }
  }
  std::vector<MattsonGroup> mattson_groups;
  for (auto& [key, members] : by_family) {
    mattson_groups.push_back({key.first, key.second, std::move(members)});
  }
  result.curves.resize(mattson_groups.size());
  result.stack_passes = mattson_groups.size();
  result.fused_replays = fused_groups.size();
  result.replay_fallbacks = fallbacks.size();

  std::vector<std::function<void()>> work;
  work.reserve(mattson_groups.size() + fused_groups.size() + fallbacks.size());
  // Mattson passes first: they are the largest indivisible items, so an
  // early start minimizes the parallel makespan.
  for (size_t g = 0; g < mattson_groups.size(); ++g) {
    work.push_back([&, g]() {
      const MattsonGroup& group = mattson_groups[g];
      StackDistanceAnalyzer::Options opt;
      opt.simulate_execve_pagein = group.pagein;
      StackDistanceAnalyzer analyzer(group.block_size, opt);
      analyzer.SetExtentFeeds(group.pagein ? log.transfer_extents_pagein().data()
                                           : log.transfer_extents().data(),
                              log.execve_extents().data());
      log.ReplayDataEventsInto(analyzer);
      SweepCurve& curve = result.curves[g];
      curve.block_size = group.block_size;
      curve.simulate_execve_pagein = group.pagein;
      curve.profile = analyzer.Take();
      curve.size_bytes = curve_sizes;
      for (const size_t i : group.members) {
        curve.size_bytes.push_back(configs[i].size_bytes);
      }
      std::sort(curve.size_bytes.begin(), curve.size_bytes.end());
      curve.size_bytes.erase(std::unique(curve.size_bytes.begin(), curve.size_bytes.end()),
                             curve.size_bytes.end());
      curve.fetch_misses.reserve(curve.size_bytes.size());
      curve.fetch_miss_ratios.reserve(curve.size_bytes.size());
      for (const uint64_t size : curve.size_bytes) {
        const uint64_t blocks = BlocksFor(size, group.block_size);
        curve.fetch_misses.push_back(curve.profile.FetchMissesAt(blocks));
        curve.fetch_miss_ratios.push_back(curve.profile.FetchMissRatioAt(blocks));
      }
    });
  }
  for (const FusedGroup& group : fused_groups) {
    work.push_back([&, &members = group.members]() {
      CacheConfig base = configs[members.front()];
      std::vector<FusedCacheSimulator::PolicyLane> lanes;
      lanes.reserve(members.size());
      for (const size_t i : members) {
        lanes.push_back({configs[i].policy, configs[i].flush_interval});
      }
      FusedCacheSimulator sim(base, lanes);
      sim.SetExtentFeeds(base.simulate_execve_pagein
                             ? log.transfer_extents_pagein().data()
                             : log.transfer_extents().data(),
                         log.execve_extents().data());
      sim.ReserveFiles(log.distinct_files());
      log.ReplayDataEventsInto(sim);
      sim.Finish();
      for (size_t j = 0; j < members.size(); ++j) {
        result.points[members[j]].metrics = sim.LaneMetrics(j);
      }
    });
  }
  for (const size_t i : fallbacks) {
    work.push_back([&, i]() { result.points[i].metrics = SimulateCache(log, configs[i]); });
  }
  RunWorkItems(work, threads);

  // Engine cross-check: the single-pass curve must reproduce every replayed
  // fetch-miss cell bit-for-bit.
  for (size_t g = 0; g < mattson_groups.size(); ++g) {
    const SweepCurve& curve = result.curves[g];
    for (const size_t i : mattson_groups[g].members) {
      if (curve.profile.FetchMissesAt(configs[i].block_count()) !=
          result.points[i].metrics.disk_reads) {
        result.parity = false;
      }
    }
  }
  return result;
}

PlannedSweep RunPlannedSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                             std::vector<uint64_t> curve_sizes, unsigned threads) {
  if (configs.empty()) {
    return {};
  }
  return RunPlannedSweep(ReplayLog::Build(trace), configs, std::move(curve_sizes), threads);
}

bool CacheMetricsBitIdentical(const CacheMetrics& a, const CacheMetrics& b) {
  return a.logical_accesses == b.logical_accesses && a.read_accesses == b.read_accesses &&
         a.write_accesses == b.write_accesses && a.metadata_accesses == b.metadata_accesses &&
         a.disk_reads == b.disk_reads && a.disk_writes == b.disk_writes &&
         a.dirty_discarded == b.dirty_discarded && a.evictions == b.evictions &&
         a.residency_over_20min == b.residency_over_20min &&
         a.residency_samples == b.residency_samples &&
         a.residency_seconds.sum() == b.residency_seconds.sum() &&
         a.residency_seconds.variance() == b.residency_seconds.variance();
}

std::vector<HierarchyConfig> HierarchySweepConfigs() {
  const uint64_t client_sizes[] = {0, 256 * kKb, 1 * kMb, 4 * kMb};
  const uint64_t server_sizes[] = {1 * kMb, 2 * kMb, 4 * kMb, 8 * kMb, 16 * kMb};
  std::vector<HierarchyConfig> configs;
  for (uint64_t client : client_sizes) {
    for (uint64_t server : server_sizes) {
      for (int p = 0; p < 3; ++p) {
        HierarchyConfig h;
        h.client.size_bytes = client;
        h.server.size_bytes = server;
        h.server.policy = WritePolicy::kDelayedWrite;
        h.client.policy = WritePolicy::kDelayedWrite;
        // The swept policy lands on the clients; with no client layer it
        // falls through to the server (the single-level baseline).
        CacheConfig& swept = client > 0 ? h.client : h.server;
        switch (p) {
          case 0:
            swept.policy = WritePolicy::kWriteThrough;
            break;
          case 1:
            swept.policy = WritePolicy::kFlushBack;
            swept.flush_interval = Duration::Seconds(30);
            break;
          default:
            swept.policy = WritePolicy::kDelayedWrite;
            break;
        }
        configs.push_back(h);
      }
    }
  }
  return configs;
}

HierarchySweepResult RunHierarchySweep(const ReplayLog& log,
                                       const std::vector<HierarchyConfig>& configs,
                                       unsigned threads) {
  HierarchySweepResult result;
  result.points.resize(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    result.points[i].config = configs[i];
  }
  if (configs.empty()) {
    return result;
  }

  // Client-0 rows are single-level server replays: fuse rows sharing server
  // cache state into multi-lane simulators, exactly like RunPlannedSweep.
  std::map<std::tuple<uint64_t, uint32_t, int, bool>, std::vector<size_t>> by_server;
  std::vector<size_t> hierarchy_rows;
  for (size_t i = 0; i < configs.size(); ++i) {
    const HierarchyConfig& h = configs[i];
    if (h.has_clients()) {
      hierarchy_rows.push_back(i);
    } else {
      by_server[{h.server.size_bytes, h.server.block_size,
                 static_cast<int>(h.server.replacement), h.server.simulate_execve_pagein}]
          .push_back(i);
    }
  }
  struct FusedGroup {
    std::vector<size_t> members;
  };
  std::vector<FusedGroup> fused_groups;
  for (auto& [key, members] : by_server) {
    for (size_t at = 0; at < members.size(); at += 8) {
      FusedGroup g;
      g.members.assign(members.begin() + static_cast<ptrdiff_t>(at),
                       members.begin() + static_cast<ptrdiff_t>(std::min(at + 8, members.size())));
      fused_groups.push_back(std::move(g));
    }
  }
  result.fused_replays = fused_groups.size();
  result.hierarchy_replays = hierarchy_rows.size();

  // One degenerate-hierarchy parity replay per fused group, compared against
  // the group's first lane after the join.
  std::vector<uint8_t> group_parity(fused_groups.size(), 1);
  std::vector<CacheMetrics> parity_metrics(fused_groups.size());

  std::vector<std::function<void()>> work;
  work.reserve(hierarchy_rows.size() + 2 * fused_groups.size());
  // Hierarchy replays first: each is a full two-level replay, the largest
  // indivisible items.
  for (const size_t i : hierarchy_rows) {
    work.push_back([&, i]() { result.points[i].metrics = SimulateHierarchy(log, configs[i]); });
  }
  for (size_t g = 0; g < fused_groups.size(); ++g) {
    work.push_back([&, g]() {
      const std::vector<size_t>& members = fused_groups[g].members;
      CacheConfig base = configs[members.front()].server;
      std::vector<FusedCacheSimulator::PolicyLane> lanes;
      lanes.reserve(members.size());
      for (const size_t i : members) {
        lanes.push_back({configs[i].server.policy, configs[i].server.flush_interval});
      }
      FusedCacheSimulator sim(base, lanes);
      sim.SetExtentFeeds(base.simulate_execve_pagein
                             ? log.transfer_extents_pagein().data()
                             : log.transfer_extents().data(),
                         log.execve_extents().data());
      sim.ReserveFiles(log.distinct_files());
      log.ReplayDataEventsInto(sim);
      sim.Finish();
      for (size_t j = 0; j < members.size(); ++j) {
        HierarchyMetrics& m = result.points[members[j]].metrics;
        m.client_count = 0;
        m.server = sim.LaneMetrics(j);
      }
    });
    work.push_back([&, g]() {
      // Cross-engine gate: the degenerate hierarchy must reproduce the
      // fused lane bit-for-bit.  Runs as its own work item so it overlaps
      // the fused replay; the comparison happens after the join.
      const size_t i = fused_groups[g].members.front();
      const HierarchyMetrics check = SimulateHierarchy(log, configs[i]);
      group_parity[g] = static_cast<uint8_t>(check.client_count == 0 ? 1 : 0);
      parity_metrics[g] = check.server;
    });
  }
  RunWorkItems(work, threads);

  for (size_t g = 0; g < fused_groups.size(); ++g) {
    const size_t i = fused_groups[g].members.front();
    if (group_parity[g] == 0 ||
        !CacheMetricsBitIdentical(parity_metrics[g], result.points[i].metrics.server)) {
      result.parity = false;
    }
  }
  return result;
}

HierarchySweepResult RunHierarchySweep(const Trace& trace,
                                       const std::vector<HierarchyConfig>& configs,
                                       unsigned threads) {
  if (configs.empty()) {
    return {};
  }
  return RunHierarchySweep(ReplayLog::Build(trace), configs, threads);
}

std::vector<CacheConfig> Fig7Configs() {
  const uint64_t sizes[] = {390 * kKb, 1 * kMb, 2 * kMb, 4 * kMb, 8 * kMb, 16 * kMb};
  std::vector<CacheConfig> configs;
  for (bool pagein : {false, true}) {
    for (uint64_t size : sizes) {
      CacheConfig c;
      c.size_bytes = size;
      c.block_size = 4096;
      c.policy = WritePolicy::kDelayedWrite;
      c.simulate_execve_pagein = pagein;
      configs.push_back(c);
    }
  }
  return configs;
}

}  // namespace bsdtrace
