// Client/server cache hierarchy simulation — the §7 question the paper
// poses but never answers: networked file systems will put a block cache on
// every client machine in front of a shared server cache; how do the two
// sizes and the client write policy trade off?
//
// Topology: each fleet instance (attributed per event via the v3/v4 fleet
// tag in the trace header — ReplayLog::ReplayDataEventsWithInstancesInto)
// owns a client CacheLevel; client miss fetches and write-backs become
// block accesses on one shared server CacheLevel (cache_level.h's ServerLink
// below-policy), and the server's own misses and write-backs are the disk
// I/Os.  Unlink/truncate/create invalidations fan out to every client and
// the server, discarding dirty blocks without traffic at any level — a
// client's absorbed writes never reach the server, and the server's never
// reach disk.
//
// Semantics, level by level:
//   * A client fetch is a READ access on the server (whatever is below must
//     supply the block); a client write-back is a whole-block WRITE (the
//     client has the full current contents, so the server never fetches to
//     complete it).  Whole-block-overwrite and beyond-extent fetch elision
//     therefore apply at the client, where the knowledge lives.
//   * The server clock follows the global event clock (its flush-back
//     epochs fire on time); a client's clock advances on its own events and
//     on fan-out invalidations, so an idle client's flush scans run at its
//     next event — the flushed blocks still reach the server stamped with
//     the epoch-boundary time.
//   * client.size_bytes == 0 removes the client layer entirely: events
//     route straight to the server level through exactly the single-level
//     simulator's driver logic, making the degenerate hierarchy bit-
//     identical to CacheSimulator with the server config — the parity gate
//     bench_hier_cache enforces.
//
// Metadata simulation is not supported (client-local i-node state has no
// defined server semantics here); both levels must share a block size.

#ifndef BSDTRACE_SRC_CACHE_HIERARCHY_H_
#define BSDTRACE_SRC_CACHE_HIERARCHY_H_

#include <deque>
#include <string>
#include <vector>

#include "src/cache/cache_level.h"
#include "src/util/flat_map.h"
#include "src/trace/reconstruct.h"
#include "src/trace/replay_log.h"

namespace bsdtrace {

struct HierarchyConfig {
  // client.size_bytes == 0 → no client layer (pure single-level server).
  // client.block_size must equal server.block_size; simulate_metadata must
  // be false on both; the page-in flags must agree (one trace-side decision).
  CacheConfig client;
  CacheConfig server;

  bool has_clients() const { return client.size_bytes > 0; }
  bool simulate_execve_pagein() const { return server.simulate_execve_pagein; }
  std::string ToString() const;
};

struct HierarchyMetrics {
  size_t client_count = 0;           // 0 in the degenerate no-client topology
  std::vector<CacheMetrics> clients; // one per fleet instance
  CacheMetrics client_total;         // clients summed (residency merged in order)
  CacheMetrics server;

  // Logical accesses presented to the top of the hierarchy.
  uint64_t LogicalAccesses() const {
    return client_count > 0 ? client_total.logical_accesses : server.logical_accesses;
  }
  // Disk I/Os leave from the bottom: the server's fetches + write-backs.
  uint64_t DiskIos() const { return server.DiskIos(); }
  double GlobalMissRatio() const {
    const uint64_t logical = LogicalAccesses();
    return logical > 0 ? static_cast<double>(DiskIos()) / static_cast<double>(logical) : 0.0;
  }
  // Fraction of client block accesses served without touching the server.
  double ClientHitRatio() const {
    return client_total.logical_accesses > 0
               ? 1.0 - static_cast<double>(server.logical_accesses) /
                           static_cast<double>(client_total.logical_accesses)
               : 0.0;
  }
};

// Drives one hierarchy over an instance-attributed replay.  Mirrors
// CacheSimulator's trace semantics exactly (extent table or feeds, feed
// slot consumption, invalidation rules) so the no-client topology is
// bit-identical to the single-level simulator.
class HierarchySimulator final {
 public:
  // `client_count` clients (clamped up to 1 when the config has a client
  // layer); pass ReplayLog::instance_count() for fleet traces.
  HierarchySimulator(const HierarchyConfig& config, size_t client_count);

  // Same contracts as CacheSimulator.
  void ReserveFiles(size_t file_count);
  void SetExtentFeeds(const uint64_t* transfer_feed, const uint64_t* execve_feed) {
    transfer_extent_feed_ = transfer_feed;
    execve_extent_feed_ = execve_feed;
  }

  // Instance-attributed sink (ReplayDataEventsWithInstancesInto).
  void OnTransferFrom(uint16_t instance, const Transfer& t) {
    const bool is_write = t.direction == TransferDirection::kWrite;
    if (transfer_extent_feed_ != nullptr) {
      // One feed slot per transfer, zero-length included (see CacheSimulator).
      const uint64_t extent = transfer_extent_feed_[transfer_feed_pos_++];
      if (t.length > 0) {
        AccessBlocks(instance, t.time, t.file_id, t.offset, t.length, is_write, extent);
      }
    } else {
      Access(instance, t.time, t.file_id, t.offset, t.length, is_write);
    }
  }
  void OnRecordFrom(uint16_t instance, const TraceRecord& record);

  // Plain-sink compatibility (untagged replays): everything is instance 0.
  void OnTransfer(const Transfer& t) { OnTransferFrom(0, t); }
  void OnRecord(const TraceRecord& r) { OnRecordFrom(0, r); }

  void Finish();

  const CacheMetrics& server_metrics() const { return server_.metrics(); }
  size_t client_count() const { return clients_.size(); }
  const CacheMetrics& client_metrics(size_t i) const { return clients_[i].metrics(); }
  const HierarchyConfig& config() const { return config_; }

  // Assembles the per-level metrics (call after Finish).
  HierarchyMetrics Collect() const;

 private:
  using ServerLevel = CacheLevel<DiskBelow>;

  // The below-policy wiring a client level into the shared server level.
  struct ServerLink {
    ServerLevel* server = nullptr;
    void OnFetch(SimTime now, const BlockKey& key) {
      // The server must supply the block: a read access.  Reads always
      // fetch on a server miss, so the extent argument is irrelevant.
      server->AccessBlock(now, key, /*is_write=*/false, /*whole_block=*/false, 0);
    }
    void OnWriteBack(SimTime now, const BlockKey& key) {
      // The client holds the block's full current contents: a whole-block
      // write, which never fetches to complete.
      server->AccessBlock(now, key, /*is_write=*/true, /*whole_block=*/true, 0);
    }
  };
  using ClientLevel = CacheLevel<ServerLink>;

  ClientLevel& ClientFor(uint16_t instance) {
    return clients_[instance < clients_.size() ? instance : 0];
  }

  void Access(uint16_t instance, SimTime now, FileId file, uint64_t offset,
              uint64_t length, bool is_write);
  void AccessBlocks(uint16_t instance, SimTime now, FileId file, uint64_t offset,
                    uint64_t length, bool is_write, uint64_t extent) {
    if (clients_.empty()) {
      server_.AccessBlocks(now, file, offset, length, is_write, extent);
      return;
    }
    // Server clock first: its flush epochs due before `now` fire before the
    // new traffic this event forwards down.
    server_.AdvanceClock(now);
    ClientFor(instance).AccessBlocks(now, file, offset, length, is_write, extent);
  }
  void InvalidateFrom(SimTime now, FileId file, uint64_t first_byte);

  HierarchyConfig config_;
  ServerLevel server_;
  // deque: CacheLevel is immovable (BlockCache pins itself), and deque
  // never relocates constructed elements.
  std::deque<ClientLevel> clients_;
  FlatMap<FileId, uint64_t, IdHash> known_extent_{kInvalidFileId};
  const uint64_t* transfer_extent_feed_ = nullptr;
  const uint64_t* execve_extent_feed_ = nullptr;
  size_t transfer_feed_pos_ = 0;
  size_t execve_feed_pos_ = 0;
};

// Replays `log` through one hierarchy (clients = log.instance_count() when
// the config has a client layer).  The feed choice mirrors SimulateCache.
HierarchyMetrics SimulateHierarchy(const ReplayLog& log, const HierarchyConfig& config);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_HIERARCHY_H_
