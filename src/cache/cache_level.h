// One level of a disk-block cache hierarchy (paper §6 core, §7 topology).
//
// CacheLevel is the reusable heart of the cache simulators: the slab
// BlockCache plus everything the paper's §6 policies decide per block —
// write policy (write-through / flush-back(T) / delayed-write), miss-fetch
// elision for whole-block overwrites and blocks beyond the file's known
// extent, invalidation that discards dirty blocks without a disk write, and
// residency accounting.  What happens BELOW the level on a miss fetch or a
// write-back is a compile-time policy:
//
//   * DiskBelow — the terminal level: fetches and write-backs are disk I/Os
//     and are already counted in this level's own metrics.  CacheSimulator
//     (simulator.h) is exactly CacheLevel<DiskBelow> plus trace plumbing —
//     the single-level §6 simulator, bit-identical to the pre-split code.
//   * A forwarding policy (hierarchy.h's ServerLink) — fetches and
//     write-backs become block accesses on a lower CacheLevel, which is how
//     the §7 client/server hierarchy stacks levels.
//
// The hooks are called at the three points where the single-level simulator
// counts disk traffic: OnFetch where a miss reads disk, OnWriteBack where a
// write-through write, a dirty eviction, or a flush-scan write hits disk.
// Invalidation deliberately has no hook: dirty blocks of deleted files
// vanish without traffic at ANY level (the effect that makes large
// delayed-write caches absorb most writes entirely); lower levels are
// instead invalidated explicitly by the hierarchy driver.
//
// The template (rather than a virtual interface) keeps the hot path free of
// indirect calls: with DiskBelow the hooks compile to nothing and the code
// is the pre-split single-level simulator, instruction for instruction.

#ifndef BSDTRACE_SRC_CACHE_CACHE_LEVEL_H_
#define BSDTRACE_SRC_CACHE_CACHE_LEVEL_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/cache/block_cache.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace bsdtrace {

enum class WritePolicy : uint8_t {
  kWriteThrough,
  kFlushBack,     // requires flush_interval
  kDelayedWrite,
};

const char* WritePolicyName(WritePolicy policy);

struct CacheConfig {
  uint64_t size_bytes = 400 << 10;  // the UNIX-typical "about 400 kbytes"
  uint32_t block_size = 4096;
  WritePolicy policy = WritePolicy::kDelayedWrite;
  Duration flush_interval = Duration::Seconds(30);
  // Replacement policy (the paper used LRU; alternatives for ablations).
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  // Fig. 7: treat each execve as a whole-file read of the program file.
  bool simulate_execve_pagein = false;
  // §8 extension: inject i-node and directory block accesses for each open,
  // write-close, and unlink (the "I/O for things other than file data" the
  // paper estimates could exceed file-data I/O).  See simulator.cc for the
  // approximation.  Only CacheSimulator honors it.
  bool simulate_metadata = false;

  uint64_t block_count() const { return std::max<uint64_t>(1, size_bytes / block_size); }
  std::string ToString() const;
};

struct CacheMetrics {
  uint64_t logical_accesses = 0;  // block accesses presented to the cache
  uint64_t read_accesses = 0;
  uint64_t write_accesses = 0;

  uint64_t metadata_accesses = 0;  // i-node/directory accesses (if simulated)

  uint64_t disk_reads = 0;        // miss fetches (from below, for a stacked level)
  uint64_t disk_writes = 0;       // write-through/flush/eviction write-backs
  uint64_t dirty_discarded = 0;   // dirty blocks dropped by delete/overwrite
  uint64_t evictions = 0;

  // Residency: time between a block entering the cache and leaving it
  // (evicted, invalidated, or still resident at end of trace).
  RunningStats residency_seconds;
  uint64_t residency_over_20min = 0;
  uint64_t residency_samples = 0;

  uint64_t DiskIos() const { return disk_reads + disk_writes; }
  double MissRatio() const {
    return logical_accesses > 0
               ? static_cast<double>(DiskIos()) / static_cast<double>(logical_accesses)
               : 0.0;
  }
};

// The terminal below-policy: misses and write-backs go to disk, which the
// level's own disk_reads/disk_writes counters already record.
struct DiskBelow {
  void OnFetch(SimTime, const BlockKey&) {}
  void OnWriteBack(SimTime, const BlockKey&) {}
};

// One cache level.  The caller (CacheSimulator, HierarchySimulator) owns the
// trace semantics — known-extent tracking, feed consumption, which records
// invalidate — and drives the level through AccessBlocks/AccessBlock/
// Invalidate/AdvanceClock; the level owns the per-block policy mechanics.
template <typename Below = DiskBelow>
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config, Below below = Below{})
      : config_(config),
        cache_(config.block_count(), config.replacement),
        below_(below) {
    next_flush_ = SimTime::Origin() + config_.flush_interval;
  }

  // Advances the simulation clock and runs any flush-back scans that come
  // due.  Inline: runs on every access/record, and is almost always just the
  // two compares.
  void AdvanceClock(SimTime now) {
    if (now > now_) {
      now_ = now;
    }
    if (config_.policy != WritePolicy::kFlushBack) {
      return;
    }
    while (now_ >= next_flush_) {
      FlushScan();
      next_flush_ += config_.flush_interval;
    }
  }

  // One block access.  `known_extent` is the caller's one-per-transfer read
  // of its extent table (0 when the file has none; metadata blocks pass a
  // huge constant); `whole_block` marks a write covering the full block.
  // Does NOT advance the clock — callers do, once per transfer.
  void AccessBlock(SimTime now, const BlockKey& key, bool is_write, bool whole_block,
                   uint64_t known_extent) {
    metrics_.logical_accesses += 1;
    if (is_write) {
      metrics_.write_accesses += 1;
    } else {
      metrics_.read_accesses += 1;
    }

    CacheEntry* entry = cache_.Touch(key);
    if (entry == nullptr) {
      // Miss.  A fetch is needed unless this access overwrites the whole
      // block, or the block lies beyond any data the file is known to have.
      const uint64_t block_start = key.index * config_.block_size;
      const bool beyond_known_data = block_start >= known_extent;
      if (!(is_write && (whole_block || beyond_known_data))) {
        metrics_.disk_reads += 1;
        below_.OnFetch(now, key);
      }
      entry = cache_.Insert(key, now, [this, now](const CacheEntry& victim) {
        metrics_.evictions += 1;
        RecordResidency(now, victim);
        if (victim.dirty) {
          metrics_.disk_writes += 1;  // delayed/flush-back eviction write-back
          below_.OnWriteBack(now, victim.key);
        }
      });
      cache_.Retouch(entry);  // same policy action the hit path's Touch applies
    }

    if (is_write) {
      if (config_.policy == WritePolicy::kWriteThrough) {
        metrics_.disk_writes += 1;  // every modification goes below
        below_.OnWriteBack(now, key);
        // The cached copy stays clean: the level below is up to date.
        if (entry->dirty) {
          cache_.MarkClean(entry);
        }
      } else if (!entry->dirty) {
        cache_.MarkDirty(entry);
        entry->dirtied = now;
      }
    }
  }

  // The block-splitting loop shared by every driver; `extent` is the file's
  // known extent however obtained.  Requires length > 0.
  void AccessBlocks(SimTime now, FileId file, uint64_t offset, uint64_t length,
                    bool is_write, uint64_t extent) {
    AdvanceClock(now);
    const uint32_t bs = config_.block_size;
    const uint64_t first = offset / bs;
    const uint64_t last = (offset + length - 1) / bs;
    for (uint64_t b = first; b <= last; ++b) {
      const uint64_t block_start = b * bs;
      const uint64_t block_end = block_start + bs;
      const bool whole_block = is_write && offset <= block_start && offset + length >= block_end;
      AccessBlock(now, BlockKey{.file = file, .index = b}, is_write, whole_block, extent);
    }
  }

  // Drops every cached block of `file` from byte `first_byte` up (whole
  // blocks only).  Dirty blocks are discarded, never written — at this level
  // or below.  Extent-table bookkeeping stays with the caller.
  void Invalidate(SimTime now, FileId file, uint64_t first_byte) {
    AdvanceClock(now);
    const uint64_t first_block =
        (first_byte + config_.block_size - 1) / config_.block_size;  // whole blocks only
    cache_.RemoveFileBlocks(file, first_block, [this, now](const CacheEntry& dropped) {
      RecordResidency(now, dropped);
      if (dropped.dirty) {
        metrics_.dirty_discarded += 1;  // never reaches disk
      }
    });
  }

  // Finalizes residency statistics for blocks still cached.  Dirty blocks
  // still in the cache are NOT charged as write-backs (the trace simply
  // ended; the paper's metric does likewise).
  void Finish() {
    if (finished_) {
      return;
    }
    finished_ = true;
    cache_.ForEach([this](CacheEntry& entry) { RecordResidency(now_, entry); });
  }

  const CacheConfig& config() const { return config_; }
  const CacheMetrics& metrics() const { return metrics_; }
  CacheMetrics& mutable_metrics() { return metrics_; }
  Below& below() { return below_; }
  SimTime now() const { return now_; }

 private:
  void FlushScan() {
    // O(dirty blocks): walks the cache's intrusive dirty chain, not the
    // whole cache.  The scan semantically runs at the epoch boundary, so
    // write-backs are forwarded below at that time, not at now_.
    const SimTime flush_time = next_flush_;
    cache_.DrainDirty([this, flush_time](CacheEntry& entry) {
      metrics_.disk_writes += 1;
      below_.OnWriteBack(flush_time, entry.key);
    });
  }

  void RecordResidency(SimTime now, const CacheEntry& entry) {
    const double seconds = (now - entry.loaded).seconds();
    metrics_.residency_seconds.Add(seconds);
    metrics_.residency_samples += 1;
    if (seconds > 20.0 * 60.0) {
      metrics_.residency_over_20min += 1;
    }
  }

  CacheConfig config_;
  BlockCache cache_;
  CacheMetrics metrics_;
  SimTime now_;
  SimTime next_flush_;
  Below below_;
  bool finished_ = false;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_CACHE_LEVEL_H_
